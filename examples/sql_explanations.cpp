// Explanations in databases (tutorial Section 3): a data analyst runs an
// aggregate query over a small sales database and is surprised by one
// group's total. We explain the answer three ways: (a) Shapley values of
// the contributing tuples (Livshits et al. style), (b) why-provenance +
// causal responsibility (Meliou et al. style), (c) deletion-impact
// ranking of the lineage.
#include <cstdio>

#include "db/provenance_explain.h"
#include "db/query_shapley.h"
#include "relational/query.h"

using namespace xai;

int main() {
  // sales(region, rep, amount)
  Relation sales("sales", {"region", "rep", "amount"});
  const TupleId first = *sales.Insert({0, 1, 120});
  (void)*sales.Insert({0, 1, 80});
  (void)*sales.Insert({0, 2, 4000});  // The anomaly.
  (void)*sales.Insert({0, 3, 150});
  (void)*sales.Insert({1, 4, 200});
  (void)*sales.Insert({1, 5, 250});
  const size_t n_tuples = sales.num_rows();

  // Query: SELECT SUM(amount) FROM sales WHERE region = 0.
  auto run_query = [](const Relation& rel) {
    auto pred = ColumnPredicate(rel, "region", "==", 0.0);
    if (!pred.ok()) return 0.0;
    Relation region0 = Select(rel, *pred);
    return Aggregate(region0, AggKind::kSum, "amount")->value;
  };
  std::printf("SELECT SUM(amount) FROM sales WHERE region = 0  ->  %.0f\n",
              run_query(sales));
  std::printf("(analyst: 'that looks way too high — why?')\n\n");

  // (a) Shapley value of every tuple for this answer.
  std::printf("--- tuple Shapley values ---\n");
  auto query_fn = MakeRelationQueryFn(sales, first, run_query);
  auto phi = TupleShapley(n_tuples, query_fn);
  if (phi.ok()) {
    for (size_t i = 0; i < n_tuples; ++i) {
      std::printf("  tuple %zu (region=%.0f, rep=%.0f, amount=%.0f): "
                  "phi = %.1f\n",
                  i, sales.value(i, 0), sales.value(i, 1), sales.value(i, 2),
                  (*phi)[i]);
    }
    std::printf("  -> tuple 2 (rep 2's 4000) carries almost the whole "
                "answer.\n\n");
  }

  // (b) Boolean view: "why is the answer > 1000 at all?" — responsibility
  // over the why-provenance of the threshold condition. The witnesses are
  // the minimal tuple sets pushing the sum over 1000: {t2} alone.
  std::printf("--- causal responsibility for SUM > 1000 ---\n");
  // Build witnesses: any subset achieving > 1000 and minimal. Here only
  // the anomaly alone qualifies; with it removed the rest sum to 350.
  WhyProvenance witnesses = {{first + 2}};
  for (const auto& r : ComputeResponsibilities(witnesses)) {
    std::printf("  tuple id %llu: responsibility = %.2f\n",
                static_cast<unsigned long long>(r.tuple), r.responsibility);
  }

  // (c) Deletion impact over the answer's lineage.
  std::printf("\n--- deletion impact on the aggregate ---\n");
  std::vector<TupleId> lineage;
  for (size_t i = 0; i < n_tuples; ++i)
    if (sales.value(i, 0) == 0.0) lineage.push_back(sales.tuple_id(i));
  auto ranked = RankByDeletionImpact(lineage, [&](const std::vector<TupleId>&
                                                      deleted) {
    std::vector<bool> keep(n_tuples, true);
    for (TupleId t : deleted) keep[static_cast<size_t>(t - first)] = false;
    return run_query(sales.FilterByTupleId(keep, first));
  });
  for (const auto& s : ranked) {
    std::printf("  delete tuple %llu -> answer changes by %.0f\n",
                static_cast<unsigned long long>(s.tuple), s.delta);
  }
  return 0;
}
