// xaidb_cli — explain any CSV from the command line.
//
// Usage:
//   xaidb_cli <data.csv> [--model gbdt|logistic|forest] [--row N]
//             [--explainer treeshap|kernelshap|lime|mcshapley|anchors|
//                          counterfactual|all]
//             [--serve-demo]
//             [--threads N] [--cache-size N]
//             [--metrics] [--metrics-json <path>]
//             [--trace-json <path>]
//
// The CSV format is WriteCsv's: header row, last column = binary target.
// With no arguments the tool writes a demo CSV to /tmp and explains it —
// so `xaidb_cli` alone always produces output.
//
// --serve-demo runs the async ExplanationService instead of a one-shot
// explanation: a burst of requests (with repeated hot rows) is submitted
// to the bounded queue, the dispatcher coalesces compatible requests into
// single ExplainBatch sweeps, and the tool reports the coalescing stats.
// Attributions are bit-identical to serving each request alone.
//
// --metrics prints the library's internal counters and span timings
// (model evals, samples drawn, coalitions enumerated) after the run;
// --metrics-json writes the same data as JSON. Either flag — or the
// XAIDB_METRICS env var — turns instrumentation on.
//
// --trace-json turns on the flight recorder (like XAIDB_TRACE=1) and, at
// exit, writes every recorded event as Chrome trace-event JSON — open the
// file at https://ui.perfetto.dev to see the request timeline across the
// dispatcher and worker threads.
//
// --threads N caps the worker pool behind the batched explainer sweeps
// (overrides the XAIDB_THREADS env var; default = hardware concurrency).
// Attributions are bit-identical for every N at a fixed seed.
//
// --cache-size N sets the coalition-value memo cache capacity (overrides
// the XAIDB_CACHE env var; 0 disables). One-shot modes default to off;
// --serve-demo defaults to on — repeated hot rows then skip their model
// evaluations entirely. Caching never changes attribution bits; the
// evalengine.* counters in --metrics / --metrics-json show hits, misses
// and evictions.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <vector>

#include "cf/dice.h"
#include "common/thread_pool.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "feature/explainer_factory.h"
#include "feature/lime.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "obs/obs.h"
#include "rule/anchors.h"
#include "serve/service.h"

using namespace xai;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

/// Writes the flight-recorder buffers out when --trace-json was given.
int FlushTrace(const std::string& path) {
  if (path.empty()) return 0;
  Status st = obs::WriteTraceJson(path);
  if (!st.ok()) return Fail(st);
  std::printf("\ntrace written to %s (%llu events, %llu dropped) — open it "
              "at https://ui.perfetto.dev\n",
              path.c_str(),
              static_cast<unsigned long long>(obs::TraceEventCount()),
              static_cast<unsigned long long>(obs::TraceDroppedCount()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string model_kind = "gbdt";
  std::string explainer_kind = "treeshap";
  std::string metrics_json_path;
  std::string trace_json_path;
  bool print_metrics = false;
  bool serve_demo = false;
  size_t row = 0;
  long long cache_size = -1;  // -1 = not given; keep per-mode defaults
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model_kind = argv[++i];
    } else if (arg == "--explainer" && i + 1 < argc) {
      explainer_kind = argv[++i];
    } else if (arg == "--row" && i + 1 < argc) {
      row = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--serve-demo") {
      serve_demo = true;
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      SetGlobalThreads(static_cast<size_t>(std::atoll(argv[++i])));
    } else if (arg == "--cache-size" && i + 1 < argc) {
      cache_size = std::atoll(argv[++i]);
      if (cache_size < 0) cache_size = 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s <data.csv> [--model gbdt|logistic|forest] "
                  "[--row N] [--explainer "
                  "treeshap|kernelshap|lime|mcshapley|anchors|"
                  "counterfactual|all] [--serve-demo] "
                  "[--threads N] [--cache-size N] "
                  "[--metrics] [--metrics-json <path>] "
                  "[--trace-json <path>]\n",
                  argv[0]);
      return 0;
    } else if (csv_path.empty()) {
      csv_path = arg;
    }
  }
  if (print_metrics || !metrics_json_path.empty()) obs::SetEnabled(true);
  if (!trace_json_path.empty()) obs::SetTraceEnabled(true);
  // One-shot modes route coalition values through the process-global memo
  // cache (off unless --cache-size / XAIDB_CACHE says otherwise); the
  // serve demo uses the service's per-key caches instead, below.
  if (cache_size >= 0)
    SetGlobalEvalCacheCapacity(static_cast<size_t>(cache_size));

  if (csv_path.empty()) {
    csv_path = "/tmp/xaidb_demo.csv";
    std::printf("no CSV given; writing a demo loan dataset to %s\n\n",
                csv_path.c_str());
    Status st = WriteCsv(MakeLoanDataset(1500), csv_path);
    if (!st.ok()) return Fail(st);
  }

  auto data = ReadCsv(csv_path);
  if (!data.ok()) return Fail(data.status());
  Dataset ds = std::move(data).value();
  std::printf("loaded %zu rows x %zu features from %s\n", ds.n(), ds.d(),
              csv_path.c_str());
  if (row >= ds.n()) {
    std::fprintf(stderr, "error: --row %zu out of range\n", row);
    return 1;
  }

  // Train the requested model.
  std::unique_ptr<Model> model;
  if (model_kind == "gbdt") {
    auto m = GradientBoostedTrees::Fit(ds, {.num_rounds = 60});
    if (!m.ok()) return Fail(m.status());
    model = std::make_unique<GradientBoostedTrees>(std::move(*m));
  } else if (model_kind == "logistic") {
    auto m = LogisticRegression::Fit(ds, {.lambda = 1e-3});
    if (!m.ok()) return Fail(m.status());
    model = std::make_unique<LogisticRegression>(std::move(*m));
  } else if (model_kind == "forest") {
    auto m = RandomForest::Fit(ds, {.num_trees = 60});
    if (!m.ok()) return Fail(m.status());
    model = std::make_unique<RandomForest>(std::move(*m));
  } else {
    std::fprintf(stderr, "error: unknown model '%s'\n", model_kind.c_str());
    return 1;
  }
  std::printf("model=%s  train accuracy=%.3f  AUC=%.3f\n\n",
              model_kind.c_str(), EvaluateAccuracy(*model, ds),
              EvaluateAuc(*model, ds));

  // The per-family explainer options every mode below shares — one config
  // object, forwarded to the factory (and to the service in --serve-demo).
  ExplainerConfig config;
  config.kernel_shap.max_background = 50;
  config.lime.num_samples = 3000;

  if (serve_demo) {
    // Submit a burst with hot-row repetition: 60 requests over 12 distinct
    // rows, two explainer families. The dispatcher coalesces compatible
    // requests into single ExplainBatch sweeps and answers duplicate
    // instances from one computation — attributions stay bit-identical to
    // serving each request alone.
    ExplanationServiceOptions sopts;
    sopts.config = config;
    // Default on: the demo's hot-row repetition is exactly the workload
    // the coalition-value cache exists for.
    if (cache_size >= 0) sopts.cache_size = static_cast<size_t>(cache_size);
    ExplanationService service(*model, ds, sopts);
    const size_t kRequests = 60;
    const size_t kDistinct = std::min<size_t>(12, ds.n());
    std::vector<std::future<Result<ExplanationResponse>>> futures;
    for (size_t i = 0; i < kRequests; ++i) {
      ExplanationRequest req;
      req.instance = ds.row(i % kDistinct);
      req.kind = i % 3 == 0 ? ExplainerKind::kMcShapley
                            : ExplainerKind::kKernelShap;
      futures.push_back(service.Submit(std::move(req)));
    }
    std::vector<double> queue_ms, sweep_ms, total_ms;
    size_t max_batch = 0;
    for (auto& f : futures) {
      const Result<ExplanationResponse> r = f.get();
      if (!r.ok()) return Fail(r.status());
      const ExplanationBreakdown& b = r.value().breakdown;
      queue_ms.push_back(b.queue_ms);
      sweep_ms.push_back(b.sweep_ms);
      total_ms.push_back(b.total_ms);
      max_batch = std::max(max_batch, b.coalesce_batch_size);
    }
    const ExplanationServiceStats stats = service.stats();
    std::printf("serve-demo: %llu requests served in %llu coalesced "
                "batches (%llu answered from a duplicate's computation)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.coalesced_duplicates));
    // Where each request's time went, from the per-request breakdowns the
    // service now returns alongside every attribution.
    std::printf("per-request breakdown (ms):\n");
    std::printf("  %-12s %8s %8s\n", "stage", "p50", "p99");
    std::printf("  %-12s %8.3f %8.3f\n", "queue_wait",
                Quantile(queue_ms, 0.50), Quantile(queue_ms, 0.99));
    std::printf("  %-12s %8.3f %8.3f\n", "sweep", Quantile(sweep_ms, 0.50),
                Quantile(sweep_ms, 0.99));
    std::printf("  %-12s %8.3f %8.3f\n", "total", Quantile(total_ms, 0.50),
                Quantile(total_ms, 0.99));
    std::printf("  largest coalesced batch: %zu requests\n", max_batch);
    if (stats.cache_hits + stats.cache_misses > 0) {
      std::printf("eval cache: %llu hits / %llu misses (%.1f%% hit rate), "
                  "%llu entries, %llu evictions\n",
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses),
                  100.0 * static_cast<double>(stats.cache_hits) /
                      static_cast<double>(stats.cache_hits +
                                          stats.cache_misses),
                  static_cast<unsigned long long>(stats.cache_entries),
                  static_cast<unsigned long long>(stats.cache_evictions));
    }
    service.Shutdown();
    if (obs::Enabled()) {
      if (print_metrics) std::printf("\n%s", obs::MetricsToTable().c_str());
      if (!metrics_json_path.empty()) {
        Status st = obs::WriteMetricsJson(metrics_json_path);
        if (!st.ok()) return Fail(st);
        std::printf("\nmetrics written to %s\n", metrics_json_path.c_str());
      }
    }
    return FlushTrace(trace_json_path);
  }

  const std::vector<double> x = ds.row(row);
  std::printf("explaining row %zu (prediction = %.3f):\n", row,
              model->Predict(x));
  for (size_t j = 0; j < ds.d(); ++j)
    std::printf("  %s\n", ds.schema().FormatValue(j, x[j]).c_str());
  std::printf("\n");

  auto run_one = [&](const std::string& kind) -> int {
    // The four attribution families all go through the shared factory;
    // anchors / counterfactuals return different explanation types and
    // keep their bespoke paths.
    if (auto parsed = ParseExplainerKind(kind); parsed.ok()) {
      auto explainer = MakeExplainer(*parsed, *model, ds, config);
      if (!explainer.ok()) return Fail(explainer.status());
      auto attr = (*explainer)->Explain(x);
      if (!attr.ok()) return Fail(attr.status());
      switch (*parsed) {
        case ExplainerKind::kTreeShap:
          std::printf("TreeSHAP (log-odds units):\n%s",
                      attr->ToString().c_str());
          break;
        case ExplainerKind::kKernelShap:
          std::printf("KernelSHAP:\n%s", attr->ToString().c_str());
          break;
        case ExplainerKind::kLime: {
          const auto* lime =
              dynamic_cast<const LimeExplainer*>(explainer->get());
          std::printf("LIME (local R^2 = %.3f):\n%s",
                      lime ? lime->last_local_r2() : 0.0,
                      attr->ToString().c_str());
          break;
        }
        case ExplainerKind::kMcShapley:
          std::printf("MC-Shapley (%d permutations, marginal game):\n%s",
                      config.mc_shapley.num_permutations,
                      attr->ToString().c_str());
          break;
      }
    } else if (kind == "anchors") {
      AnchorsExplainer explainer(*model, ds, {});
      auto rule = explainer.Explain(x);
      if (!rule.ok()) return Fail(rule.status());
      std::printf("Anchor:\n%s\n", rule->ToString(ds.schema()).c_str());
    } else if (kind == "counterfactual") {
      FeatureSpace space = FeatureSpace::FromDataset(ds);
      const int desired = model->Predict(x) >= 0.5 ? 0 : 1;
      auto cfs = DiceCounterfactuals(*model, space, x, desired,
                                     {.num_counterfactuals = 3});
      if (!cfs.ok()) return Fail(cfs.status());
      std::printf("counterfactuals toward class %d:\n%s", desired,
                  cfs->ToString(ds.schema(), x).c_str());
    } else {
      std::fprintf(stderr, "error: unknown explainer '%s'\n", kind.c_str());
      return 1;
    }
    return 0;
  };

  if (explainer_kind == "all") {
    // One instrumented pass over every explainer family — with
    // --metrics-json this produces a single JSON covering KernelSHAP,
    // LIME, TreeSHAP, MC-Shapley and a counterfactual search.
    for (const char* kind :
         {"treeshap", "kernelshap", "lime", "mcshapley", "counterfactual"}) {
      // TreeSHAP needs a tree model; the factory would reject logistic.
      if (std::string(kind) == "treeshap" && model_kind == "logistic")
        continue;
      std::printf("--- %s ---\n", kind);
      const int rc = run_one(kind);
      if (rc != 0) return rc;
      std::printf("\n");
    }
  } else {
    const int rc = run_one(explainer_kind);
    if (rc != 0) return rc;
  }

  if (std::shared_ptr<CoalitionValueCache> cache = GlobalEvalCache()) {
    const EvalCacheStats cs = cache->stats();
    std::printf("\neval cache (capacity %zu): %llu hits / %llu misses "
                "(%.1f%% hit rate), %llu entries, %llu evictions\n",
                cache->capacity(),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                100.0 * cs.HitRate(),
                static_cast<unsigned long long>(cs.entries),
                static_cast<unsigned long long>(cs.evictions));
  }

  if (obs::Enabled()) {
    if (print_metrics) std::printf("\n%s", obs::MetricsToTable().c_str());
    if (!metrics_json_path.empty()) {
      Status st = obs::WriteMetricsJson(metrics_json_path);
      if (!st.ok()) return Fail(st);
      std::printf("\nmetrics written to %s\n", metrics_json_path.c_str());
    }
  }
  return FlushTrace(trace_json_path);
}
