// xaidb_cli — explain any CSV from the command line.
//
// Usage:
//   xaidb_cli <data.csv> [--model gbdt|logistic|forest] [--row N]
//             [--explainer treeshap|kernelshap|lime|mcshapley|anchors|
//                          counterfactual|all]
//             [--serve-demo] [--swap-demo]
//             [--registry-dir <dir>] [--model-version N]
//             [--threads N] [--cache-size N]
//             [--metrics] [--metrics-json <path>]
//             [--trace-json <path>]
//             [--monitor-port N] [--monitor-period-ms N]
//             [--monitor-snapshot <path>] [--monitor-scrape <path>]
//             [--audit-dir <dir>]
//   xaidb_cli --audit-query <dir>
//   xaidb_cli --audit-replay <dir> [--registry-dir <dir>] [--model-version N]
//
// The CSV format is WriteCsv's: header row, last column = binary target.
// With no arguments the tool writes a demo CSV to /tmp and explains it —
// so `xaidb_cli` alone always produces output.
//
// --serve-demo runs the async ExplanationService instead of a one-shot
// explanation: a burst of requests (with repeated hot rows) is submitted
// to the bounded queue, the dispatcher coalesces compatible requests into
// single ExplainBatch sweeps, and the tool reports the coalescing stats.
// Attributions are bit-identical to serving each request alone.
//
// --registry-dir points at a versioned model registry (created if
// absent). A freshly-trained model is registered as the next version of
// its kind; --model-version N instead loads version N of --model from the
// registry and skips training. All other modes then run against the
// registry-backed handle.
//
// --swap-demo demonstrates the zero-downtime hot-swap: it registers two
// GBDT versions (30 and 60 boosting rounds) in the registry, serves a
// burst against v1, swaps to v2 while requests are still in flight —
// warming v2's caches behind v1 before the atomic flip — then serves a
// second burst and reports per-version counts and latency. Honors the
// monitor flags, so a --monitor-scrape shows the serve.model_version
// gauge flipping.
//
// --metrics prints the library's internal counters and span timings
// (model evals, samples drawn, coalitions enumerated) after the run;
// --metrics-json writes the same data as JSON. Either flag — or the
// XAIDB_METRICS env var — turns instrumentation on.
//
// --trace-json turns on the flight recorder (like XAIDB_TRACE=1) and, at
// exit, writes every recorded event as Chrome trace-event JSON — open the
// file at https://ui.perfetto.dev to see the request timeline across the
// dispatcher and worker threads.
//
// --threads N caps the worker pool behind the batched explainer sweeps
// (overrides the XAIDB_THREADS env var; default = hardware concurrency).
// Attributions are bit-identical for every N at a fixed seed.
//
// --cache-size N sets the coalition-value memo cache capacity (overrides
// the XAIDB_CACHE env var; 0 disables). One-shot modes default to off;
// --serve-demo defaults to on — repeated hot rows then skip their model
// evaluations entirely. Caching never changes attribution bits; the
// evalengine.* counters in --metrics / --metrics-json show hits, misses
// and evictions.
//
// --monitor-port N turns on the continuous monitoring pipeline: a
// MetricsSampler thread snapshots the registry every --monitor-period-ms
// (default 200) into time series, an SloTracker evaluates burn rates on
// the serving latency/deadline objectives, and a Prometheus-text endpoint
// serves http://127.0.0.1:N/metrics (N=0 picks a free port, printed at
// startup) — `curl` it, or point a prometheus scrape_config at it. In
// --serve-demo the attribution-drift watchdog also rides the service's
// response observer and exports drift.* gauges. --monitor-snapshot writes
// the sampler's time series (plus any alerts) as JSON at exit for
// headless runs; --monitor-scrape performs one self-scrape of /metrics at
// exit and writes the exposition to a file (implies an ephemeral
// endpoint when --monitor-port is absent).
//
// --audit-dir <dir> (with --serve-demo / --swap-demo) writes every served
// explanation into the crash-safe audit ledger at <dir>: who asked (row
// hash + full instance), what answered (model name/version/fingerprint,
// explainer-config fingerprint), what came back (prediction, base value,
// top-k attributions) and how long it took. The ledger is flushed and
// summarized at exit.
//
// --audit-query <dir> reads a ledger standalone (no model, no CSV): a
// per-(model@version, explainer) digest table of counts, latency
// quantiles and mean top-attribution magnitude, plus a CRC integrity
// summary (corrupt frames / torn tail bytes).
//
// --audit-replay <dir> re-executes every logged request against the
// model named by --registry-dir/--model-version (or a freshly trained
// one) using the CLI's serving config, and reports the max absolute
// difference between replayed and logged values. Against the same model
// version and config the diff is exactly 0 — the grep-able
// "max_abs_diff 0" line is the determinism proof. Records whose model
// fingerprint differs from the loaded model are reported but skipped.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include <vector>

#include "cf/dice.h"
#include "common/thread_pool.h"
#include "data/csv.h"
#include "eval/drift.h"
#include "data/synthetic.h"
#include "feature/explainer_factory.h"
#include "feature/lime.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "model/registry.h"
#include "obs/audit.h"
#include "obs/obs.h"
#include "rule/anchors.h"
#include "serve/service.h"

using namespace xai;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

const char* KindName(uint8_t kind) {
  switch (static_cast<ExplainerKind>(kind)) {
    case ExplainerKind::kTreeShap: return "treeshap";
    case ExplainerKind::kKernelShap: return "kernelshap";
    case ExplainerKind::kLime: return "lime";
    case ExplainerKind::kMcShapley: return "mcshapley";
  }
  return "unknown";
}

/// --audit-query: standalone ledger inspection — per-(model@version, kind)
/// digests plus a CRC integrity summary. Needs neither model nor CSV.
int RunAuditQuery(const std::string& dir) {
  auto reader = obs::AuditReader::Open(dir);
  if (!reader.ok()) return Fail(reader.status());

  struct Digest {
    std::vector<double> total_ms;
    double queue_sum = 0.0, sweep_sum = 0.0, top1_sum = 0.0;
    uint64_t first_ms = 0, last_ms = 0;
  };
  std::map<std::string, Digest> by_key;
  obs::AuditScanStats scan;
  Status st = reader->ForEach(
      obs::AuditQuery{},
      [&](const obs::AuditRecord& r) {
        char key[320];
        std::snprintf(key, sizeof key, "%s@v%d %s", r.model_name.c_str(),
                      r.model_version, KindName(r.kind));
        Digest& d = by_key[key];
        d.total_ms.push_back(r.total_ms);
        d.queue_sum += r.queue_ms;
        d.sweep_sum += r.sweep_ms;
        if (!r.top_attr.empty()) d.top1_sum += std::fabs(r.top_attr[0].value);
        if (d.first_ms == 0 || r.unix_ms < d.first_ms) d.first_ms = r.unix_ms;
        d.last_ms = std::max(d.last_ms, r.unix_ms);
      },
      &scan);
  if (!st.ok()) return Fail(st);

  std::printf("audit-query: %s — %zu segments, %" PRIu64 " records, %" PRIu64
              " bytes\n",
              dir.c_str(), reader->segments().size(), scan.records,
              scan.bytes);
  std::printf("%-28s %8s %9s %9s %9s %11s\n", "model@version explainer",
              "count", "p50_ms", "p99_ms", "sweep_ms", "mean|top1|");
  for (const auto& [key, d] : by_key) {
    const double n = static_cast<double>(d.total_ms.size());
    std::printf("%-28s %8zu %9.3f %9.3f %9.3f %11.4f\n", key.c_str(),
                d.total_ms.size(), Quantile(d.total_ms, 0.50),
                Quantile(d.total_ms, 0.99), d.sweep_sum / n, d.top1_sum / n);
  }
  if (scan.corrupt_frames != 0 || scan.corrupt_segments != 0 ||
      scan.torn_tail_bytes != 0) {
    std::printf("audit-query: integrity — %" PRIu64 " corrupt frames, %" PRIu64
                " corrupt segments, %" PRIu64 " torn tail bytes\n",
                scan.corrupt_frames, scan.corrupt_segments,
                scan.torn_tail_bytes);
  } else {
    std::printf("audit-query: integrity — clean (every frame "
                "CRC-verified)\n");
  }
  return 0;
}

/// --audit-replay: re-executes every logged request against the loaded
/// model through a fresh ExplanationService and diffs the results against
/// the ledger. Same model version + serving config => max_abs_diff 0.
int RunAuditReplay(const std::string& dir, const ModelHandle& handle,
                   const Dataset& ds, const ExplainerConfig& config) {
  auto reader = obs::AuditReader::Open(dir);
  if (!reader.ok()) return Fail(reader.status());
  obs::AuditScanStats scan;
  auto records = reader->ReadAll(obs::AuditQuery{}, &scan);
  if (!records.ok()) return Fail(records.status());
  std::printf("audit-replay: %s — %zu records to replay against %s "
              "(fingerprint %016" PRIx64 ")\n",
              dir.c_str(), records->size(), handle.VersionedName().c_str(),
              handle.fingerprint());

  ExplanationServiceOptions sopts;
  sopts.config = config;
  ExplanationService service(handle, ds, sopts);

  // Identical (kind, budget, row) requests are deterministic, so each
  // distinct tuple is re-executed once and compared against every record
  // that logged it.
  std::map<std::tuple<uint8_t, int32_t, std::vector<double>>,
           FeatureAttribution> memo;
  size_t replayed = 0, skipped_model = 0;
  double max_abs_diff = 0.0;
  for (const obs::AuditRecord& rec : records.value()) {
    if (rec.model_fingerprint != handle.fingerprint()) {
      ++skipped_model;
      continue;
    }
    auto key = std::make_tuple(rec.kind, rec.budget, rec.instance);
    auto it = memo.find(key);
    if (it == memo.end()) {
      ExplanationRequest req;
      req.instance = rec.instance;
      req.kind = static_cast<ExplainerKind>(rec.kind);
      req.budget = rec.budget;
      Result<ExplanationResponse> r = service.Submit(std::move(req)).get();
      if (!r.ok()) return Fail(r.status());
      it = memo.emplace(std::move(key), std::move(r).value().attribution)
               .first;
    }
    const FeatureAttribution& fa = it->second;
    double d = std::fabs(fa.prediction - rec.prediction);
    d = std::max(d, std::fabs(fa.base_value - rec.base_value));
    for (const obs::AuditTopAttr& a : rec.top_attr) {
      // An out-of-range index means the model arity changed under the
      // ledger — count it as a full-scale divergence, not a crash.
      if (a.index < fa.values.size())
        d = std::max(d, std::fabs(fa.values[a.index] - a.value));
      else
        d = std::max(d, 1.0);
    }
    max_abs_diff = std::max(max_abs_diff, d);
    ++replayed;
  }
  service.Shutdown();

  std::printf("audit-replay: replayed %zu records (%zu unique sweeps, "
              "%zu skipped: different model fingerprint)\n",
              replayed, memo.size(), skipped_model);
  if (scan.corrupt_frames != 0 || scan.torn_tail_bytes != 0)
    std::printf("audit-replay: ledger had %" PRIu64 " corrupt frames, %" PRIu64
                " torn tail bytes\n",
                scan.corrupt_frames, scan.torn_tail_bytes);
  std::printf("audit-replay: max_abs_diff %g\n", max_abs_diff);
  if (replayed > 0 && max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: replayed attributions diverge from the ledger\n");
    return 1;
  }
  return 0;
}

/// Writes the flight-recorder buffers out when --trace-json was given.
int FlushTrace(const std::string& path) {
  if (path.empty()) return 0;
  Status st = obs::WriteTraceJson(path);
  if (!st.ok()) return Fail(st);
  std::printf("\ntrace written to %s (%llu events, %llu dropped) — open it "
              "at https://ui.perfetto.dev\n",
              path.c_str(),
              static_cast<unsigned long long>(obs::TraceEventCount()),
              static_cast<unsigned long long>(obs::TraceDroppedCount()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string model_kind = "gbdt";
  std::string explainer_kind = "treeshap";
  std::string metrics_json_path;
  std::string trace_json_path;
  bool print_metrics = false;
  bool serve_demo = false;
  bool swap_demo = false;
  std::string registry_dir;
  int model_version = 0;  // 0 = train fresh (and register if --registry-dir)
  size_t row = 0;
  long long cache_size = -1;  // -1 = not given; keep per-mode defaults
  long long monitor_port = -1;  // -1 = no endpoint
  long long monitor_period_ms = 200;
  std::string monitor_snapshot_path;
  std::string monitor_scrape_path;
  std::string audit_dir;
  std::string audit_query_dir;
  std::string audit_replay_dir;
  TrainOptions train_opts;  // --train-method / --max-bins (default: hist)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model_kind = argv[++i];
    } else if (arg == "--explainer" && i + 1 < argc) {
      explainer_kind = argv[++i];
    } else if (arg == "--row" && i + 1 < argc) {
      row = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--serve-demo") {
      serve_demo = true;
    } else if (arg == "--swap-demo") {
      swap_demo = true;
    } else if (arg == "--registry-dir" && i + 1 < argc) {
      registry_dir = argv[++i];
    } else if (arg == "--model-version" && i + 1 < argc) {
      model_version = static_cast<int>(std::atoll(argv[++i]));
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      SetGlobalThreads(static_cast<size_t>(std::atoll(argv[++i])));
    } else if (arg == "--cache-size" && i + 1 < argc) {
      cache_size = std::atoll(argv[++i]);
      if (cache_size < 0) cache_size = 0;
    } else if (arg == "--monitor-port" && i + 1 < argc) {
      monitor_port = std::atoll(argv[++i]);
    } else if (arg == "--monitor-period-ms" && i + 1 < argc) {
      monitor_period_ms = std::max(1LL, std::atoll(argv[++i]));
    } else if (arg == "--monitor-snapshot" && i + 1 < argc) {
      monitor_snapshot_path = argv[++i];
    } else if (arg == "--monitor-scrape" && i + 1 < argc) {
      monitor_scrape_path = argv[++i];
    } else if (arg == "--audit-dir" && i + 1 < argc) {
      audit_dir = argv[++i];
    } else if (arg == "--audit-query" && i + 1 < argc) {
      audit_query_dir = argv[++i];
    } else if (arg == "--audit-replay" && i + 1 < argc) {
      audit_replay_dir = argv[++i];
    } else if (arg == "--train-method" && i + 1 < argc) {
      const std::string method = argv[++i];
      if (method == "exact") {
        train_opts.method = TrainMethod::kExact;
      } else if (method == "hist") {
        train_opts.method = TrainMethod::kHist;
      } else {
        std::fprintf(stderr, "error: unknown --train-method '%s'\n",
                     method.c_str());
        return 1;
      }
    } else if (arg == "--max-bins" && i + 1 < argc) {
      train_opts.max_bins = static_cast<int>(
          std::clamp(std::atoll(argv[++i]), 2LL, 65536LL));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s <data.csv> [--model gbdt|logistic|forest] "
                  "[--row N] [--explainer "
                  "treeshap|kernelshap|lime|mcshapley|anchors|"
                  "counterfactual|all] [--serve-demo] [--swap-demo] "
                  "[--registry-dir <dir>] [--model-version N] "
                  "[--train-method hist|exact] [--max-bins N] "
                  "[--threads N] [--cache-size N] "
                  "[--metrics] [--metrics-json <path>] "
                  "[--trace-json <path>] "
                  "[--monitor-port N] [--monitor-period-ms N] "
                  "[--monitor-snapshot <path>] [--monitor-scrape <path>] "
                  "[--audit-dir <dir>] | "
                  "--audit-query <dir> | "
                  "--audit-replay <dir> [--registry-dir <dir>] "
                  "[--model-version N]\n",
                  argv[0]);
      return 0;
    } else if (csv_path.empty()) {
      csv_path = arg;
    }
  }
  // Ledger inspection is fully standalone: no model, no CSV, no monitor.
  if (!audit_query_dir.empty()) return RunAuditQuery(audit_query_dir);

  // A scrape file without an explicit port still needs an endpoint to
  // scrape — use an ephemeral one.
  if (!monitor_scrape_path.empty() && monitor_port < 0) monitor_port = 0;
  const bool monitor_on = monitor_port >= 0 || !monitor_snapshot_path.empty();

  if (print_metrics || !metrics_json_path.empty() || monitor_on)
    obs::SetEnabled(true);
  if (!trace_json_path.empty()) obs::SetTraceEnabled(true);

  // Continuous monitoring: sampler thread + SLO burn-rate tracker, plus
  // the Prometheus endpoint when a port was requested. Declared SLOs are
  // demo-scale production objectives over the serving-path metrics.
  std::unique_ptr<obs::MetricsSampler> sampler;
  std::unique_ptr<obs::SloTracker> slo;
  std::unique_ptr<obs::MonitorServer> monitor_server;
  if (monitor_on) {
    sampler = std::make_unique<obs::MetricsSampler>(obs::MonitorOptions{
        std::chrono::milliseconds(monitor_period_ms), 512});
    std::vector<obs::SloObjective> objectives;
    // <=1% of requests may wait more than 50ms in the queue...
    objectives.push_back({"queue_wait", "serve.queue_wait_us", 50e3, "", "",
                          0.01});
    // ...and <=5% may ride a sweep longer than 500ms.
    objectives.push_back({"sweep", "serve.sweep_us", 500e3, "", "", 0.05});
    // Deadline misses are an error-budget ratio over everything batched.
    objectives.push_back({"deadline_miss", "", 0.0, "serve.expired",
                          "serve.batched_requests", 0.001});
    slo = std::make_unique<obs::SloTracker>(std::move(objectives));
    sampler->AddTickObserver(slo->Observer());
    sampler->Start();
    if (monitor_port >= 0) {
      monitor_server = std::make_unique<obs::MonitorServer>(sampler.get());
      Status st = monitor_server->Start(static_cast<int>(monitor_port));
      if (!st.ok()) return Fail(st);
      std::printf("monitor: serving Prometheus text format on "
                  "http://127.0.0.1:%d/metrics (also /json, /series)\n",
                  monitor_server->port());
    }
  }

  // Shared exit path for both serve-demo and one-shot modes: flush the
  // last sampler window, self-scrape the endpoint if asked, persist the
  // time-series snapshot, and report any alerts the run fired.
  auto finish_monitor = [&]() -> int {
    if (!monitor_on) return 0;
    sampler->TickNow();  // capture the tail window before exporting
    if (!monitor_scrape_path.empty()) {
      Result<std::string> scrape =
          obs::HttpGetLocal(monitor_server->port(), "/metrics");
      if (!scrape.ok()) return Fail(scrape.status());
      std::FILE* f = std::fopen(monitor_scrape_path.c_str(), "w");
      if (f == nullptr || std::fwrite(scrape.value().data(), 1,
                                      scrape.value().size(),
                                      f) != scrape.value().size()) {
        if (f != nullptr) std::fclose(f);
        return Fail(Status::IOError("cannot write scrape file: " +
                                    monitor_scrape_path));
      }
      std::fclose(f);
      std::printf("monitor: wrote /metrics scrape to %s\n",
                  monitor_scrape_path.c_str());
    }
    if (!monitor_snapshot_path.empty()) {
      Status st =
          obs::WriteSnapshotJson(*sampler, monitor_snapshot_path, slo.get());
      if (!st.ok()) return Fail(st);
      std::printf("monitor: wrote time-series snapshot to %s (%llu ticks)\n",
                  monitor_snapshot_path.c_str(),
                  static_cast<unsigned long long>(sampler->ticks()));
    }
    for (const obs::Alert& a : slo->alerts())
      std::printf("monitor: ALERT [%s] objective=%s window=%s "
                  "burn_rate=%.2f\n",
                  a.severity.c_str(), a.objective.c_str(), a.window.c_str(),
                  a.burn_rate);
    if (monitor_server) monitor_server->Stop();
    sampler->Stop();
    return 0;
  };
  // One-shot modes route coalition values through the process-global memo
  // cache (off unless --cache-size / XAIDB_CACHE says otherwise); the
  // serve demo uses the service's per-key caches instead, below.
  if (cache_size >= 0)
    SetGlobalEvalCacheCapacity(static_cast<size_t>(cache_size));

  if (csv_path.empty()) {
    csv_path = "/tmp/xaidb_demo.csv";
    std::printf("no CSV given; writing a demo loan dataset to %s\n\n",
                csv_path.c_str());
    Status st = WriteCsv(MakeLoanDataset(1500), csv_path);
    if (!st.ok()) return Fail(st);
  }

  auto data = ReadCsv(csv_path);
  if (!data.ok()) return Fail(data.status());
  Dataset ds = std::move(data).value();
  std::printf("loaded %zu rows x %zu features from %s\n", ds.n(), ds.d(),
              csv_path.c_str());
  if (row >= ds.n()) {
    std::fprintf(stderr, "error: --row %zu out of range\n", row);
    return 1;
  }

  if (swap_demo) {
    // Zero-downtime hot-swap, end to end: two registered GBDT versions,
    // live traffic through the flip, per-version accounting after.
    if (registry_dir.empty()) registry_dir = "/tmp/xaidb_registry_demo";
    auto reg = ModelRegistry::OpenOrCreate(registry_dir);
    if (!reg.ok()) return Fail(reg.status());
    ModelRegistry registry = std::move(reg).value();
    auto m1 = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
    if (!m1.ok()) return Fail(m1.status());
    auto m2 = GradientBoostedTrees::Fit(ds, {.num_rounds = 60});
    if (!m2.ok()) return Fail(m2.status());
    auto a1 = registry.Add(*m1, "gbdt");
    if (!a1.ok()) return Fail(a1.status());
    auto a2 = registry.Add(*m2, "gbdt");
    if (!a2.ok()) return Fail(a2.status());
    auto h1 = registry.Get("gbdt", a1->version);
    if (!h1.ok()) return Fail(h1.status());
    auto h2 = registry.Get("gbdt", a2->version);
    if (!h2.ok()) return Fail(h2.status());
    std::printf("registry %s: registered %s (30 rounds) and %s (60 "
                "rounds)\n",
                registry.dir().c_str(), h1->VersionedName().c_str(),
                h2->VersionedName().c_str());

    ExplanationServiceOptions sopts;
    ExplainerConfig sconfig;
    sconfig.kernel_shap.max_background = 20;
    sopts.config = sconfig;
    if (cache_size >= 0) sopts.cache_size = static_cast<size_t>(cache_size);
    std::shared_ptr<obs::AuditLog> audit;
    if (!audit_dir.empty()) {
      auto a = obs::AuditLog::Open(audit_dir);
      if (!a.ok()) return Fail(a.status());
      audit = std::move(a).value();
      sopts.audit = audit;
      std::printf("audit: writing every served explanation to the ledger "
                  "at %s\n",
                  audit_dir.c_str());
    }
    ExplanationService service(*h1, ds, sopts);

    const size_t kPhase = 40;
    const size_t kDistinct = std::min<size_t>(8, ds.n());
    auto submit_burst = [&](std::vector<std::future<
                                Result<ExplanationResponse>>>* futures) {
      for (size_t i = 0; i < kPhase; ++i) {
        ExplanationRequest req;
        req.instance = ds.row(i % kDistinct);
        req.kind = ExplainerKind::kKernelShap;
        futures->push_back(service.Submit(std::move(req)));
      }
    };
    std::vector<std::future<Result<ExplanationResponse>>> futures;
    // Phase 1 is queued against v1; the swap lands while those requests
    // are still being served. They finish on v1 — the handle each one
    // captured at Submit — while the flip warms and switches to v2.
    submit_burst(&futures);
    auto report = service.SwapModel(*h2, {.warm_rows = 32});
    if (!report.ok()) return Fail(report.status());
    std::printf("swap %s -> %s: warmed %zu families / %zu rows in %.1f "
                "ms\n",
                report->from.c_str(), report->to.c_str(),
                report->warmed_families, report->warmed_rows,
                report->warm_ms);
    submit_burst(&futures);

    size_t v1_count = 0, v2_count = 0, failures = 0;
    std::vector<double> total_ms;
    for (auto& f : futures) {
      const Result<ExplanationResponse> r = f.get();
      if (!r.ok()) {
        ++failures;
        continue;
      }
      total_ms.push_back(r->breakdown.total_ms);
      if (r->breakdown.model_version == h1->version()) ++v1_count;
      if (r->breakdown.model_version == h2->version()) ++v2_count;
    }
    service.Shutdown();
    if (audit) {
      audit->Flush();
      const obs::AuditLogStats as = audit->stats();
      std::printf("audit: %" PRIu64 " records (%" PRIu64 " dropped) in %"
                  PRIu64 " segments, %" PRIu64 " bytes, %" PRIu64
                  " fsyncs — records span both versions; --audit-query "
                  "shows the per-version split\n",
                  as.written, as.dropped, as.segments, as.bytes, as.fsyncs);
    }
    const ExplanationServiceStats stats = service.stats();
    if (Status st = registry.SetServing("gbdt", h2->version()); !st.ok())
      return Fail(st);
    std::printf("swap-demo: %zu requests served on %s, %zu on %s, %zu "
                "failed/dropped\n",
                v1_count, h1->VersionedName().c_str(), v2_count,
                h2->VersionedName().c_str(), failures);
    std::printf("  latency total_ms: p50=%.3f p99=%.3f   swaps=%llu  "
                "serving version=%d\n",
                Quantile(total_ms, 0.50), Quantile(total_ms, 0.99),
                static_cast<unsigned long long>(stats.swaps),
                stats.model_version);
    std::printf("  registry now serves %s by default\n",
                h2->VersionedName().c_str());
    if (failures != 0) return 1;
    if (const int rc = finish_monitor(); rc != 0) return rc;
    if (obs::Enabled()) {
      if (print_metrics) std::printf("\n%s", obs::MetricsToTable().c_str());
      if (!metrics_json_path.empty()) {
        Status st = obs::WriteMetricsJson(metrics_json_path);
        if (!st.ok()) return Fail(st);
        std::printf("\nmetrics written to %s\n", metrics_json_path.c_str());
      }
    }
    return FlushTrace(trace_json_path);
  }

  // Model source: a registry-backed versioned handle, or a borrowed
  // handle around a freshly-trained in-memory model.
  ModelRegistry registry;
  if (!registry_dir.empty()) {
    auto reg = ModelRegistry::OpenOrCreate(registry_dir);
    if (!reg.ok()) return Fail(reg.status());
    registry = std::move(reg).value();
  }

  std::unique_ptr<Model> model;  // owned only when trained locally
  ModelHandle handle;
  if (registry.valid() && model_version > 0) {
    auto h = registry.Get(model_kind, model_version);
    if (!h.ok()) return Fail(h.status());
    handle = std::move(h).value();
    std::printf("registry: loaded %s (kind=%s) from %s\n",
                handle.VersionedName().c_str(), handle.kind().c_str(),
                registry.dir().c_str());
  } else {
    obs::Stopwatch fit_watch;
    if (model_kind == "gbdt") {
      GbdtOptions gopts{.num_rounds = 60};
      gopts.tree.train = train_opts;
      auto m = GradientBoostedTrees::Fit(ds, gopts);
      if (!m.ok()) return Fail(m.status());
      model = std::make_unique<GradientBoostedTrees>(std::move(*m));
    } else if (model_kind == "logistic") {
      auto m = LogisticRegression::Fit(ds, {.lambda = 1e-3});
      if (!m.ok()) return Fail(m.status());
      model = std::make_unique<LogisticRegression>(std::move(*m));
    } else if (model_kind == "forest") {
      RandomForestOptions fopts{.num_trees = 60};
      fopts.tree.train = train_opts;
      auto m = RandomForest::Fit(ds, fopts);
      if (!m.ok()) return Fail(m.status());
      model = std::make_unique<RandomForest>(std::move(*m));
    } else {
      std::fprintf(stderr, "error: unknown model '%s'\n", model_kind.c_str());
      return 1;
    }
    if (model_kind == "gbdt" || model_kind == "forest") {
      std::printf("train: method=%s max_bins=%d fit_ms=%.1f\n",
                  train_opts.method == TrainMethod::kHist ? "hist" : "exact",
                  train_opts.max_bins, fit_watch.ElapsedMs());
    }
    if (registry.valid()) {
      // Persist the fresh fit as the next version and serve the
      // registry-loaded copy, so what runs is exactly what's on disk.
      auto art = registry.Add(*model, model_kind);
      if (!art.ok()) return Fail(art.status());
      auto h = registry.Get(model_kind, art->version);
      if (!h.ok()) return Fail(h.status());
      handle = std::move(h).value();
      model.reset();
      std::printf("registry: registered %s -> %s/%s\n",
                  handle.VersionedName().c_str(), registry.dir().c_str(),
                  art->path.c_str());
    } else {
      handle = ModelHandle::Borrow(*model, model_kind, 1);
    }
  }
  const Model& mdl = handle.model();
  std::printf("model=%s  train accuracy=%.3f  AUC=%.3f\n\n",
              model_kind.c_str(), EvaluateAccuracy(mdl, ds),
              EvaluateAuc(mdl, ds));

  // The per-family explainer options every mode below shares — one config
  // object, forwarded to the factory (and to the service in --serve-demo).
  ExplainerConfig config;
  config.kernel_shap.max_background = 50;
  config.lime.num_samples = 3000;

  if (!audit_replay_dir.empty())
    return RunAuditReplay(audit_replay_dir, handle, ds, config);

  if (serve_demo) {
    // Submit a burst with hot-row repetition: 60 requests over 12 distinct
    // rows, two explainer families. The dispatcher coalesces compatible
    // requests into single ExplainBatch sweeps and answers duplicate
    // instances from one computation — attributions stay bit-identical to
    // serving each request alone.
    ExplanationServiceOptions sopts;
    sopts.config = config;
    // Default on: the demo's hot-row repetition is exactly the workload
    // the coalition-value cache exists for.
    if (cache_size >= 0) sopts.cache_size = static_cast<size_t>(cache_size);
    std::shared_ptr<obs::AuditLog> audit;
    if (!audit_dir.empty()) {
      auto a = obs::AuditLog::Open(audit_dir);
      if (!a.ok()) return Fail(a.status());
      audit = std::move(a).value();
      sopts.audit = audit;
      std::printf("audit: writing every served explanation to the ledger "
                  "at %s\n",
                  audit_dir.c_str());
    }
    // With monitoring on, the drift watchdog rides the response observer:
    // every served attribution feeds its sliding mean-|phi| windows, and
    // drift.* gauges flow into the sampler and the scrape endpoint.
    std::unique_ptr<AttributionDriftWatchdog> watchdog;
    if (monitor_on) {
      DriftWatchdogOptions dopts;
      dopts.reference_window = 24;
      dopts.window = 24;
      dopts.min_window = 12;
      dopts.check_every = 4;
      watchdog = std::make_unique<AttributionDriftWatchdog>(dopts);
      sopts.response_observer = [&watchdog](const ExplanationRequest&,
                                            const ExplanationResponse& r) {
        watchdog->Observe(r.attribution);
      };
    }
    ExplanationService service(handle, ds, sopts);
    const size_t kRequests = 60;
    const size_t kDistinct = std::min<size_t>(12, ds.n());
    std::vector<std::future<Result<ExplanationResponse>>> futures;
    for (size_t i = 0; i < kRequests; ++i) {
      ExplanationRequest req;
      req.instance = ds.row(i % kDistinct);
      req.kind = i % 3 == 0 ? ExplainerKind::kMcShapley
                            : ExplainerKind::kKernelShap;
      futures.push_back(service.Submit(std::move(req)));
    }
    std::vector<double> queue_ms, sweep_ms, total_ms;
    size_t max_batch = 0;
    for (auto& f : futures) {
      const Result<ExplanationResponse> r = f.get();
      if (!r.ok()) return Fail(r.status());
      const ExplanationBreakdown& b = r.value().breakdown;
      queue_ms.push_back(b.queue_ms);
      sweep_ms.push_back(b.sweep_ms);
      total_ms.push_back(b.total_ms);
      max_batch = std::max(max_batch, b.coalesce_batch_size);
    }
    const ExplanationServiceStats stats = service.stats();
    std::printf("serve-demo: %llu requests served in %llu coalesced "
                "batches (%llu answered from a duplicate's computation)\n",
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.coalesced_duplicates));
    // Where each request's time went, from the per-request breakdowns the
    // service now returns alongside every attribution.
    std::printf("per-request breakdown (ms):\n");
    std::printf("  %-12s %8s %8s\n", "stage", "p50", "p99");
    std::printf("  %-12s %8.3f %8.3f\n", "queue_wait",
                Quantile(queue_ms, 0.50), Quantile(queue_ms, 0.99));
    std::printf("  %-12s %8.3f %8.3f\n", "sweep", Quantile(sweep_ms, 0.50),
                Quantile(sweep_ms, 0.99));
    std::printf("  %-12s %8.3f %8.3f\n", "total", Quantile(total_ms, 0.50),
                Quantile(total_ms, 0.99));
    std::printf("  largest coalesced batch: %zu requests\n", max_batch);
    std::printf("  queue depth at shutdown: %llu\n",
                static_cast<unsigned long long>(stats.queue_depth));
    if (stats.cache_hits + stats.cache_misses > 0) {
      std::printf("eval cache: %llu hits / %llu misses (%.1f%% hit rate), "
                  "%llu entries, %llu evictions\n",
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses),
                  100.0 * static_cast<double>(stats.cache_hits) /
                      static_cast<double>(stats.cache_hits +
                                          stats.cache_misses),
                  static_cast<unsigned long long>(stats.cache_entries),
                  static_cast<unsigned long long>(stats.cache_evictions));
    }
    service.Shutdown();
    if (audit) {
      // Drain + fsync before the monitor self-scrape so the
      // xaidb_audit_* counters in the exposition cover the whole burst.
      audit->Flush();
      const obs::AuditLogStats as = audit->stats();
      std::printf("audit: %" PRIu64 " records (%" PRIu64 " dropped) in %"
                  PRIu64 " segments, %" PRIu64 " bytes, %" PRIu64
                  " fsyncs\n",
                  as.written, as.dropped, as.segments, as.bytes, as.fsyncs);
    }
    if (watchdog) {
      const DriftReport dr = watchdog->Report();
      std::printf("drift watchdog: %llu responses observed, reference %s, "
                  "L1 shift %.4f, PSI %.4f%s\n",
                  static_cast<unsigned long long>(dr.observed),
                  dr.reference_pinned ? "pinned" : "not pinned", dr.l1,
                  dr.psi, dr.alerting ? "  ** DRIFT ALERT **" : "");
    }
    if (const int rc = finish_monitor(); rc != 0) return rc;
    if (obs::Enabled()) {
      if (print_metrics) std::printf("\n%s", obs::MetricsToTable().c_str());
      if (!metrics_json_path.empty()) {
        Status st = obs::WriteMetricsJson(metrics_json_path);
        if (!st.ok()) return Fail(st);
        std::printf("\nmetrics written to %s\n", metrics_json_path.c_str());
      }
    }
    return FlushTrace(trace_json_path);
  }

  const std::vector<double> x = ds.row(row);
  std::printf("explaining row %zu (prediction = %.3f):\n", row,
              mdl.Predict(x));
  for (size_t j = 0; j < ds.d(); ++j)
    std::printf("  %s\n", ds.schema().FormatValue(j, x[j]).c_str());
  std::printf("\n");

  auto run_one = [&](const std::string& kind) -> int {
    // The four attribution families all go through the shared factory;
    // anchors / counterfactuals return different explanation types and
    // keep their bespoke paths.
    if (auto parsed = ParseExplainerKind(kind); parsed.ok()) {
      auto explainer = MakeExplainer(*parsed, handle, ds, config);
      if (!explainer.ok()) return Fail(explainer.status());
      auto attr = (*explainer)->Explain(x);
      if (!attr.ok()) return Fail(attr.status());
      switch (*parsed) {
        case ExplainerKind::kTreeShap:
          std::printf("TreeSHAP (log-odds units):\n%s",
                      attr->ToString().c_str());
          break;
        case ExplainerKind::kKernelShap:
          std::printf("KernelSHAP:\n%s", attr->ToString().c_str());
          break;
        case ExplainerKind::kLime: {
          const auto* lime =
              dynamic_cast<const LimeExplainer*>(explainer->get());
          std::printf("LIME (local R^2 = %.3f):\n%s",
                      lime ? lime->last_local_r2() : 0.0,
                      attr->ToString().c_str());
          break;
        }
        case ExplainerKind::kMcShapley:
          std::printf("MC-Shapley (%d permutations, marginal game):\n%s",
                      config.mc_shapley.num_permutations,
                      attr->ToString().c_str());
          break;
      }
    } else if (kind == "anchors") {
      AnchorsExplainer explainer(mdl, ds, {});
      auto rule = explainer.Explain(x);
      if (!rule.ok()) return Fail(rule.status());
      std::printf("Anchor:\n%s\n", rule->ToString(ds.schema()).c_str());
    } else if (kind == "counterfactual") {
      FeatureSpace space = FeatureSpace::FromDataset(ds);
      const int desired = mdl.Predict(x) >= 0.5 ? 0 : 1;
      auto cfs = DiceCounterfactuals(mdl, space, x, desired,
                                     {.num_counterfactuals = 3});
      if (!cfs.ok()) return Fail(cfs.status());
      std::printf("counterfactuals toward class %d:\n%s", desired,
                  cfs->ToString(ds.schema(), x).c_str());
    } else {
      std::fprintf(stderr, "error: unknown explainer '%s'\n", kind.c_str());
      return 1;
    }
    return 0;
  };

  if (explainer_kind == "all") {
    // One instrumented pass over every explainer family — with
    // --metrics-json this produces a single JSON covering KernelSHAP,
    // LIME, TreeSHAP, MC-Shapley and a counterfactual search.
    for (const char* kind :
         {"treeshap", "kernelshap", "lime", "mcshapley", "counterfactual"}) {
      // TreeSHAP needs a tree model; the factory would reject logistic.
      if (std::string(kind) == "treeshap" && model_kind == "logistic")
        continue;
      std::printf("--- %s ---\n", kind);
      const int rc = run_one(kind);
      if (rc != 0) return rc;
      std::printf("\n");
    }
  } else {
    const int rc = run_one(explainer_kind);
    if (rc != 0) return rc;
  }

  if (std::shared_ptr<CoalitionValueCache> cache = GlobalEvalCache()) {
    const EvalCacheStats cs = cache->stats();
    std::printf("\neval cache (capacity %zu): %llu hits / %llu misses "
                "(%.1f%% hit rate), %llu entries, %llu evictions\n",
                cache->capacity(),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                100.0 * cs.HitRate(),
                static_cast<unsigned long long>(cs.entries),
                static_cast<unsigned long long>(cs.evictions));
  }

  if (const int rc = finish_monitor(); rc != 0) return rc;
  if (obs::Enabled()) {
    if (print_metrics) std::printf("\n%s", obs::MetricsToTable().c_str());
    if (!metrics_json_path.empty()) {
      Status st = obs::WriteMetricsJson(metrics_json_path);
      if (!st.ok()) return Fail(st);
      std::printf("\nmetrics written to %s\n", metrics_json_path.c_str());
    }
  }
  return FlushTrace(trace_json_path);
}
