// Quickstart: train a gradient-boosted model on synthetic loan-approval
// data and explain one applicant's prediction with three feature-attribution
// methods from the tutorial's Section 2.1 — LIME (surrogate), KernelSHAP
// (model-agnostic Shapley) and TreeSHAP (model-specific, exact, fast) —
// then aggregate local TreeSHAP values into global feature importances.
#include <cassert>
#include <cstdio>

#include "data/synthetic.h"
#include "math/stats.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"
#include "model/metrics.h"

using namespace xai;

int main() {
  // 1. Data + model.
  Dataset ds = MakeLoanDataset(3000);
  Rng rng(1);
  auto [train, test] = ds.Split(0.8, &rng);
  auto gbdt = GradientBoostedTrees::Fit(train, {.num_rounds = 80});
  if (!gbdt.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 gbdt.status().ToString().c_str());
    return 1;
  }
  std::printf("model: GBDT, test AUC = %.3f, test accuracy = %.3f\n\n",
              EvaluateAuc(*gbdt, test), EvaluateAccuracy(*gbdt, test));

  // 2. Pick an applicant near the decision boundary.
  size_t who = 0;
  for (size_t i = 0; i < test.n(); ++i) {
    const double p = gbdt->Predict(test.row(i));
    if (p > 0.35 && p < 0.5) {
      who = i;
      break;
    }
  }
  const std::vector<double> x = test.row(who);
  std::printf("explaining applicant #%zu (P(approve) = %.3f):\n", who,
              gbdt->Predict(x));
  for (size_t j = 0; j < ds.d(); ++j)
    std::printf("  %s\n", ds.schema().FormatValue(j, x[j]).c_str());

  // 3. Three explanations of the same prediction.
  std::printf("\n--- LIME (local linear surrogate) ---\n");
  LimeExplainer lime(*gbdt, train, {.num_samples = 3000});
  auto lime_attr = lime.Explain(x);
  if (lime_attr.ok()) std::printf("%s", lime_attr->ToString().c_str());

  std::printf("\n--- KernelSHAP (model-agnostic Shapley) ---\n");
  KernelShapExplainer kshap(*gbdt, train, {.max_background = 50});
  auto kshap_attr = kshap.Explain(x);
  if (kshap_attr.ok()) std::printf("%s", kshap_attr->ToString().c_str());

  std::printf("\n--- TreeSHAP (exact, polynomial time; log-odds units) ---\n");
  TreeShapExplainer tshap(*gbdt, ds.schema());
  auto tshap_attr = tshap.Explain(x);
  if (tshap_attr.ok()) std::printf("%s", tshap_attr->ToString().c_str());

  // 4. Explaining several applicants at once. DEPRECATED: calling
  // Explain(row) in a loop — every iteration redoes instance-independent
  // work (KernelSHAP's coalition design, LIME's background statistics).
  // Use ExplainBatch, which amortizes that work and is guaranteed
  // bit-identical per row to the solo calls.
  std::printf("\n--- batched KernelSHAP over 3 applicants ---\n");
  Matrix batch(3, ds.d());
  for (size_t i = 0; i < 3; ++i) batch.SetRow(i, test.row(i));
  auto batch_attrs = kshap.ExplainBatch(batch);
  if (batch_attrs.ok()) {
    assert(batch_attrs->size() == batch.rows());
    for (size_t i = 0; i < batch_attrs->size(); ++i)
      std::printf("  applicant %zu: top feature %s\n", i,
                  (*batch_attrs)[i]
                      .feature_names[(*batch_attrs)[i].TopFeatures(1)[0]]
                      .c_str());
  }

  // 5. From local explanations to global understanding.
  std::printf("\n--- global importance (mean |SHAP| over 200 rows) ---\n");
  std::vector<double> imp = GlobalMeanAbsShap(&tshap, train, 200);
  for (size_t j : TopKByMagnitude(imp, imp.size()))
    std::printf("  %-18s %.4f\n", ds.schema().feature(j).name.c_str(),
                imp[j]);
  return 0;
}
