// Explanations for image classifiers (tutorial Section 2.4): a bar
// detector over tiny pixel grids, explained with (a) an integrated-
// gradients saliency map ("which pixels drove the score") and (b) an
// evidence counterfactual ("the minimal region whose removal flips the
// decision", Vermeire & Martens style). Rendered as ASCII so it runs in
// any terminal.
#include <cstdio>

#include "feature/integrated_gradients.h"
#include "image/evidence_counterfactual.h"
#include "image/grid_image.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"

using namespace xai;

int main() {
  ShapeImageCorpus corpus = MakeShapeImages(1500);
  Dataset ds = ToPixelDataset(corpus);
  auto model = LogisticRegression::Fit(ds, {.lambda = 1e-2});
  if (!model.ok()) return 1;
  std::printf("bar detector over 8x8 images: accuracy = %.3f\n\n",
              EvaluateAccuracy(*model, ds));

  // A confident bar image from the corpus.
  size_t who = 0;
  for (size_t i = 0; i < corpus.images.size(); ++i) {
    if (corpus.labels[i] > 0.5 &&
        model->Predict(corpus.images[i].pixels) > 0.9) {
      who = i;
      break;
    }
  }
  const GridImage& img = corpus.images[who];
  std::printf("input image (bar at column %zu), P(bar) = %.3f:\n%s\n",
              corpus.bar_position[who], model->Predict(img.pixels),
              img.ToAscii().c_str());

  IntegratedGradientsExplainer ig(*model, ds, {}, {.steps = 32});
  auto saliency = ig.Explain(img.pixels);
  if (saliency.ok()) {
    std::printf("integrated-gradients saliency ('#'/'+' = pushes toward "
                "'bar'):\n%s\n",
                RenderSignedMap(saliency->values, img.width, img.height)
                    .c_str());
  }

  auto region = FindEvidenceCounterfactual(*model, img, {.tile_size = 2});
  if (region.ok()) {
    std::printf("evidence counterfactual: erase %zu tile(s) -> P(bar) "
                "%.3f -> %.3f (%s)\n",
                region->tiles.size(), region->original_prediction,
                region->counterfactual_prediction,
                region->flipped ? "decision flipped" : "no flip found");
    std::vector<double> mask(region->pixel_mask.begin(),
                             region->pixel_mask.end());
    std::printf("erased region:\n%s",
                RenderSignedMap(mask, img.width, img.height).c_str());
  }
  return 0;
}
