// Explanations for unstructured data (tutorial Section 2.4): a sentiment
// classifier over bag-of-words reviews, explained word by word with LIME
// for text. The synthetic corpus has known sentiment-carrying words, so
// you can see the explainer recover exactly them.
#include <cstdio>

#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "text/lime_text.h"
#include "text/text_data.h"

using namespace xai;

int main() {
  TextCorpus corpus = MakeReviewCorpus(2000);
  Vocabulary vocab = Vocabulary::Build(corpus.documents, 3);
  BowVectorizer bow(vocab);
  Dataset ds = bow.ToDataset(corpus);
  Rng rng(1);
  auto [train, test] = ds.Split(0.8, &rng);
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  if (!model.ok()) return 1;
  std::printf("sentiment model over %zu-word vocabulary: "
              "test accuracy = %.3f\n\n",
              vocab.size(), EvaluateAccuracy(*model, test));

  LimeTextExplainer lime(*model, bow, {.num_samples = 1000});
  const char* reviews[] = {
      "the product arrived on time it was excellent and i love the color",
      "what a waste the box arrived broken and the store refused a refund",
      "i bought this for daily use the price was great but shipping was "
      "terrible",
  };
  for (const char* review : reviews) {
    std::printf("review: \"%s\"\n", review);
    auto attr = lime.Explain(review);
    if (!attr.ok()) {
      std::printf("  (%s)\n\n", attr.status().ToString().c_str());
      continue;
    }
    std::printf("  P(positive) = %.3f; word influences:\n",
                attr->prediction);
    for (size_t i : attr->TopWords(5)) {
      std::printf("    %-12s %+.4f %s\n", attr->words[i].c_str(),
                  attr->weights[i],
                  attr->weights[i] > 0 ? "(pushes positive)"
                                       : "(pushes negative)");
    }
    std::printf("\n");
  }
  return 0;
}
