// Rule-based explanations (tutorial Section 2.2): explain a hiring
// classifier with (a) Anchors — a high-precision IF-THEN rule for one
// decision, (b) an interpretable decision set distilling the whole model,
// and (c) the data-management substrate itself: frequent itemsets and
// association rules mined from the discretized data (Apriori = FP-Growth).
#include <cstdio>

#include "data/synthetic.h"
#include "model/gbdt.h"
#include "model/metrics.h"
#include "rule/anchors.h"
#include "rule/decision_set.h"
#include "rule/itemset.h"

using namespace xai;

int main() {
  Dataset ds = MakeHiringDataset(2500);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 60});
  if (!model.ok()) return 1;
  std::printf("hiring model: accuracy = %.3f\n\n",
              EvaluateAccuracy(*model, ds));

  // (a) Anchors for one hired candidate.
  std::vector<double> candidate = {9.0, 8.0, 2.0, 1.0, 1.0};
  std::printf("candidate: ");
  for (size_t j = 0; j < ds.d(); ++j)
    std::printf("%s%s", ds.schema().FormatValue(j, candidate[j]).c_str(),
                j + 1 < ds.d() ? ", " : "\n");
  std::printf("model says: %s (p = %.3f)\n\n",
              model->Predict(candidate) >= 0.5 ? "HIRE" : "NO HIRE",
              model->Predict(candidate));

  AnchorsExplainer anchors(*model, ds, {.precision_threshold = 0.9});
  auto rule = anchors.Explain(candidate);
  if (rule.ok()) {
    std::printf("--- anchor (holds with precision %.2f, coverage %.2f) ---\n"
                "%s\n\n",
                rule->precision, rule->coverage,
                rule->ToString(ds.schema()).c_str());
  }

  // (b) Global decision-set surrogate of the model.
  std::printf("--- interpretable decision set (global surrogate) ---\n");
  auto dset = FitDecisionSet(ds, &*model, {.max_rules = 6});
  if (dset.ok()) {
    std::printf("%s", dset->ToString(ds.schema()).c_str());
    size_t agree = 0;
    for (size_t i = 0; i < ds.n(); ++i)
      if ((dset->Predict(ds.row(i)) >= 0.5) ==
          (model->Predict(ds.row(i)) >= 0.5))
        ++agree;
    std::printf("fidelity to the black box: %.3f\n\n",
                static_cast<double>(agree) / static_cast<double>(ds.n()));
  }

  // (c) The rule-mining substrate (Section 2.2.1).
  std::printf("--- association rules from the discretized data ---\n");
  Discretizer disc = Discretizer::Fit(ds, 3);
  auto tx = ToTransactions(ds, disc);
  auto apriori = AprioriMine(tx, tx.size() / 10, 3);
  auto fpgrowth = FpGrowthMine(tx, tx.size() / 10, 3);
  std::printf("frequent itemsets (support >= 10%%): apriori = %zu, "
              "fp-growth = %zu (must match)\n",
              apriori.size(), fpgrowth.size());
  auto rules = MineAssociationRules(tx, tx.size() / 10, 0.8, 3);
  std::printf("high-confidence association rules: %zu; e.g.\n",
              rules.size());
  for (size_t r = 0; r < std::min<size_t>(3, rules.size()); ++r) {
    const AssociationRule& ar = rules[r];
    std::printf("  {");
    for (size_t i = 0; i < ar.antecedent.size(); ++i) {
      std::printf("%s%s",
                  disc.BinLabel(ds.schema(), ItemFeature(ar.antecedent[i]),
                                static_cast<int>(ItemBin(ar.antecedent[i])))
                      .c_str(),
                  i + 1 < ar.antecedent.size() ? ", " : "");
    }
    std::printf("} -> %s  (conf %.2f, lift %.2f)\n",
                disc.BinLabel(ds.schema(), ItemFeature(ar.consequent),
                              static_cast<int>(ItemBin(ar.consequent)))
                    .c_str(),
                ar.confidence, ar.lift);
  }
  return 0;
}
