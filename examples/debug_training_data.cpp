// Training-data-based explanations (tutorial Section 2.3): inject label
// noise, then rank training points by Data Shapley (TMC), exact
// KNN-Shapley, leave-one-out and influence functions, and measure how many
// corrupted labels each method surfaces. Finishes with PrIU-style
// incremental repair: deleting the identified suspects without retraining
// from scratch.
#include <algorithm>
#include <cstdio>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "db/incremental.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "valuation/data_valuation.h"
#include "valuation/influence.h"

using namespace xai;

int main() {
  // 1. Clean data, then corrupt 15% of the training labels.
  Dataset train = MakeGaussianDataset(200, {.seed = 1, .dims = 4});
  Dataset validation = MakeGaussianDataset(600, {.seed = 2, .dims = 4});
  Rng rng(3);
  std::vector<size_t> corrupted = InjectLabelNoise(&train, 0.15, &rng);
  std::printf("injected %zu corrupted labels into %zu training points\n\n",
              corrupted.size(), train.n());

  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  if (!model.ok()) return 1;
  std::printf("model accuracy on validation: %.3f\n\n",
              EvaluateAccuracy(*model, validation));

  TrainEvalFn train_eval = [&](const Dataset& subset) {
    if (subset.n() < 5) return 0.5;
    auto m = LogisticRegression::Fit(subset, {.lambda = 1e-2, .max_iter = 15});
    return m.ok() ? EvaluateAccuracy(*m, validation) : 0.5;
  };

  const size_t inspect = corrupted.size();
  auto report = [&](const char* name, const std::vector<double>& values) {
    std::printf("  %-22s detection@%zu = %.2f\n", name, inspect,
                CorruptionDetectionRate(values, corrupted, inspect));
  };

  std::printf("fraction of corrupted points found when inspecting the %zu\n"
              "lowest-valued points (random baseline = %.2f):\n",
              inspect,
              static_cast<double>(inspect) / static_cast<double>(train.n()));

  // 2. Data Shapley (TMC Monte Carlo).
  report("TMC Data Shapley",
         TmcDataShapley(train, train_eval, {.num_permutations = 25}));

  // 3. Exact KNN-Shapley (closed form, no retraining).
  report("KNN-Shapley (exact)", ExactKnnShapley(train, validation, 5));

  // 4. Leave-one-out (n retrainings).
  report("Leave-one-out", LeaveOneOutValues(train, train_eval));

  // 5. Influence functions (no retraining at all). Removal of a harmful
  // point *decreases* validation loss, so its loss-delta-on-removal is
  // negative — which is exactly a low "value" under the convention the
  // other methods use.
  auto calc = InfluenceCalculator::Create(*model, train);
  if (calc.ok()) {
    report("Influence functions",
           calc->InfluenceOnValidationLoss(validation));
  }

  // 6. PrIU-style repair: drop the suspects flagged by KNN-Shapley and
  // refresh the model incrementally (2 warm Newton steps) instead of
  // retraining from scratch.
  std::vector<double> knn_values = ExactKnnShapley(train, validation, 5);
  std::vector<size_t> order(train.n());
  for (size_t i = 0; i < train.n(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return knn_values[a] < knn_values[b];
  });
  std::vector<size_t> suspects(order.begin(),
                               order.begin() + static_cast<long>(inspect));

  auto inc = IncrementalLogisticRegression::Fit(train, {.lambda = 1e-2});
  if (inc.ok()) {
    auto theta = inc->ThetaAfterRemoval(suspects, 2);
    if (theta.ok()) {
      auto repaired = LogisticRegression::FitFrom(
          train.RemoveRows(suspects).x(), train.RemoveRows(suspects).y(),
          *theta, {.lambda = 1e-2, .max_iter = 0});
      // Evaluate by hand with the refreshed parameters.
      LogisticRegression refreshed = *repaired;
      std::printf("\nafter deleting the %zu suspects (incremental refresh):"
                  " accuracy = %.3f\n",
                  suspects.size(), EvaluateAccuracy(refreshed, validation));
    }
  }
  return 0;
}
