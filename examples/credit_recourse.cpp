// Counterfactual explanations and algorithmic recourse (tutorial Section
// 2.1.4): a denied credit applicant asks "what would I have to change?"
// We answer with (a) DiCE-style diverse counterfactuals, (b) GeCo-style
// constrained counterfactuals that respect feasibility rules (age and
// gender immutable, education can only increase), (c) cost-minimal linear
// recourse, and (d) LEWIS-style necessity/sufficiency scores computed over
// a structural causal model of the credit domain.
#include <cstdio>

#include "causal/scm.h"
#include "cf/dice.h"
#include "cf/geco.h"
#include "cf/recourse.h"
#include "data/synthetic.h"
#include "feature/necessity_sufficiency.h"
#include "math/stats.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

using namespace xai;

int main() {
  Dataset ds = MakeLoanDataset(3000);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 60});
  auto logit = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  if (!gbdt.ok() || !logit.ok()) return 1;

  // A clearly denied applicant.
  size_t who = 0;
  double best = 1.0;
  for (size_t i = 0; i < ds.n(); ++i) {
    const double p = gbdt->Predict(ds.row(i));
    if (p < best && p > 0.1) {
      best = p;
      who = i;
    }
  }
  const std::vector<double> x = ds.row(who);
  std::printf("denied applicant (P(approve) = %.3f):\n", best);
  for (size_t j = 0; j < ds.d(); ++j)
    std::printf("  %s\n", ds.schema().FormatValue(j, x[j]).c_str());

  FeatureSpace space = FeatureSpace::FromDataset(ds);
  space.SetImmutable(0);  // age
  space.SetImmutable(6);  // gender
  space.SetImmutable(7);  // married

  std::printf("\n--- DiCE: diverse counterfactuals ---\n");
  auto dice = DiceCounterfactuals(*gbdt, space, x, 1,
                                  {.num_counterfactuals = 3});
  if (dice.ok()) std::printf("%s", dice->ToString(ds.schema(), x).c_str());

  std::printf("--- GeCo: constrained counterfactuals ---\n");
  std::vector<PlafConstraint> plaf = {
      PlafConstraint::Immutable(0, "age"),
      PlafConstraint::Immutable(6, "gender"),
      PlafConstraint::MonotoneIncrease(5, "education"),
  };
  auto geco = GecoCounterfactuals(*gbdt, space, x, 1, plaf, {});
  if (geco.ok()) std::printf("%s", geco->ToString(ds.schema(), x).c_str());

  std::printf("--- linear recourse (logistic surrogate of the lender) ---\n");
  auto action = LinearRecourse(*logit, space, x, {.target_probability = 0.6});
  if (action.ok()) std::printf("%s", action->ToString(ds.schema()).c_str());

  // --- necessity & sufficiency over a small causal model of the domain:
  // employment_years -> income -> debt; credit_score independent driver.
  std::printf("\n--- necessity/sufficiency of income (causal, LEWIS-style) ---\n");
  Dag dag;
  const size_t n_emp = *dag.AddNode("employment_years");
  const size_t n_inc = *dag.AddNode("income");
  const size_t n_debt = *dag.AddNode("debt");
  const size_t n_credit = *dag.AddNode("credit_score");
  (void)dag.AddEdge(n_emp, n_inc);
  (void)dag.AddEdge(n_inc, n_debt);
  Scm scm(std::move(dag));
  (void)scm.SetLinearEquation(n_emp, {}, 12.0, 8.0);
  (void)scm.SetLinearEquation(n_inc, {1.1}, 35.0, 12.0);
  (void)scm.SetLinearEquation(n_debt, {0.35}, 0.0, 10.0);
  (void)scm.SetLinearEquation(n_credit, {}, 620.0, 70.0);

  // A reduced model over the four causal features.
  auto credit_model =
      MakeLambdaModel(4, [&](const std::vector<double>& v) {
        // employment, income, debt, credit in causal-node order.
        const double logit_score = -3.4 + 0.06 * v[0] + 0.05 * v[1] -
                                   0.065 * v[2] + 0.018 * (v[3] - 560.0);
        return Sigmoid(logit_score);
      });
  NecessitySufficiency ns(credit_model, scm, {0, 1, 2, 3});
  // An approved individual.
  const std::vector<double> approved = {20.0, 75.0, 20.0, 720.0};
  auto nec = ns.NecessityScore(approved, {1}, 800);
  auto suf = ns.SufficiencyScore(approved, {1}, 400);
  if (nec.ok())
    std::printf("  necessity(income=75k) = %.3f  "
                "(P[flip | income re-drawn])\n", *nec);
  if (suf.ok())
    std::printf("  sufficiency(income=75k) = %.3f "
                "(P[approve | denied person given this income])\n", *suf);
  return 0;
}
