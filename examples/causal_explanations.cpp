// Causal explanation semantics side by side (tutorial Section 2.1.3):
// on a lending SCM where employment drives income which drives debt, the
// same prediction gets four different attributions — marginal (correlation
// -blind), conditional (correlation-aware), causal (interventional), and
// asymmetric (root-cause-seeking) — plus Shapley-flow edge credits that
// show *how* influence travels through the graph.
#include <cstdio>

#include "causal/scm.h"
#include "core/game.h"
#include "feature/causal_shapley.h"
#include "feature/shapley.h"
#include "feature/shapley_flow.h"
#include "math/stats.h"

using namespace xai;

int main() {
  // SCM: employment -> income -> debt; score = f(income, debt, credit).
  Dag dag;
  const size_t n_emp = *dag.AddNode("employment_years");
  const size_t n_inc = *dag.AddNode("income");
  const size_t n_debt = *dag.AddNode("debt");
  const size_t n_credit = *dag.AddNode("credit_score");
  (void)dag.AddEdge(n_emp, n_inc);
  (void)dag.AddEdge(n_inc, n_debt);
  Scm scm(std::move(dag));
  (void)scm.SetLinearEquation(n_emp, {}, 12.0, 6.0);
  (void)scm.SetLinearEquation(n_inc, {1.2}, 30.0, 8.0);
  (void)scm.SetLinearEquation(n_debt, {0.4}, 0.0, 6.0);
  (void)scm.SetLinearEquation(n_credit, {}, 650.0, 60.0);

  // The lender's score (linear in the three financial features; note it
  // does NOT look at employment directly).
  auto model = MakeLambdaModel(4, [](const std::vector<double>& v) {
    // v = [employment, income, debt, credit] in node order.
    return 0.05 * v[1] - 0.06 * v[2] + 0.01 * (v[3] - 650.0);
  });

  // A long-employed applicant (employment 25y -> high income -> some debt).
  const std::vector<double> x = {25.0, 60.0, 24.0, 700.0};
  std::printf("applicant: employment=25y income=60k debt=24k credit=700\n");
  std::printf("score f(x) = %.3f (model ignores employment directly!)\n\n",
              model.Predict(x));

  Rng rng(3);
  Matrix background = scm.SampleMatrix(4000, &rng);
  const std::vector<size_t> nodes = {n_emp, n_inc, n_debt, n_credit};

  auto print_phi = [&](const char* name, const std::vector<double>& phi) {
    std::printf("%-14s employment=%7.3f income=%7.3f debt=%7.3f "
                "credit=%7.3f  (sum=%.3f)\n",
                name, phi[0], phi[1], phi[2], phi[3],
                phi[0] + phi[1] + phi[2] + phi[3]);
  };

  {
    MarginalFeatureGame game(model, background, x, 400);
    auto phi = ExactShapley(game);
    if (phi.ok()) print_phi("marginal", *phi);
  }
  {
    auto game = ConditionalGaussianGame::Create(model, background, x, 256);
    if (game.ok()) {
      auto phi = ExactShapley(*game);
      if (phi.ok()) print_phi("conditional", *phi);
    }
  }
  {
    auto phi = CausalShapley(model, scm, nodes, x,
                             {.samples_per_eval = 4000, .seed = 7});
    if (phi.ok()) print_phi("causal", *phi);
  }
  {
    ScmInterventionalGame game(model, scm, nodes, x, 4000, 9);
    Rng arng(11);
    print_phi("asymmetric",
              AsymmetricShapley(game, scm.dag(), nodes, 80, &arng));
  }

  // Shapley flow: extend the SCM with an explicit score node so edge
  // credits into the sink are visible.
  std::printf("\nShapley-flow edge credits (baseline = SCM means):\n");
  Dag fdag;
  const size_t f_emp = *fdag.AddNode("employment");
  const size_t f_inc = *fdag.AddNode("income");
  const size_t f_debt = *fdag.AddNode("debt");
  const size_t f_credit = *fdag.AddNode("credit");
  const size_t f_score = *fdag.AddNode("score");
  (void)fdag.AddEdge(f_emp, f_inc);
  (void)fdag.AddEdge(f_inc, f_debt);
  (void)fdag.AddEdge(f_inc, f_score);
  (void)fdag.AddEdge(f_debt, f_score);
  (void)fdag.AddEdge(f_credit, f_score);
  Scm fscm(std::move(fdag));
  (void)fscm.SetLinearEquation(f_emp, {}, 12.0, 6.0);
  (void)fscm.SetLinearEquation(f_inc, {1.2}, 30.0, 8.0);
  (void)fscm.SetLinearEquation(f_debt, {0.4}, 0.0, 6.0);
  (void)fscm.SetLinearEquation(f_credit, {}, 650.0, 60.0);
  // Parents of score are [income, debt, credit] in edge insertion order.
  (void)fscm.SetLinearEquation(f_score, {0.05, -0.06, 0.01}, -6.5, 0.0);

  const std::vector<double> baseline = {12.0, 44.4, 17.76, 650.0,
                                        0.05 * 44.4 - 0.06 * 17.76 - 6.5 +
                                            6.5};
  const std::vector<double> instance = {25.0, 60.0, 24.0, 700.0,
                                        0.05 * 60 - 0.06 * 24 +
                                            0.01 * 50.0};
  auto flow = LinearShapleyFlow(fscm, f_score, baseline, instance);
  if (flow.ok()) {
    for (const auto& [edge, credit] : flow->edge_credit) {
      std::printf("  %-12s -> %-8s : %7.3f\n",
                  fscm.dag().name(edge.first).c_str(),
                  fscm.dag().name(edge.second).c_str(), credit);
    }
    std::printf("  flow into score: %.3f (= f(x) - f(baseline))\n",
                flow->InFlow(f_score));
  }
  std::printf("\nreading: marginal hides employment entirely; causal "
              "credits it for its downstream income effect; asymmetric "
              "pushes nearly all credit to the root cause; the flow view "
              "shows income's credit splitting between its direct path "
              "and the debt side-effect.\n");
  return 0;
}
