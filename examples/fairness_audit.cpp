// Bias identification end to end (tutorial Section 1, motivation (3)):
// audit a lender three ways — associational group fairness, attribution-
// based localization (whose SHAP importance points at the sensitive
// feature), causal interventional fairness over an SCM — and finish with
// the database side: a GROUP BY query whose apparent bias reverses under
// confounder adjustment (Simpson's paradox, HypDB-style).
#include <cstdio>

#include "data/synthetic.h"
#include "db/bias_explain.h"
#include "eval/fairness.h"
#include "feature/tree_shap.h"
#include "math/stats.h"
#include "model/gbdt.h"

using namespace xai;

int main() {
  const size_t kGender = 6;
  std::printf("=== 1. group fairness + SHAP localization ===\n");
  std::printf("%-14s %12s %14s %12s\n", "lender", "parity_gap",
              "shap(gender)", "gender_rank");
  for (double bias : {0.0, 3.0}) {
    Dataset ds = MakeLoanDataset(3000, {.seed = 21, .gender_bias = bias});
    auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
    if (!model.ok()) return 1;
    auto audit = AuditGroupFairness(*model, ds, kGender);
    if (!audit.ok()) return 1;
    TreeShapExplainer explainer(*model, ds.schema());
    std::vector<double> imp = GlobalMeanAbsShap(&explainer, ds, 120);
    size_t rank = 1;
    for (size_t j = 0; j < imp.size(); ++j)
      if (j != kGender && imp[j] > imp[kGender]) ++rank;
    std::printf("%-14s %12.3f %14.4f %12zu\n",
                bias == 0.0 ? "fair" : "discriminatory",
                audit->demographic_parity_gap, imp[kGender], rank);
  }

  std::printf("\n=== 2. interventional fairness over an SCM ===\n");
  // gender -> income; the model uses income only (a proxy).
  Dag dag;
  const size_t n_g = *dag.AddNode("gender");
  const size_t n_inc = *dag.AddNode("income");
  (void)dag.AddEdge(n_g, n_inc);
  Scm scm(std::move(dag));
  (void)scm.SetLinearEquation(n_g, {}, 0.0, 1.0);
  (void)scm.SetLinearEquation(n_inc, {1.5}, 0.0, 1.0);
  auto proxy_model = MakeLambdaModel(2, [](const std::vector<double>& v) {
    return v[1] > 0.0 ? 1.0 : 0.0;
  });
  auto gap = InterventionalFairnessGap(proxy_model, scm, {n_g, n_inc}, 0);
  if (gap.ok()) {
    std::printf("model never reads gender, yet E[decision|do(g=1)] - "
                "E[decision|do(g=0)] = %.3f\n", *gap);
    std::printf("-> proxy discrimination through income: conditioning "
                "audits would need the causal graph to see it.\n");
  }

  std::printf("\n=== 3. Simpson's paradox in a GROUP BY (HypDB-style) ===\n");
  Relation r("loans", {"is_male", "approved", "segment"});
  auto add = [&](int male, double approved, int seg, int copies) {
    for (int c = 0; c < copies; ++c)
      (void)*r.Insert({static_cast<double>(male), approved,
                       static_cast<double>(seg)});
  };
  // Segment 0 (prime): men approved slightly MORE, but few men apply.
  add(1, 1.0, 0, 19); add(1, 0.0, 0, 1);    // men 95%, 20 applicants
  add(0, 1.0, 0, 90); add(0, 0.0, 0, 10);   // women 90%, 100 applicants
  // Segment 1 (subprime): men again slightly ahead, but most men are here.
  add(1, 1.0, 1, 30); add(1, 0.0, 1, 70);   // men 30%, 100 applicants
  add(0, 1.0, 1, 5);  add(0, 0.0, 1, 15);   // women 25%, 20 applicants
  auto report = DetectQueryBias(r, "is_male", "approved", {"segment"});
  if (report.ok()) {
    std::printf("SELECT is_male, AVG(approved) ... GROUP BY is_male:\n");
    std::printf("  raw male-female gap:      %+.3f  (looks biased "
                "against %s)\n",
                report->unadjusted_effect,
                report->unadjusted_effect < 0 ? "men" : "women");
    std::printf("  segment-adjusted gap:     %+.3f\n",
                report->adjusted_effect);
    std::printf("  Simpson reversal: %s — the raw query answer points "
                "the wrong way;\n  the confounder (customer segment) "
                "explains the aggregate.\n",
                report->simpson_reversal ? "YES" : "no");
  }
  return 0;
}
