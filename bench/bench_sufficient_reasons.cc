// E13 — logic-based explanations are *provably correct* where attribution
// sets are merely suggestive (tutorial Section 2.2.2: abductive reasoning
// computes "provably correct explanations"; attribution methods "can
// generate explanations only in terms of a set of attributes" without a
// sufficiency guarantee). For decision trees we compute minimal sufficient
// reasons and test whether the TOP-k TreeSHAP feature set (same size)
// actually entails the decision.
#include "bench_util.h"
#include "data/synthetic.h"
#include "feature/tree_shap.h"
#include "model/decision_tree.h"
#include "rule/sufficient_reason.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E13: bench_sufficient_reasons",
         "minimal sufficient reasons always entail the decision (by "
         "construction); the same-size top-SHAP feature set frequently "
         "does not — a guarantee vs heuristic gap");
  Row("%-8s %14s %18s %20s", "depth", "avg_reason_sz",
      "reason_sufficient", "topk_shap_sufficient");

  for (int depth : {3, 4, 5, 6, 8}) {
    Dataset ds = MakeGaussianDataset(
        1200, {.seed = 17 + static_cast<uint64_t>(depth), .dims = 8});
    auto tree = DecisionTree::Fit(
        ds, {.max_depth = depth, .min_samples_leaf = 5});
    if (!tree.ok()) return 1;
    TreeShapExplainer shap(*tree, ds.schema());

    const size_t kInstances = 100;
    double avg_size = 0.0;
    size_t reason_ok = 0;
    size_t shap_ok = 0;
    for (size_t i = 0; i < kInstances; ++i) {
      const std::vector<double> x = ds.row(i);
      auto reason = MinimalSufficientReason(tree->tree(), x);
      if (!reason.ok()) return 1;
      avg_size += static_cast<double>(reason->features.size()) / kInstances;
      if (IsSufficientForTree(tree->tree(), x, reason->features))
        ++reason_ok;
      auto attr = shap.Explain(x);
      if (!attr.ok()) return 1;
      const std::vector<size_t> topk =
          attr->TopFeatures(reason->features.size());
      if (IsSufficientForTree(tree->tree(), x, topk)) ++shap_ok;
    }
    Row("%-8d %14.2f %17.0f%% %19.0f%%", depth, avg_size,
        100.0 * reason_ok / kInstances, 100.0 * shap_ok / kInstances);
  }
  Row("# expected shape: reasons 100%% sufficient at every depth; top-k "
      "SHAP sets fall well short, and further as trees deepen.");
  return 0;
}
