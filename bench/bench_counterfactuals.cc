// E7 — counterfactuals must be valid, proximate, sparse, diverse and fast
// (tutorial Sections 2.1.4 and 3: "generated in real time", GeCo).
// Compares naive random search, DiCE-style diverse search, and GeCo-style
// constrained genetic search on denied loan applicants.
#include "bench_util.h"
#include "cf/cf_common.h"
#include "cf/dice.h"
#include "cf/geco.h"
#include "data/synthetic.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E7: bench_counterfactuals",
         "DiCE yields diverse counterfactual sets; GeCo yields sparse, "
         "constraint-respecting ones at interactive latency; naive random "
         "search yields distant, dense changes");
  Dataset ds = MakeLoanDataset(2500);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 50});
  if (!model.ok()) return 1;
  FeatureSpace space = FeatureSpace::FromDataset(ds);
  space.SetImmutable(0);
  space.SetImmutable(6);
  space.SetImmutable(7);

  // Collect denied applicants.
  std::vector<std::vector<double>> denied;
  for (size_t i = 0; i < ds.n() && denied.size() < 15; ++i) {
    const double p = model->Predict(ds.row(i));
    if (p > 0.05 && p < 0.4) denied.push_back(ds.row(i));
  }
  Row("explaining %zu denied applicants", denied.size());
  Row("%-18s %8s %10s %10s %10s %10s %10s", "method", "valid%",
      "distance", "sparsity", "diversity", "plaus%", "ms/query");

  struct Tally {
    double valid = 0, dist = 0, sparse = 0, div = 0, plaus = 0, ms = 0;
    int count = 0;
  };
  // Plausibility proxy: every changed feature value was observed in data.
  auto plausible = [&](const Counterfactual& cf) {
    for (size_t j = 0; j < cf.instance.size(); ++j) {
      const auto& vals = space.observed[j];
      bool seen = false;
      for (double v : vals)
        if (v == cf.instance[j]) {
          seen = true;
          break;
        }
      if (!seen) return 0.0;
    }
    return 1.0;
  };
  auto report = [&](const char* name, Tally t) {
    Row("%-18s %8.2f %10.2f %10.2f %10.2f %10.2f %10.1f", name,
        t.valid / t.count, t.dist / t.count, t.sparse / t.count,
        t.div / t.count, t.plaus / t.count, t.ms / t.count);
  };

  // (1) Naive random: first valid random candidate, no refinement.
  {
    Tally t;
    for (const auto& x : denied) {
      Timer timer;
      DiceOptions opts;
      opts.num_counterfactuals = 3;
      opts.num_candidates = 300;
      opts.sparsify = false;
      opts.diversity_weight = 0.0;
      auto cfs = DiceCounterfactuals(*model, space, x, 1, opts);
      t.ms += timer.ElapsedMs();
      ++t.count;
      if (!cfs.ok()) continue;
      for (const auto& cf : cfs->counterfactuals) {
        t.valid += cf.valid / static_cast<double>(cfs->counterfactuals.size());
        t.dist += cf.distance / cfs->counterfactuals.size();
        t.sparse += static_cast<double>(cf.num_changed) /
                    cfs->counterfactuals.size();
        t.plaus += plausible(cf) / cfs->counterfactuals.size();
      }
      t.div += cfs->diversity;
    }
    report("random-search", t);
  }

  // (2) DiCE: diversity-aware + sparsification.
  {
    Tally t;
    for (const auto& x : denied) {
      Timer timer;
      auto cfs = DiceCounterfactuals(*model, space, x, 1,
                                     {.num_counterfactuals = 3});
      t.ms += timer.ElapsedMs();
      ++t.count;
      if (!cfs.ok()) continue;
      for (const auto& cf : cfs->counterfactuals) {
        t.valid += cf.valid / static_cast<double>(cfs->counterfactuals.size());
        t.dist += cf.distance / cfs->counterfactuals.size();
        t.sparse += static_cast<double>(cf.num_changed) /
                    cfs->counterfactuals.size();
        t.plaus += plausible(cf) / cfs->counterfactuals.size();
      }
      t.div += cfs->diversity;
    }
    report("dice", t);
  }

  // (3) GeCo with PLAF constraints.
  {
    std::vector<PlafConstraint> plaf = {
        PlafConstraint::Immutable(0, "age"),
        PlafConstraint::Immutable(6, "gender"),
        PlafConstraint::MonotoneIncrease(5, "education"),
    };
    Tally t;
    for (const auto& x : denied) {
      Timer timer;
      auto cfs = GecoCounterfactuals(*model, space, x, 1, plaf,
                                     {.num_counterfactuals = 3});
      t.ms += timer.ElapsedMs();
      ++t.count;
      if (!cfs.ok()) continue;
      for (const auto& cf : cfs->counterfactuals) {
        t.valid += cf.valid / static_cast<double>(cfs->counterfactuals.size());
        t.dist += cf.distance / cfs->counterfactuals.size();
        t.sparse += static_cast<double>(cf.num_changed) /
                    cfs->counterfactuals.size();
        t.plaus += plausible(cf) / cfs->counterfactuals.size();
      }
      t.div += cfs->diversity;
    }
    report("geco+plaf", t);
  }
  Row("# expected shape: dice maximizes diversity; geco minimizes "
      "sparsity/distance under constraints; random is worst on "
      "distance/sparsity.");
  ReportMetrics();
  return 0;
}
