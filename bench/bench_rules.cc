// E8 — Anchors produce "short and widely applicable rules" with high
// precision (tutorial Section 2.2). Compares, on a rule-generated hiring
// model: Anchors rules, LIME's top features recast as a rule, and the
// rules of an interpretable decision set — measuring empirical precision,
// coverage and rule length.
#include "bench_util.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "feature/lime.h"
#include "model/gbdt.h"
#include "rule/anchors.h"
#include "rule/decision_set.h"

using namespace xai;
using namespace xai::bench;

namespace {

/// Empirical precision/coverage of a rule on a dataset against the model.
std::pair<double, double> EmpiricalQuality(const RuleExplanation& rule,
                                           const Model& model,
                                           const Dataset& ds) {
  size_t matched = 0;
  size_t agree = 0;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (!rule.Matches(ds.row(i))) continue;
    ++matched;
    if (PredictLabel(model, ds.row(i)) == rule.outcome) ++agree;
  }
  const double prec =
      matched ? static_cast<double>(agree) / matched : 0.0;
  return {prec, static_cast<double>(matched) / ds.n()};
}

}  // namespace

int main() {
  Banner("E8: bench_rules",
         "Anchors find short rules with near-1 precision and non-trivial "
         "coverage; LIME-as-rule has lower precision; decision sets trade "
         "a little precision for global coverage");
  Dataset ds = MakeHiringDataset(3000);
  Rng rng(2);
  auto [train, holdout] = ds.Split(0.6, &rng);
  auto model = GradientBoostedTrees::Fit(train, {.num_rounds = 60});
  if (!model.ok()) return 1;

  // Instances to explain: 10 hired candidates.
  std::vector<std::vector<double>> targets;
  for (size_t i = 0; i < train.n() && targets.size() < 10; ++i)
    if (model->Predict(train.row(i)) > 0.7) targets.push_back(train.row(i));

  Row("%-16s %12s %12s %12s %10s", "method", "precision", "coverage",
      "rule_len", "ms/query");

  // (1) Anchors.
  {
    AnchorsExplainer anchors(*model, train, {.precision_threshold = 0.9});
    double prec = 0, cov = 0, len = 0, ms = 0;
    for (const auto& x : targets) {
      Timer t;
      auto rule = anchors.Explain(x);
      ms += t.ElapsedMs();
      if (!rule.ok()) continue;
      auto [p, c] = EmpiricalQuality(*rule, *model, holdout);
      prec += p / targets.size();
      cov += c / targets.size();
      len += static_cast<double>(rule->predicates.size()) / targets.size();
    }
    Row("%-16s %12.3f %12.3f %12.1f %10.1f", "anchors", prec, cov, len,
        ms / targets.size());
  }

  // (2) LIME top-2 features recast as a bin rule around the instance.
  {
    Discretizer disc = Discretizer::Fit(train, 4);
    LimeExplainer lime(*model, train, {.num_samples = 1500});
    double prec = 0, cov = 0, len = 0, ms = 0;
    for (const auto& x : targets) {
      Timer t;
      auto attr = lime.Explain(x);
      ms += t.ElapsedMs();
      if (!attr.ok()) continue;
      RuleExplanation rule;
      rule.outcome = PredictLabel(*model, x);
      for (size_t j : attr->TopFeatures(2)) {
        RulePredicate pred;
        pred.feature = j;
        if (train.schema().feature(j).is_numeric()) {
          auto [lo, hi] = disc.BinRange(j, disc.Bin(j, x[j]));
          pred.lower = lo;
          pred.upper = hi;
        } else {
          pred.is_categorical = true;
          pred.category = x[j];
        }
        rule.predicates.push_back(pred);
      }
      auto [p, c] = EmpiricalQuality(rule, *model, holdout);
      prec += p / targets.size();
      cov += c / targets.size();
      len += static_cast<double>(rule.predicates.size()) / targets.size();
    }
    Row("%-16s %12.3f %12.3f %12.1f %10.1f", "lime-as-rule", prec, cov, len,
        ms / targets.size());
  }

  // (3) Decision set (global): average quality of its rules.
  {
    Timer t;
    auto dset = FitDecisionSet(train, &*model, {});
    const double ms = t.ElapsedMs();
    if (!dset.ok()) return 1;
    double prec = 0, cov = 0, len = 0;
    for (const auto& rule : dset->rules()) {
      auto [p, c] = EmpiricalQuality(rule, *model, holdout);
      prec += p / dset->rules().size();
      cov += c / dset->rules().size();
      len += static_cast<double>(rule.predicates.size()) /
             dset->rules().size();
    }
    Row("%-16s %12.3f %12.3f %12.1f %10.1f", "decision-set", prec, cov, len,
        ms);
  }
  Row("# expected shape: anchors precision ~0.9+ at modest coverage and "
      "short length; lime-as-rule lower precision; decision set covers "
      "globally.");
  return 0;
}
