// Training-throughput benchmark for the binned histogram pipeline: fits the
// same GBDT on ~1M synthetic rows with the exact sort-per-node learner and
// with the quantized BinnedDataset + histogram learner, and reports the fit
// times side by side.
//
//   exact   per-node, per-feature (value, row) sort — the reference oracle
//   hist    one quantization pass (BinMapper, <=256 bins -> u8 codes), then
//           per-node histograms with parent-minus-sibling subtraction; no
//           sorting after the bin build
//
// The hist fit is re-run at 1 and 4 worker threads and the two ensembles
// are compared node by node: any bitwise difference fails the bench (the
// fixed-chunk ParallelFor determinism contract extends to training).
//
// Writes machine-readable results to BENCH_train.json (or argv[1]),
// including the bin-build time, the exact/hist speedup, train AUC for both
// ensembles (quantized splits must not cost accuracy), and peak RSS.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "data/binned.h"
#include "data/synthetic.h"
#include "model/gbdt.h"
#include "model/metrics.h"
#include "model/tree.h"

using namespace xai;
using namespace xai::bench;

namespace {

constexpr size_t kRows = 1'000'000;
constexpr size_t kDims = 16;
constexpr int kRounds = 5;
constexpr int kMaxDepth = 5;

GbdtOptions Options(TrainMethod method) {
  GbdtOptions opts;
  opts.num_rounds = kRounds;
  opts.tree = {.max_depth = kMaxDepth, .min_samples_leaf = 20,
               .max_features = 0};
  opts.tree.train.method = method;
  return opts;
}

bool SameEnsemble(const GradientBoostedTrees& a,
                  const GradientBoostedTrees& b) {
  if (a.trees().size() != b.trees().size()) return false;
  for (size_t t = 0; t < a.trees().size(); ++t) {
    const Tree& ta = a.trees()[t];
    const Tree& tb = b.trees()[t];
    if (ta.nodes.size() != tb.nodes.size()) return false;
    for (size_t i = 0; i < ta.nodes.size(); ++i) {
      const TreeNode& na = ta.nodes[i];
      const TreeNode& nb = tb.nodes[i];
      if (na.feature != nb.feature || na.threshold != nb.threshold ||
          na.value != nb.value || na.cover != nb.cover ||
          na.left != nb.left || na.right != nb.right)
        return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = TraceJsonArg(argc, argv);
  const std::string json_path =
      PositionalArg(argc, argv, 0, "BENCH_train.json");
  Banner("E17: bench_train",
         "quantize-once histogram training beats the exact sort-per-node "
         "learner by >=5x on a 1M-row GBDT fit (>=4 threads), stays "
         "bit-identical across thread counts, and matches exact-mode train "
         "AUC within noise");

  Row("# generating %zu x %zu synthetic rows...", kRows, kDims);
  const Dataset ds =
      MakeGaussianDataset(kRows, {.seed = 19, .dims = kDims, .rho = 0.25});

  // Standalone quantization cost. The timed hist fit below re-runs this
  // internally (Fit owns its BinnedDataset), so hist_fit_ms includes it —
  // the headline speedup is end to end, not sorting-amortized.
  double bin_build_ms = 0.0;
  {
    Timer t;
    auto binned = BinnedDataset::Build(ds.x(), 256);
    bin_build_ms = t.ElapsedMs();
    if (!binned.ok()) {
      std::fprintf(stderr, "FAIL: BinnedDataset::Build: %s\n",
                   binned.status().message().c_str());
      return 1;
    }
    Row("# bin build: %.0f ms (%zu features, all u8 codes: %s)", bin_build_ms,
        kDims, binned->narrow(0) ? "yes" : "no");
  }

  Row("# fitting exact (%d rounds, depth %d)...", kRounds, kMaxDepth);
  Timer exact_timer;
  auto exact = GradientBoostedTrees::Fit(ds, Options(TrainMethod::kExact));
  const double exact_ms = exact_timer.ElapsedMs();
  if (!exact.ok()) return 1;

  Row("# fitting hist...");
  Timer hist_timer;
  auto hist = GradientBoostedTrees::Fit(ds, Options(TrainMethod::kHist));
  const double hist_ms = hist_timer.ElapsedMs();
  if (!hist.ok()) return 1;

  const double speedup = hist_ms > 0.0 ? exact_ms / hist_ms : 0.0;

  // Determinism gate: same fit at 1 and 4 threads must be bitwise equal.
  SetGlobalThreads(1);
  auto hist_t1 = GradientBoostedTrees::Fit(ds, Options(TrainMethod::kHist));
  SetGlobalThreads(4);
  auto hist_t4 = GradientBoostedTrees::Fit(ds, Options(TrainMethod::kHist));
  SetGlobalThreads(0);
  if (!hist_t1.ok() || !hist_t4.ok()) return 1;
  const bool thread_identical = SameEnsemble(*hist_t1, *hist_t4) &&
                                SameEnsemble(*hist_t1, *hist);

  const double auc_exact = EvaluateAuc(*exact, ds);
  const double auc_hist = EvaluateAuc(*hist, ds);

  Row("%-8s %12s %12s %10s %10s", "method", "fit_ms", "rows/s", "auc",
      "speedup");
  Row("%-8s %12.0f %12.0f %10.4f %10s", "exact", exact_ms,
      1e3 * static_cast<double>(kRows) * kRounds / exact_ms, auc_exact, "1.00x");
  Row("%-8s %12.0f %12.0f %10.4f %9.2fx", "hist", hist_ms,
      1e3 * static_cast<double>(kRows) * kRounds / hist_ms, auc_hist, speedup);
  Row("# hist thread-count bit-identity (1 vs 4 workers): %s",
      thread_identical ? "PASS" : "FAIL");
  Row("# expected shape: speedup >= 5x at XAIDB_THREADS >= 4 (the binned-"
      "pipeline acceptance bar; the algorithmic win alone clears it on one "
      "core), |auc_hist - auc_exact| small.");

  if (!thread_identical) {
    std::fprintf(stderr,
                 "FAIL: hist ensembles differ across thread counts\n");
    return 1;
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"bench_train\",\n");
    std::fprintf(f, "  \"rows\": %zu,\n  \"features\": %zu,\n", kRows, kDims);
    std::fprintf(f, "  \"rounds\": %d,\n  \"max_depth\": %d,\n", kRounds,
                 kMaxDepth);
    std::fprintf(f, "  \"threads\": %zu,\n", GlobalThreadCount());
    std::fprintf(f, "  \"bin_build_ms\": %.1f,\n", bin_build_ms);
    std::fprintf(f, "  \"exact_fit_ms\": %.1f,\n", exact_ms);
    std::fprintf(f, "  \"hist_fit_ms\": %.1f,\n", hist_ms);
    std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"auc_exact\": %.4f,\n  \"auc_hist\": %.4f,\n",
                 auc_exact, auc_hist);
    std::fprintf(f, "  \"hist_thread_identical\": %s,\n",
                 thread_identical ? "true" : "false");
    std::fprintf(f, "  \"resources\": %s\n}\n", ResourcesJson().c_str());
    std::fclose(f);
    std::printf("# results written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  ReportMetrics();
  MaybeWriteTrace(trace_path);
  return 0;
}
