// E4 — "These components can be exploited to perform adversarial attacks
// that render the explanations futile" (tutorial Section 2.1.1; Slack et
// al. 2020). Builds a gender-discriminating model plus an innocuous cover
// model behind an OOD detector, and measures how often LIME / KernelSHAP
// name the sensitive feature as the top attribution, before and after the
// scaffolding attack.
#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/adversarial.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E4: bench_adversarial_attack",
         "a scaffolded model hides its reliance on the sensitive feature "
         "from perturbation-based explainers while real decisions stay "
         "biased");
  Dataset ds = MakeLoanDataset(2000, {.seed = 5});
  const size_t kGender = 6;

  auto biased = MakeLambdaModel(ds.d(), [](const std::vector<double>& x) {
    return x[6] > 0.5 ? 0.9 : 0.1;
  });
  auto innocuous = MakeLambdaModel(ds.d(), [](const std::vector<double>& x) {
    return x[1] > 50.0 ? 0.9 : 0.1;
  });
  auto scaffold = AdversarialScaffold::Create(ds, biased, innocuous, {});
  if (!scaffold.ok()) return 1;
  Row("OOD detector accuracy: %.3f", scaffold->detector_accuracy());

  size_t same = 0;
  for (size_t i = 0; i < 200; ++i)
    if (scaffold->Predict(ds.row(i)) == biased.Predict(ds.row(i))) ++same;
  Row("scaffold == biased model on real rows: %.1f%%", same / 2.0);

  Row("%-14s %22s %22s", "explainer", "top1=gender (biased)",
      "top1=gender (attacked)");

  {
    LimeExplainer lime_b(biased, ds, {.num_samples = 1000, .seed = 3});
    LimeExplainer lime_a(*scaffold, ds, {.num_samples = 1000, .seed = 3});
    auto rb = TopFeatureIsSensitiveRate(&lime_b, ds, kGender, 25);
    auto ra = TopFeatureIsSensitiveRate(&lime_a, ds, kGender, 25);
    if (!rb.ok() || !ra.ok()) return 1;
    Row("%-14s %22.2f %22.2f", "lime", *rb, *ra);
  }
  {
    KernelShapOptions opts;
    opts.max_background = 25;
    KernelShapExplainer shap_b(biased, ds, opts);
    KernelShapExplainer shap_a(*scaffold, ds, opts);
    auto rb = TopFeatureIsSensitiveRate(&shap_b, ds, kGender, 25);
    auto ra = TopFeatureIsSensitiveRate(&shap_a, ds, kGender, 25);
    if (!rb.ok() || !ra.ok()) return 1;
    Row("%-14s %22.2f %22.2f", "kernelshap", *rb, *ra);
  }
  Row("# expected shape: biased column ~1.0; attacked column drops "
      "sharply (the attack hides the bias).");
  return 0;
}
