#ifndef XAIDB_BENCH_BENCH_UTIL_H_
#define XAIDB_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace xai::bench {

/// Wall-clock stopwatch in milliseconds — the library's own obs::Stopwatch,
/// so benches and internal instrumentation share one timing primitive.
using Timer = ::xai::obs::Stopwatch;

/// Prints an experiment banner: id, claim, and the series/rows to expect.
inline void Banner(const char* experiment_id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf-style row helper so every bench prints aligned CSV-ish tables.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

/// When XAIDB_METRICS is on, prints the library's internal counters and
/// span timings accumulated so far (model evals, samples drawn, coalitions
/// enumerated) so a bench reports observed internal cost next to its
/// wall-clock table. No-op — and no output — when metrics are off, keeping
/// default bench output diff-stable.
inline void ReportMetrics() {
  if (!::xai::obs::Enabled()) return;
  std::fputs(::xai::obs::MetricsToTable().c_str(), stdout);
}

/// Zeroes the internal counters so a ReportMetrics() at the end of a bench
/// covers exactly that bench's work. No-op when metrics are off.
inline void ResetMetrics() {
  if (!::xai::obs::Enabled()) return;
  ::xai::obs::MetricsRegistry::Global().ResetAll();
}

}  // namespace xai::bench

#endif  // XAIDB_BENCH_BENCH_UTIL_H_
