#ifndef XAIDB_BENCH_BENCH_UTIL_H_
#define XAIDB_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/eval_engine.h"
#include "obs/obs.h"

namespace xai::bench {

/// Wall-clock stopwatch in milliseconds — the library's own obs::Stopwatch,
/// so benches and internal instrumentation share one timing primitive.
using Timer = ::xai::obs::Stopwatch;

/// Prints an experiment banner: id, claim, and the series/rows to expect.
inline void Banner(const char* experiment_id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf-style row helper so every bench prints aligned CSV-ish tables.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

/// When XAIDB_METRICS is on, prints the library's internal counters and
/// span timings accumulated so far (model evals, samples drawn, coalitions
/// enumerated) so a bench reports observed internal cost next to its
/// wall-clock table. When the flight recorder is on, also prints its event
/// and ring-overflow drop counts (even with metrics off, so a tracing run
/// always reports whether its ring was big enough). No-op — and no output
/// — when both are off, keeping default bench output diff-stable.
inline void ReportMetrics() {
  if (::xai::obs::Enabled())
    std::fputs(::xai::obs::MetricsToTable().c_str(), stdout);
  else if (::xai::obs::TraceEnabled())
    std::printf("trace: %llu events recorded, %llu dropped by ring overflow\n",
                static_cast<unsigned long long>(::xai::obs::TraceEventCount()),
                static_cast<unsigned long long>(
                    ::xai::obs::TraceDroppedCount()));
}

/// Zeroes the internal counters so a ReportMetrics() at the end of a bench
/// covers exactly that bench's work. No-op when metrics are off.
inline void ResetMetrics() {
  if (!::xai::obs::Enabled()) return;
  ::xai::obs::MetricsRegistry::Global().ResetAll();
}

/// Shared CLI conventions for the bench binaries:
///   bench_foo [output.json] [--trace-json <path>]
/// TraceJsonArg scans argv for --trace-json, turns the flight recorder on
/// when present, and returns the capture path ("" when absent).
/// PositionalArg returns the i-th argument that is neither a --flag nor a
/// flag's value, so JSON output paths keep working in any argument order.
inline std::string TraceJsonArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace-json") {
      ::xai::obs::SetTraceEnabled(true);
      return argv[i + 1];
    }
  }
  return "";
}

inline std::string PositionalArg(int argc, char** argv, int index,
                                 const std::string& fallback) {
  int seen = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      ++i;  // skip the flag's value
      continue;
    }
    if (seen++ == index) return arg;
  }
  return fallback;
}

/// Renders coalition-value cache counters as a JSON object fragment for a
/// bench's BENCH_*.json file: {"hits": .., "misses": .., "hit_rate": ..,
/// "entries": .., "evictions": ..}. Pass a delta of two EvalCacheStats
/// snapshots to scope the numbers to one phase of a bench.
inline std::string CacheStatsJson(const ::xai::EvalCacheStats& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f, "
                "\"entries\": %llu, \"evictions\": %llu}",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses), s.HitRate(),
                static_cast<unsigned long long>(s.entries),
                static_cast<unsigned long long>(s.evictions));
  return buf;
}

/// Prints one aligned cache-stats table row (pairs with CacheStatsJson the
/// way Row pairs with WriteJson).
inline void ReportCacheStats(const char* label,
                             const ::xai::EvalCacheStats& s) {
  Row("%-14s %llu hits / %llu misses (%.1f%% hit rate), %llu entries, "
      "%llu evictions",
      label, static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses), 100.0 * s.HitRate(),
      static_cast<unsigned long long>(s.entries),
      static_cast<unsigned long long>(s.evictions));
}

/// Peak resident set size of this process so far, in bytes (Linux
/// ru_maxrss is KiB; macOS reports bytes directly). 0 when unavailable.
inline uint64_t PeakRssBytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#ifdef __APPLE__
  return static_cast<uint64_t>(ru.ru_maxrss);
#else
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
#endif
}

/// JSON object fragment recording the process resource footprint, written
/// into every BENCH_*.json so memory joins the perf trajectory:
/// {"peak_rss_bytes": .., "peak_rss_mib": ..[, "audit_log_bytes": ..]}.
/// Pass the ledger's stats().bytes when the bench ran with auditing on.
inline std::string ResourcesJson(uint64_t audit_log_bytes = 0) {
  const uint64_t rss = PeakRssBytes();
  char buf[160];
  if (audit_log_bytes > 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"peak_rss_bytes\": %llu, \"peak_rss_mib\": %.1f, "
                  "\"audit_log_bytes\": %llu}",
                  static_cast<unsigned long long>(rss),
                  static_cast<double>(rss) / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(audit_log_bytes));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"peak_rss_bytes\": %llu, \"peak_rss_mib\": %.1f}",
                  static_cast<unsigned long long>(rss),
                  static_cast<double>(rss) / (1024.0 * 1024.0));
  }
  return buf;
}

/// Writes the merged flight-recorder buffers to `path` (Chrome trace JSON)
/// and reports where the trace went plus how much the ring dropped. No-op
/// when path is empty.
inline void MaybeWriteTrace(const std::string& path) {
  if (path.empty()) return;
  const ::xai::Status s = ::xai::obs::WriteTraceJson(path);
  if (s.ok())
    std::printf("trace: wrote %s (%llu events, %llu dropped)\n", path.c_str(),
                static_cast<unsigned long long>(::xai::obs::TraceEventCount()),
                static_cast<unsigned long long>(
                    ::xai::obs::TraceDroppedCount()));
  else
    std::printf("trace: FAILED to write %s: %s\n", path.c_str(),
                s.message().c_str());
}

}  // namespace xai::bench

#endif  // XAIDB_BENCH_BENCH_UTIL_H_
