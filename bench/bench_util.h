#ifndef XAIDB_BENCH_BENCH_UTIL_H_
#define XAIDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace xai::bench {

/// Wall-clock stopwatch in milliseconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints an experiment banner: id, claim, and the series/rows to expect.
inline void Banner(const char* experiment_id, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf-style row helper so every bench prints aligned CSV-ish tables.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace xai::bench

#endif  // XAIDB_BENCH_BENCH_UTIL_H_
