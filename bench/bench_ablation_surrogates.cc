// Ablation — surrogate complexity vs fidelity (tutorial Section 2.1.1 /
// 2.2: interpretability-accuracy balance). Sweeps the complexity budget of
// three global surrogates of the same GBDT: tree depth, decision-set rule
// count, and the CXplain importance surrogate vs its direct target.
#include "bench_util.h"
#include "data/synthetic.h"
#include "feature/cxplain.h"
#include "feature/surrogate.h"
#include "math/stats.h"
#include "model/gbdt.h"
#include "rule/decision_set.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("ablation: bench_ablation_surrogates",
         "surrogate fidelity rises with complexity budget and saturates — "
         "the interpretability/fidelity trade-off every surrogate method "
         "navigates");
  Dataset ds = MakeLoanDataset(2500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 50});
  if (!gbdt.ok()) return 1;

  Row("tree surrogate: depth vs fidelity (R^2 against model output)");
  Row("%-8s %12s %10s", "depth", "fidelity_r2", "leaves");
  for (int depth : {1, 2, 3, 4, 6, 8, 10}) {
    auto s = FitTreeSurrogate(*gbdt, ds,
                              {.max_depth = depth, .min_samples_leaf = 5});
    if (!s.ok()) return 1;
    Row("%-8d %12.4f %10zu", depth, s->fidelity_r2,
        s->tree.tree().NumLeaves());
  }

  Row("");
  Row("decision set: rule budget vs label-agreement with the model");
  Row("%-8s %12s %10s", "rules", "fidelity", "coverage");
  for (int rules : {1, 2, 4, 8, 16}) {
    DecisionSetOptions opts;
    opts.max_rules = rules;
    auto dset = FitDecisionSet(ds, &*gbdt, opts);
    if (!dset.ok()) return 1;
    size_t agree = 0;
    for (size_t i = 0; i < ds.n(); ++i)
      if ((dset->Predict(ds.row(i)) >= 0.5) ==
          (gbdt->Predict(ds.row(i)) >= 0.5))
        ++agree;
    Row("%-8d %12.4f %10.3f", rules,
        static_cast<double>(agree) / static_cast<double>(ds.n()),
        dset->Coverage(ds));
  }

  Row("");
  Row("cxplain: surrogate-vs-direct importance agreement and speedup");
  auto cx = CxplainExplainer::Fit(*gbdt, ds);
  if (!cx.ok()) return 1;
  double corr = 0.0;
  Timer t_sur;
  for (size_t i = 0; i < 50; ++i) {
    auto attr = cx->Explain(ds.row(i));
    if (!attr.ok()) return 1;
  }
  const double sur_ms = t_sur.ElapsedMs() / 50.0;
  Timer t_dir;
  for (size_t i = 0; i < 50; ++i) {
    auto attr = cx->Explain(ds.row(i));
    std::vector<double> direct = cx->DirectImportance(ds.row(i));
    if (attr.ok()) corr += PearsonCorrelation(attr->values, direct) / 50.0;
  }
  const double dir_ms = t_dir.ElapsedMs() / 50.0 - sur_ms;
  Row("%-24s %8.3f", "agreement (pearson)", corr);
  Row("%-24s %8.3f ms vs %.3f ms direct", "per-query cost", sur_ms, dir_ms);
  Row("# expected shape: fidelity curves rise and saturate; cxplain "
      "agreement > 0.5 at a fraction of the direct cost for expensive "
      "models.");
  return 0;
}
