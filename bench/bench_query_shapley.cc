// E10 — Shapley values of tuples explain SQL query answers (tutorial
// Section 3, "Explanations in Databases"). Measures exact-vs-sampled
// agreement and the runtime growth of tuple Shapley with database size on
// a selection+aggregation query, plus agreement with why-provenance-based
// responsibility on a Boolean query.
#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "db/provenance_explain.h"
#include "db/query_shapley.h"
#include "math/stats.h"
#include "relational/query.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E10: bench_query_shapley",
         "exact tuple Shapley explodes with relation size; permutation "
         "sampling tracks it closely at bounded cost; rankings agree with "
         "responsibility on Boolean queries");

  Row("%-6s %12s %12s %14s %12s", "tuples", "exact_ms", "sampled_ms",
      "value_corr", "rank_corr");
  Rng data_rng(3);
  for (size_t n : {8, 12, 16, 20, 64, 256}) {
    Relation r("sales", {"region", "amount"});
    TupleId first = 0;
    for (size_t i = 0; i < n; ++i) {
      const double region = data_rng.Bernoulli(0.5) ? 0.0 : 1.0;
      const double amount = data_rng.Uniform(10, 200);
      auto tid = r.Insert({region, amount});
      if (i == 0) first = *tid;
    }
    // Query: SUM(amount) WHERE region = 0 — but make it *non-additive* by
    // capping: min(sum, 1000), so interactions exist and sampling is
    // actually exercised.
    auto run_query = [](const Relation& rel) {
      auto pred = ColumnPredicate(rel, "region", "==", 0.0);
      if (!pred.ok()) return 0.0;
      const double s =
          Aggregate(Select(rel, *pred), AggKind::kSum, "amount")->value;
      return std::min(s, 1000.0);
    };
    auto query_fn = MakeRelationQueryFn(r, first, run_query);

    double exact_ms = -1.0;
    std::vector<double> exact;
    if (n <= 20) {
      Timer t;
      QueryShapleyOptions opts;
      opts.exact_up_to = 20;
      auto phi = TupleShapley(n, query_fn, opts);
      exact_ms = t.ElapsedMs();
      if (!phi.ok()) return 1;
      exact = *phi;
    }

    Timer t;
    QueryShapleyOptions sopts;
    sopts.exact_up_to = 0;
    sopts.num_permutations = 100;
    auto sampled = TupleShapley(n, query_fn, sopts);
    const double sampled_ms = t.ElapsedMs();
    if (!sampled.ok()) return 1;

    if (!exact.empty()) {
      Row("%-6zu %12.1f %12.1f %14.3f %12.3f", n, exact_ms, sampled_ms,
          PearsonCorrelation(exact, *sampled),
          SpearmanCorrelation(exact, *sampled));
    } else {
      Row("%-6zu %12s %12.1f %14s %12s", n, "intractable", sampled_ms, "-",
          "-");
    }
  }

  // Boolean query: answer = [exists a sale with amount > 150 in region 0].
  // Compare Shapley ranking with provenance responsibility.
  {
    Relation r("t", {"region", "amount"});
    const TupleId first = *r.Insert({0, 160});
    (void)*r.Insert({0, 170});
    (void)*r.Insert({0, 40});
    (void)*r.Insert({1, 190});
    auto boolean_query = MakeRelationQueryFn(
        r, first, [](const Relation& sub) {
          for (size_t i = 0; i < sub.num_rows(); ++i)
            if (sub.value(i, 0) == 0.0 && sub.value(i, 1) > 150.0)
              return 1.0;
          return 0.0;
        });
    auto phi = TupleShapley(4, boolean_query);
    // Why-provenance of the Boolean answer: witnesses {t0} and {t1}.
    auto resp = ComputeResponsibilities({{first}, {first + 1}});
    Row("");
    Row("boolean query (exists amount>150 in region 0):");
    if (phi.ok()) {
      Row("  tuple shapley: t0=%.3f t1=%.3f t2=%.3f t3=%.3f", (*phi)[0],
          (*phi)[1], (*phi)[2], (*phi)[3]);
    }
    for (const auto& rr : resp)
      Row("  responsibility: tuple %llu = %.3f",
          static_cast<unsigned long long>(rr.tuple), rr.responsibility);
    Row("  -> both single out exactly the two witness tuples, with equal "
        "scores by symmetry.");
  }
  Row("# expected shape: exact runtime explodes past ~20 tuples; sampled "
      "correlation with exact > 0.95 where both exist.");
  ReportMetrics();
  return 0;
}
