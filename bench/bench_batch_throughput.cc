// Throughput benchmark for the batched evaluation pipeline (PR 2) and the
// compiled flat ensemble runtime (flat_tree.h).
//
// Measures model evaluations/second over a fixed row set:
//   scalar            per-row Matrix::Row copy + Model::Predict — the
//                     pre-batching pipeline idiom
//   node_batched      tree-outer / row-inner traversal of the node-object
//                     Tree reference (Tree::AccumulateBatch) — what
//                     PredictBatch was before the flat runtime
//   batched           one Model::PredictBatch call over the whole Matrix —
//                     the compiled SoA FlatEnsemble path for tree models
//   batched+parallel  fixed-size row chunks dispatched through the global
//                     ThreadPool (XAIDB_THREADS), one PredictBatch each
//
// Covered models: a deep GBDT ensemble, a random forest (both compare the
// flat runtime against their node-based reference) and logistic regression
// (single GEMV, no node mode). All batched outputs are checked
// bit-identical to scalar before any rate is reported.
//
// Writes machine-readable results to BENCH_batch.json (or argv[1]).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "math/matrix.h"
#include "math/stats.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/logistic_regression.h"

using namespace xai;
using namespace xai::bench;

namespace {

struct ModeResult {
  double ms = 0.0;
  double evals_per_sec = 0.0;
};

struct ModelResult {
  std::string name;
  ModeResult scalar, node, batched, parallel;
  bool has_node = false;      // Tree models only.
  double max_abs_diff = 0.0;  // All modes vs scalar, must be exactly 0.
};

ModeResult Rate(double total_ms, size_t rows, int reps) {
  ModeResult r;
  r.ms = total_ms / reps;
  r.evals_per_sec =
      r.ms > 0.0 ? 1e3 * static_cast<double>(rows) / r.ms : 0.0;
  return r;
}

/// Copies rows [begin, end) into their own Matrix; rows are contiguous in
/// the row-major buffer so this is one memcpy-equivalent.
Matrix RowBlock(const Matrix& x, size_t begin, size_t end) {
  const double* src = x.RowPtr(begin);
  return Matrix::FromRows(
      end - begin, x.cols(),
      std::vector<double>(src, src + (end - begin) * x.cols()));
}

using BatchFn = std::function<std::vector<double>(const Matrix&)>;

ModelResult BenchModel(const std::string& name, const Model& model,
                       const Matrix& x, int reps,
                       const BatchFn& node_batch = nullptr) {
  const size_t n = x.rows();
  ModelResult out;
  out.name = name;

  std::vector<double> scalar_pred(n);
  {
    Timer t;
    for (int r = 0; r < reps; ++r)
      for (size_t i = 0; i < n; ++i) {
        const std::vector<double> row = x.Row(i);
        scalar_pred[i] = model.Predict(row);
      }
    out.scalar = Rate(t.ElapsedMs(), n, reps);
  }

  std::vector<double> node_pred;
  if (node_batch) {
    out.has_node = true;
    Timer t;
    for (int r = 0; r < reps; ++r) node_pred = node_batch(x);
    out.node = Rate(t.ElapsedMs(), n, reps);
  }

  std::vector<double> batched_pred;
  {
    Timer t;
    for (int r = 0; r < reps; ++r) batched_pred = model.PredictBatch(x);
    out.batched = Rate(t.ElapsedMs(), n, reps);
  }

  constexpr size_t kRowChunk = 512;
  std::vector<double> parallel_pred(n);
  {
    const size_t num_chunks = (n + kRowChunk - 1) / kRowChunk;
    Timer t;
    for (int r = 0; r < reps; ++r) {
      GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
        const size_t begin = c * kRowChunk;
        const size_t end = std::min(begin + kRowChunk, n);
        const std::vector<double> chunk =
            model.PredictBatch(RowBlock(x, begin, end));
        std::copy(chunk.begin(), chunk.end(), parallel_pred.begin() + begin);
      });
    }
    out.parallel = Rate(t.ElapsedMs(), n, reps);
  }

  for (size_t i = 0; i < n; ++i) {
    out.max_abs_diff =
        std::max(out.max_abs_diff, std::abs(scalar_pred[i] - batched_pred[i]));
    out.max_abs_diff =
        std::max(out.max_abs_diff, std::abs(scalar_pred[i] - parallel_pred[i]));
    if (node_batch)
      out.max_abs_diff =
          std::max(out.max_abs_diff, std::abs(scalar_pred[i] - node_pred[i]));
  }
  return out;
}

void WriteJson(const char* path, size_t rows, size_t threads,
               const std::vector<ModelResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_batch_throughput\",\n");
  std::fprintf(f, "  \"rows\": %zu,\n  \"threads\": %zu,\n", rows, threads);
  // Tracing state is part of the record: the flight-recorder guard on
  // this hot path (ParallelFor) must cost ~nothing when off, and this
  // bench is the evidence — comparable runs must both be tracing-off.
  std::fprintf(f, "  \"tracing\": %s,\n",
               obs::TraceEnabled() ? "true" : "false");
  std::fprintf(f, "  \"models\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModelResult& m = results[i];
    std::fprintf(f, "    {\"name\": \"%s\",\n", m.name.c_str());
    std::fprintf(f, "     \"scalar_evals_per_sec\": %.0f,\n",
                 m.scalar.evals_per_sec);
    if (m.has_node) {
      std::fprintf(f, "     \"node_batched_evals_per_sec\": %.0f,\n",
                   m.node.evals_per_sec);
    }
    std::fprintf(f, "     \"batched_evals_per_sec\": %.0f,\n",
                 m.batched.evals_per_sec);
    std::fprintf(f, "     \"parallel_evals_per_sec\": %.0f,\n",
                 m.parallel.evals_per_sec);
    std::fprintf(f, "     \"batched_speedup\": %.2f,\n",
                 m.batched.evals_per_sec / m.scalar.evals_per_sec);
    if (m.has_node) {
      std::fprintf(f, "     \"flat_vs_node_speedup\": %.2f,\n",
                   m.batched.evals_per_sec / m.node.evals_per_sec);
    }
    std::fprintf(f, "     \"parallel_speedup\": %.2f,\n",
                 m.parallel.evals_per_sec / m.scalar.evals_per_sec);
    std::fprintf(f, "     \"max_abs_diff\": %g}%s\n", m.max_abs_diff,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"resources\": %s\n}\n",
               bench::ResourcesJson().c_str());
  std::fclose(f);
  std::printf("# results written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = TraceJsonArg(argc, argv);
  const std::string json_path =
      PositionalArg(argc, argv, 0, "BENCH_batch.json");
  Banner("E16: bench_batch_throughput",
         "compiled flat SoA ensembles beat node-object traversal (>=2x "
         "batched GBDT evals/sec over the pre-flat pipeline baseline of "
         "23,243 e/s); chunked parallel dispatch adds throughput with "
         "XAIDB_THREADS > 1 and every mode stays bit-identical to scalar");

  // Deep ensemble: ~1500 trees x depth 8 (tens of MB of nodes) puts the
  // ensemble well past the last-level cache, so row-outer scalar traversal
  // thrashes while tree-outer batching keeps each tree hot across the
  // whole row block — and the flat SoA layout + interleaved row cursors
  // add an integer factor on top of the node-object batcher.
  Dataset ds = MakeLoanDataset(8000);
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = 1500,
           .tree = {.max_depth = 8, .min_samples_leaf = 2, .max_features = 0}});
  if (!gbdt.ok()) return 1;
  auto forest = RandomForest::Fit(
      ds, {.num_trees = 400, .tree = {.max_depth = 10, .min_samples_leaf = 2}});
  if (!forest.ok()) return 1;
  auto logistic = LogisticRegression::Fit(ds, {.lambda = 1e-3});
  if (!logistic.ok()) return 1;

  // Node-based references: the same tree-outer / row-inner loop PredictBatch
  // ran before the flat runtime, kept alive by Tree::AccumulateBatch.
  const BatchFn gbdt_node = [&](const Matrix& x) {
    std::vector<double> out(x.rows(), gbdt->base_score());
    for (const Tree& t : gbdt->trees())
      t.AccumulateBatch(x, gbdt->learning_rate(), &out);
    if (gbdt->loss() == GbdtLoss::kLogistic)
      for (double& v : out) v = Sigmoid(v);
    return out;
  };
  const BatchFn forest_node = [&](const Matrix& x) {
    std::vector<double> out(x.rows(), 0.0);
    for (const Tree& t : forest->trees()) t.AccumulateBatch(x, 1.0, &out);
    for (double& v : out) v /= static_cast<double>(forest->trees().size());
    return out;
  };

  std::vector<ModelResult> results;
  results.push_back(BenchModel("gbdt", *gbdt, ds.x(), 3, gbdt_node));
  results.push_back(BenchModel("forest", *forest, ds.x(), 3, forest_node));
  results.push_back(BenchModel("logistic", *logistic, ds.x(), 20));

  Row("%-10s %12s %12s %12s %12s %8s %8s", "model", "scalar_e/s", "node_e/s",
      "flat_e/s", "parallel_e/s", "flat/nd", "par_x");
  for (const ModelResult& m : results) {
    Row("%-10s %12.0f %12.0f %12.0f %12.0f %7.2fx %7.2fx", m.name.c_str(),
        m.scalar.evals_per_sec, m.has_node ? m.node.evals_per_sec : 0.0,
        m.batched.evals_per_sec, m.parallel.evals_per_sec,
        m.has_node ? m.batched.evals_per_sec / m.node.evals_per_sec : 0.0,
        m.parallel.evals_per_sec / m.scalar.evals_per_sec);
    if (m.max_abs_diff != 0.0) {
      std::fprintf(stderr, "FAIL: %s batched output differs from scalar "
                           "(max abs diff %g)\n",
                   m.name.c_str(), m.max_abs_diff);
      return 1;
    }
  }
  Row("# expected shape: gbdt flat_e/s >= 2x the pre-flat 23,243 e/s "
      "baseline (the flat-runtime acceptance bar); logistic batched is one "
      "GEMV; par_x tracks XAIDB_THREADS (1 on a single-core runner).");

  Row("# tracing %s during this run (guard overhead when off is the "
      "acceptance bar: <2%% vs a tracing-off baseline).",
      obs::TraceEnabled() ? "ON" : "off");

  WriteJson(json_path.c_str(), ds.n(), GlobalThreadCount(), results);
  ReportMetrics();
  MaybeWriteTrace(trace_path);
  return 0;
}
