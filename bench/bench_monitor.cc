// bench_monitor — the continuous-monitoring pipeline end to end: an
// ExplanationService under load with the MetricsSampler, SloTracker,
// Prometheus endpoint, and the attribution-drift watchdog all attached.
//
// Scenario: a baseline request stream pins the watchdog's reference
// attribution profile, then a covariate shift is injected mid-run
// (requests move to a shifted input distribution) and the bench measures
// how long the watchdog takes to notice — wall-clock detection latency
// and responses-until-detection — plus a live /metrics scrape check and
// the sampler's overhead on warm serving throughput.
//
// Usage: bench_monitor [BENCH_monitor.json] [--trace-json <path>]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/drift.h"
#include "model/gbdt.h"
#include "obs/obs.h"
#include "serve/service.h"

using namespace xai;

namespace {

/// Submits `n` requests over `rows` (cycled) and blocks until all resolve.
/// Returns wall milliseconds for the wave.
double RunWave(ExplanationService& service,
               const std::vector<std::vector<double>>& rows, size_t n,
               ExplainerKind kind = ExplainerKind::kTreeShap) {
  bench::Timer t;
  std::vector<std::future<Result<ExplanationResponse>>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ExplanationRequest req;
    req.instance = rows[i % rows.size()];
    req.kind = kind;
    futs.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : futs) {
    const auto r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }
  return t.ElapsedMs();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::TraceJsonArg(argc, argv);
  const std::string out_path =
      bench::PositionalArg(argc, argv, 0, "BENCH_monitor.json");
  obs::SetEnabled(true);

  bench::Banner("E13-monitor",
                "the drift watchdog detects an injected covariate shift with "
                "bounded latency, the live scrape exposes every serving "
                "series, and the sampler costs <2% warm throughput");

  Dataset ds = MakeLoanDataset(2000);
  auto model = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!model.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Baseline rows come straight from the dataset; shifted rows simulate a
  // hard covariate shift upstream of the model — the whole population
  // collapses to deep-subprime applicants (no income, bottom-of-scale
  // credit score, heavy debt), the kind of upstream data change that
  // redistributes attribution mass across features without anyone
  // redeploying the model.
  const size_t kDistinct = 64;
  std::vector<std::vector<double>> base_rows, shifted_rows;
  for (size_t i = 0; i < kDistinct; ++i) {
    std::vector<double> r = ds.row(i);
    base_rows.push_back(r);
    r[0] = 19.0;   // age collapses to the bottom of the range
    r[1] = 8.0;    // income floor
    r[2] = 400.0;  // credit score far below the generator's range
    r[3] = r[3] * 4.0 + 60.0;  // debt balloons
    r[4] = 0.0;    // no employment history
    r[5] = 0.0;    // no education
    shifted_rows.push_back(r);
  }

  // The monitoring stack: sampler (25ms period) feeding the SLO tracker,
  // endpoint serving scrapes, watchdog riding the response observer.
  obs::MetricsSampler sampler(
      obs::MonitorOptions{std::chrono::milliseconds(25), 1024});
  obs::SloTracker slo({
      {"queue_wait", "serve.queue_wait_us", 50e3, "", "", 0.01},
      {"deadline_miss", "", 0.0, "serve.expired", "serve.batched_requests",
       0.001},
  });
  sampler.AddTickObserver(slo.Observer());
  sampler.Start();

  DriftWatchdogOptions dopts;
  dopts.reference_window = 192;
  dopts.window = 192;
  dopts.min_window = 64;
  dopts.check_every = 8;
  dopts.l1_threshold = 0.25;
  AttributionDriftWatchdog watchdog(dopts);

  ExplanationServiceOptions sopts;
  sopts.queue_capacity = 1024;
  sopts.max_batch = 64;
  sopts.response_observer = [&watchdog](const ExplanationRequest&,
                                        const ExplanationResponse& r) {
    watchdog.Observe(r.attribution);
  };
  ExplanationService service(ModelHandle::Borrow(*model), ds, sopts);

  obs::MonitorServer server(&sampler);
  const bool endpoint_up = server.Start(0).ok();

  // Phase 1 — baseline traffic pins the reference profile. A side wave of
  // KernelSHAP requests routes through the coalition-evaluation engine so
  // the scrape carries the evalengine.* family alongside serve.*.
  RunWave(service, base_rows, 32, ExplainerKind::kKernelShap);
  const double base_ms = RunWave(service, base_rows, 384);
  const DriftReport before = watchdog.Report();
  bench::Row("%-22s %8.1f ms  (reference %s, L1 %.4f)", "baseline wave",
             base_ms, before.reference_pinned ? "pinned" : "NOT PINNED",
             before.l1);

  // Phase 2 — covariate shift injected NOW; serve shifted traffic in
  // small waves until the watchdog alerts.
  bench::Timer detect_timer;
  double detection_ms = -1.0;
  size_t shifted_served = 0;
  const size_t kWave = 32;
  const size_t kMaxShifted = 1280;
  while (shifted_served < kMaxShifted) {
    RunWave(service, shifted_rows, kWave);
    shifted_served += kWave;
    if (watchdog.alert_count() > 0) {
      detection_ms = detect_timer.ElapsedMs();
      break;
    }
  }
  const DriftReport after = watchdog.Report();
  const bool detected = detection_ms >= 0.0;
  bench::Row("%-22s %8.1f ms  (%zu shifted responses, L1 %.4f, PSI %.4f)",
             "drift detected in", detection_ms, shifted_served, after.l1,
             after.psi);

  // Live scrape: the endpoint must expose every serving-path family.
  bool scrape_has_serve = false, scrape_has_engine = false,
       scrape_has_drift = false, scrape_has_slo = false;
  size_t scrape_bytes = 0;
  if (endpoint_up) {
    const Result<std::string> scrape =
        obs::HttpGetLocal(server.port(), "/metrics");
    if (scrape.ok()) {
      scrape_bytes = scrape.value().size();
      scrape_has_serve =
          scrape.value().find("xaidb_serve_sweep_us_bucket") !=
          std::string::npos;
      scrape_has_engine =
          scrape.value().find("xaidb_evalengine_") != std::string::npos;
      scrape_has_drift =
          scrape.value().find("xaidb_drift_l1") != std::string::npos;
      scrape_has_slo =
          scrape.value().find("xaidb_slo_") != std::string::npos;
    }
  }
  bench::Row("%-22s %s (%zu bytes; serve=%d evalengine=%d drift=%d slo=%d)",
             "live /metrics scrape", endpoint_up ? "ok" : "UNAVAILABLE",
             scrape_bytes, scrape_has_serve, scrape_has_engine,
             scrape_has_drift, scrape_has_slo);

  // Overhead: warm repeated-row throughput with the sampler ticking vs.
  // stopped. Same service, same hot rows — the eval cache keeps both
  // sides warm. The drift phases above ran the sampler at an aggressive
  // 25ms to resolve fast detection; overhead is measured at the serving
  // default (200ms, xaidb_cli's --monitor-period-ms), which is what a
  // deployment pays. Rounds interleave on/off waves so a transient
  // machine stall hits both sides alike, and each side takes its median wave
  // (robust to bursts on small shared machines); the endpoint thread is
  // parked in accept() between scrapes and is stopped here so neither
  // side carries it.
  server.Stop();
  sampler.Stop();
  obs::MetricsSampler serving_sampler(
      obs::MonitorOptions{std::chrono::milliseconds(200), 1024});
  const size_t kOverheadReqs = 2048;
  RunWave(service, base_rows, kOverheadReqs);  // warmup
  std::vector<double> on_waves, off_waves;
  for (int round = 0; round < 5; ++round) {
    serving_sampler.Start();
    on_waves.push_back(RunWave(service, base_rows, kOverheadReqs));
    serving_sampler.Stop();
    off_waves.push_back(RunWave(service, base_rows, kOverheadReqs));
  }
  std::sort(on_waves.begin(), on_waves.end());
  std::sort(off_waves.begin(), off_waves.end());
  const double on_ms = on_waves[on_waves.size() / 2];
  const double off_ms = off_waves[off_waves.size() / 2];
  const double on_rps = 1000.0 * static_cast<double>(kOverheadReqs) / on_ms;
  const double off_rps = 1000.0 * static_cast<double>(kOverheadReqs) / off_ms;
  const double ab_delta_pct = 100.0 * (off_rps - on_rps) / off_rps;

  // The precise overhead number is the sampler's duty cycle: on a
  // saturated core the sampler steals exactly (tick cost x tick rate) of
  // serving time. Measured on the full post-load registry, so the tick
  // walks every series the run created. The A/B rps delta above is
  // reported alongside as a sanity check, but on small shared machines
  // its run-to-run noise dwarfs a sub-1% effect.
  const int kTickReps = 50;
  bench::Timer tick_timer;
  for (int i = 0; i < kTickReps; ++i) serving_sampler.TickNow();
  const double tick_us = 1000.0 * tick_timer.ElapsedMs() / kTickReps;
  const double ticks_per_s = 1000.0 / 200.0;  // serving-default period
  const double overhead_pct = 100.0 * (tick_us * ticks_per_s) / 1e6;
  bench::Row("%-22s %8.0f rps on / %8.0f rps off  (A/B delta %+.2f%%)",
             "warm serving", on_rps, off_rps, ab_delta_pct);
  bench::Row("%-22s %8.1f us/tick at 200ms period  (%.4f%% duty cycle)",
             "sampler overhead", tick_us, overhead_pct);

  service.Shutdown();
  const ExplanationServiceStats stats = service.stats();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"experiment\": \"monitor_drift_detection\",\n");
  std::fprintf(f, "  \"schema_version\": %d,\n", obs::kMetricsSchemaVersion);
  std::fprintf(f, "  \"snapshot_unix_ms\": %llu,\n",
               static_cast<unsigned long long>(obs::UnixNowMs()));
  std::fprintf(f, "  \"drift\": {\"detected\": %s, "
               "\"detection_latency_ms\": %.1f, "
               "\"responses_to_detect\": %zu, \"l1_at_detect\": %.6f, "
               "\"psi_at_detect\": %.6f, \"alerts\": %llu},\n",
               detected ? "true" : "false", detection_ms, shifted_served,
               after.l1, after.psi,
               static_cast<unsigned long long>(watchdog.alert_count()));
  std::fprintf(f, "  \"scrape\": {\"ok\": %s, \"bytes\": %zu, "
               "\"has_serve\": %s, \"has_evalengine\": %s, "
               "\"has_drift\": %s, \"has_slo\": %s},\n",
               endpoint_up ? "true" : "false", scrape_bytes,
               scrape_has_serve ? "true" : "false",
               scrape_has_engine ? "true" : "false",
               scrape_has_drift ? "true" : "false",
               scrape_has_slo ? "true" : "false");
  std::fprintf(f, "  \"overhead\": {\"monitor_on_rps\": %.0f, "
               "\"monitor_off_rps\": %.0f, \"ab_delta_pct\": %.2f, "
               "\"sampler_tick_us\": %.1f, \"overhead_pct\": %.4f},\n",
               on_rps, off_rps, ab_delta_pct, tick_us, overhead_pct);
  std::fprintf(f, "  \"slo\": {\"alerts\": %llu},\n",
               static_cast<unsigned long long>(slo.alert_count()));
  std::fprintf(f, "  \"service\": {\"completed\": %llu, \"batches\": %llu, "
               "\"queue_depth_final\": %llu},\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.queue_depth));
  std::fprintf(f, "  \"resources\": %s\n", bench::ResourcesJson().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  bench::ReportMetrics();
  bench::MaybeWriteTrace(trace_path);
  return detected ? 0 : 2;
}
