// E11 — exploiting model structure makes data valuation tractable (Jia et
// al., tutorial Section 2.3.1): exact KNN-Shapley runs in O(n log n) per
// validation point while Monte-Carlo Data Shapley on the same KNN utility
// needs many retrainings. Sweeps n and reports runtime plus agreement.
#include "bench_util.h"
#include "data/synthetic.h"
#include "math/stats.h"
#include "valuation/data_valuation.h"

#include <algorithm>

using namespace xai;
using namespace xai::bench;

namespace {

/// The KNN utility (same convention as the recurrence: matches / K).
double KnnUtility(const Dataset& train, const std::vector<size_t>& subset,
                  const Dataset& validation, int k) {
  if (subset.empty()) return 0.0;
  double total = 0.0;
  for (size_t v = 0; v < validation.n(); ++v) {
    const std::vector<double> xv = validation.row(v);
    std::vector<std::pair<double, size_t>> dist;
    dist.reserve(subset.size());
    for (size_t i : subset) {
      double d2 = 0.0;
      for (size_t j = 0; j < train.d(); ++j) {
        const double dd = train.x()(i, j) - xv[j];
        d2 += dd * dd;
      }
      dist.emplace_back(d2, i);
    }
    std::sort(dist.begin(), dist.end());
    const size_t kk = std::min<size_t>(static_cast<size_t>(k), dist.size());
    double matches = 0.0;
    for (size_t r = 0; r < kk; ++r)
      if ((train.y()[dist[r].second] >= 0.5) == (validation.y()[v] >= 0.5))
        matches += 1.0;
    total += matches / static_cast<double>(k);
  }
  return total / static_cast<double>(validation.n());
}

}  // namespace

int main() {
  Banner("E11: bench_knn_shapley",
         "exact KNN-Shapley is orders of magnitude cheaper than "
         "Monte-Carlo valuation of the same utility, with near-perfect "
         "agreement");
  const int k = 5;
  Dataset validation = MakeGaussianDataset(100, {.seed = 2, .dims = 3});

  Row("%-8s %12s %12s %12s %12s", "n", "exact_ms", "tmc_ms", "pearson",
      "spearman");
  for (size_t n : {20, 50, 100, 200, 400}) {
    Dataset train = MakeGaussianDataset(n, {.seed = 1, .dims = 3});

    Timer t_exact;
    std::vector<double> exact = ExactKnnShapley(train, validation, k);
    const double exact_ms = t_exact.ElapsedMs();

    // TMC over the KNN utility game (20 permutations).
    Timer t_tmc;
    std::vector<double> tmc(n, 0.0);
    Rng rng(7);
    const int kPerms = 20;
    for (int p = 0; p < kPerms; ++p) {
      std::vector<size_t> perm = rng.Permutation(n);
      std::vector<size_t> prefix;
      double prev = 0.0;
      for (size_t idx : perm) {
        prefix.push_back(idx);
        const double cur = KnnUtility(train, prefix, validation, k);
        tmc[idx] += (cur - prev) / kPerms;
        prev = cur;
      }
    }
    const double tmc_ms = t_tmc.ElapsedMs();

    Row("%-8zu %12.1f %12.1f %12.3f %12.3f", n, exact_ms, tmc_ms,
        PearsonCorrelation(exact, tmc), SpearmanCorrelation(exact, tmc));
  }
  Row("# expected shape: exact_ms grows ~n log n, tmc_ms ~n^2 per "
      "permutation sweep; correlation stays high (sampling noise only).");
  return 0;
}
