// E6 — influence functions approximate retraining without retraining
// (Koh & Liang), and for *groups* first-order addition degrades while the
// second-order (Hessian-corrected) estimate stays accurate (Basu et al.);
// tutorial Section 2.3.2.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "data/synthetic.h"
#include "math/stats.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "valuation/influence.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E6: bench_influence",
         "single-point influence correlates ~1 with true retraining; for "
         "growing correlated groups the first-order estimate degrades and "
         "the second-order correction wins");
  Dataset train = MakeGaussianDataset(300, {.seed = 11, .dims = 4});
  Dataset validation = MakeGaussianDataset(600, {.seed = 12, .dims = 4});
  LogisticRegression::Options mopts{.lambda = 0.05, .max_iter = 60,
                                    .tol = 1e-12};
  auto model = LogisticRegression::Fit(train, mopts);
  if (!model.ok()) return 1;
  auto calc = InfluenceCalculator::Create(*model, train);
  if (!calc.ok()) return 1;

  // Part 1: single-point influence vs ground truth.
  {
    Timer t_pred;
    std::vector<double> predicted =
        calc->InfluenceOnValidationLoss(validation);
    const double pred_ms = t_pred.ElapsedMs();
    std::vector<double> actual(train.n());
    const double base = LogLoss(model->PredictBatch(validation.x()),
                                validation.y());
    Timer t_true;
    for (size_t i = 0; i < train.n(); ++i) {
      auto retrained = LogisticRegression::Fit(train.RemoveRow(i), mopts);
      if (!retrained.ok()) return 1;
      actual[i] = LogLoss(retrained->PredictBatch(validation.x()),
                          validation.y()) -
                  base;
    }
    const double true_ms = t_true.ElapsedMs();
    Row("single-point removal, n=%zu:", train.n());
    Row("  pearson(influence, retrain) = %.4f  spearman = %.4f",
        PearsonCorrelation(predicted, actual),
        SpearmanCorrelation(predicted, actual));
    Row("  cost: influence %.1f ms vs retraining %.1f ms (%.0fx)", pred_ms,
        true_ms, true_ms / pred_ms);
  }

  // Part 2: group removal — correlated group (largest x0 values).
  Row("");
  Row("%-12s %16s %16s %12s", "group_size", "err_1st_order",
      "err_2nd_order", "ratio");
  std::vector<size_t> order(train.n());
  for (size_t i = 0; i < train.n(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return train.x()(a, 0) > train.x()(b, 0);
  });
  for (size_t gsize : {5, 15, 30, 60, 90}) {
    std::vector<size_t> group(order.begin(),
                              order.begin() + static_cast<long>(gsize));
    auto exact = calc->GroupParamChangeRetrain(group);
    std::vector<double> first = calc->GroupParamChangeFirstOrder(group);
    auto second = calc->GroupParamChangeSecondOrder(group);
    if (!exact.ok() || !second.ok()) return 1;
    double e1 = 0.0;
    double e2 = 0.0;
    double norm = 0.0;
    for (size_t a = 0; a < exact->size(); ++a) {
      e1 += std::pow((*exact)[a] - first[a], 2);
      e2 += std::pow((*exact)[a] - (*second)[a], 2);
      norm += std::pow((*exact)[a], 2);
    }
    e1 = std::sqrt(e1 / std::max(norm, 1e-12));
    e2 = std::sqrt(e2 / std::max(norm, 1e-12));
    Row("%-12zu %16.4f %16.4f %12.1f", gsize, e1, e2,
        e1 / std::max(e2, 1e-12));
  }
  Row("# expected shape: part-1 correlation > 0.95; part-2 first-order "
      "error grows with group size, second-order stays far lower.");
  return 0;
}
