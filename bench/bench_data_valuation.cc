// E5 — Data Shapley values support data debugging: corrupted-label points
// receive low values (tutorial Section 2.3.1, Ghorbani & Zou protocol).
// Sweeps the inspection budget and reports the fraction of corrupted
// points surfaced by TMC Data Shapley, exact KNN-Shapley, leave-one-out
// and a random baseline; also shows TMC convergence vs permutations.
#include "bench_util.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "math/stats.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "valuation/data_valuation.h"
#include "valuation/influence.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E5: bench_data_valuation",
         "valuation methods rank corrupted-label points at the bottom; "
         "inspecting low-value points finds them far faster than random");
  Dataset train = MakeGaussianDataset(200, {.seed = 1, .dims = 4});
  Dataset validation = MakeGaussianDataset(800, {.seed = 2, .dims = 4});
  Rng rng(3);
  std::vector<size_t> corrupted = InjectLabelNoise(&train, 0.15, &rng);
  Row("train n=%zu, corrupted=%zu (15%%)", train.n(), corrupted.size());

  TrainEvalFn train_eval = [&](const Dataset& subset) {
    if (subset.n() < 5) return 0.5;
    auto m = LogisticRegression::Fit(subset,
                                     {.lambda = 1e-2, .max_iter = 12});
    return m.ok() ? EvaluateAccuracy(*m, validation) : 0.5;
  };

  Timer t_tmc;
  std::vector<double> tmc =
      TmcDataShapley(train, train_eval, {.num_permutations = 30});
  const double tmc_ms = t_tmc.ElapsedMs();
  Timer t_knn;
  std::vector<double> knn = ExactKnnShapley(train, validation, 5);
  const double knn_ms = t_knn.ElapsedMs();
  Timer t_loo;
  std::vector<double> loo = LeaveOneOutValues(train, train_eval);
  const double loo_ms = t_loo.ElapsedMs();
  auto model = LogisticRegression::Fit(train, {.lambda = 1e-2});
  std::vector<double> infl;
  Timer t_infl;
  double infl_ms = 0.0;
  if (model.ok()) {
    auto calc = InfluenceCalculator::Create(*model, train);
    if (calc.ok()) {
      // The loss delta on removal IS the point's value: harmful points
      // have negative delta (removal improves the model) => low value.
      infl = calc->InfluenceOnValidationLoss(validation);
      infl_ms = t_infl.ElapsedMs();
    }
  }

  Row("%-22s %10s %10s %10s %10s %12s", "inspected", "tmc", "knn", "loo",
      "influence", "random(exp)");
  for (double frac : {0.5, 1.0, 1.5, 2.0}) {
    const auto k = static_cast<size_t>(frac * corrupted.size());
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fx corrupted (%zu)", frac, k);
    Row("%-22s %10.2f %10.2f %10.2f %10.2f %12.2f", label,
        CorruptionDetectionRate(tmc, corrupted, k),
        CorruptionDetectionRate(knn, corrupted, k),
        CorruptionDetectionRate(loo, corrupted, k),
        infl.empty() ? 0.0 : CorruptionDetectionRate(infl, corrupted, k),
        static_cast<double>(k) / train.n());
  }
  Row("cost (ms): tmc=%.0f knn=%.0f loo=%.0f influence=%.0f", tmc_ms,
      knn_ms, loo_ms, infl_ms);

  // TMC convergence: correlation of values with a long reference run.
  std::vector<double> ref =
      TmcDataShapley(train, train_eval, {.num_permutations = 60, .seed = 99});
  Row("");
  Row("%-16s %18s", "permutations", "corr_to_reference");
  for (int perms : {2, 5, 10, 20, 40}) {
    std::vector<double> v = TmcDataShapley(
        train, train_eval,
        {.num_permutations = perms, .seed = 7});
    Row("%-16d %18.3f", perms, PearsonCorrelation(v, ref));
  }
  Row("# expected shape: all methods well above random; knn-shapley "
      "cheapest; tmc correlation rises with permutations.");
  return 0;
}
