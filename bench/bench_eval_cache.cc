// bench_eval_cache — the evaluation-engine claim: memoizing coalition
// values across instances makes repeated-instance KernelSHAP sweeps >= 2x
// faster with a > 50% hit rate, while changing zero attribution bits.
//
// Workload: GBDT over the loan dataset, kRequests KernelSHAP requests over
// kDistinct distinct rows — the dashboard-refresh shape where many callers
// ask about the same instances. Three passes over the identical request
// stream:
//   cold  — no cache: every request re-evaluates its full coalition sweep.
//   fill  — cached explainer sees each distinct row once (populates the
//           memo table; timed separately, charged to neither side).
//   warm  — cached explainer replays the full stream: every coalition
//           value is answered from the cache.
//
// Writes machine-readable results to BENCH_cache.json (or the first
// positional argument). Exits non-zero only if a cached attribution
// differs from the uncached one by even one bit — speedup and hit rate are
// reported, not asserted, because they are machine-dependent.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/eval_engine.h"
#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "model/gbdt.h"

using namespace xai;

namespace {

constexpr size_t kRequests = 64;
constexpr size_t kDistinct = 8;
constexpr size_t kCacheCapacity = 1 << 16;

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::TraceJsonArg(argc, argv);
  const std::string json_path =
      bench::PositionalArg(argc, argv, 0, "BENCH_cache.json");
  bench::Banner("bench_eval_cache",
                "cross-instance coalition-value memoization >= 2x on "
                "repeated-instance KernelSHAP, hit rate > 50%, "
                "bit-identical attributions");

  Dataset ds = MakeLoanDataset(1500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!gbdt.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", gbdt.status().ToString().c_str());
    return 1;
  }

  KernelShapOptions base;
  base.max_background = 20;

  // Cold: no cache anywhere. A null opts.cache falls back to the global
  // cache, so the global capacity is pinned to 0 here — otherwise a stray
  // XAIDB_CACHE in the environment would silently warm the baseline.
  SetGlobalEvalCacheCapacity(0);
  std::vector<FeatureAttribution> cold_attrs;
  double cold_ms = 0.0;
  {
    KernelShapExplainer cold(*gbdt, ds, base);
    bench::Timer t;
    for (size_t i = 0; i < kRequests; ++i) {
      auto attr = cold.Explain(ds.row(i % kDistinct));
      if (!attr.ok()) {
        std::fprintf(stderr, "FAIL: %s\n", attr.status().ToString().c_str());
        return 1;
      }
      cold_attrs.push_back(std::move(attr).value());
    }
    cold_ms = t.ElapsedMs();
  }

  // Fill + warm share one cached explainer: fill sees each distinct row
  // once, warm replays the whole stream against the populated table.
  KernelShapOptions cached_opts = base;
  cached_opts.cache = std::make_shared<CoalitionValueCache>(kCacheCapacity);
  KernelShapExplainer cached(*gbdt, ds, cached_opts);
  double fill_ms = 0.0;
  {
    bench::Timer t;
    for (size_t i = 0; i < kDistinct; ++i) {
      auto attr = cached.Explain(ds.row(i));
      if (!attr.ok()) return 1;
    }
    fill_ms = t.ElapsedMs();
  }
  const EvalCacheStats fill_stats = cached_opts.cache->stats();

  std::vector<FeatureAttribution> warm_attrs;
  double warm_ms = 0.0;
  {
    bench::Timer t;
    for (size_t i = 0; i < kRequests; ++i) {
      auto attr = cached.Explain(ds.row(i % kDistinct));
      if (!attr.ok()) return 1;
      warm_attrs.push_back(std::move(attr).value());
    }
    warm_ms = t.ElapsedMs();
  }
  const EvalCacheStats total_stats = cached_opts.cache->stats();
  EvalCacheStats warm_stats;
  warm_stats.hits = total_stats.hits - fill_stats.hits;
  warm_stats.misses = total_stats.misses - fill_stats.misses;
  warm_stats.evictions = total_stats.evictions - fill_stats.evictions;
  warm_stats.entries = total_stats.entries;

  // Bit-identity: the cache may only change speed, never a bit.
  double max_abs_diff = 0.0;
  for (size_t i = 0; i < kRequests; ++i)
    for (size_t j = 0; j < cold_attrs[i].values.size(); ++j)
      max_abs_diff = std::max(
          max_abs_diff,
          std::fabs(warm_attrs[i].values[j] - cold_attrs[i].values[j]));

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  bench::Row("%-8s %10s", "pass", "wall_ms");
  bench::Row("%-8s %10.1f", "cold", cold_ms);
  bench::Row("%-8s %10.1f", "fill", fill_ms);
  bench::Row("%-8s %10.1f", "warm", warm_ms);
  bench::Row("warm speedup over cold: %.2fx; max_abs_diff %g", speedup,
             max_abs_diff);
  bench::ReportCacheStats("fill", fill_stats);
  bench::ReportCacheStats("warm", warm_stats);

  bench::ReportMetrics();
  bench::MaybeWriteTrace(trace_path);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"bench\": \"bench_eval_cache\",\n");
    std::fprintf(f, "  \"workload\": \"GBDT + KernelSHAP, %zu requests over "
                 "%zu distinct rows, max_background %zu\",\n",
                 kRequests, kDistinct, base.max_background);
    std::fprintf(f, "  \"cache_capacity\": %zu,\n", kCacheCapacity);
    std::fprintf(f, "  \"cold_ms\": %.1f,\n  \"fill_ms\": %.1f,\n"
                 "  \"warm_ms\": %.1f,\n", cold_ms, fill_ms, warm_ms);
    std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"hit_rate\": %.4f,\n", warm_stats.HitRate());
    std::fprintf(f, "  \"cache\": {\"fill\": %s, \"warm\": %s},\n",
                 bench::CacheStatsJson(fill_stats).c_str(),
                 bench::CacheStatsJson(warm_stats).c_str());
    std::fprintf(f, "  \"resources\": %s,\n", bench::ResourcesJson().c_str());
    std::fprintf(f, "  \"max_abs_diff\": %g\n}\n", max_abs_diff);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: cached attributions differ from uncached ones\n");
    return 1;
  }
  return 0;
}
