// Ablation — KernelSHAP design choices (DESIGN.md: "ablation benches for
// the design choices"). Two knobs dominate KernelSHAP's cost/accuracy
// trade-off: the background-set size (bias of the marginal value function)
// and the coalition sampling budget (variance of the regression). Both are
// swept against exact enumeration on the full background.
#include <cmath>

#include "bench_util.h"
#include "core/game.h"
#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "feature/shapley.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("ablation: bench_ablation_kernelshap",
         "background size trades bias for runtime; sampling budget trades "
         "variance for runtime — both converge to exact enumeration");
  const size_t d = 8;
  Dataset ds = MakeLoanDataset(2000);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!gbdt.ok()) return 1;
  const std::vector<double> x = ds.row(3);

  // Reference: exact Shapley of the marginal game on a large background.
  MarginalFeatureGame ref_game(*gbdt, ds.x(), x, 400);
  auto ref = ExactShapley(ref_game);
  if (!ref.ok()) return 1;

  auto l2err = [&](const std::vector<double>& phi) {
    double e = 0.0;
    double n = 0.0;
    for (size_t j = 0; j < d; ++j) {
      e += std::pow(phi[j] - (*ref)[j], 2);
      n += std::pow((*ref)[j], 2);
    }
    return std::sqrt(e / std::max(n, 1e-12));
  };

  Row("sweep 1: background rows (exact coalition enumeration)");
  Row("%-12s %12s %12s", "background", "rel_l2_err", "ms/query");
  for (size_t bg : {5, 10, 25, 50, 100, 200, 400}) {
    KernelShapOptions opts;
    opts.max_background = bg;
    KernelShapExplainer ks(*gbdt, ds, opts);
    Timer t;
    auto attr = ks.Explain(x);
    if (!attr.ok()) return 1;
    Row("%-12zu %12.4f %12.1f", bg, l2err(attr->values), t.ElapsedMs());
  }

  Row("");
  Row("sweep 2: coalition samples (background fixed at 100)");
  Row("%-12s %12s %12s", "samples", "rel_l2_err", "ms/query");
  for (int samples : {64, 256, 1024, 4096, 16384}) {
    KernelShapOptions opts;
    opts.max_background = 100;
    opts.exact_up_to = 0;  // Force sampling.
    opts.num_samples = samples;
    KernelShapExplainer ks(*gbdt, ds, opts);
    Timer t;
    auto attr = ks.Explain(x);
    if (!attr.ok()) return 1;
    Row("%-12d %12.4f %12.1f", samples, l2err(attr->values), t.ElapsedMs());
  }
  Row("# expected shape: both errors fall monotonically-ish toward the "
      "residual bias of the 100-row background; runtime grows linearly.");
  ReportMetrics();
  return 0;
}
