// E12 — causal attribution semantics differ (tutorial Section 2.1.3):
// on a confounded linear SCM, marginal SVs ignore indirect influence,
// conditional SVs leak credit through correlation, causal SVs credit
// interventional effects while keeping all Shapley axioms, and asymmetric
// SVs concentrate credit on root causes (sacrificing symmetry). The
// ground-truth decomposition of the linear SCM anchors the comparison.
#include <cmath>

#include "bench_util.h"
#include "core/game.h"
#include "feature/causal_shapley.h"
#include "feature/shapley.h"
#include "math/stats.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E12: bench_causal_shapley",
         "marginal SV gives a pure cause no credit for downstream effects; "
         "causal/asymmetric SVs recover indirect influence; efficiency "
         "holds for all symmetric variants");

  // SCM: z (root) -> x (z + noise); model f = x only.
  //      plus an independent feature w (dummy for f).
  Dag dag;
  const size_t nz = *dag.AddNode("z");
  const size_t nx = *dag.AddNode("x");
  const size_t nw = *dag.AddNode("w");
  (void)dag.AddEdge(nz, nx);
  Scm scm(std::move(dag));
  (void)scm.SetLinearEquation(nz, {}, 0.0, 1.0);
  (void)scm.SetLinearEquation(nx, {1.0}, 0.0, 0.5);
  (void)scm.SetLinearEquation(nw, {}, 0.0, 1.0);

  auto model = MakeLambdaModel(3, [](const std::vector<double>& v) {
    return v[1];  // f(x) = x.
  });
  // Instance consistent with the SCM: z=1.5, x=1.5, w=0.7.
  const std::vector<double> instance = {1.5, 1.5, 0.7};

  // Background sample from the SCM.
  Rng rng(5);
  Matrix background = scm.SampleMatrix(3000, &rng);

  auto row = [&](const char* name, const std::vector<double>& phi) {
    double sum = 0.0;
    for (double p : phi) sum += p;
    Row("%-22s %10.3f %10.3f %10.3f %12.3f", name, phi[0], phi[1], phi[2],
        sum);
  };
  Row("%-22s %10s %10s %10s %12s", "method", "phi_z", "phi_x", "phi_w",
      "sum(=eff)");

  // (1) Marginal SV.
  {
    MarginalFeatureGame game(model, background, instance, 300);
    auto phi = ExactShapley(game);
    if (!phi.ok()) return 1;
    row("marginal", *phi);
  }
  // (2) Conditional SV (Gaussian conditioning).
  {
    auto game =
        ConditionalGaussianGame::Create(model, background, instance, 256);
    if (!game.ok()) return 1;
    auto phi = ExactShapley(*game);
    if (!phi.ok()) return 1;
    row("conditional", *phi);
  }
  // (3) Causal SV (interventional, symmetric).
  {
    auto phi = CausalShapley(model, scm, {nz, nx, nw}, instance,
                             {.samples_per_eval = 3000, .seed = 9});
    if (!phi.ok()) return 1;
    row("causal", *phi);
  }
  // (4) Asymmetric SV over the interventional game.
  {
    ScmInterventionalGame game(model, scm, {nz, nx, nw}, instance, 3000, 11);
    Rng arng(13);
    std::vector<double> phi =
        AsymmetricShapley(game, scm.dag(), {nz, nx, nw}, 60, &arng);
    row("asymmetric", phi);
  }
  Row("");
  Row("ground truth of the linear SCM at z=1.5: total effect of z on f is "
      "1.5 (all indirect); x's own (direct, non-inherited) effect is 0; "
      "w is a dummy.");
  Row("# expected shape: marginal gives z ~0; causal splits ~ (0.75, "
      "0.75); asymmetric concentrates ~1.5 on z; every sum = f(x) - E[f] "
      "= 1.5; w ~0 everywhere.");
  return 0;
}
