// E3 — LIME "involves sampling of points near the local neighborhood which
// can be unreliable" (tutorial Section 2.1.1; Visani et al. stability
// indices). Repeats LIME with different sampling seeds on fixed instances
// and sweeps the sampling budget; reports VSI (feature-set agreement) and
// CSI (coefficient sign agreement). Includes deterministic TreeSHAP as the
// stable reference point.
#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/stability.h"
#include "feature/lime.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E3: bench_lime_stability",
         "LIME explanations vary run-to-run; stability (VSI/CSI) improves "
         "with the sampling budget; TreeSHAP is deterministic (VSI=CSI=1)");
  Dataset ds = MakeLoanDataset(1500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!gbdt.ok()) return 1;

  const int kRepetitions = 10;
  const size_t kTopK = 3;
  const std::vector<size_t> instances = {0, 7, 21};

  Row("%-18s %10s %10s", "method", "VSI", "CSI");
  for (int samples : {100, 250, 500, 1000, 2000, 4000, 8000}) {
    double vsi = 0.0;
    double csi = 0.0;
    for (size_t inst : instances) {
      const std::vector<double> x = ds.row(inst);
      auto report = MeasureStability(
          [&](uint64_t seed) {
            LimeExplainer lime(*gbdt, ds,
                               {.num_samples = samples, .seed = seed});
            return lime.Explain(x);
          },
          kRepetitions, kTopK);
      if (!report.ok()) return 1;
      vsi += report->vsi / instances.size();
      csi += report->csi / instances.size();
    }
    char name[32];
    std::snprintf(name, sizeof(name), "lime(n=%d)", samples);
    Row("%-18s %10.3f %10.3f", name, vsi, csi);
  }
  {
    TreeShapExplainer ts(*gbdt, ds.schema());
    double vsi = 0.0;
    double csi = 0.0;
    for (size_t inst : instances) {
      const std::vector<double> x = ds.row(inst);
      auto report = MeasureStability(
          [&](uint64_t) { return ts.Explain(x); }, kRepetitions, kTopK);
      if (!report.ok()) return 1;
      vsi += report->vsi / instances.size();
      csi += report->csi / instances.size();
    }
    Row("%-18s %10.3f %10.3f", "treeshap", vsi, csi);
  }
  Row("# expected shape: VSI/CSI rise monotonically-ish with n and stay "
      "below the deterministic 1.0 of treeshap.");
  ReportMetrics();
  return 0;
}
