// Micro-benchmarks (google-benchmark) for the hot kernels the experiment
// suite leans on: dense linear algebra, tree inference, TreeSHAP per
// instance, LIME per query and the RNG. Useful for tracking performance
// regressions; not tied to a specific paper claim.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "feature/lime.h"
#include "feature/tree_shap.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "model/gbdt.h"

namespace xai {
namespace {

void BM_MatrixMultiply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.Gaussian();
      b(i, j) = rng.Gaussian();
    }
  for (auto _ : state) {
    Matrix c = a * b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  Matrix a = b * b.Transpose();
  for (size_t i = 0; i < n; ++i) a(i, i) += n;
  std::vector<double> rhs(n, 1.0);
  for (auto _ : state) {
    auto x = SolveSpd(a, rhs);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(64);

void BM_GbdtPredict(benchmark::State& state) {
  Dataset ds = MakeLoanDataset(2000);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 50});
  const std::vector<double> x = ds.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt->Predict(x));
  }
}
BENCHMARK(BM_GbdtPredict);

void BM_TreeShapPerInstance(benchmark::State& state) {
  Dataset ds = MakeLoanDataset(2000);
  auto gbdt = GradientBoostedTrees::Fit(
      ds, {.num_rounds = static_cast<int>(state.range(0))});
  TreeShapExplainer explainer(*gbdt, ds.schema());
  const std::vector<double> x = ds.row(0);
  for (auto _ : state) {
    auto attr = explainer.Explain(x);
    benchmark::DoNotOptimize(attr);
  }
}
BENCHMARK(BM_TreeShapPerInstance)->Arg(10)->Arg(50)->Arg(100);

void BM_LimePerQuery(benchmark::State& state) {
  Dataset ds = MakeLoanDataset(2000);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 50});
  const std::vector<double> x = ds.row(0);
  uint64_t seed = 0;
  for (auto _ : state) {
    LimeExplainer lime(
        *gbdt, ds,
        {.num_samples = static_cast<int>(state.range(0)), .seed = ++seed});
    auto attr = lime.Explain(x);
    benchmark::DoNotOptimize(attr);
  }
}
BENCHMARK(BM_LimePerQuery)->Arg(500)->Arg(2000);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gaussian());
  }
}
BENCHMARK(BM_RngGaussian);

}  // namespace
}  // namespace xai

BENCHMARK_MAIN();
