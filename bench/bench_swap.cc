// bench_swap — the hot-swap claim: ExplanationService::SwapModel flips
// the serving model version under sustained concurrent load with zero
// dropped requests, per-version bit-identical attributions, and a
// coalition-value cache that is warm for the hot rows the moment the new
// version starts serving.
//
// Workload: two GBDT versions of the same named model ("gbdt@1" with 30
// boosting rounds, "gbdt@2" with 60) registered in a scratch
// ModelRegistry, KernelSHAP requests with hot-row repetition over
// kDistinct distinct rows. Three phases through ONE service:
//
//   cold  — a burst against v1 fills the per-family coalition cache.
//   live  — kLiveThreads closed-loop clients hammer the service while
//           the main thread calls SwapModel(v2) mid-stream. Requests
//           capture their version at Submit; each is checked bit-for-bit
//           against a solo reference for the version it reports.
//   warm  — a burst against the freshly-flipped v2 replays the hot rows;
//           SwapModel's pre-flip warming should make these cache hits.
//
// Writes machine-readable results to BENCH_swap.json (or the first
// positional argument). Exits non-zero if any request is dropped or
// errors, if any attribution differs from its version's solo reference
// by even one bit, or if the post-swap warm burst sees zero cache hits.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "model/gbdt.h"
#include "model/registry.h"
#include "obs/audit.h"
#include "serve/service.h"

using namespace xai;

namespace {

constexpr size_t kDistinct = 32;
constexpr size_t kBurst = 192;
constexpr size_t kLiveThreads = 4;
/// Live traffic completed on the old version before the swap is kicked
/// off, and completed after the flip before the clients stop. Running the
/// clients until both quotas are met (rather than for a fixed request
/// count) guarantees the live phase straddles the flip on fast and slow
/// machines alike — the swap's pre-flip warming takes however long it
/// takes, and the clients keep hammering straight through it.
constexpr size_t kPreSwapQuota = 48;
constexpr size_t kPostSwapQuota = 96;
/// Inter-request pacing per live client, so the closed loop resembles
/// steady dashboard traffic instead of a tight replay loop.
constexpr std::chrono::microseconds kLivePacing{500};

struct PhaseResult {
  size_t submitted = 0;
  double wall_ms = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  ExplanationServiceStats stats;  // snapshot at end of phase
  std::vector<FeatureAttribution> attrs;
  std::vector<ExplanationBreakdown> breakdowns;
  std::vector<size_t> rows;  // distinct-row index per request, for refs
};

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = std::min(v.size() - 1,
                            static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

ExplanationRequest MakeRequest(const Dataset& ds, size_t i) {
  ExplanationRequest req;
  req.instance = ds.row(i % kDistinct);
  req.kind = ExplainerKind::kKernelShap;
  return req;
}

/// Burst phase: everything enqueued up front, latency measured
/// submit → promise fulfilled.
PhaseResult RunBurst(ExplanationService& service, const Dataset& ds,
                     size_t requests) {
  PhaseResult out;
  std::vector<double> lat(requests, 0.0);
  std::atomic<size_t> done{0};
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  futures.reserve(requests);
  std::vector<bench::Timer> submit_time(requests);
  out.submitted = requests;
  bench::Timer total;
  for (size_t i = 0; i < requests; ++i) {
    submit_time[i] = bench::Timer();
    futures.push_back(service.Submit(
        MakeRequest(ds, i), [&, i](const Result<ExplanationResponse>&) {
          lat[i] = submit_time[i].ElapsedMs() * 1e3;
          done.fetch_add(1, std::memory_order_release);
        }));
  }
  for (auto& f : futures) {
    Result<ExplanationResponse> r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.breakdowns.push_back(r.value().breakdown);
    out.attrs.push_back(std::move(r).value().attribution);
    out.rows.push_back((out.attrs.size() - 1) % kDistinct);
  }
  while (done.load(std::memory_order_acquire) < requests) {}
  out.wall_ms = total.ElapsedMs();
  out.stats = service.stats();
  out.p50_us = Quantile(lat, 0.50);
  out.p99_us = Quantile(lat, 0.99);
  return out;
}

/// Live phase: kLiveThreads closed-loop clients (submit, wait, repeat)
/// while the caller swaps the model mid-stream. The clients run until
/// kPreSwapQuota requests resolved before the swap started AND
/// kPostSwapQuota resolved after the flip landed, so the phase always
/// exercises both versions under concurrent load. Per-thread results are
/// merged after the join.
PhaseResult RunLive(ExplanationService& service, const Dataset& ds,
                    ModelRegistry& registry, const ModelHandle& next,
                    ModelSwapReport* report) {
  PhaseResult out;
  std::vector<std::vector<double>> lat(kLiveThreads);
  std::vector<std::vector<FeatureAttribution>> attrs(kLiveThreads);
  std::vector<std::vector<ExplanationBreakdown>> bds(kLiveThreads);
  std::vector<std::vector<size_t>> rows(kLiveThreads);
  std::atomic<size_t> completed{0};
  std::atomic<size_t> submitted{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  bench::Timer total;
  std::vector<std::thread> clients;
  clients.reserve(kLiveThreads);
  for (size_t t = 0; t < kLiveThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; !stop.load(std::memory_order_acquire); ++i) {
        std::this_thread::sleep_for(kLivePacing);
        bench::Timer one;
        submitted.fetch_add(1, std::memory_order_relaxed);
        auto fut = service.Submit(MakeRequest(ds, t * 8191 + i));
        Result<ExplanationResponse> r = fut.get();
        lat[t].push_back(one.ElapsedMs() * 1e3);
        if (!r.ok()) {
          std::fprintf(stderr, "FAIL (live): %s\n",
                       r.status().ToString().c_str());
          failed.store(true);
          return;
        }
        bds[t].push_back(r.value().breakdown);
        attrs[t].push_back(std::move(r).value().attribution);
        rows[t].push_back((t * 8191 + i) % kDistinct);
        completed.fetch_add(1, std::memory_order_release);
      }
    });
  }
  // Flip mid-stream: wait until live traffic has resolved on the old
  // version, then swap while the clients keep hammering — both versions
  // see real concurrent load.
  while (completed.load(std::memory_order_acquire) < kPreSwapQuota)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto swapped = service.SwapModel(next, {.warm_rows = kDistinct});
  if (!swapped.ok()) {
    std::fprintf(stderr, "FAIL: SwapModel: %s\n",
                 swapped.status().ToString().c_str());
    std::exit(1);
  }
  *report = std::move(swapped).value();
  // Persist the registry half of the swap: new connections resolving the
  // bare name now get the flipped version too.
  const Status st = registry.SetServing(next.name(), next.version());
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: SetServing: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // Keep the clients running on the new version before calling the phase
  // done, so post-flip latency is measured under the same load shape.
  const size_t at_flip = completed.load(std::memory_order_acquire);
  while (completed.load(std::memory_order_acquire) < at_flip + kPostSwapQuota)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  out.wall_ms = total.ElapsedMs();
  out.submitted = submitted.load();
  if (failed.load()) std::exit(1);
  std::vector<double> all_lat;
  for (size_t t = 0; t < kLiveThreads; ++t) {
    all_lat.insert(all_lat.end(), lat[t].begin(), lat[t].end());
    out.attrs.insert(out.attrs.end(),
                     std::make_move_iterator(attrs[t].begin()),
                     std::make_move_iterator(attrs[t].end()));
    out.breakdowns.insert(out.breakdowns.end(), bds[t].begin(), bds[t].end());
    out.rows.insert(out.rows.end(), rows[t].begin(), rows[t].end());
  }
  out.stats = service.stats();
  out.p50_us = Quantile(all_lat, 0.50);
  out.p99_us = Quantile(all_lat, 0.99);
  return out;
}

EvalCacheStats CacheDelta(const ExplanationServiceStats& before,
                          const ExplanationServiceStats& after) {
  EvalCacheStats d;
  d.hits = after.cache_hits - before.cache_hits;
  d.misses = after.cache_misses - before.cache_misses;
  d.evictions = after.cache_evictions - before.cache_evictions;
  d.entries = after.cache_entries;
  return d;
}

/// Bit-compares every response against the solo reference of the version
/// it reports having been evaluated on. Returns the max abs diff (0.0 is
/// the only passing value) and counts responses per version.
double CheckVersions(const PhaseResult& r,
                     const std::vector<FeatureAttribution>& solo_v1,
                     const std::vector<FeatureAttribution>& solo_v2,
                     size_t* v1_count, size_t* v2_count, size_t* unknown) {
  double max_abs_diff = 0.0;
  for (size_t i = 0; i < r.attrs.size(); ++i) {
    const std::vector<FeatureAttribution>* ref = nullptr;
    if (r.breakdowns[i].model_version == 1) {
      ref = &solo_v1;
      ++*v1_count;
    } else if (r.breakdowns[i].model_version == 2) {
      ref = &solo_v2;
      ++*v2_count;
    } else {
      ++*unknown;
      continue;
    }
    const FeatureAttribution& want = (*ref)[r.rows[i]];
    for (size_t j = 0; j < want.values.size(); ++j)
      max_abs_diff = std::max(
          max_abs_diff, std::fabs(r.attrs[i].values[j] - want.values[j]));
  }
  return max_abs_diff;
}

/// What replaying the audit ledger against each logged version's solo
/// references found: the served *history* diffed per version, not just
/// the in-memory responses.
struct AuditReplay {
  uint64_t records = 0;
  uint64_t v1 = 0, v2 = 0;
  double max_abs_diff = 0.0;
  ::xai::obs::AuditLogStats log;
};

void WriteJson(const char* path, const PhaseResult& cold,
               const PhaseResult& live, const PhaseResult& warm,
               const ModelSwapReport& report,
               const EvalCacheStats& cold_cache,
               const EvalCacheStats& warm_cache, size_t live_v1,
               size_t live_v2, size_t dropped, double max_abs_diff,
               const AuditReplay& ar) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_swap\",\n");
  std::fprintf(f, "  \"workload\": \"GBDT v1->v2 hot-swap, KernelSHAP, "
               "%zu+%zu+%zu requests over %zu distinct rows, %zu live "
               "clients\",\n", cold.submitted, live.submitted,
               warm.submitted, kDistinct, kLiveThreads);
  std::fprintf(f, "  \"cold\": {\"p50_us\": %.0f, \"p99_us\": %.0f, "
               "\"wall_ms\": %.1f},\n", cold.p50_us, cold.p99_us,
               cold.wall_ms);
  std::fprintf(f, "  \"live_through_swap\": {\"p50_us\": %.0f, "
               "\"p99_us\": %.0f, \"wall_ms\": %.1f, "
               "\"served_on_v1\": %zu, \"served_on_v2\": %zu},\n",
               live.p50_us, live.p99_us, live.wall_ms, live_v1, live_v2);
  std::fprintf(f, "  \"warm\": {\"p50_us\": %.0f, \"p99_us\": %.0f, "
               "\"wall_ms\": %.1f},\n", warm.p50_us, warm.p99_us,
               warm.wall_ms);
  std::fprintf(f, "  \"swap\": {\"from\": \"%s\", \"to\": \"%s\", "
               "\"warmed_families\": %zu, \"warmed_rows\": %zu, "
               "\"warm_ms\": %.1f},\n", report.from.c_str(),
               report.to.c_str(), report.warmed_families,
               report.warmed_rows, report.warm_ms);
  std::fprintf(f, "  \"cache\": {\"cold\": %s, \"post_swap_warm\": %s},\n",
               bench::CacheStatsJson(cold_cache).c_str(),
               bench::CacheStatsJson(warm_cache).c_str());
  std::fprintf(f, "  \"dropped_requests\": %zu,\n", dropped);
  std::fprintf(f, "  \"audit\": {\"records\": %llu, \"served_on_v1\": %llu, "
               "\"served_on_v2\": %llu, \"bytes\": %llu, \"dropped\": %llu, "
               "\"replay_max_abs_diff\": %g},\n",
               static_cast<unsigned long long>(ar.records),
               static_cast<unsigned long long>(ar.v1),
               static_cast<unsigned long long>(ar.v2),
               static_cast<unsigned long long>(ar.log.bytes),
               static_cast<unsigned long long>(ar.log.dropped),
               ar.max_abs_diff);
  std::fprintf(f, "  \"resources\": %s,\n",
               bench::ResourcesJson(ar.log.bytes).c_str());
  std::fprintf(f, "  \"max_abs_diff\": %g\n}\n", max_abs_diff);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::TraceJsonArg(argc, argv);
  const std::string json_path =
      bench::PositionalArg(argc, argv, 0, "BENCH_swap.json");
  bench::Banner("bench_swap",
                "zero-downtime hot-swap: no dropped requests, per-version "
                "bit-identical attributions, warm cache after the flip");

  Dataset ds = MakeLoanDataset(1200);

  // Two versions of the same named model, through the registry: the
  // artifacts round-trip disk exactly the way a production swap would.
  namespace fs = std::filesystem;
  const std::string reg_dir =
      (fs::temp_directory_path() / "xaidb_bench_swap_registry").string();
  std::error_code ec;
  fs::remove_all(reg_dir, ec);
  auto registry = ModelRegistry::OpenOrCreate(reg_dir);
  if (!registry.ok()) {
    std::fprintf(stderr, "registry: %s\n",
                 registry.status().ToString().c_str());
    return 1;
  }
  auto g1 = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
  auto g2 = GradientBoostedTrees::Fit(ds, {.num_rounds = 60});
  if (!g1.ok() || !g2.ok()) {
    std::fprintf(stderr, "fit failed\n");
    return 1;
  }
  for (const Model* m : {static_cast<const Model*>(&*g1),
                         static_cast<const Model*>(&*g2)}) {
    auto added = registry->Add(*m, "gbdt");
    if (!added.ok()) {
      std::fprintf(stderr, "add: %s\n", added.status().ToString().c_str());
      return 1;
    }
  }
  auto h1 = registry->Get("gbdt", 1);
  auto h2 = registry->Get("gbdt", 2);
  if (!h1.ok() || !h2.ok()) {
    std::fprintf(stderr, "get failed\n");
    return 1;
  }

  ExplainerConfig config;
  config.kernel_shap.max_background = 20;

  // Solo references per version: each distinct row explained alone,
  // straight through the factory — the ground truth each served response
  // must match bit-for-bit for the version it reports.
  std::vector<FeatureAttribution> solo_v1, solo_v2;
  const auto solo = [&](const ModelHandle& h,
                        std::vector<FeatureAttribution>& out) {
    auto explainer = MakeExplainer(ExplainerKind::kKernelShap, h, ds, config);
    if (!explainer.ok()) return false;
    for (size_t i = 0; i < kDistinct; ++i) {
      auto attr = (*explainer)->Explain(ds.row(i));
      if (!attr.ok()) return false;
      out.push_back(std::move(attr).value());
    }
    return true;
  };
  if (!solo(*h1, solo_v1) || !solo(*h2, solo_v2)) return 1;

  // Audit every served response through the swap: the ledger is what lets
  // the bench diff served *history* per version afterwards, not just the
  // responses it happened to hold in memory.
  const std::string audit_dir =
      (fs::temp_directory_path() / "xaidb_bench_swap_audit").string();
  fs::remove_all(audit_dir, ec);
  auto opened = obs::AuditLog::Open(audit_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "audit open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<obs::AuditLog> audit = std::move(opened).value();

  ExplanationServiceOptions opts;
  opts.config = config;
  opts.queue_capacity = kBurst + kLiveThreads;
  opts.max_batch = 64;
  opts.audit = audit;
  ExplanationService service(*h1, ds, opts);
  const ExplanationServiceStats s0 = service.stats();

  const PhaseResult cold = RunBurst(service, ds, kBurst);
  ModelSwapReport report;
  const PhaseResult live = RunLive(service, ds, *registry, *h2, &report);
  const PhaseResult warm = RunBurst(service, ds, kBurst);
  service.Shutdown();
  const ExplanationServiceStats end = service.stats();

  // Replay the served history out of the ledger: every record names the
  // version that served it, so each logged top-k is diffed against that
  // version's solo reference for the logged row — pre-flip records
  // against v1, post-flip against v2, regardless of when they landed.
  audit->Flush();
  AuditReplay ar;
  ar.log = audit->stats();
  {
    auto reader = obs::AuditReader::Open(audit_dir);
    if (!reader.ok()) {
      std::fprintf(stderr, "audit reader failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    const Status scan_st = reader->ForEach(
        obs::AuditQuery{}, [&](const obs::AuditRecord& rec) {
          ++ar.records;
          const std::vector<FeatureAttribution>* ref = nullptr;
          if (rec.model_version == 1) {
            ref = &solo_v1;
            ++ar.v1;
          } else if (rec.model_version == 2) {
            ref = &solo_v2;
            ++ar.v2;
          }
          size_t row = kDistinct;
          for (size_t i = 0; i < kDistinct; ++i) {
            if (rec.instance == ds.row(i)) {
              row = i;
              break;
            }
          }
          if (ref == nullptr || row == kDistinct) {
            // A record the bench cannot attribute is as bad as a diff.
            ar.max_abs_diff = std::max(ar.max_abs_diff, 1.0);
            return;
          }
          const FeatureAttribution& want = (*ref)[row];
          ar.max_abs_diff = std::max(
              ar.max_abs_diff, std::fabs(want.prediction - rec.prediction));
          ar.max_abs_diff = std::max(
              ar.max_abs_diff, std::fabs(want.base_value - rec.base_value));
          for (const obs::AuditTopAttr& a : rec.top_attr)
            ar.max_abs_diff =
                std::max(ar.max_abs_diff,
                         std::fabs(want.values[a.index] - a.value));
        });
    if (!scan_st.ok()) {
      std::fprintf(stderr, "audit scan failed: %s\n",
                   scan_st.ToString().c_str());
      return 1;
    }
  }

  const EvalCacheStats cold_cache = CacheDelta(s0, cold.stats);
  const EvalCacheStats warm_cache = CacheDelta(live.stats, warm.stats);

  // Version accounting + per-version bit-identity across all phases.
  size_t v1 = 0, v2 = 0, unknown = 0;
  double max_abs_diff = 0.0;
  for (const PhaseResult* r : {&cold, &live, &warm})
    max_abs_diff = std::max(
        max_abs_diff, CheckVersions(*r, solo_v1, solo_v2, &v1, &v2, &unknown));
  size_t live_v1 = 0, live_v2 = 0, live_unknown = 0;
  CheckVersions(live, solo_v1, solo_v2, &live_v1, &live_v2, &live_unknown);

  const size_t submitted = cold.submitted + live.submitted + warm.submitted;
  const size_t resolved = cold.attrs.size() + live.attrs.size() +
                          warm.attrs.size();
  const size_t dropped = submitted - resolved;

  bench::Row("%-18s %12s %12s %12s", "phase", "requests", "p50_us", "p99_us");
  bench::Row("%-18s %12zu %12.0f %12.0f", "cold (v1)", cold.attrs.size(),
             cold.p50_us, cold.p99_us);
  bench::Row("%-18s %12zu %12.0f %12.0f", "live (swap)", live.attrs.size(),
             live.p50_us, live.p99_us);
  bench::Row("%-18s %12zu %12.0f %12.0f", "warm (v2)", warm.attrs.size(),
             warm.p50_us, warm.p99_us);
  bench::Row("swap %s -> %s: warmed %zu families / %zu rows in %.1f ms; "
             "live traffic split v1=%zu v2=%zu",
             report.from.c_str(), report.to.c_str(), report.warmed_families,
             report.warmed_rows, report.warm_ms, live_v1, live_v2);
  bench::Row("dropped %zu of %zu; swaps=%llu; serving version now %d; "
             "max_abs_diff %g",
             dropped, submitted,
             static_cast<unsigned long long>(end.swaps), end.model_version,
             max_abs_diff);
  bench::ReportCacheStats("cache cold", cold_cache);
  bench::ReportCacheStats("cache post-swap", warm_cache);
  bench::Row("audit ledger: %llu records (v1=%llu, v2=%llu), %llu bytes, "
             "%llu dropped; served-history replay max_abs_diff %g",
             static_cast<unsigned long long>(ar.records),
             static_cast<unsigned long long>(ar.v1),
             static_cast<unsigned long long>(ar.v2),
             static_cast<unsigned long long>(ar.log.bytes),
             static_cast<unsigned long long>(ar.log.dropped),
             ar.max_abs_diff);

  bench::ReportMetrics();
  bench::MaybeWriteTrace(trace_path);
  WriteJson(json_path.c_str(), cold, live, warm, report, cold_cache,
            warm_cache, live_v1, live_v2, dropped, max_abs_diff, ar);

  bool ok = true;
  if (dropped != 0) {
    std::fprintf(stderr, "FAIL: %zu requests dropped through the swap\n",
                 dropped);
    ok = false;
  }
  if (unknown != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu responses report an unknown model version\n",
                 unknown);
    ok = false;
  }
  if (max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: attribution differs from its version's solo "
                 "reference (max_abs_diff %g)\n", max_abs_diff);
    ok = false;
  }
  if (end.swaps != 1 || end.model_version != 2) {
    std::fprintf(stderr, "FAIL: expected one swap to version 2 (swaps=%llu, "
                 "model_version=%d)\n",
                 static_cast<unsigned long long>(end.swaps),
                 end.model_version);
    ok = false;
  }
  if (live_v1 == 0 || live_v2 == 0) {
    std::fprintf(stderr,
                 "FAIL: live phase did not straddle the flip (v1=%zu, "
                 "v2=%zu) — the swap was not exercised under load\n",
                 live_v1, live_v2);
    ok = false;
  }
  if (warm_cache.hits == 0) {
    std::fprintf(stderr,
                 "FAIL: post-swap burst over warmed hot rows saw zero "
                 "cache hits\n");
    ok = false;
  }
  if (ar.max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: audit-ledger replay differs from per-version solo "
                 "references (max_abs_diff %g)\n", ar.max_abs_diff);
    ok = false;
  }
  if (ar.records != resolved || ar.log.dropped != 0 || ar.v1 == 0 ||
      ar.v2 == 0) {
    std::fprintf(stderr,
                 "FAIL: ledger does not cover the served history "
                 "(records=%llu vs %zu resolved, dropped=%llu, v1=%llu, "
                 "v2=%llu)\n",
                 static_cast<unsigned long long>(ar.records), resolved,
                 static_cast<unsigned long long>(ar.log.dropped),
                 static_cast<unsigned long long>(ar.v1),
                 static_cast<unsigned long long>(ar.v2));
    ok = false;
  }
  return ok ? 0 : 1;
}
