// E1 — "Computing Shapley values takes exponential time ... TreeSHAP
// introduces a polynomial-time algorithm" (tutorial Section 2.1.2).
//
// Sweeps the number of features d and times, per explained instance:
//   exact enumeration (2^d evals), permutation sampling, KernelSHAP,
//   TreeSHAP. Exact time should explode with d while TreeSHAP stays flat.
#include "bench_util.h"

#include "data/synthetic.h"
#include "feature/kernel_shap.h"
#include "feature/shapley.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E1: bench_shapley_scaling",
         "exact Shapley is exponential in d; TreeSHAP is polynomial "
         "(stays flat); sampling methods sit in between");
  Row("%4s %12s %12s %12s %12s", "d", "exact_ms", "perm_ms", "kshap_ms",
      "treeshap_ms");

  for (size_t d : {4, 6, 8, 10, 12, 14, 16}) {
    Dataset ds = MakeGaussianDataset(600, {.seed = 42, .dims = d});
    auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 30});
    if (!gbdt.ok()) return 1;
    const std::vector<double> x = ds.row(0);
    const int reps = 3;

    double exact_ms = -1.0;
    {
      TreePathGame game(gbdt->trees(), gbdt->learning_rate(), d, x);
      Timer t;
      for (int r = 0; r < reps; ++r) {
        auto phi = ExactShapley(game, 20);
        if (!phi.ok()) return 1;
      }
      exact_ms = t.ElapsedMs() / reps;
    }

    double perm_ms;
    {
      TreePathGame game(gbdt->trees(), gbdt->learning_rate(), d, x);
      Rng rng(7);
      Timer t;
      for (int r = 0; r < reps; ++r)
        PermutationShapley(game, 50, &rng);
      perm_ms = t.ElapsedMs() / reps;
    }

    double kshap_ms;
    {
      KernelShapOptions opts;
      opts.exact_up_to = 0;  // Always sample.
      opts.num_samples = 1024;
      opts.max_background = 20;
      KernelShapExplainer ks(*gbdt, ds, opts);
      Timer t;
      for (int r = 0; r < reps; ++r) {
        auto attr = ks.Explain(x);
        if (!attr.ok()) return 1;
      }
      kshap_ms = t.ElapsedMs() / reps;
    }

    double treeshap_ms;
    {
      TreeShapExplainer ts(*gbdt, ds.schema());
      Timer t;
      for (int r = 0; r < reps * 10; ++r) {
        auto attr = ts.Explain(x);
        if (!attr.ok()) return 1;
      }
      treeshap_ms = t.ElapsedMs() / (reps * 10);
    }

    Row("%4zu %12.2f %12.2f %12.2f %12.3f", d, exact_ms, perm_ms, kshap_ms,
        treeshap_ms);
  }
  Row("# expected shape: exact_ms grows ~2^d; treeshap_ms nearly constant.");
  ReportMetrics();
  return 0;
}
