// E9 — incremental-view-maintenance-style model updates beat retraining
// (tutorial Section 3, PrIU / HedgeCut). Deletes k tuples from a linear
// regression (Sherman-Morrison downdates) and a logistic regression (warm
// Newton refresh) and reports speedup plus parameter error vs full
// retraining.
#include <cmath>

#include "bench_util.h"
#include "data/synthetic.h"
#include "db/incremental.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E9: bench_incremental_update",
         "maintaining the model like a materialized view makes tuple "
         "deletion orders of magnitude cheaper than retraining, at "
         "negligible parameter error");

  // ---- Linear regression: exact downdates. ----
  {
    const size_t n = 50000;
    const size_t d = 12;
    std::vector<double> w;
    Dataset ds = MakeLinearRegressionDataset(n, d, 5, &w);
    Row("linear regression, n=%zu, d=%zu:", n, d);
    Row("%-8s %14s %14s %10s %14s", "k", "incr_ms", "retrain_ms", "speedup",
        "max_param_err");
    for (size_t k : {1, 8, 64, 512}) {
      auto inc = IncrementalLinearRegression::Fit(ds, {.lambda = 1e-6});
      if (!inc.ok()) return 1;
      std::vector<size_t> removed;
      for (size_t i = 0; i < k; ++i) removed.push_back(i * 7 + 1);

      Timer t_inc;
      for (size_t i : removed) {
        if (!inc->RemoveRow(ds.row(i), ds.y()[i]).ok()) return 1;
      }
      std::vector<double> theta_inc = inc->Theta();
      const double inc_ms = t_inc.ElapsedMs();

      Timer t_full;
      Dataset reduced = ds.RemoveRows(removed);
      auto full = LinearRegression::Fit(reduced, {.lambda = 1e-6});
      if (!full.ok()) return 1;
      const double full_ms = t_full.ElapsedMs();

      double err = 0.0;
      for (size_t j = 0; j < d; ++j)
        err = std::max(err, std::fabs(theta_inc[j] - full->weights()[j]));
      err = std::max(err, std::fabs(theta_inc[d] - full->intercept()));
      Row("%-8zu %14.2f %14.2f %9.0fx %14.2e", k, inc_ms, full_ms,
          full_ms / std::max(inc_ms, 1e-3), err);
    }
  }

  // ---- Logistic regression: warm Newton refresh. ----
  {
    const size_t n = 20000;
    Dataset ds = MakeGaussianDataset(n, {.seed = 7, .dims = 10});
    LogisticRegression::Options opts{.lambda = 1e-3, .max_iter = 50,
                                     .tol = 1e-10};
    Row("");
    Row("logistic regression, n=%zu, d=10 (2 warm Newton steps):", n);
    Row("%-8s %14s %14s %10s %14s", "k", "warm_ms", "retrain_ms", "speedup",
        "max_param_err");
    auto inc = IncrementalLogisticRegression::Fit(ds, opts);
    if (!inc.ok()) return 1;
    for (size_t k : {1, 16, 128, 512}) {
      std::vector<size_t> removed;
      for (size_t i = 0; i < k; ++i) removed.push_back(i * 11 + 3);

      Timer t_warm;
      auto warm = inc->ThetaAfterRemoval(removed, 2);
      const double warm_ms = t_warm.ElapsedMs();
      if (!warm.ok()) return 1;

      Timer t_cold;
      auto cold = LogisticRegression::Fit(ds.RemoveRows(removed), opts);
      const double cold_ms = t_cold.ElapsedMs();
      if (!cold.ok()) return 1;

      double err = 0.0;
      for (size_t a = 0; a < warm->size(); ++a)
        err = std::max(err, std::fabs((*warm)[a] - cold->theta()[a]));
      Row("%-8zu %14.2f %14.2f %9.1fx %14.2e", k, warm_ms, cold_ms,
          cold_ms / std::max(warm_ms, 1e-3), err);
    }
  }
  Row("# expected shape: linear speedup ~n/k-scale and error ~1e-10; "
      "logistic warm refresh several-x faster at ~1e-5 error.");
  return 0;
}
