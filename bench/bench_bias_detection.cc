// E14 — XAI localizes bias (tutorial Section 1, motivation (3): XAI
// should facilitate "the identification of sources of harms such as bias
// and discrimination"). Sweeps the strength of injected gender bias in
// the lender and shows three audits rising together: the demographic-
// parity gap (harm), the sensitive feature's global SHAP importance
// (localization), and its importance *rank* among all features.
#include <algorithm>

#include "bench_util.h"
#include "data/synthetic.h"
#include "eval/fairness.h"
#include "feature/tree_shap.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E14: bench_bias_detection",
         "as injected discrimination grows, the sensitive feature's SHAP "
         "importance rises from noise-level to top-3 — attribution audits "
         "localize the harm the parity gap only measures");
  const size_t kGender = 6;
  Row("%-12s %12s %16s %14s", "bias_logodds", "parity_gap",
      "shap(gender)", "gender_rank");
  for (double bias : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    Dataset ds = MakeLoanDataset(3000, {.seed = 11, .gender_bias = bias});
    auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 50});
    if (!gbdt.ok()) return 1;
    auto audit = AuditGroupFairness(*gbdt, ds, kGender);
    if (!audit.ok()) return 1;
    TreeShapExplainer explainer(*gbdt, ds.schema());
    std::vector<double> imp = GlobalMeanAbsShap(&explainer, ds, 150);
    // Rank of gender by importance (1 = most important).
    size_t rank = 1;
    for (size_t j = 0; j < imp.size(); ++j)
      if (j != kGender && imp[j] > imp[kGender]) ++rank;
    Row("%-12.1f %12.3f %16.4f %14zu", bias,
        audit->demographic_parity_gap, imp[kGender], rank);
  }
  Row("# expected shape: all three columns increase together; at bias 0 "
      "gender ranks last, at bias 3 it reaches the top ranks.");
  return 0;
}
