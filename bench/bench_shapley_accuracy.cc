// E2 — TreeSHAP is *exact* for trees, while sampling approximations carry
// error that shrinks with budget (tutorial Section 2.1.2: approximations
// "lead to certain issues with the attributions provided").
//
// Reports max-abs error and Spearman rank correlation against exact
// enumeration of the tree conditional-expectation game, for TreeSHAP and
// for permutation sampling at several budgets.
#include <cmath>

#include "bench_util.h"
#include "data/synthetic.h"
#include "feature/shapley.h"
#include "feature/tree_shap.h"
#include "math/stats.h"
#include "model/gbdt.h"

using namespace xai;
using namespace xai::bench;

int main() {
  Banner("E2: bench_shapley_accuracy",
         "TreeSHAP reproduces exact Shapley values to machine precision; "
         "Monte-Carlo error decays ~1/sqrt(budget)");

  const size_t d = 10;
  Dataset ds = MakeGaussianDataset(800, {.seed = 3, .dims = d, .rho = 0.3});
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!gbdt.ok()) return 1;

  const int kInstances = 10;
  Row("%-24s %14s %12s", "method", "max_abs_err", "rank_corr");

  // Exact reference per instance.
  std::vector<std::vector<double>> exact(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    TreePathGame game(gbdt->trees(), gbdt->learning_rate(), d,
                      ds.row(static_cast<size_t>(i)));
    auto phi = ExactShapley(game, 20);
    if (!phi.ok()) return 1;
    exact[i] = *phi;
  }

  auto evaluate = [&](const char* name,
                      const std::function<std::vector<double>(
                          const std::vector<double>&, int)>& method) {
    double max_err = 0.0;
    double corr = 0.0;
    for (int i = 0; i < kInstances; ++i) {
      std::vector<double> approx =
          method(ds.row(static_cast<size_t>(i)), i);
      for (size_t j = 0; j < d; ++j)
        max_err = std::max(max_err, std::fabs(approx[j] - exact[i][j]));
      corr += SpearmanCorrelation(approx, exact[i]) / kInstances;
    }
    Row("%-24s %14.3e %12.4f", name, max_err, corr);
  };

  evaluate("treeshap", [&](const std::vector<double>& x, int) {
    return EnsembleTreeShap(gbdt->trees(), gbdt->learning_rate(), d, x);
  });
  for (int budget : {10, 50, 250, 1000}) {
    char name[64];
    std::snprintf(name, sizeof(name), "permutation(%d)", budget);
    evaluate(name, [&](const std::vector<double>& x, int i) {
      TreePathGame game(gbdt->trees(), gbdt->learning_rate(), d, x);
      Rng rng(100 + static_cast<uint64_t>(i));
      return PermutationShapley(game, budget, &rng);
    });
  }
  Row("# expected shape: treeshap error ~1e-12; permutation error drops "
      "with budget but never reaches it.");
  return 0;
}
