// E15 — "the assigned values may not be meaningful for the data points in
// the context of a new dataset. Distributional Shapley addresses these
// concerns" (tutorial Section 2.3.1, Ghorbani/Kim/Zou & Kwon et al.).
//
// Protocol: value the same 20 probe points inside two *different* datasets
// drawn from the same distribution. Dataset-bound TMC Data Shapley values
// decorrelate across contexts; distributional values (defined w.r.t. the
// distribution itself) transfer.
#include "bench_util.h"
#include "data/synthetic.h"
#include "math/stats.h"
#include "model/logistic_regression.h"
#include "model/metrics.h"
#include "valuation/data_valuation.h"
#include "valuation/distributional_shapley.h"

using namespace xai;
using namespace xai::bench;

namespace {

/// Concatenate probes + context rows into one training set.
Dataset Stack(const Dataset& probes, const Dataset& context) {
  Matrix x = probes.x();
  std::vector<double> y = probes.y();
  for (size_t i = 0; i < context.n(); ++i) {
    x.AppendRow(context.row(i));
    y.push_back(context.y()[i]);
  }
  return Dataset(probes.schema(), std::move(x), std::move(y));
}

}  // namespace

int main() {
  Banner("E15: bench_distributional",
         "dataset-bound Data Shapley values of the same points decorrelate "
         "across datasets; distributional values transfer");
  // Heterogeneous probes: half keep correct labels (positive value), half
  // are mislabeled (negative value), plus within-group variation from the
  // margin — so there is real signal for the values to transfer.
  const size_t kProbes = 20;
  Dataset probes = MakeGaussianDataset(kProbes, {.seed = 1, .dims = 3});
  for (size_t i = 0; i < kProbes; i += 2)
    probes.mutable_y()[i] = probes.y()[i] >= 0.5 ? 0.0 : 1.0;
  Dataset context_a = MakeGaussianDataset(40, {.seed = 2, .dims = 3});
  Dataset context_b = MakeGaussianDataset(40, {.seed = 3, .dims = 3});
  Dataset validation = MakeGaussianDataset(600, {.seed = 4, .dims = 3});
  TrainEvalFn train_eval = [&](const Dataset& subset) {
    if (subset.n() < 4) return 0.5;
    auto m = LogisticRegression::Fit(subset,
                                     {.lambda = 1e-2, .max_iter = 12});
    return m.ok() ? EvaluateAccuracy(*m, validation) : 0.5;
  };

  // Dataset-bound TMC values of the probe points in context A vs B.
  auto tmc_probe_values = [&](const Dataset& context, uint64_t seed) {
    Dataset train = Stack(probes, context);
    std::vector<double> all = TmcDataShapley(
        train, train_eval, {.num_permutations = 40, .seed = seed});
    return std::vector<double>(all.begin(),
                               all.begin() + static_cast<long>(kProbes));
  };
  Timer t_tmc;
  std::vector<double> tmc_a = tmc_probe_values(context_a, 11);
  std::vector<double> tmc_b = tmc_probe_values(context_b, 12);
  const double tmc_ms = t_tmc.ElapsedMs();

  // Distributional values against the two pools.
  auto dist_probe_values = [&](const Dataset& pool, uint64_t seed) {
    DistributionalShapleyOptions opts;
    opts.cardinality = 15;
    opts.num_draws = 400;
    opts.seed = seed;
    std::vector<double> out;
    auto vals = DistributionalShapleyValues(pool, probes, train_eval, opts);
    out.reserve(vals.size());
    for (const auto& v : vals) out.push_back(v.value);
    return out;
  };
  Timer t_dist;
  std::vector<double> dist_a = dist_probe_values(context_a, 21);
  std::vector<double> dist_b = dist_probe_values(context_b, 22);
  const double dist_ms = t_dist.ElapsedMs();

  Row("%-28s %18s %12s", "method", "cross-context corr", "ms");
  Row("%-28s %18.3f %12.0f", "TMC Data Shapley (bound)",
      PearsonCorrelation(tmc_a, tmc_b), tmc_ms);
  Row("%-28s %18.3f %12.0f", "Distributional Shapley",
      PearsonCorrelation(dist_a, dist_b), dist_ms);
  Row("# expected shape: distributional correlation clearly higher — the "
      "same point keeps (roughly) its value under a fresh sample of the "
      "distribution.");
  return 0;
}
