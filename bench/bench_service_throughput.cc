// bench_service_throughput — the serving-layer claim: coalescing pending
// explanation requests into batched sweeps sustains >= 2x the request
// throughput of one-at-a-time serving, with bit-identical attributions.
//
// Workload: GBDT over the loan dataset, KernelSHAP requests with hot-row
// repetition (kRequests requests over kDistinct distinct rows — the
// "dashboard refresh" shape where many clients ask about the same
// instances). The baseline submits one request and waits for it before
// submitting the next (coalescing off); the coalesced run submits the
// whole burst and lets the dispatcher batch compatible requests and
// answer duplicate instances from one computation.
//
// A second ("warm") burst replays the same hot rows through the same
// service: its per-key coalition-value cache was filled by the cold burst,
// so the warm sweeps skip their model evaluations. The JSON records cold
// and warm sweep latency plus per-phase cache hit rates.
//
// Writes machine-readable results to BENCH_serve.json (or the first
// positional argument). With --trace-json <path> the flight recorder is
// turned on and the full request timeline — enqueue, dequeue, coalesced
// sweep, ParallelFor chunks — is exported as Chrome trace JSON, loadable
// in Perfetto. Exits non-zero if any coalesced attribution differs from
// the solo (Explain-one-row) attribution by even one bit.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "model/gbdt.h"
#include "obs/audit.h"
#include "serve/service.h"

using namespace xai;

namespace {

constexpr size_t kRequests = 384;
constexpr size_t kDistinct = 48;

struct RunResult {
  double wall_ms = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  ExplanationServiceStats stats;
  std::vector<FeatureAttribution> attrs;          // per request
  std::vector<ExplanationBreakdown> breakdowns;   // per request
};

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = std::min(v.size() - 1,
                            static_cast<size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

ExplanationRequest MakeRequest(const Dataset& ds, size_t i) {
  ExplanationRequest req;
  req.instance = ds.row(i % kDistinct);
  req.kind = ExplainerKind::kKernelShap;
  return req;
}

/// One-at-a-time baseline: next request is submitted only after the
/// previous one resolved, so every request pays the full per-sweep setup.
RunResult RunUncoalesced(const ModelHandle& model, const Dataset& ds,
                         const ExplainerConfig& config) {
  ExplanationServiceOptions opts;
  opts.config = config;
  opts.coalesce = false;
  // Keep the baseline free of the coalition-value cache too: this row is
  // the "no serving-layer smarts at all" anchor the speedups are against.
  opts.cache_size = 0;
  ExplanationService service(model, ds, opts);
  RunResult out;
  std::vector<double> lat;
  lat.reserve(kRequests);
  bench::Timer total;
  for (size_t i = 0; i < kRequests; ++i) {
    bench::Timer one;
    auto fut = service.Submit(MakeRequest(ds, i));
    Result<ExplanationResponse> r = fut.get();
    lat.push_back(one.ElapsedMs() * 1e3);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.breakdowns.push_back(r.value().breakdown);
    out.attrs.push_back(std::move(r).value().attribution);
  }
  out.wall_ms = total.ElapsedMs();
  service.Shutdown();
  out.stats = service.stats();
  out.p50_us = Quantile(lat, 0.50);
  out.p99_us = Quantile(lat, 0.99);
  return out;
}

/// Coalesced burst through an existing (possibly warm) service: the whole
/// burst is enqueued up front; per-request latency is measured in the
/// completion callback (dispatcher thread — each callback writes its own
/// slot, the atomic counter publishes them). Running it twice against one
/// service gives the cold-vs-warm comparison: the first burst fills the
/// per-key coalition-value cache, the second answers from it.
RunResult RunBurst(ExplanationService& service, const Dataset& ds) {
  RunResult out;
  std::vector<double> lat(kRequests, 0.0);
  std::atomic<size_t> done{0};
  std::vector<std::future<Result<ExplanationResponse>>> futures;
  futures.reserve(kRequests);
  bench::Timer total;
  std::vector<bench::Timer> submit_time(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    submit_time[i] = bench::Timer();
    futures.push_back(service.Submit(
        MakeRequest(ds, i), [&, i](const Result<ExplanationResponse>&) {
          lat[i] = submit_time[i].ElapsedMs() * 1e3;
          done.fetch_add(1, std::memory_order_release);
        }));
  }
  for (auto& f : futures) {
    Result<ExplanationResponse> r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.breakdowns.push_back(r.value().breakdown);
    out.attrs.push_back(std::move(r).value().attribution);
  }
  while (done.load(std::memory_order_acquire) < kRequests) {}
  out.wall_ms = total.ElapsedMs();
  // Stats are published before any promise is fulfilled, so with every
  // future resolved this snapshot covers the whole burst — no Shutdown
  // needed (the service stays up for the warm wave).
  out.stats = service.stats();
  out.p50_us = Quantile(lat, 0.50);
  out.p99_us = Quantile(lat, 0.99);
  return out;
}

/// Cache counters attributable to one burst: the difference between the
/// service-stats snapshots taken after and before it.
EvalCacheStats CacheDelta(const ExplanationServiceStats& before,
                          const ExplanationServiceStats& after) {
  EvalCacheStats d;
  d.hits = after.cache_hits - before.cache_hits;
  d.misses = after.cache_misses - before.cache_misses;
  d.evictions = after.cache_evictions - before.cache_evictions;
  d.entries = after.cache_entries;  // occupancy is a level, not a flow
  return d;
}

/// Per-request breakdown percentiles for one run, pulled straight from the
/// ExplanationBreakdown every completed request now carries.
struct BreakdownSummary {
  double queue_p50_ms = 0.0, queue_p99_ms = 0.0;
  double sweep_p50_ms = 0.0, sweep_p99_ms = 0.0;
  double mean_batch = 0.0;
};

BreakdownSummary Summarize(const std::vector<ExplanationBreakdown>& b) {
  BreakdownSummary s;
  if (b.empty()) return s;
  std::vector<double> queue, sweep;
  double batch_total = 0.0;
  for (const ExplanationBreakdown& x : b) {
    queue.push_back(x.queue_ms);
    sweep.push_back(x.sweep_ms);
    batch_total += static_cast<double>(x.coalesce_batch_size);
  }
  s.queue_p50_ms = Quantile(queue, 0.50);
  s.queue_p99_ms = Quantile(queue, 0.99);
  s.sweep_p50_ms = Quantile(sweep, 0.50);
  s.sweep_p99_ms = Quantile(sweep, 0.99);
  s.mean_batch = batch_total / static_cast<double>(b.size());
  return s;
}

/// The audited wave's numbers: steady-state throughput with the ledger on
/// next to the same measurement with it off, plus what the ledger wrote
/// and how the replay of it against the same model came out.
struct AuditedSummary {
  double baseline_rps = 0.0;  ///< best warm burst, auditing off
  double audited_rps = 0.0;   ///< best warm burst, auditing on
  double overhead_pct = 0.0;
  ::xai::obs::AuditLogStats log;
  uint64_t replay_records = 0;
  double replay_max_abs_diff = 0.0;
};

void WriteJson(const char* path, double unc_rps, double co_rps,
               double warm_rps, const RunResult& unc, const RunResult& co,
               const RunResult& warm, const EvalCacheStats& cold_cache,
               const EvalCacheStats& warm_cache, double max_abs_diff,
               const AuditedSummary& au, uint64_t audit_bytes) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  const BreakdownSummary ub = Summarize(unc.breakdowns);
  const BreakdownSummary cb = Summarize(co.breakdowns);
  std::fprintf(f, "{\n  \"bench\": \"bench_service_throughput\",\n");
  std::fprintf(f, "  \"workload\": \"GBDT + KernelSHAP, %zu requests over "
               "%zu distinct rows\",\n", kRequests, kDistinct);
  std::fprintf(f, "  \"uncoalesced\": {\"requests_per_sec\": %.1f, "
               "\"p50_us\": %.0f, \"p99_us\": %.0f, "
               "\"queue_wait_p50_ms\": %.3f, \"queue_wait_p99_ms\": %.3f, "
               "\"sweep_p50_ms\": %.3f, \"sweep_p99_ms\": %.3f},\n",
               unc_rps, unc.p50_us, unc.p99_us, ub.queue_p50_ms,
               ub.queue_p99_ms, ub.sweep_p50_ms, ub.sweep_p99_ms);
  std::fprintf(f, "  \"coalesced\": {\"requests_per_sec\": %.1f, "
               "\"p50_us\": %.0f, \"p99_us\": %.0f, \"batches\": %llu, "
               "\"duplicates_served_from_batch\": %llu, "
               "\"queue_wait_p50_ms\": %.3f, \"queue_wait_p99_ms\": %.3f, "
               "\"sweep_p50_ms\": %.3f, \"sweep_p99_ms\": %.3f, "
               "\"mean_batch_size\": %.1f},\n",
               co_rps, co.p50_us, co.p99_us,
               static_cast<unsigned long long>(co.stats.batches),
               static_cast<unsigned long long>(co.stats.coalesced_duplicates),
               cb.queue_p50_ms, cb.queue_p99_ms, cb.sweep_p50_ms,
               cb.sweep_p99_ms, cb.mean_batch);
  const BreakdownSummary wb = Summarize(warm.breakdowns);
  std::fprintf(f, "  \"warm\": {\"requests_per_sec\": %.1f, "
               "\"p50_us\": %.0f, \"p99_us\": %.0f, "
               "\"sweep_p50_ms\": %.3f, \"sweep_p99_ms\": %.3f},\n",
               warm_rps, warm.p50_us, warm.p99_us, wb.sweep_p50_ms,
               wb.sweep_p99_ms);
  std::fprintf(f, "  \"cache\": {\"cold\": %s, \"warm\": %s},\n",
               bench::CacheStatsJson(cold_cache).c_str(),
               bench::CacheStatsJson(warm_cache).c_str());
  std::fprintf(f, "  \"warm_over_cold_sweep_speedup\": %.2f,\n",
               wb.sweep_p50_ms > 0.0 ? cb.sweep_p50_ms / wb.sweep_p50_ms
                                     : 0.0);
  std::fprintf(f, "  \"speedup\": %.2f,\n", co_rps / unc_rps);
  std::fprintf(f, "  \"audited\": {\"requests_per_sec\": %.1f, "
               "\"baseline_requests_per_sec\": %.1f, "
               "\"overhead_pct\": %.2f, \"records\": %llu, "
               "\"bytes\": %llu, \"dropped\": %llu, \"fsyncs\": %llu, "
               "\"segments\": %llu, \"replay_records\": %llu, "
               "\"replay_max_abs_diff\": %g},\n",
               au.audited_rps, au.baseline_rps, au.overhead_pct,
               static_cast<unsigned long long>(au.log.written),
               static_cast<unsigned long long>(au.log.bytes),
               static_cast<unsigned long long>(au.log.dropped),
               static_cast<unsigned long long>(au.log.fsyncs),
               static_cast<unsigned long long>(au.log.segments),
               static_cast<unsigned long long>(au.replay_records),
               au.replay_max_abs_diff);
  std::fprintf(f, "  \"resources\": %s,\n",
               bench::ResourcesJson(audit_bytes).c_str());
  std::fprintf(f, "  \"max_abs_diff\": %g\n}\n", max_abs_diff);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::TraceJsonArg(argc, argv);
  const std::string json_path =
      bench::PositionalArg(argc, argv, 0, "BENCH_serve.json");
  bench::Banner("bench_service_throughput",
                "request coalescing >= 2x one-at-a-time serving, "
                "bit-identical attributions");

  Dataset ds = MakeLoanDataset(1500);
  auto gbdt = GradientBoostedTrees::Fit(ds, {.num_rounds = 40});
  if (!gbdt.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", gbdt.status().ToString().c_str());
    return 1;
  }
  ExplainerConfig config;
  config.kernel_shap.max_background = 20;

  // Ground truth: each distinct row explained alone, straight through the
  // factory explainer — what a caller with no serving layer would get.
  std::vector<FeatureAttribution> solo;
  {
    auto explainer =
        MakeExplainer(ExplainerKind::kKernelShap,
                      ModelHandle::Borrow(*gbdt), ds, config);
    if (!explainer.ok()) return 1;
    for (size_t i = 0; i < kDistinct; ++i) {
      auto attr = (*explainer)->Explain(ds.row(i));
      if (!attr.ok()) return 1;
      solo.push_back(std::move(attr).value());
    }
  }

  const RunResult unc =
      RunUncoalesced(ModelHandle::Borrow(*gbdt), ds, config);

  // Coalesced service, cache on (the option default): the cold burst
  // fills the per-key coalition-value cache, the warm burst replays the
  // same hot rows against it — the serving layer's steady state.
  ExplanationServiceOptions copts;
  copts.config = config;
  copts.queue_capacity = kRequests;
  // Let one sweep absorb the whole backlog: with a burst arriving faster
  // than sweeps complete, a small max_batch would re-evaluate the same 48
  // hot rows once per batch instead of once per backlog.
  copts.max_batch = kRequests;
  ExplanationService service(ModelHandle::Borrow(*gbdt), ds, copts);
  const ExplanationServiceStats s0 = service.stats();
  const RunResult co = RunBurst(service, ds);
  const RunResult warm = RunBurst(service, ds);
  const EvalCacheStats cold_cache = CacheDelta(s0, co.stats);
  const EvalCacheStats warm_cache = CacheDelta(co.stats, warm.stats);

  // --- audited wave: the same workload with the provenance ledger on ----
  // A fresh service (so its caches start cold like the plain one's did)
  // writes every served response into a crash-safe audit ledger; the
  // steady-state throughput comparison is best-warm-burst vs
  // best-warm-burst.
  namespace fs = std::filesystem;
  const std::string audit_dir =
      (fs::temp_directory_path() / "xaidb_bench_serve_audit").string();
  std::error_code fs_ec;
  fs::remove_all(audit_dir, fs_ec);  // stale ledgers would pollute replay
  auto opened = obs::AuditLog::Open(audit_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "audit open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<obs::AuditLog> audit = std::move(opened).value();
  ExplanationServiceOptions aopts = copts;
  aopts.audit = audit;
  AuditedSummary au;
  {
    ExplanationService aservice(ModelHandle::Borrow(*gbdt), ds, aopts);
    RunBurst(aservice, ds);  // cold: fill the caches like the plain run
    // Interleave audited and plain warm bursts and take each side's best:
    // both services are warm, so alternating cancels clock-speed and
    // cache-state drift that a sequential A-then-B measurement would book
    // as "overhead". (`service` is still up — it shuts down below.)
    double plain_best_ms = warm.wall_ms;
    double audited_best_ms = RunBurst(aservice, ds).wall_ms;
    // Enough rounds that each side's best approaches its true floor: one
    // warm burst is single-digit milliseconds, so scheduler noise on a
    // small machine swamps any single pair of samples.
    for (int r = 0; r < 16; ++r) {
      plain_best_ms = std::min(plain_best_ms, RunBurst(service, ds).wall_ms);
      audited_best_ms =
          std::min(audited_best_ms, RunBurst(aservice, ds).wall_ms);
    }
    aservice.Shutdown();
    au.audited_rps = static_cast<double>(kRequests) / (audited_best_ms / 1e3);
    au.baseline_rps = static_cast<double>(kRequests) / (plain_best_ms / 1e3);
  }
  service.Shutdown();
  audit->Flush();
  au.log = audit->stats();
  au.overhead_pct = 100.0 * (1.0 - au.audited_rps / au.baseline_rps);

  // Replay gate: re-execute every logged row against the same model
  // through a fresh (unaudited) service and demand bit-identity between
  // what the ledger says was served and what serving produces now.
  {
    auto reader = obs::AuditReader::Open(audit_dir);
    if (!reader.ok()) {
      std::fprintf(stderr, "audit reader failed: %s\n",
                   reader.status().ToString().c_str());
      return 1;
    }
    auto records = reader->ReadAll();
    if (!records.ok()) return 1;
    ExplanationService rservice(ModelHandle::Borrow(*gbdt), ds, copts);
    std::map<std::vector<double>, FeatureAttribution> replayed;
    for (const obs::AuditRecord& rec : records.value()) {
      auto it = replayed.find(rec.instance);
      if (it == replayed.end()) {
        ExplanationRequest req;
        req.instance = rec.instance;
        req.kind = static_cast<ExplainerKind>(rec.kind);
        req.budget = rec.budget;
        Result<ExplanationResponse> r = rservice.Submit(std::move(req)).get();
        if (!r.ok()) {
          std::fprintf(stderr, "replay failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        it = replayed
                 .emplace(rec.instance,
                          std::move(r).value().attribution)
                 .first;
      }
      const FeatureAttribution& fa = it->second;
      au.replay_max_abs_diff = std::max(
          au.replay_max_abs_diff, std::fabs(fa.prediction - rec.prediction));
      au.replay_max_abs_diff = std::max(
          au.replay_max_abs_diff, std::fabs(fa.base_value - rec.base_value));
      for (const obs::AuditTopAttr& a : rec.top_attr)
        au.replay_max_abs_diff =
            std::max(au.replay_max_abs_diff,
                     std::fabs(fa.values[a.index] - a.value));
      ++au.replay_records;
    }
  }

  const double unc_rps =
      static_cast<double>(kRequests) / (unc.wall_ms / 1e3);
  const double co_rps = static_cast<double>(kRequests) / (co.wall_ms / 1e3);
  const double warm_rps =
      static_cast<double>(kRequests) / (warm.wall_ms / 1e3);

  // Determinism contract: coalesced == uncoalesced == warm == solo,
  // bitwise — the cache may only change speed, never a bit.
  double max_abs_diff = 0.0;
  for (size_t i = 0; i < kRequests; ++i) {
    const FeatureAttribution& want = solo[i % kDistinct];
    for (const auto* got : {&unc.attrs[i], &co.attrs[i], &warm.attrs[i]})
      for (size_t j = 0; j < want.values.size(); ++j)
        max_abs_diff = std::max(
            max_abs_diff, std::fabs(got->values[j] - want.values[j]));
  }

  bench::Row("%-14s %14s %12s %12s", "mode", "requests/sec", "p50_us",
             "p99_us");
  bench::Row("%-14s %14.1f %12.0f %12.0f", "uncoalesced", unc_rps,
             unc.p50_us, unc.p99_us);
  bench::Row("%-14s %14.1f %12.0f %12.0f", "coalesced", co_rps, co.p50_us,
             co.p99_us);
  bench::Row("%-14s %14.1f %12.0f %12.0f", "warm", warm_rps, warm.p50_us,
             warm.p99_us);
  bench::Row("speedup %.2fx; %llu batches; %llu requests answered from a "
             "duplicate's computation; max_abs_diff %g",
             co_rps / unc_rps,
             static_cast<unsigned long long>(co.stats.batches),
             static_cast<unsigned long long>(co.stats.coalesced_duplicates),
             max_abs_diff);
  const BreakdownSummary cb = Summarize(co.breakdowns);
  const BreakdownSummary wb = Summarize(warm.breakdowns);
  bench::Row("coalesced breakdown: queue_wait p50/p99 %.3f/%.3f ms; "
             "sweep p50/p99 %.3f/%.3f ms; mean batch %.1f",
             cb.queue_p50_ms, cb.queue_p99_ms, cb.sweep_p50_ms,
             cb.sweep_p99_ms, cb.mean_batch);
  bench::Row("warm sweep p50/p99 %.3f/%.3f ms (%.2fx over cold sweep p50)",
             wb.sweep_p50_ms, wb.sweep_p99_ms,
             wb.sweep_p50_ms > 0.0 ? cb.sweep_p50_ms / wb.sweep_p50_ms
                                   : 0.0);
  bench::ReportCacheStats("cache cold", cold_cache);
  bench::ReportCacheStats("cache warm", warm_cache);
  bench::Row("audited: %.1f req/s vs %.1f req/s off (%.2f%% overhead); "
             "%llu records / %llu bytes / %llu dropped in %llu segment(s); "
             "replay of %llu records: max_abs_diff %g",
             au.audited_rps, au.baseline_rps, au.overhead_pct,
             static_cast<unsigned long long>(au.log.written),
             static_cast<unsigned long long>(au.log.bytes),
             static_cast<unsigned long long>(au.log.dropped),
             static_cast<unsigned long long>(au.log.segments),
             static_cast<unsigned long long>(au.replay_records),
             au.replay_max_abs_diff);

  bench::ReportMetrics();
  bench::MaybeWriteTrace(trace_path);
  WriteJson(json_path.c_str(), unc_rps, co_rps, warm_rps, unc, co, warm,
            cold_cache, warm_cache, max_abs_diff, au, au.log.bytes);
  if (max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: coalesced attributions differ from solo serving\n");
    return 1;
  }
  if (au.replay_max_abs_diff != 0.0) {
    std::fprintf(stderr,
                 "FAIL: audit-ledger replay differs from served history\n");
    return 1;
  }
  return 0;
}
