#ifndef XAIDB_XAI_H_
#define XAIDB_XAI_H_

/// Umbrella header: pulls in the full public API of xaidb. Prefer the
/// individual headers in production code; this is for quick starts,
/// notebooks-style experimentation and the examples.

// Substrates.
#include "common/result.h"     // IWYU pragma: export
#include "common/rng.h"        // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export
#include "data/csv.h"          // IWYU pragma: export
#include "data/dataset.h"      // IWYU pragma: export
#include "data/synthetic.h"    // IWYU pragma: export
#include "data/transforms.h"   // IWYU pragma: export
#include "math/gaussian.h"     // IWYU pragma: export
#include "math/linalg.h"       // IWYU pragma: export
#include "math/matrix.h"       // IWYU pragma: export
#include "math/stats.h"        // IWYU pragma: export
#include "obs/obs.h"           // IWYU pragma: export

// Models.
#include "model/decision_tree.h"        // IWYU pragma: export
#include "model/gbdt.h"                 // IWYU pragma: export
#include "model/knn.h"                  // IWYU pragma: export
#include "model/linear_regression.h"    // IWYU pragma: export
#include "model/logistic_regression.h"  // IWYU pragma: export
#include "model/metrics.h"              // IWYU pragma: export
#include "model/model.h"                // IWYU pragma: export
#include "model/naive_bayes.h"          // IWYU pragma: export
#include "model/serialize.h"            // IWYU pragma: export

// Causal and relational substrates.
#include "causal/dag.h"                    // IWYU pragma: export
#include "causal/scm.h"                    // IWYU pragma: export
#include "relational/provenance_poly.h"    // IWYU pragma: export
#include "relational/query.h"              // IWYU pragma: export
#include "relational/relation.h"           // IWYU pragma: export

// Feature-based explanations (tutorial 2.1).
#include "feature/causal_shapley.h"         // IWYU pragma: export
#include "feature/cxplain.h"                // IWYU pragma: export
#include "feature/global_explanations.h"    // IWYU pragma: export
#include "feature/integrated_gradients.h"   // IWYU pragma: export
#include "feature/kernel_shap.h"            // IWYU pragma: export
#include "feature/lime.h"                   // IWYU pragma: export
#include "feature/necessity_sufficiency.h"  // IWYU pragma: export
#include "feature/prototypes.h"             // IWYU pragma: export
#include "feature/qii.h"                    // IWYU pragma: export
#include "feature/shapley.h"                // IWYU pragma: export
#include "feature/shapley_flow.h"           // IWYU pragma: export
#include "feature/surrogate.h"              // IWYU pragma: export
#include "feature/tree_shap.h"              // IWYU pragma: export

// Counterfactuals and recourse (2.1.4).
#include "cf/cf_common.h"  // IWYU pragma: export
#include "cf/dice.h"       // IWYU pragma: export
#include "cf/geco.h"       // IWYU pragma: export
#include "cf/recourse.h"   // IWYU pragma: export

// Rule-based and logic-based explanations (2.2).
#include "rule/anchors.h"            // IWYU pragma: export
#include "rule/decision_set.h"       // IWYU pragma: export
#include "rule/itemset.h"            // IWYU pragma: export
#include "rule/sufficient_reason.h"  // IWYU pragma: export

// Training-data-based explanations (2.3).
#include "valuation/cooks_distance.h"          // IWYU pragma: export
#include "valuation/data_valuation.h"          // IWYU pragma: export
#include "valuation/distributional_shapley.h"  // IWYU pragma: export
#include "valuation/gbdt_influence.h"          // IWYU pragma: export
#include "valuation/influence.h"               // IWYU pragma: export

// Data-management opportunities (Section 3).
#include "db/bias_explain.h"        // IWYU pragma: export
#include "db/complaint_debug.h"     // IWYU pragma: export
#include "db/incremental.h"         // IWYU pragma: export
#include "db/provenance_explain.h"  // IWYU pragma: export
#include "db/query_shapley.h"       // IWYU pragma: export
#include "db/repair_shapley.h"      // IWYU pragma: export
#include "db/unlearning.h"          // IWYU pragma: export

// Evaluation & vulnerabilities (Section 3).
#include "eval/adversarial.h"  // IWYU pragma: export
#include "eval/fairness.h"     // IWYU pragma: export
#include "eval/fidelity.h"     // IWYU pragma: export
#include "eval/robustness.h"   // IWYU pragma: export
#include "eval/stability.h"    // IWYU pragma: export

// Unstructured data (2.4).
#include "image/evidence_counterfactual.h"  // IWYU pragma: export
#include "image/grid_image.h"               // IWYU pragma: export
#include "text/anchors_text.h"              // IWYU pragma: export
#include "text/lime_text.h"                 // IWYU pragma: export
#include "text/text_data.h"                 // IWYU pragma: export
#include "text/vocab.h"                     // IWYU pragma: export

#endif  // XAIDB_XAI_H_
