#ifndef XAIDB_COMMON_RNG_H_
#define XAIDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xai {

/// Deterministic, fast pseudo-random number generator (xoshiro256++ seeded
/// via splitmix64). All stochastic components in the library take an Rng (or
/// a seed) explicitly so experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit integer.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextInt(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Index sampled from unnormalized non-negative weights.
  /// Returns weights.size()-1 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// k distinct indices sampled uniformly from {0, ..., n-1}, k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent generator (for parallel or nested use).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace xai

#endif  // XAIDB_COMMON_RNG_H_
