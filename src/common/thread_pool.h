#ifndef XAIDB_COMMON_THREAD_POOL_H_
#define XAIDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xai {

/// Fixed-size worker pool behind every parallel sweep in the library
/// (MC-Shapley permutations, KernelSHAP/LIME batch chunks, distributional
/// values). Design constraints, in order:
///
///  1. **Determinism.** Work is always split into chunks whose boundaries
///     depend only on the problem size — never on the thread count — and
///     any randomness inside a chunk comes from a counter-based stream
///     derived from (seed, chunk index). Together with callers reducing
///     chunk results in chunk order, this makes every parallel path
///     bit-identical to its serial run at a fixed seed.
///  2. **No exceptions across the pool boundary.** The first exception a
///     chunk throws is captured and rethrown on the calling thread after
///     the sweep drains; remaining chunks still run (their slots in the
///     output must stay defined for the deterministic reduction).
///  3. **Graceful shutdown.** The destructor drains queued work and joins;
///     a pool of size <= 1 runs everything inline and spawns no threads.
class ThreadPool {
 public:
  /// `num_threads` <= 1 means inline execution (no worker threads).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Enqueues a task. Tasks must not throw (use ParallelFor for
  /// exception-safe sweeps).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [begin, end), partitioned into fixed chunks of
  /// `chunk_size` (boundaries independent of thread count). Blocks until
  /// all iterations finish; rethrows the first chunk exception on the
  /// caller. fn must be safe to call concurrently for distinct i.
  ///
  /// When the flight recorder is on (obs::TraceEnabled), the caller's
  /// obs::TraceContext is captured here and installed in every worker
  /// chunk, each wrapped in a "pool_chunk" trace event — one request's
  /// events stay linked across the fan-out.
  void ParallelFor(size_t begin, size_t end, size_t chunk_size,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: work or shutdown.
  std::condition_variable done_cv_;   // Signals waiters: queue drained.
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// The configured library-wide parallelism degree. Resolution order:
/// SetGlobalThreads() (CLI flags, tests) > XAIDB_THREADS env var >
/// hardware_concurrency. Always >= 1.
size_t GlobalThreadCount();

/// Overrides the global thread count (0 restores the env/hardware
/// default). Takes effect on the next GlobalPool() use; existing pool
/// references stay valid but keep their size until then.
void SetGlobalThreads(size_t n);

/// Lazily constructed process-wide pool of GlobalThreadCount() threads.
/// Rebuilt (under a lock) when the configured count changes.
ThreadPool& GlobalPool();

/// Derives the seed for chunk `chunk_index` of a sweep seeded with `seed`:
/// a splitmix64-style counter stream, so chunk streams are decorrelated
/// and depend only on (seed, chunk index) — the determinism contract that
/// makes thread count irrelevant to results.
uint64_t ChunkSeed(uint64_t seed, uint64_t chunk_index);

}  // namespace xai

#endif  // XAIDB_COMMON_THREAD_POOL_H_
