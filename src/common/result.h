#ifndef XAIDB_COMMON_RESULT_H_
#define XAIDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xai {

/// Result<T> carries either a value of type T or a non-OK Status.
/// Accessing the value of an errored Result is a programming error
/// (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define XAI_ASSIGN_OR_RETURN(lhs, expr)             \
  XAI_ASSIGN_OR_RETURN_IMPL(                        \
      XAI_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define XAI_CONCAT_NAME_INNER(x, y) x##y
#define XAI_CONCAT_NAME(x, y) XAI_CONCAT_NAME_INNER(x, y)
#define XAI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

}  // namespace xai

#endif  // XAIDB_COMMON_RESULT_H_
