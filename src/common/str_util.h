#ifndef XAIDB_COMMON_STR_UTIL_H_
#define XAIDB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xai {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace xai

#endif  // XAIDB_COMMON_STR_UTIL_H_
