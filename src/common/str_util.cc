#include "common/str_util.h"

#include <cctype>
#include <cstdlib>

namespace xai {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace xai
