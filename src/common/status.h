#ifndef XAIDB_COMMON_STATUS_H_
#define XAIDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace xai {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom:
/// fallible public APIs return Status (or Result<T>), never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kIOError,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// A Status holds an error code plus a human-readable message.
/// The OK status is cheap to construct and copy (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A request's deadline passed before it was (fully) served.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service cannot accept work right now (full queue, shut down).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result converts implicitly from Status).
#define XAI_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::xai::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace xai

#endif  // XAIDB_COMMON_STATUS_H_
