#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace xai {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_cache_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace xai
