#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "obs/trace.h"

namespace xai {

namespace {
// Set inside WorkerLoop so a nested ParallelFor from within a chunk runs
// inline instead of deadlocking on Wait() (a worker waiting for the queue
// it is supposed to drain).
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // Inline mode: no workers.
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t chunk_size,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  if (chunk_size == 0) chunk_size = 1;

  if (threads_.empty() || t_in_pool_worker) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Trace-context propagation: capture the caller's context once at the
  // fan-out point and install it in every worker chunk, so chunk events
  // (and anything the chunk body emits) carry the request's trace_id and
  // parent onto the span that launched the sweep. One relaxed load when
  // tracing is off.
  const bool traced = obs::TraceEnabled();
  const obs::TraceContext parent_ctx =
      traced ? obs::CurrentTraceContext() : obs::TraceContext{};

  // First exception wins; the rest of the sweep still runs so every
  // output slot the caller reduces over is written.
  std::atomic<bool> have_error{false};
  std::exception_ptr error;
  std::mutex error_mu;

  for (size_t lo = begin; lo < end; lo += chunk_size) {
    const size_t hi = std::min(end, lo + chunk_size);
    Submit([&, lo, hi] {
      try {
        if (traced) {
          obs::ScopedTraceContext install(parent_ctx);
          obs::ScopedTraceEvent chunk("pool_chunk");
          for (size_t i = lo; i < hi; ++i) fn(i);
        } else {
          for (size_t i = lo; i < hi; ++i) fn(i);
        }
      } catch (...) {
        if (!have_error.exchange(true)) {
          std::unique_lock<std::mutex> lock(error_mu);
          error = std::current_exception();
        }
      }
    });
  }
  Wait();
  if (have_error.load()) std::rethrow_exception(error);
}

namespace {

std::atomic<size_t> g_thread_override{0};

size_t EnvThreadCount() {
  const char* env = std::getenv("XAIDB_THREADS");
  if (env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // NOLINT: intentional process lifetime.
size_t g_pool_size = 0;

}  // namespace

size_t GlobalThreadCount() {
  const size_t override_n = g_thread_override.load(std::memory_order_relaxed);
  return override_n >= 1 ? override_n : EnvThreadCount();
}

void SetGlobalThreads(size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

ThreadPool& GlobalPool() {
  const size_t want = GlobalThreadCount();
  std::unique_lock<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool_size != want) {
    g_pool.reset();  // Join the old pool before replacing it.
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_size = want;
  }
  return *g_pool;
}

uint64_t ChunkSeed(uint64_t seed, uint64_t chunk_index) {
  // splitmix64 finalizer over a Weyl-sequenced counter.
  uint64_t z = seed + (chunk_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace xai
