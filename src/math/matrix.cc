#include "math/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xai {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(size_t rows, size_t cols, std::vector<double> data) {
  assert(data.size() == rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  assert(i < rows_);
  return std::vector<double>(RowPtr(i), RowPtr(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  assert(j < cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const std::vector<double>& v) {
  assert(i < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(i));
}

void Matrix::AppendRow(const std::vector<double>& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  assert(v.size() == cols_);
  data_.insert(data_.end(), v.begin(), v.end());
  ++rows_;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] < rows_);
    std::copy(RowPtr(idx[i]), RowPtr(idx[i]) + cols_, out.RowPtr(i));
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& idx) const {
  Matrix out(rows_, idx.size());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < idx.size(); ++j) {
      assert(idx[j] < cols_);
      out(i, j) = (*this)(i, idx[j]);
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order for row-major locality.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = rhs.RowPtr(k);
      for (size_t j = 0; j < rhs.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += a[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* x = RowPtr(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      double* o = out.RowPtr(i);
      for (size_t j = 0; j < cols_; ++j) o[j] += xi * x[j];
    }
  }
  return out;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) out[j] += a[j] * vi;
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - rhs.data_[i]));
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    os << "[";
    for (size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    os << "]\n";
  }
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

std::vector<double> Axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

void AxpyInPlace(std::vector<double>* a, double s,
                 const std::vector<double>& b) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += s * b[i];
}

std::vector<double> Scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace xai
