#ifndef XAIDB_MATH_GAUSSIAN_H_
#define XAIDB_MATH_GAUSSIAN_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "math/matrix.h"

namespace xai {

/// Multivariate Gaussian N(mean, cov) with exact conditioning — the
/// substrate for *conditional* Shapley value functions E[f(X) | X_S = x_S]
/// on linear-Gaussian data (experiment E12).
class MultivariateGaussian {
 public:
  /// Fails if cov is not symmetric positive definite (after jitter).
  static Result<MultivariateGaussian> Create(std::vector<double> mean,
                                             Matrix cov);

  /// Maximum-likelihood fit from data rows, with diagonal jitter for
  /// numerical stability.
  static Result<MultivariateGaussian> Fit(const Matrix& rows,
                                          double jitter = 1e-6);

  size_t dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const Matrix& cov() const { return cov_; }

  /// One sample.
  std::vector<double> Sample(Rng* rng) const;

  /// Conditional distribution of the complement variables given
  /// X[given_idx] = given_values. The returned Gaussian is over the
  /// complement indices in ascending order.
  Result<MultivariateGaussian> Condition(
      const std::vector<size_t>& given_idx,
      const std::vector<double>& given_values) const;

 private:
  MultivariateGaussian(std::vector<double> mean, Matrix cov, Matrix chol)
      : mean_(std::move(mean)), cov_(std::move(cov)), chol_(std::move(chol)) {}

  std::vector<double> mean_;
  Matrix cov_;
  Matrix chol_;  // Lower Cholesky factor of cov_.
};

}  // namespace xai

#endif  // XAIDB_MATH_GAUSSIAN_H_
