#include "math/linalg.h"

#include <cmath>

namespace xai {

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols())
    return Status::InvalidArgument("Cholesky: matrix not square");
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0)
          return Status::InvalidArgument(
              "Cholesky: matrix not positive definite");
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

namespace {

// Solves L y = b (forward) then L^T x = y (backward).
std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  const size_t n = l.rows();
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (b.size() != a.rows())
    return Status::InvalidArgument("SolveSpd: dimension mismatch");
  XAI_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  return CholeskySolve(l, b);
}

Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b) {
  if (b.rows() != a.rows())
    return Status::InvalidArgument("SolveSpd: dimension mismatch");
  XAI_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  Matrix x(b.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j) {
    std::vector<double> col = b.Col(j);
    std::vector<double> sol = CholeskySolve(l, col);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Result<Matrix> InverseSpd(const Matrix& a) {
  return SolveSpd(a, Matrix::Identity(a.rows()));
}

Result<std::vector<double>> SolveLu(const Matrix& a,
                                    const std::vector<double>& b) {
  if (a.rows() != a.cols() || b.size() != a.rows())
    return Status::InvalidArgument("SolveLu: dimension mismatch");
  const size_t n = a.rows();
  Matrix m = a;
  std::vector<double> x = b;
  std::vector<size_t> piv(n);
  for (size_t i = 0; i < n; ++i) piv[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t best = col;
    for (size_t r = col + 1; r < n; ++r)
      if (std::fabs(m(r, col)) > std::fabs(m(best, col))) best = r;
    if (std::fabs(m(best, col)) < 1e-14)
      return Status::InvalidArgument("SolveLu: singular matrix");
    if (best != col) {
      for (size_t j = 0; j < n; ++j) std::swap(m(col, j), m(best, j));
      std::swap(x[col], x[best]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = m(r, col) / m(col, col);
      if (f == 0.0) continue;
      for (size_t j = col; j < n; ++j) m(r, j) -= f * m(col, j);
      x[r] -= f * x[col];
    }
  }
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= m(ii, j) * x[j];
    x[ii] = s / m(ii, ii);
  }
  return x;
}

std::vector<double> ConjugateGradient(const Matrix& a,
                                      const std::vector<double>& b,
                                      int max_iter, double tol) {
  const size_t n = b.size();
  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> p = r;
  double rs_old = Dot(r, r);
  if (std::sqrt(rs_old) < tol) return x;
  for (int it = 0; it < max_iter; ++it) {
    std::vector<double> ap = a * p;
    const double denom = Dot(p, ap);
    if (std::fabs(denom) < 1e-300) break;
    const double alpha = rs_old / denom;
    AxpyInPlace(&x, alpha, p);
    AxpyInPlace(&r, -alpha, ap);
    const double rs_new = Dot(r, r);
    if (std::sqrt(rs_new) < tol) break;
    const double beta = rs_new / rs_old;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  return x;
}

Result<std::vector<double>> RidgeRegression(
    const Matrix& x, const std::vector<double>& y, double lambda,
    const std::vector<double>* sample_weights) {
  if (y.size() != x.rows())
    return Status::InvalidArgument("RidgeRegression: dimension mismatch");
  const size_t d = x.cols();
  Matrix gram(d, d);
  std::vector<double> xty(d, 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double w = sample_weights ? (*sample_weights)[r] : 1.0;
    if (w == 0.0) continue;
    const double* row = x.RowPtr(r);
    for (size_t i = 0; i < d; ++i) {
      const double wi = w * row[i];
      if (wi == 0.0) continue;
      double* g = gram.RowPtr(i);
      for (size_t j = 0; j < d; ++j) g[j] += wi * row[j];
      xty[i] += wi * y[r];
    }
  }
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;
  return SolveSpd(gram, xty);
}

Status ShermanMorrisonUpdate(Matrix* ainv, const std::vector<double>& u,
                             const std::vector<double>& v) {
  const size_t n = ainv->rows();
  if (u.size() != n || v.size() != n)
    return Status::InvalidArgument("ShermanMorrison: dimension mismatch");
  std::vector<double> ainv_u = (*ainv) * u;
  std::vector<double> vt_ainv = ainv->TransposeTimes(v);
  const double denom = 1.0 + Dot(v, ainv_u);
  if (std::fabs(denom) < 1e-12)
    return Status::FailedPrecondition(
        "ShermanMorrison: singular update (denominator ~ 0)");
  const double f = 1.0 / denom;
  for (size_t i = 0; i < n; ++i) {
    const double ui = ainv_u[i] * f;
    if (ui == 0.0) continue;
    double* row = ainv->RowPtr(i);
    for (size_t j = 0; j < n; ++j) row[j] -= ui * vt_ainv[j];
  }
  return Status::OK();
}

}  // namespace xai
