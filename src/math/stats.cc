#include "math/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace xai {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

double Jaccard(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<size_t> sa(a.begin(), a.end());
  std::unordered_set<size_t> sb(b.begin(), b.end());
  size_t inter = 0;
  for (size_t x : sa)
    if (sb.count(x)) ++inter;
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<size_t> TopKByMagnitude(const std::vector<double>& v, size_t k) {
  std::vector<size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, v.size());
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](size_t i, size_t j) {
                      return std::fabs(v[i]) > std::fabs(v[j]);
                    });
  idx.resize(k);
  return idx;
}

void OnlineMoments::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Log1pExp(double z) {
  if (z > 30.0) return z;
  if (z < -30.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

}  // namespace xai
