#ifndef XAIDB_MATH_STATS_H_
#define XAIDB_MATH_STATS_H_

#include <cstddef>
#include <vector>

namespace xai {

double Mean(const std::vector<double>& v);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& v);
double StdDev(const std::vector<double>& v);
double Median(std::vector<double> v);
/// Empirical quantile with linear interpolation, q in [0,1].
double Quantile(std::vector<double> v, double q);

/// Pearson correlation; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);
/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);
/// Ranks with ties averaged (1-based ranks).
std::vector<double> Ranks(const std::vector<double>& v);

/// Jaccard similarity of two index sets.
double Jaccard(const std::vector<size_t>& a, const std::vector<size_t>& b);

/// Indices of the k largest |v[i]| (descending by magnitude).
std::vector<size_t> TopKByMagnitude(const std::vector<double>& v, size_t k);

/// Incremental mean/variance accumulator (Welford).
class OnlineMoments {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased variance; 0 for n < 2.
  double variance() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Logistic sigmoid, numerically stable for large |z|.
double Sigmoid(double z);

/// log(1 + exp(z)), numerically stable.
double Log1pExp(double z);

}  // namespace xai

#endif  // XAIDB_MATH_STATS_H_
