#include "math/gaussian.h"

#include <algorithm>

#include "math/linalg.h"

namespace xai {

Result<MultivariateGaussian> MultivariateGaussian::Create(
    std::vector<double> mean, Matrix cov) {
  if (cov.rows() != mean.size() || cov.cols() != mean.size())
    return Status::InvalidArgument("MultivariateGaussian: shape mismatch");
  XAI_ASSIGN_OR_RETURN(Matrix chol, Cholesky(cov));
  return MultivariateGaussian(std::move(mean), std::move(cov),
                              std::move(chol));
}

Result<MultivariateGaussian> MultivariateGaussian::Fit(const Matrix& rows,
                                                       double jitter) {
  if (rows.rows() < 2)
    return Status::InvalidArgument("MultivariateGaussian::Fit: need >= 2 rows");
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) mean[j] += rows(i, j);
  for (double& m : mean) m /= static_cast<double>(n);
  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < d; ++a) {
      const double da = rows(i, a) - mean[a];
      for (size_t b = 0; b < d; ++b)
        cov(a, b) += da * (rows(i, b) - mean[b]);
    }
  }
  cov *= 1.0 / static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a) cov(a, a) += jitter;
  return Create(std::move(mean), std::move(cov));
}

std::vector<double> MultivariateGaussian::Sample(Rng* rng) const {
  const size_t d = dim();
  std::vector<double> z(d);
  for (double& v : z) v = rng->Gaussian();
  std::vector<double> out = mean_;
  for (size_t i = 0; i < d; ++i)
    for (size_t j = 0; j <= i; ++j) out[i] += chol_(i, j) * z[j];
  return out;
}

Result<MultivariateGaussian> MultivariateGaussian::Condition(
    const std::vector<size_t>& given_idx,
    const std::vector<double>& given_values) const {
  if (given_idx.size() != given_values.size())
    return Status::InvalidArgument("Condition: index/value size mismatch");
  const size_t d = dim();
  std::vector<bool> is_given(d, false);
  for (size_t g : given_idx) {
    if (g >= d) return Status::OutOfRange("Condition: index out of range");
    is_given[g] = true;
  }
  std::vector<size_t> rest;
  for (size_t i = 0; i < d; ++i)
    if (!is_given[i]) rest.push_back(i);
  if (rest.empty())
    return Status::InvalidArgument("Condition: nothing left to condition");

  const size_t g = given_idx.size();
  const size_t r = rest.size();
  // Partition: S_rr, S_rg, S_gg.
  Matrix s_gg(g, g);
  Matrix s_rg(r, g);
  Matrix s_rr(r, r);
  for (size_t i = 0; i < g; ++i)
    for (size_t j = 0; j < g; ++j) s_gg(i, j) = cov_(given_idx[i], given_idx[j]);
  for (size_t i = 0; i < r; ++i)
    for (size_t j = 0; j < g; ++j) s_rg(i, j) = cov_(rest[i], given_idx[j]);
  for (size_t i = 0; i < r; ++i)
    for (size_t j = 0; j < r; ++j) s_rr(i, j) = cov_(rest[i], rest[j]);

  // K = S_rg * S_gg^{-1}: solve S_gg K^T = S_rg^T.
  XAI_ASSIGN_OR_RETURN(Matrix kt, SolveSpd(s_gg, s_rg.Transpose()));
  Matrix k = kt.Transpose();

  std::vector<double> delta(g);
  for (size_t j = 0; j < g; ++j)
    delta[j] = given_values[j] - mean_[given_idx[j]];
  std::vector<double> cond_mean(r);
  std::vector<double> adj = k * delta;
  for (size_t i = 0; i < r; ++i) cond_mean[i] = mean_[rest[i]] + adj[i];

  Matrix cond_cov = s_rr - k * s_rg.Transpose();
  // Symmetrize + jitter against round-off.
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = i + 1; j < r; ++j) {
      const double avg = 0.5 * (cond_cov(i, j) + cond_cov(j, i));
      cond_cov(i, j) = avg;
      cond_cov(j, i) = avg;
    }
    cond_cov(i, i) = std::max(cond_cov(i, i), 0.0) + 1e-9;
  }
  return Create(std::move(cond_mean), std::move(cond_cov));
}

}  // namespace xai
