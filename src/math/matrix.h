#ifndef XAIDB_MATH_MATRIX_H_
#define XAIDB_MATH_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace xai {

/// Dense row-major matrix of doubles. Deliberately small: the library's
/// models are low-dimensional tabular models, so a cache-friendly dense
/// representation with explicit solvers (see linalg.h) is all we need.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Builds from nested initializer lists: Matrix m = {{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);
  /// Builds a matrix from a flat row-major buffer.
  static Matrix FromRows(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i.
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  /// Copies row i into a vector.
  std::vector<double> Row(size_t i) const;
  /// Copies column j into a vector.
  std::vector<double> Col(size_t j) const;
  /// Overwrites row i.
  void SetRow(size_t i, const std::vector<double>& v);

  /// Appends a row (cols must match; sets cols on first append).
  void AppendRow(const std::vector<double>& v);

  /// Returns the matrix restricted to the given row indices.
  Matrix SelectRows(const std::vector<size_t>& idx) const;
  /// Returns the matrix restricted to the given column indices.
  Matrix SelectCols(const std::vector<size_t>& idx) const;

  Matrix Transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(const std::vector<double>& v) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// A^T * A (Gram matrix), computed without materializing the transpose.
  Matrix Gram() const;
  /// A^T * v.
  std::vector<double> TransposeTimes(const std::vector<double>& v) const;

  /// Frobenius-norm comparison helper for tests.
  double MaxAbsDiff(const Matrix& rhs) const;

  std::string ToString(int precision = 4) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// ---- free vector helpers (used pervasively) ----

double Dot(const std::vector<double>& a, const std::vector<double>& b);
double Norm2(const std::vector<double>& a);
/// a + s*b
std::vector<double> Axpy(const std::vector<double>& a, double s,
                         const std::vector<double>& b);
void AxpyInPlace(std::vector<double>* a, double s,
                 const std::vector<double>& b);
std::vector<double> Scale(const std::vector<double>& a, double s);

}  // namespace xai

#endif  // XAIDB_MATH_MATRIX_H_
