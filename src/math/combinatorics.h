#ifndef XAIDB_MATH_COMBINATORICS_H_
#define XAIDB_MATH_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace xai {

/// Binomial coefficient as double (exact for the small n used in exact
/// Shapley enumeration; overflow-free for n <= 60 or so).
double BinomialCoefficient(int n, int k);

/// n! as double.
double Factorial(int n);

/// Shapley coalition weight |S|!(n-|S|-1)!/n! for a coalition of size s
/// out of n players.
double ShapleyWeight(int n, int s);

/// Enumerates all subsets of {0..n-1} as bitmasks, 0 .. 2^n-1.
/// Requires n <= 30.
std::vector<uint32_t> AllSubsets(int n);

/// Decodes a bitmask into the sorted list of set-bit indices.
std::vector<int> MaskToIndices(uint32_t mask, int n);

/// Number of set bits.
int PopCount(uint32_t mask);

}  // namespace xai

#endif  // XAIDB_MATH_COMBINATORICS_H_
