#include "math/combinatorics.h"

#include <bit>
#include <cassert>

namespace xai {

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double r = 1.0;
  for (int i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i);
    r /= static_cast<double>(i);
  }
  return r;
}

double Factorial(int n) {
  double r = 1.0;
  for (int i = 2; i <= n; ++i) r *= static_cast<double>(i);
  return r;
}

double ShapleyWeight(int n, int s) {
  assert(s >= 0 && s < n);
  // s!(n-s-1)!/n! = 1 / (n * C(n-1, s)).
  return 1.0 / (static_cast<double>(n) * BinomialCoefficient(n - 1, s));
}

std::vector<uint32_t> AllSubsets(int n) {
  assert(n >= 0 && n <= 30);
  std::vector<uint32_t> out;
  out.reserve(1u << n);
  for (uint32_t m = 0; m < (1u << n); ++m) out.push_back(m);
  return out;
}

std::vector<int> MaskToIndices(uint32_t mask, int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i)
    if (mask & (1u << i)) out.push_back(i);
  return out;
}

int PopCount(uint32_t mask) { return std::popcount(mask); }

}  // namespace xai
