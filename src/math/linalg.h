#ifndef XAIDB_MATH_LINALG_H_
#define XAIDB_MATH_LINALG_H_

#include <vector>

#include "common/result.h"
#include "math/matrix.h"

namespace xai {

/// Cholesky factor L (lower-triangular, A = L L^T) of a symmetric
/// positive-definite matrix. Fails with InvalidArgument if A is not SPD.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// Solves A X = B (multiple right-hand sides) for SPD A.
Result<Matrix> SolveSpd(const Matrix& a, const Matrix& b);

/// Inverse of an SPD matrix via Cholesky.
Result<Matrix> InverseSpd(const Matrix& a);

/// Solves a general square system A x = b via partial-pivot LU.
Result<std::vector<double>> SolveLu(const Matrix& a,
                                    const std::vector<double>& b);

/// Conjugate gradient for SPD systems: solves A x = b iteratively.
/// Useful as an inverse-Hessian-vector-product (Koh & Liang influence
/// functions) without forming the inverse. Returns the iterate after
/// max_iter or when the residual norm drops below tol.
std::vector<double> ConjugateGradient(const Matrix& a,
                                      const std::vector<double>& b,
                                      int max_iter = 200, double tol = 1e-10);

/// Ridge regression: argmin_w ||X w - y||^2 + lambda ||w||^2 with optional
/// per-row weights (weighted least squares). The intercept, if desired,
/// must be an explicit all-ones column in X (it is regularized too unless
/// penalize_intercept_col is set to its index and excluded by the caller).
Result<std::vector<double>> RidgeRegression(
    const Matrix& x, const std::vector<double>& y, double lambda,
    const std::vector<double>* sample_weights = nullptr);

/// Sherman-Morrison rank-1 *update* of an inverse:
///   (A + u v^T)^{-1} = A^{-1} - (A^{-1} u v^T A^{-1}) / (1 + v^T A^{-1} u).
/// `ainv` is updated in place. Fails if the denominator is ~0 (singular
/// update), which for downdates means the removed row made A rank-deficient.
Status ShermanMorrisonUpdate(Matrix* ainv, const std::vector<double>& u,
                             const std::vector<double>& v);

}  // namespace xai

#endif  // XAIDB_MATH_LINALG_H_
