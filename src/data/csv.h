#ifndef XAIDB_DATA_CSV_H_
#define XAIDB_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace xai {

/// Writes a dataset as CSV with a header row; the target column is written
/// last under the name "target". Categorical codes are written as their
/// category names.
Status WriteCsv(const Dataset& ds, const std::string& path);

/// Reads a CSV previously produced by WriteCsv (or hand-authored with the
/// same conventions): header row; last column is the target; a column is
/// treated as categorical if any value fails numeric parsing, with
/// categories assigned in order of first appearance.
Result<Dataset> ReadCsv(const std::string& path);

}  // namespace xai

#endif  // XAIDB_DATA_CSV_H_
