#include "data/binned.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace xai {

namespace {

/// Midpoint between two consecutive distinct raw values — the threshold
/// the exact learner would write for a split between them. Falls back to
/// the left value when the midpoint rounds onto a neighbor (adjacent
/// representable doubles), keeping `lo <= mid < hi` so routing stays
/// consistent with `v <= mid`.
double Midpoint(double lo, double hi) {
  const double mid = 0.5 * (lo + hi);
  if (mid >= hi) return lo;
  return mid < lo ? lo : mid;
}

}  // namespace

BinMapper BinMapper::Build(const double* values, size_t n, int max_bins) {
  BinMapper m;
  if (n == 0) return m;

  std::vector<double> sorted(values, values + n);
  std::sort(sorted.begin(), sorted.end());

  // Distinct values with their multiplicities, ascending.
  std::vector<double> distinct;
  std::vector<size_t> count;
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j < n && sorted[j] == sorted[i]) ++j;
    distinct.push_back(sorted[i]);
    count.push_back(j - i);
    i = j;
  }
  const size_t num_distinct = distinct.size();
  if (num_distinct <= 1) return m;  // Constant column: one bin, no bounds.

  if (num_distinct <= static_cast<size_t>(max_bins)) {
    // Exact mode: one bin per distinct value, boundaries at the midpoints
    // the sort-based learner evaluates.
    m.bounds_.reserve(num_distinct - 1);
    for (size_t i = 0; i + 1 < num_distinct; ++i)
      m.bounds_.push_back(Midpoint(distinct[i], distinct[i + 1]));
  } else {
    // Quantile mode: close a bin after the distinct value that carries the
    // sample at rank k*n/max_bins, k = 1..max_bins-1. A heavy value can
    // swallow several ranks; duplicates collapse, so num_bins <= max_bins.
    m.bounds_.reserve(static_cast<size_t>(max_bins) - 1);
    size_t cum = 0;      // Samples in distinct[0..j].
    size_t j = 0;        // Current distinct value.
    cum = count[0];
    for (int k = 1; k < max_bins; ++k) {
      const size_t rank =
          (static_cast<size_t>(k) * n) / static_cast<size_t>(max_bins);
      while (cum <= rank && j + 1 < num_distinct) cum += count[++j];
      if (j + 1 >= num_distinct) break;  // Tail fits in the last bin.
      const double b = Midpoint(distinct[j], distinct[j + 1]);
      if (m.bounds_.empty() || b > m.bounds_.back()) m.bounds_.push_back(b);
    }
  }
  return m;
}

uint32_t BinMapper::CodeOf(double v) const {
  // First bound >= v; one past the last bound = the unbounded top bin.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<uint32_t>(it - bounds_.begin());
}

Result<BinnedDataset> BinnedDataset::Build(const Matrix& x, int max_bins) {
  if (max_bins < 2 || max_bins > 65536)
    return Status::InvalidArgument(
        "BinnedDataset: max_bins must be in [2, 65536]");
  if (x.empty())
    return Status::InvalidArgument("BinnedDataset: empty matrix");

  XAI_OBS_SPAN("train.bin_build");
  obs::Stopwatch watch;

  const size_t n = x.rows();
  const size_t d = x.cols();
  BinnedDataset ds;
  ds.rows_ = n;
  ds.max_bins_ = max_bins;
  ds.mappers_.resize(d);
  ds.codes8_.resize(d);
  ds.codes16_.resize(d);
  ds.bin_offsets_.resize(d);

  std::vector<double> col(n);
  for (size_t f = 0; f < d; ++f) {
    for (size_t i = 0; i < n; ++i) col[i] = x(i, f);
    ds.mappers_[f] = BinMapper::Build(col.data(), n, max_bins);
    const BinMapper& m = ds.mappers_[f];
    if (m.num_bins() <= 256) {
      ds.codes8_[f].resize(n);
      for (size_t i = 0; i < n; ++i)
        ds.codes8_[f][i] = static_cast<uint8_t>(m.CodeOf(col[i]));
    } else {
      ds.codes16_[f].resize(n);
      for (size_t i = 0; i < n; ++i)
        ds.codes16_[f][i] = static_cast<uint16_t>(m.CodeOf(col[i]));
    }
    ds.bin_offsets_[f] = ds.total_bins_;
    ds.total_bins_ += static_cast<size_t>(m.num_bins());
  }

  XAI_OBS_COUNT("train.bin_builds");
  XAI_OBS_OBSERVE("train.bin_build_us", watch.ElapsedUs());
  return ds;
}

}  // namespace xai
