#ifndef XAIDB_DATA_BINNED_H_
#define XAIDB_DATA_BINNED_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "math/matrix.h"

namespace xai {

/// Per-feature quantization of a raw feature column into ordered bins (the
/// LightGBM binned-dataset idiom). A mapper stores the strictly increasing
/// upper bin boundaries `bound[0] < bound[1] < ...`; value v maps to the
/// first bin whose boundary is >= v, and the last bin is unbounded above.
///
/// Boundary selection is deterministic and chosen so that the recovered
/// split threshold `BinUpperBound(b)` partitions raw values exactly like
/// the bin codes do:  `v <= BinUpperBound(b)  <=>  CodeOf(v) <= b`.
///
///  - When a feature has at most `max_bins` distinct values, every distinct
///    value gets its own bin and each boundary is the midpoint between two
///    consecutive distinct values — the *same* candidate thresholds the
///    exact sort-per-node learner evaluates, which is what makes hist-vs-
///    exact tree parity possible on small data.
///  - Otherwise boundaries are taken at evenly spaced sample ranks
///    (quantiles) over the sorted column, snapped to midpoints between the
///    distinct values that straddle each rank, then deduplicated.
///
/// Constant columns yield a single bin and are never candidates for a
/// split. Values are assumed NaN-free (the Dataset layer's contract).
class BinMapper {
 public:
  BinMapper() = default;

  /// Builds boundaries for one feature from `n` raw values (unsorted,
  /// read-only). `max_bins` must be in [2, 65536].
  static BinMapper Build(const double* values, size_t n, int max_bins);

  /// Number of bins (>= 1). Constant features have exactly one bin.
  int num_bins() const { return static_cast<int>(bounds_.size()) + 1; }

  /// Bin code of a raw value: first bin b with v <= BinUpperBound(b).
  uint32_t CodeOf(double v) const;

  /// Upper boundary of bin b: a real threshold lying strictly between the
  /// raw values of bin b and bin b+1. The last bin's bound is +infinity.
  double BinUpperBound(int b) const {
    return b < static_cast<int>(bounds_.size())
               ? bounds_[static_cast<size_t>(b)]
               : std::numeric_limits<double>::infinity();
  }

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;  // Strictly increasing; size = num_bins - 1.
};

/// A quantized, column-major copy of a feature matrix: one code column per
/// feature, `u8` storage when the feature has <= 256 bins and `u16`
/// otherwise (max_bins is capped at 65536). Built once per forest/GBDT fit
/// and shared read-only by every tree the fit grows — the histogram
/// learner never touches the raw doubles again.
class BinnedDataset {
 public:
  BinnedDataset() = default;

  /// Quantizes every column of x. `max_bins` in [2, 65536]; values above
  /// 256 switch wide features to u16 codes.
  static Result<BinnedDataset> Build(const Matrix& x, int max_bins = 256);

  size_t rows() const { return rows_; }
  size_t features() const { return mappers_.size(); }
  int max_bins() const { return max_bins_; }
  const BinMapper& mapper(size_t f) const { return mappers_[f]; }
  int num_bins(size_t f) const { return mappers_[f].num_bins(); }
  /// True when feature f's codes are stored as u8 (num_bins <= 256).
  bool narrow(size_t f) const { return codes16_[f].empty(); }

  /// Bin code of row i under feature f (width-dispatching accessor; the
  /// histogram hot loops use Codes8/Codes16 directly instead).
  uint32_t Code(size_t f, size_t i) const {
    return narrow(f) ? codes8_[f][i] : codes16_[f][i];
  }

  /// Raw u8 column of feature f (empty when the feature is wide).
  const uint8_t* Codes8(size_t f) const { return codes8_[f].data(); }
  /// Raw u16 column of feature f (empty when the feature is narrow).
  const uint16_t* Codes16(size_t f) const { return codes16_[f].data(); }

  /// Sum over features of num_bins — the flat histogram size per node.
  size_t TotalBins() const { return total_bins_; }
  /// Offset of feature f's bins inside a flat histogram buffer.
  size_t BinOffset(size_t f) const { return bin_offsets_[f]; }

 private:
  size_t rows_ = 0;
  int max_bins_ = 0;
  std::vector<BinMapper> mappers_;
  std::vector<std::vector<uint8_t>> codes8_;    // [f][row], empty if wide.
  std::vector<std::vector<uint16_t>> codes16_;  // [f][row], empty if narrow.
  std::vector<size_t> bin_offsets_;
  size_t total_bins_ = 0;
};

}  // namespace xai

#endif  // XAIDB_DATA_BINNED_H_
