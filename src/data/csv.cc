#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/str_util.h"

namespace xai {

Status WriteCsv(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = ds.schema();
  for (size_t j = 0; j < schema.num_features(); ++j)
    out << schema.feature(j).name << ",";
  out << "target\n";
  out.precision(10);
  for (size_t i = 0; i < ds.n(); ++i) {
    for (size_t j = 0; j < ds.d(); ++j) {
      const FeatureSpec& spec = schema.feature(j);
      const double v = ds.x()(i, j);
      if (spec.is_numeric()) {
        out << v;
      } else {
        const auto code = static_cast<size_t>(std::lround(v));
        out << (code < spec.cardinality() ? spec.categories[code]
                                          : "UNKNOWN");
      }
      out << ",";
    }
    out << ds.y()[i] << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line))
    return Status::IOError("empty file: " + path);
  std::vector<std::string> header = Split(StripWhitespace(line), ',');
  if (header.size() < 2)
    return Status::InvalidArgument("csv needs >= 1 feature + target");
  const size_t d = header.size() - 1;

  std::vector<std::vector<std::string>> cells;  // row-major raw fields
  while (std::getline(in, line)) {
    std::string_view sv = StripWhitespace(line);
    if (sv.empty()) continue;
    std::vector<std::string> fields = Split(sv, ',');
    if (fields.size() != header.size())
      return Status::InvalidArgument("csv row has wrong field count");
    cells.push_back(std::move(fields));
  }

  // Determine column types.
  std::vector<bool> numeric(d, true);
  for (const auto& row : cells) {
    for (size_t j = 0; j < d; ++j) {
      double v;
      if (numeric[j] && !ParseDouble(row[j], &v)) numeric[j] = false;
    }
  }

  std::vector<FeatureSpec> specs(d);
  std::vector<std::map<std::string, size_t>> cat_codes(d);
  for (size_t j = 0; j < d; ++j) {
    specs[j].name = header[j];
    specs[j].type =
        numeric[j] ? FeatureType::kNumeric : FeatureType::kCategorical;
  }

  Matrix x(cells.size(), d);
  std::vector<double> y(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (numeric[j]) {
        double v;
        if (!ParseDouble(cells[i][j], &v))
          return Status::InvalidArgument("bad numeric field");
        x(i, j) = v;
      } else {
        auto [it, inserted] =
            cat_codes[j].emplace(cells[i][j], cat_codes[j].size());
        if (inserted) specs[j].categories.push_back(cells[i][j]);
        x(i, j) = static_cast<double>(it->second);
      }
    }
    double v;
    if (!ParseDouble(cells[i][d], &v))
      return Status::InvalidArgument("bad target field");
    y[i] = v;
  }
  return Dataset::Create(Schema(std::move(specs)), std::move(x),
                         std::move(y));
}

}  // namespace xai
