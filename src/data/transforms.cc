#include "data/transforms.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "math/stats.h"

namespace xai {

Standardizer Standardizer::Fit(const Dataset& ds) {
  Standardizer s;
  const size_t d = ds.d();
  s.mean_.assign(d, 0.0);
  s.std_.assign(d, 1.0);
  s.is_numeric_.assign(d, false);
  for (size_t j = 0; j < d; ++j) {
    s.is_numeric_[j] = ds.schema().feature(j).is_numeric();
    if (!s.is_numeric_[j]) continue;
    std::vector<double> col = ds.x().Col(j);
    s.mean_[j] = Mean(col);
    const double sd = StdDev(col);
    s.std_[j] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

Dataset Standardizer::Transform(const Dataset& ds) const {
  Matrix x = ds.x();
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (is_numeric_[j]) x(i, j) = (x(i, j) - mean_[j]) / std_[j];
    }
  }
  return Dataset(ds.schema(), std::move(x), ds.y());
}

std::vector<double> Standardizer::TransformRow(
    const std::vector<double>& row) const {
  std::vector<double> out = row;
  for (size_t j = 0; j < out.size(); ++j)
    if (is_numeric_[j]) out[j] = (out[j] - mean_[j]) / std_[j];
  return out;
}

std::vector<double> Standardizer::InverseRow(
    const std::vector<double>& row) const {
  std::vector<double> out = row;
  for (size_t j = 0; j < out.size(); ++j)
    if (is_numeric_[j]) out[j] = out[j] * std_[j] + mean_[j];
  return out;
}

Discretizer Discretizer::Fit(const Dataset& ds, int bins_per_feature) {
  Discretizer disc;
  const size_t d = ds.d();
  disc.cut_points_.resize(d);
  disc.num_bins_.resize(d);
  disc.is_numeric_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    const FeatureSpec& spec = ds.schema().feature(j);
    disc.is_numeric_[j] = spec.is_numeric();
    if (!spec.is_numeric()) {
      disc.num_bins_[j] = static_cast<int>(spec.cardinality());
      continue;
    }
    std::vector<double> col = ds.x().Col(j);
    std::set<double> cuts;
    for (int b = 1; b < bins_per_feature; ++b) {
      cuts.insert(Quantile(col, static_cast<double>(b) /
                                    static_cast<double>(bins_per_feature)));
    }
    disc.cut_points_[j].assign(cuts.begin(), cuts.end());
    disc.num_bins_[j] = static_cast<int>(disc.cut_points_[j].size()) + 1;
  }
  return disc;
}

int Discretizer::Bin(size_t feature, double value) const {
  if (!is_numeric_[feature])
    return static_cast<int>(std::lround(value));
  const auto& cuts = cut_points_[feature];
  return static_cast<int>(
      std::upper_bound(cuts.begin(), cuts.end(), value) - cuts.begin());
}

int Discretizer::NumBins(size_t feature) const { return num_bins_[feature]; }

std::pair<double, double> Discretizer::BinRange(size_t feature,
                                                int bin) const {
  const auto& cuts = cut_points_[feature];
  const double lo = bin == 0 ? -std::numeric_limits<double>::infinity()
                             : cuts[bin - 1];
  const double hi = bin >= static_cast<int>(cuts.size())
                        ? std::numeric_limits<double>::infinity()
                        : cuts[bin];
  return {lo, hi};
}

std::string Discretizer::BinLabel(const Schema& schema, size_t feature,
                                  int bin) const {
  const FeatureSpec& spec = schema.feature(feature);
  std::ostringstream os;
  os.precision(4);
  if (!spec.is_numeric()) {
    os << spec.name << "="
       << (bin >= 0 && bin < static_cast<int>(spec.cardinality())
               ? spec.categories[bin]
               : "<?>");
    return os.str();
  }
  auto [lo, hi] = BinRange(feature, bin);
  if (std::isinf(lo)) {
    os << spec.name << " <= " << hi;
  } else if (std::isinf(hi)) {
    os << spec.name << " > " << lo;
  } else {
    os << lo << " < " << spec.name << " <= " << hi;
  }
  return os.str();
}

std::vector<size_t> InjectLabelNoise(Dataset* ds, double fraction, Rng* rng) {
  const size_t k =
      static_cast<size_t>(fraction * static_cast<double>(ds->n()));
  std::vector<size_t> idx = rng->SampleWithoutReplacement(ds->n(), k);
  for (size_t i : idx) {
    double& y = ds->mutable_y()[i];
    y = y > 0.5 ? 0.0 : 1.0;
  }
  std::sort(idx.begin(), idx.end());
  return idx;
}

Dataset OneHotEncode(const Dataset& ds) {
  std::vector<FeatureSpec> out_specs;
  for (size_t j = 0; j < ds.d(); ++j) {
    const FeatureSpec& spec = ds.schema().feature(j);
    if (spec.is_numeric()) {
      out_specs.push_back(spec);
    } else {
      for (const std::string& cat : spec.categories)
        out_specs.push_back(FeatureSpec::Numeric(spec.name + "=" + cat));
    }
  }
  Matrix x(ds.n(), out_specs.size());
  for (size_t i = 0; i < ds.n(); ++i) {
    size_t out_j = 0;
    for (size_t j = 0; j < ds.d(); ++j) {
      const FeatureSpec& spec = ds.schema().feature(j);
      if (spec.is_numeric()) {
        x(i, out_j++) = ds.x()(i, j);
      } else {
        const auto code = static_cast<size_t>(std::lround(ds.x()(i, j)));
        for (size_t c = 0; c < spec.cardinality(); ++c)
          x(i, out_j++) = (c == code) ? 1.0 : 0.0;
      }
    }
  }
  return Dataset(Schema(std::move(out_specs)), std::move(x), ds.y());
}

ColumnStats ComputeColumnStats(const Dataset& ds) {
  ColumnStats cs;
  const size_t d = ds.d();
  cs.mean.resize(d);
  cs.std.resize(d);
  cs.values.resize(d);
  cs.frequencies.resize(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col = ds.x().Col(j);
    cs.mean[j] = Mean(col);
    cs.std[j] = std::max(StdDev(col), 1e-9);
    const FeatureSpec& spec = ds.schema().feature(j);
    if (spec.is_numeric()) {
      std::sort(col.begin(), col.end());
      col.erase(std::unique(col.begin(), col.end()), col.end());
      cs.values[j] = std::move(col);
    } else {
      const size_t card = spec.cardinality();
      cs.values[j].resize(card);
      cs.frequencies[j].assign(card, 0.0);
      for (size_t c = 0; c < card; ++c)
        cs.values[j][c] = static_cast<double>(c);
      for (double v : col) {
        const auto code = static_cast<size_t>(std::lround(v));
        if (code < card) cs.frequencies[j][code] += 1.0;
      }
    }
  }
  return cs;
}

}  // namespace xai
