#ifndef XAIDB_DATA_SYNTHETIC_H_
#define XAIDB_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"

namespace xai {

/// Synthetic stand-ins for the real-world tabular datasets the tutorial's
/// running examples draw on (loan approval / credit scoring / hiring —
/// finance and employment decision-making). See DESIGN.md "Substitutions":
/// the schemas, mixed feature types, feature correlations, and optional
/// injected demographic bias reproduce the properties the explainers are
/// sensitive to.

struct LoanDataOptions {
  uint64_t seed = 42;
  /// Additional log-odds weight on the sensitive feature `gender`
  /// (0 = unbiased lender; > 0 reproduces the discrimination scenarios in
  /// the tutorial's Section 1 and the adversarial-attack experiment E4).
  double gender_bias = 0.0;
  /// Std of label noise in log-odds space.
  double noise = 0.5;
};

/// Loan-approval classification data (label 1 = approved).
/// Features: age, income, credit_score, debt, employment_years (numeric,
/// correlated: income rises with age/employment; debt with income),
/// education (4 categories), gender (2), married (2).
Dataset MakeLoanDataset(size_t n, const LoanDataOptions& opts = {});

/// German-credit-style risk scoring (label 1 = good credit).
/// Heavier categorical mix for the rule-based explainers.
Dataset MakeCreditDataset(size_t n, uint64_t seed = 7);

/// Hiring decisions (label 1 = hired) driven by a crisp rule structure plus
/// noise — ideal for Anchors / decision-set evaluation (E8): the generator's
/// own rules are the ground truth the miners should recover.
Dataset MakeHiringDataset(size_t n, uint64_t seed = 11);

struct GaussianDataOptions {
  uint64_t seed = 3;
  size_t dims = 8;
  /// Pairwise correlation of adjacent features via a chain dependence.
  double rho = 0.0;
  /// If true the label is a noisy linear threshold; otherwise a smooth
  /// linear regression target.
  bool classification = true;
};

/// Correlated Gaussian features with linear ground-truth weights
/// 1, 1/2, ..., 1/d (so attribution magnitudes have a known ordering).
Dataset MakeGaussianDataset(size_t n, const GaussianDataOptions& opts = {});

/// Regression dataset y = sum_j w_j x_j + noise with returned-by-reference
/// ground-truth weights; used by the incremental-maintenance (PrIU)
/// experiments where exactness against the normal equations matters.
Dataset MakeLinearRegressionDataset(size_t n, size_t d, uint64_t seed,
                                    std::vector<double>* true_weights);

}  // namespace xai

#endif  // XAIDB_DATA_SYNTHETIC_H_
