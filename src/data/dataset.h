#ifndef XAIDB_DATA_DATASET_H_
#define XAIDB_DATA_DATASET_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/schema.h"
#include "math/matrix.h"

namespace xai {

/// A supervised tabular dataset: feature matrix X (row per example, column
/// per feature; categorical features stored as category codes), target
/// vector y, and a Schema describing the columns. Targets are regression
/// values or {0,1} class labels depending on the task.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, Matrix x, std::vector<double> y)
      : schema_(std::move(schema)), x_(std::move(x)), y_(std::move(y)) {}

  /// Validates shapes (X rows == y size, X cols == schema size).
  static Result<Dataset> Create(Schema schema, Matrix x,
                                std::vector<double> y);

  size_t n() const { return x_.rows(); }
  size_t d() const { return x_.cols(); }
  const Schema& schema() const { return schema_; }
  const Matrix& x() const { return x_; }
  Matrix& mutable_x() { return x_; }
  const std::vector<double>& y() const { return y_; }
  std::vector<double>& mutable_y() { return y_; }

  std::vector<double> row(size_t i) const { return x_.Row(i); }
  double label(size_t i) const { return y_[i]; }

  /// Subset restricted to the given row indices.
  Dataset Select(const std::vector<size_t>& idx) const;

  /// Dataset with the given row removed.
  Dataset RemoveRow(size_t i) const;

  /// Dataset with all rows in `idx` removed.
  Dataset RemoveRows(const std::vector<size_t>& idx) const;

  /// Random (train, test) split; train_fraction in (0,1).
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

 private:
  Schema schema_;
  Matrix x_;
  std::vector<double> y_;
};

}  // namespace xai

#endif  // XAIDB_DATA_DATASET_H_
