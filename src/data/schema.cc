#include "data/schema.h"

#include <cmath>
#include <sstream>

namespace xai {

Result<size_t> Schema::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < features_.size(); ++i)
    if (features_[i].name == name) return i;
  return Status::NotFound("feature not in schema: " + name);
}

std::string Schema::FormatValue(size_t feature, double value) const {
  const FeatureSpec& spec = features_[feature];
  std::ostringstream os;
  os << spec.name << "=";
  if (spec.is_numeric()) {
    os.precision(4);
    os << value;
  } else {
    const auto code = static_cast<size_t>(std::lround(value));
    if (code < spec.categories.size()) {
      os << spec.categories[code];
    } else {
      os << "<code " << code << ">";
    }
  }
  return os.str();
}

}  // namespace xai
