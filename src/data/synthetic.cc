#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "math/stats.h"

namespace xai {

Dataset MakeLoanDataset(size_t n, const LoanDataOptions& opts) {
  Rng rng(opts.seed);
  Schema schema({
      FeatureSpec::Numeric("age"),
      FeatureSpec::Numeric("income"),
      FeatureSpec::Numeric("credit_score"),
      FeatureSpec::Numeric("debt"),
      FeatureSpec::Numeric("employment_years"),
      FeatureSpec::Categorical("education",
                               {"HighSchool", "Bachelors", "Masters", "PhD"}),
      FeatureSpec::Categorical("gender", {"female", "male"}),
      FeatureSpec::Categorical("married", {"no", "yes"}),
  });
  Matrix x(n, schema.num_features());
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double age = std::clamp(rng.Gaussian(42.0, 12.0), 18.0, 80.0);
    const double edu_draw = rng.NextDouble();
    const double education =
        edu_draw < 0.4 ? 0 : edu_draw < 0.75 ? 1 : edu_draw < 0.93 ? 2 : 3;
    const double employment =
        std::clamp((age - 18.0) * rng.Uniform(0.2, 0.8), 0.0, 45.0);
    // Income correlates with age, education and employment length.
    const double income = std::max(
        8.0, 25.0 + 0.45 * (age - 30.0) + 9.0 * education +
                 0.8 * employment + rng.Gaussian(0.0, 12.0));
    // Debt correlates with income (people borrow against earnings).
    const double debt =
        std::max(0.0, 0.35 * income + rng.Gaussian(0.0, 10.0));
    const double credit = std::clamp(
        560.0 + 1.6 * employment + 0.9 * (income - debt) +
            rng.Gaussian(0.0, 55.0),
        300.0, 850.0);
    const double gender = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const double married = rng.Bernoulli(0.55) ? 1.0 : 0.0;

    x(i, 0) = age;
    x(i, 1) = income;
    x(i, 2) = credit;
    x(i, 3) = debt;
    x(i, 4) = employment;
    x(i, 5) = education;
    x(i, 6) = gender;
    x(i, 7) = married;

    const double logit = -3.4 + 0.05 * income + 0.018 * (credit - 560.0) -
                         0.065 * debt + 0.06 * employment +
                         0.25 * education + 0.3 * married +
                         opts.gender_bias * gender +
                         rng.Gaussian(0.0, opts.noise);
    y[i] = rng.Bernoulli(Sigmoid(logit)) ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeCreditDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      FeatureSpec::Numeric("duration_months"),
      FeatureSpec::Numeric("amount"),
      FeatureSpec::Numeric("age"),
      FeatureSpec::Categorical("checking_status",
                               {"none", "low", "medium", "high"}),
      FeatureSpec::Categorical("savings", {"none", "low", "medium", "high"}),
      FeatureSpec::Categorical("housing", {"rent", "own", "free"}),
      FeatureSpec::Categorical("purpose",
                               {"car", "furniture", "education", "business"}),
      FeatureSpec::Categorical("employment",
                               {"unemployed", "short", "medium", "long"}),
  });
  Matrix x(n, schema.num_features());
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double duration = std::clamp(rng.Gaussian(21.0, 12.0), 4.0, 72.0);
    const double amount =
        std::max(250.0, duration * rng.Uniform(80.0, 260.0));
    const double age = std::clamp(rng.Gaussian(35.0, 11.0), 19.0, 75.0);
    const double checking = static_cast<double>(rng.NextInt(4));
    const double savings = static_cast<double>(rng.NextInt(4));
    const double housing = rng.NextDouble() < 0.2   ? 0.0
                           : rng.NextDouble() < 0.9 ? 1.0
                                                    : 2.0;
    const double purpose = static_cast<double>(rng.NextInt(4));
    const double employment =
        std::min(3.0, std::floor((age - 19.0) / 12.0) +
                          static_cast<double>(rng.NextInt(2)));
    x(i, 0) = duration;
    x(i, 1) = amount;
    x(i, 2) = age;
    x(i, 3) = checking;
    x(i, 4) = savings;
    x(i, 5) = housing;
    x(i, 6) = purpose;
    x(i, 7) = employment;
    const double logit = 1.8 - 0.045 * duration - 0.00012 * amount +
                         0.01 * (age - 30.0) + 0.45 * checking +
                         0.35 * savings + 0.3 * (housing == 1.0) +
                         0.4 * employment + rng.Gaussian(0.0, 0.6);
    y[i] = rng.Bernoulli(Sigmoid(logit)) ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeHiringDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      FeatureSpec::Numeric("experience_years"),
      FeatureSpec::Numeric("interview_score"),
      FeatureSpec::Categorical("degree", {"none", "bachelors", "masters"}),
      FeatureSpec::Categorical("referred", {"no", "yes"}),
      FeatureSpec::Categorical("role", {"junior", "senior", "manager"}),
  });
  Matrix x(n, schema.num_features());
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double exp_years = std::clamp(rng.Gaussian(6.0, 5.0), 0.0, 30.0);
    const double interview = std::clamp(rng.Gaussian(6.0, 2.0), 0.0, 10.0);
    const double degree = static_cast<double>(rng.NextInt(3));
    const double referred = rng.Bernoulli(0.25) ? 1.0 : 0.0;
    const double role = exp_years > 10  ? (rng.Bernoulli(0.4) ? 2.0 : 1.0)
                        : exp_years > 4 ? 1.0
                                        : 0.0;
    x(i, 0) = exp_years;
    x(i, 1) = interview;
    x(i, 2) = degree;
    x(i, 3) = referred;
    x(i, 4) = role;
    // Crisp generative rules + 5% noise: hired iff (interview >= 7 AND
    // degree >= bachelors) OR (referred AND interview >= 5) OR
    // (experience >= 12 AND interview >= 6).
    bool hired = (interview >= 7.0 && degree >= 1.0) ||
                 (referred == 1.0 && interview >= 5.0) ||
                 (exp_years >= 12.0 && interview >= 6.0);
    if (rng.Bernoulli(0.05)) hired = !hired;
    y[i] = hired ? 1.0 : 0.0;
  }
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset MakeGaussianDataset(size_t n, const GaussianDataOptions& opts) {
  Rng rng(opts.seed);
  const size_t d = opts.dims;
  std::vector<FeatureSpec> specs;
  specs.reserve(d);
  for (size_t j = 0; j < d; ++j)
    specs.push_back(FeatureSpec::Numeric("x" + std::to_string(j)));
  Matrix x(n, d);
  std::vector<double> y(n);
  const double rho = std::clamp(opts.rho, -0.99, 0.99);
  const double noise_scale = std::sqrt(1.0 - rho * rho);
  for (size_t i = 0; i < n; ++i) {
    double prev = rng.Gaussian();
    x(i, 0) = prev;
    for (size_t j = 1; j < d; ++j) {
      // AR(1) chain: corr(x_j, x_{j-1}) = rho.
      prev = rho * prev + noise_scale * rng.Gaussian();
      x(i, j) = prev;
    }
    double score = 0.0;
    for (size_t j = 0; j < d; ++j)
      score += x(i, j) / static_cast<double>(j + 1);
    if (opts.classification) {
      y[i] = rng.Bernoulli(Sigmoid(2.0 * score)) ? 1.0 : 0.0;
    } else {
      y[i] = score + rng.Gaussian(0.0, 0.1);
    }
  }
  return Dataset(Schema(std::move(specs)), std::move(x), std::move(y));
}

Dataset MakeLinearRegressionDataset(size_t n, size_t d, uint64_t seed,
                                    std::vector<double>* true_weights) {
  Rng rng(seed);
  std::vector<FeatureSpec> specs;
  specs.reserve(d);
  for (size_t j = 0; j < d; ++j)
    specs.push_back(FeatureSpec::Numeric("f" + std::to_string(j)));
  std::vector<double> w(d);
  for (size_t j = 0; j < d; ++j) w[j] = rng.Uniform(-2.0, 2.0);
  Matrix x(n, d);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Gaussian();
      s += w[j] * x(i, j);
    }
    y[i] = s + rng.Gaussian(0.0, 0.25);
  }
  if (true_weights) *true_weights = std::move(w);
  return Dataset(Schema(std::move(specs)), std::move(x), std::move(y));
}

}  // namespace xai
