#include "data/dataset.h"

#include <algorithm>

namespace xai {

Result<Dataset> Dataset::Create(Schema schema, Matrix x,
                                std::vector<double> y) {
  if (x.rows() != y.size())
    return Status::InvalidArgument("Dataset: X rows != y size");
  if (x.cols() != schema.num_features())
    return Status::InvalidArgument("Dataset: X cols != schema features");
  return Dataset(std::move(schema), std::move(x), std::move(y));
}

Dataset Dataset::Select(const std::vector<size_t>& idx) const {
  std::vector<double> ysel(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) ysel[i] = y_[idx[i]];
  return Dataset(schema_, x_.SelectRows(idx), std::move(ysel));
}

Dataset Dataset::RemoveRow(size_t i) const { return RemoveRows({i}); }

Dataset Dataset::RemoveRows(const std::vector<size_t>& idx) const {
  std::vector<bool> drop(n(), false);
  for (size_t i : idx) drop[i] = true;
  std::vector<size_t> keep;
  keep.reserve(n() - idx.size());
  for (size_t i = 0; i < n(); ++i)
    if (!drop[i]) keep.push_back(i);
  return Select(keep);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  std::vector<size_t> perm = rng->Permutation(n());
  const size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(n()));
  std::vector<size_t> train_idx(perm.begin(), perm.begin() + n_train);
  std::vector<size_t> test_idx(perm.begin() + n_train, perm.end());
  return {Select(train_idx), Select(test_idx)};
}

}  // namespace xai
