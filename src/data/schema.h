#ifndef XAIDB_DATA_SCHEMA_H_
#define XAIDB_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace xai {

enum class FeatureType { kNumeric, kCategorical };

/// Description of one feature column. Categorical values are stored in the
/// data matrix as category codes 0..categories.size()-1 (doubles), with
/// `categories` carrying their display names.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kNumeric;
  std::vector<std::string> categories;  // Only for kCategorical.

  static FeatureSpec Numeric(std::string name) {
    return {std::move(name), FeatureType::kNumeric, {}};
  }
  static FeatureSpec Categorical(std::string name,
                                 std::vector<std::string> categories) {
    return {std::move(name), FeatureType::kCategorical,
            std::move(categories)};
  }

  bool is_numeric() const { return type == FeatureType::kNumeric; }
  size_t cardinality() const { return categories.size(); }
};

/// Ordered collection of feature columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FeatureSpec> features)
      : features_(std::move(features)) {}

  size_t num_features() const { return features_.size(); }
  const FeatureSpec& feature(size_t i) const { return features_[i]; }
  const std::vector<FeatureSpec>& features() const { return features_; }

  /// Index of the named feature.
  Result<size_t> FeatureIndex(const std::string& name) const;

  /// Human-readable rendering of a feature value ("income=54k" vs
  /// "education=Masters").
  std::string FormatValue(size_t feature, double value) const;

 private:
  std::vector<FeatureSpec> features_;
};

}  // namespace xai

#endif  // XAIDB_DATA_SCHEMA_H_
