#ifndef XAIDB_DATA_TRANSFORMS_H_
#define XAIDB_DATA_TRANSFORMS_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace xai {

/// Z-score standardizer for numeric columns; categorical columns pass
/// through unchanged. Fit on train, apply to train/test/instances.
class Standardizer {
 public:
  /// Computes per-column mean/std over the dataset's numeric columns.
  static Standardizer Fit(const Dataset& ds);

  Dataset Transform(const Dataset& ds) const;
  std::vector<double> TransformRow(const std::vector<double>& row) const;
  std::vector<double> InverseRow(const std::vector<double>& row) const;

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stds() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;           // 1.0 for categorical / constant cols.
  std::vector<bool> is_numeric_;
};

/// Equal-frequency (quantile) discretizer for numeric columns — the
/// substrate Anchors and rule mining need to turn tabular rows into
/// predicates ("income in [42k, 61k)").
class Discretizer {
 public:
  static Discretizer Fit(const Dataset& ds, int bins_per_feature = 4);

  /// Bin index for a feature value (categorical values map to their code).
  int Bin(size_t feature, double value) const;
  /// Number of bins for the feature.
  int NumBins(size_t feature) const;
  /// Human-readable description of a bin, e.g. "income in [42.1, 61.7)".
  std::string BinLabel(const Schema& schema, size_t feature, int bin) const;
  /// Lower/upper edges of a numeric bin (±inf at extremes).
  std::pair<double, double> BinRange(size_t feature, int bin) const;
  bool is_numeric(size_t feature) const { return is_numeric_[feature]; }

 private:
  std::vector<std::vector<double>> cut_points_;  // Per numeric feature.
  std::vector<int> num_bins_;
  std::vector<bool> is_numeric_;
};

/// Flips the binary label of a `fraction` of rows chosen uniformly at
/// random. Returns the indices of corrupted rows (ground truth for the
/// data-debugging experiments E5/E6).
std::vector<size_t> InjectLabelNoise(Dataset* ds, double fraction, Rng* rng);

/// One-hot expansion of categorical columns (numeric columns pass through).
/// Returns the expanded dataset with an all-numeric schema.
Dataset OneHotEncode(const Dataset& ds);

/// Per-column empirical distribution summary used by perturbation-based
/// explainers (LIME, Anchors) to sample realistic feature values.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> std;
  // For every feature: sorted distinct observed values (numeric) or
  // category frequencies (categorical).
  std::vector<std::vector<double>> values;
  std::vector<std::vector<double>> frequencies;  // Categorical only.
};
ColumnStats ComputeColumnStats(const Dataset& ds);

}  // namespace xai

#endif  // XAIDB_DATA_TRANSFORMS_H_
