#ifndef XAIDB_MODEL_LOGISTIC_REGRESSION_H_
#define XAIDB_MODEL_LOGISTIC_REGRESSION_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "math/matrix.h"
#include "model/model.h"

namespace xai {

/// L2-regularized logistic regression fit by Newton / IRLS.
///
/// Objective (theta = [w; b], the intercept is regularized too so the
/// Hessian used by influence functions is exactly the objective's Hessian):
///   J(theta) = (1/n) sum_i CE(y_i, sigmoid(theta . x~_i)) +
///              (lambda/2) ||theta||^2
/// where x~ appends a constant 1. Per-sample gradients and the full Hessian
/// are exposed because influence-function explanations (Koh & Liang) and
/// the PrIU-style incremental refresh need them.
struct LogisticRegressionOptions {
  double lambda = 1e-3;
  int max_iter = 50;
  double tol = 1e-9;
};

class LogisticRegression : public Model {
 public:
  using Options = LogisticRegressionOptions;

  static Result<LogisticRegression> Fit(const Dataset& ds,
                                        const Options& opts = Options());
  static Result<LogisticRegression> Fit(const Matrix& x,
                                        const std::vector<double>& y,
                                        const Options& opts = Options());
  /// Warm-started fit (used by incremental maintenance): runs Newton from
  /// `init_theta` instead of zero.
  static Result<LogisticRegression> FitFrom(
      const Matrix& x, const std::vector<double>& y,
      const std::vector<double>& init_theta, const Options& opts);
  /// Reconstructs a fitted model from its parameters (deserialization).
  static LogisticRegression FromParameters(std::vector<double> theta,
                                           double lambda);

  /// P(y=1|x).
  double Predict(const std::vector<double>& x) const override;
  /// GEMV margin + vectorized sigmoid (bit-identical to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return theta_.size() - 1; }

  /// Raw log-odds.
  double Margin(const std::vector<double>& x) const;
  /// Raw log-odds for every row of x.
  std::vector<double> MarginBatch(const Matrix& x) const;

  /// Full parameter vector [w; b].
  const std::vector<double>& theta() const { return theta_; }
  double lambda() const { return lambda_; }

  /// Gradient of the *per-sample* regularized objective contribution
  /// nabla_theta [ CE(y, p(x)) ] evaluated at the fitted parameters
  /// (regularization excluded — it cancels in influence computations that
  /// use the objective Hessian below).
  std::vector<double> SampleGradient(const std::vector<double>& x,
                                     double y) const;
  /// Same, at arbitrary parameters.
  static std::vector<double> SampleGradientAt(const std::vector<double>& x,
                                              double y,
                                              const std::vector<double>& theta);

  /// Hessian of the objective J over the dataset at the fitted parameters:
  /// (1/n) sum_i p_i (1-p_i) x~_i x~_i^T + lambda I.
  Matrix ObjectiveHessian(const Matrix& x) const;

  /// Total objective value over (x, y) — used by tests to verify Newton
  /// convergence and by data-valuation utilities.
  double Objective(const Matrix& x, const std::vector<double>& y) const;

 private:
  std::vector<double> theta_;  // [w_0..w_{d-1}, b]
  double lambda_ = 0.0;
};

}  // namespace xai

#endif  // XAIDB_MODEL_LOGISTIC_REGRESSION_H_
