#include "model/hist_learner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace xai {

size_t DataPartition::Split(const BinnedDataset& binned, size_t f,
                            uint32_t split_bin, size_t begin, size_t end) {
  const auto lo = rows_.begin() + static_cast<std::ptrdiff_t>(begin);
  const auto hi = rows_.begin() + static_cast<std::ptrdiff_t>(end);
  if (binned.narrow(f)) {
    const uint8_t* codes = binned.Codes8(f);
    return static_cast<size_t>(
        std::partition(lo, hi, [&](size_t r) { return codes[r] <= split_bin; }) -
        rows_.begin());
  }
  const uint16_t* codes = binned.Codes16(f);
  return static_cast<size_t>(
      std::partition(lo, hi, [&](size_t r) { return codes[r] <= split_bin; }) -
      rows_.begin());
}

namespace {

/// One histogram bin: the sufficient statistics of every training row whose
/// feature code falls in the bin. `h` is only maintained when the fit has
/// per-sample hessian weights; otherwise the (exact) integer count stands
/// in for it, matching the exact learner's sum of unit weights.
struct HistEntry {
  double t = 0.0;   // sum of targets
  double h = 0.0;   // sum of hessian weights (unused when hessian == null)
  uint32_t c = 0;   // row count
};

using HistBuffer = std::vector<HistEntry>;

/// Reusable node-histogram buffers; at most O(tree depth) are alive at
/// once (the subtraction trick keeps one parent buffer per level).
class HistPool {
 public:
  explicit HistPool(size_t buffer_size) : buffer_size_(buffer_size) {}

  std::unique_ptr<HistBuffer> Acquire() {
    if (!free_.empty()) {
      auto b = std::move(free_.back());
      free_.pop_back();
      return b;
    }
    return std::make_unique<HistBuffer>(buffer_size_);
  }
  void Release(std::unique_ptr<HistBuffer> b) {
    if (b) free_.push_back(std::move(b));
  }

 private:
  size_t buffer_size_;
  std::vector<std::unique_ptr<HistBuffer>> free_;
};

/// Accumulates feature f's histogram slice over rows [begin, end) of the
/// partition, ascending — the fixed accumulation order the determinism
/// contract requires.
template <typename CodeT>
void AccumulateFeature(const CodeT* codes, const std::vector<size_t>& rows,
                       size_t begin, size_t end,
                       const std::vector<double>& t,
                       const std::vector<double>* h, HistEntry* bins) {
  if (h != nullptr) {
    for (size_t k = begin; k < end; ++k) {
      const size_t r = rows[k];
      HistEntry& e = bins[codes[r]];
      e.t += t[r];
      e.h += (*h)[r];
      ++e.c;
    }
  } else {
    for (size_t k = begin; k < end; ++k) {
      const size_t r = rows[k];
      HistEntry& e = bins[codes[r]];
      e.t += t[r];
      ++e.c;
    }
  }
}

/// Best split of one feature, found by an ascending scan over its bins.
struct FeatureSplit {
  double gain = 1e-12;  // Same strict floor as the exact learner.
  int bin = -1;         // Split after this bin; -1 = no valid split.
};

/// Depth-first histogram tree builder. Mirrors the exact TreeBuilder's
/// node order, stopping rules, gain formula and leaf values so the two
/// learners agree tree-for-tree when quantization is lossless.
class HistTreeBuilder {
 public:
  HistTreeBuilder(const BinnedDataset& binned, const std::vector<double>& t,
                  const std::vector<double>* h, const TreeConfig& config,
                  Rng* rng, std::vector<int32_t>* leaf_of_row)
      : binned_(binned),
        t_(t),
        h_(h),
        config_(config),
        rng_(rng),
        leaf_of_row_(leaf_of_row),
        partition_(0),
        pool_(binned.TotalBins()) {
    const size_t d = binned_.features();
    // Per-node feature sampling changes the candidate set node to node, so
    // parent − sibling subtraction (which needs both histograms to cover
    // the same features) only runs for full-candidate fits.
    sampling_ = config_.max_features > 0 &&
                static_cast<size_t>(config_.max_features) < d &&
                rng_ != nullptr;
    subtraction_ = config_.train.hist_subtraction && !sampling_;
    all_feats_.resize(d);
    std::iota(all_feats_.begin(), all_feats_.end(), size_t{0});
  }

  Tree Build(std::vector<size_t> rows) {
    partition_ = DataPartition(std::move(rows));
    const size_t n = partition_.size();
    std::unique_ptr<HistBuffer> root_hist;
    if (!sampling_ && MaySplit(n, 0)) {
      root_hist = pool_.Acquire();
      BuildHistogram(0, n, all_feats_, root_hist.get());
    }
    BuildNode(0, n, 0, std::move(root_hist));
    return std::move(tree_);
  }

 private:
  double HWeight(size_t i) const { return h_ ? (*h_)[i] : 1.0; }

  bool MaySplit(size_t n, int depth) const {
    return depth < config_.max_depth &&
           n >= 2 * static_cast<size_t>(config_.min_samples_leaf);
  }

  /// Zeroes and fills the histogram slices of `feats` over partition rows
  /// [begin, end); one ParallelFor unit per feature.
  void BuildHistogram(size_t begin, size_t end,
                      const std::vector<size_t>& feats, HistBuffer* out) {
    const std::vector<size_t>& rows = partition_.rows();
    GlobalPool().ParallelFor(0, feats.size(), 1, [&](size_t fi) {
      const size_t f = feats[fi];
      HistEntry* bins = out->data() + binned_.BinOffset(f);
      std::fill(bins, bins + binned_.num_bins(f), HistEntry{});
      if (binned_.narrow(f)) {
        AccumulateFeature(binned_.Codes8(f), rows, begin, end, t_, h_, bins);
      } else {
        AccumulateFeature(binned_.Codes16(f), rows, begin, end, t_, h_, bins);
      }
    });
    XAI_OBS_COUNT("train.histograms_built");
  }

  /// parent − child, in place into `parent` (which becomes the sibling's
  /// histogram). Counts subtract exactly; sums are floating-point, so a
  /// subtracted histogram can differ from a directly accumulated one in
  /// the last ulps — which child is subtracted depends only on the split
  /// sizes, so results stay bit-identical for any thread count.
  void SubtractInto(HistBuffer* parent, const HistBuffer& child) {
    HistEntry* p = parent->data();
    const HistEntry* c = child.data();
    const size_t total = binned_.TotalBins();
    for (size_t i = 0; i < total; ++i) {
      p[i].t -= c[i].t;
      p[i].h -= c[i].h;
      p[i].c -= c[i].c;
    }
    XAI_OBS_COUNT("train.hist_subtractions");
  }

  /// Ascending-bin scan for feature f's best split of a node with the
  /// given totals. Candidate boundaries sit after every nonempty bin with
  /// data remaining on the right — the same candidate set (and the same
  /// first-wins tie order) the exact learner enumerates between distinct
  /// present values.
  FeatureSplit ScanFeature(size_t f, const HistBuffer& hist, size_t n,
                           double sum_t, double sum_h,
                           double parent_score) const {
    FeatureSplit best;
    const HistEntry* bins = hist.data() + binned_.BinOffset(f);
    const int nb = binned_.num_bins(f);
    const auto msl = static_cast<uint64_t>(config_.min_samples_leaf);
    double left_t = 0.0;
    double left_h = 0.0;
    uint64_t left_c = 0;
    uint64_t evaluated = 0;
    for (int b = 0; b + 1 < nb; ++b) {
      const HistEntry& e = bins[b];
      if (e.c == 0) continue;  // Same partition as the previous candidate.
      left_t += e.t;
      left_h += h_ ? e.h : 0.0;
      left_c += e.c;
      const uint64_t right_c = n - left_c;
      if (right_c == 0) break;
      if (left_c < msl || right_c < msl) continue;
      const double lh = h_ ? left_h : static_cast<double>(left_c);
      const double right_t = sum_t - left_t;
      const double rh =
          h_ ? sum_h - left_h : static_cast<double>(right_c);
      const double score = left_t * left_t / std::max(lh, 1e-12) +
                           right_t * right_t / std::max(rh, 1e-12);
      const double gain = score - parent_score;
      ++evaluated;
      if (gain > best.gain) {
        best.gain = gain;
        best.bin = b;
      }
    }
    if (evaluated > 0) XAI_OBS_COUNT_N("train.splits_evaluated", evaluated);
    return best;
  }

  void RecordLeaf(size_t begin, size_t end, int node_idx) {
    if (leaf_of_row_ == nullptr) return;
    for (size_t k = begin; k < end; ++k)
      (*leaf_of_row_)[partition_.row(k)] = node_idx;
  }

  /// Creates the node for partition rows [begin, end) at `depth`, taking
  /// ownership of the node's histogram (null when the node cannot split);
  /// returns its index. Node numbering is DFS (node, left subtree, right
  /// subtree), matching the exact builder.
  int BuildNode(size_t begin, size_t end, int depth,
                std::unique_ptr<HistBuffer> hist) {
    // Node totals from a direct ascending row scan — the same values (and
    // accumulation order) the exact learner computes, independent of any
    // subtracted histogram drift.
    double sum_t = 0.0;
    double sum_h = 0.0;
    for (size_t k = begin; k < end; ++k) {
      const size_t r = partition_.row(k);
      sum_t += t_[r];
      sum_h += HWeight(r);
    }
    const int node_idx = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    tree_.nodes[node_idx].cover = static_cast<double>(end - begin);
    tree_.nodes[node_idx].value = sum_h > 1e-12 ? sum_t / sum_h : 0.0;

    const size_t n = end - begin;
    if (!MaySplit(n, depth)) {
      pool_.Release(std::move(hist));
      RecordLeaf(begin, end, node_idx);
      return node_idx;
    }

    // Candidate features — same sampling stream position as the exact
    // learner (one SampleWithoutReplacement per splittable node).
    const std::vector<size_t>* feats = &all_feats_;
    std::vector<size_t> sampled;
    if (sampling_) {
      sampled = rng_->SampleWithoutReplacement(binned_.features(),
                                               config_.max_features);
      feats = &sampled;
      // No subtraction under sampling: this node's candidate histogram is
      // built fresh here instead of arriving from the parent.
      hist = pool_.Acquire();
      BuildHistogram(begin, end, *feats, hist.get());
    }

    const double parent_score = sum_t * sum_t / std::max(sum_h, 1e-12);

    // Per-feature best splits in parallel (each feature's scan is an
    // ascending serial loop), then a serial first-wins reduction in
    // candidate order — the exact learner's tie-break.
    std::vector<FeatureSplit> splits(feats->size());
    GlobalPool().ParallelFor(0, feats->size(), 1, [&](size_t fi) {
      splits[fi] =
          ScanFeature((*feats)[fi], *hist, n, sum_t, sum_h, parent_score);
    });
    double best_gain = 1e-12;
    int best_feature = -1;
    int best_bin = -1;
    for (size_t fi = 0; fi < splits.size(); ++fi) {
      if (splits[fi].bin >= 0 && splits[fi].gain > best_gain) {
        best_gain = splits[fi].gain;
        best_feature = static_cast<int>((*feats)[fi]);
        best_bin = splits[fi].bin;
      }
    }

    if (best_feature < 0) {
      pool_.Release(std::move(hist));
      RecordLeaf(begin, end, node_idx);
      return node_idx;
    }

    const size_t mid =
        partition_.Split(binned_, static_cast<size_t>(best_feature),
                         static_cast<uint32_t>(best_bin), begin, end);
    if (mid == begin || mid == end) {  // Cannot happen: both sides counted.
      pool_.Release(std::move(hist));
      RecordLeaf(begin, end, node_idx);
      return node_idx;
    }

    tree_.nodes[node_idx].feature = best_feature;
    tree_.nodes[node_idx].threshold =
        binned_.mapper(static_cast<size_t>(best_feature))
            .BinUpperBound(best_bin);

    // Child histograms: accumulate the smaller child directly, derive the
    // larger as parent − sibling in the parent's buffer. Under feature
    // sampling each child rebuilds its own candidates instead.
    std::unique_ptr<HistBuffer> left_hist;
    std::unique_ptr<HistBuffer> right_hist;
    const size_t n_left = mid - begin;
    const size_t n_right = end - mid;
    const bool left_may = MaySplit(n_left, depth + 1);
    const bool right_may = MaySplit(n_right, depth + 1);
    if (subtraction_ && (left_may || right_may)) {
      // Accumulating the smaller child and subtracting is never worse than
      // a direct build of either child, so do it whenever any child needs
      // a histogram (the small build also serves a small-child-only need).
      const bool left_smaller = n_left <= n_right;
      const bool smaller_may = left_smaller ? left_may : right_may;
      const bool larger_may = left_smaller ? right_may : left_may;
      std::unique_ptr<HistBuffer> small = pool_.Acquire();
      BuildHistogram(left_smaller ? begin : mid, left_smaller ? mid : end,
                     all_feats_, small.get());
      if (larger_may) {
        SubtractInto(hist.get(), *small);  // hist is now the larger child's.
      } else {
        pool_.Release(std::move(hist));
      }
      std::unique_ptr<HistBuffer>& small_slot =
          left_smaller ? left_hist : right_hist;
      std::unique_ptr<HistBuffer>& large_slot =
          left_smaller ? right_hist : left_hist;
      if (smaller_may) {
        small_slot = std::move(small);
      } else {
        pool_.Release(std::move(small));
      }
      if (larger_may) large_slot = std::move(hist);
    } else if (!subtraction_ && !sampling_) {
      // Subtraction disabled by the knob: both children re-accumulate.
      pool_.Release(std::move(hist));
      if (left_may) {
        left_hist = pool_.Acquire();
        BuildHistogram(begin, mid, all_feats_, left_hist.get());
      }
      if (right_may) {
        right_hist = pool_.Acquire();
        BuildHistogram(mid, end, all_feats_, right_hist.get());
      }
    } else {
      // Sampling mode: children build their own candidate histograms.
      pool_.Release(std::move(hist));
    }

    const int left = BuildNode(begin, mid, depth + 1, std::move(left_hist));
    tree_.nodes[node_idx].left = left;
    const int right = BuildNode(mid, end, depth + 1, std::move(right_hist));
    tree_.nodes[node_idx].right = right;
    return node_idx;
  }

  const BinnedDataset& binned_;
  const std::vector<double>& t_;
  const std::vector<double>* h_;
  const TreeConfig& config_;
  Rng* rng_;
  std::vector<int32_t>* leaf_of_row_;
  DataPartition partition_;
  HistPool pool_;
  std::vector<size_t> all_feats_;
  bool sampling_ = false;
  bool subtraction_ = true;
  Tree tree_;
};

}  // namespace

Tree FitRegressionTreeHist(const BinnedDataset& binned,
                           const std::vector<double>& targets,
                           const TreeConfig& config,
                           const std::vector<double>* hessian_weights,
                           const std::vector<size_t>* row_subset, Rng* rng,
                           std::vector<int32_t>* leaf_of_row) {
  XAI_OBS_SPAN("train.fit_tree_hist");
  std::vector<size_t> rows;
  if (row_subset) {
    rows = *row_subset;
  } else {
    rows.resize(binned.rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
  }
  if (leaf_of_row) leaf_of_row->assign(binned.rows(), -1);
  HistTreeBuilder builder(binned, targets, hessian_weights, config, rng,
                          leaf_of_row);
  Tree tree = builder.Build(std::move(rows));
  XAI_OBS_COUNT("train.trees_fit_hist");
  return tree;
}

}  // namespace xai
