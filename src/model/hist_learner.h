#ifndef XAIDB_MODEL_HIST_LEARNER_H_
#define XAIDB_MODEL_HIST_LEARNER_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "data/binned.h"
#include "model/tree.h"

namespace xai {

/// In-place partition of the row indices a tree fit works over: every node
/// owns a contiguous slice [begin, end) of one shared index array, and a
/// split reorders only its own slice (left block first), exactly like the
/// sort-per-node exact learner partitions its range — no per-node index
/// copies. Splitting is serial and order-preserving-free (std::partition),
/// so the row order each child sees is a pure function of the parent's
/// order: thread count never touches it.
class DataPartition {
 public:
  /// Starts with the identity permutation over `n` rows.
  explicit DataPartition(size_t n) : rows_(n) {
    std::iota(rows_.begin(), rows_.end(), size_t{0});
  }
  /// Starts from an explicit row subset (bootstrap bag / subsample).
  explicit DataPartition(std::vector<size_t> rows) : rows_(std::move(rows)) {}

  size_t size() const { return rows_.size(); }
  size_t row(size_t k) const { return rows_[k]; }
  std::vector<size_t>& rows() { return rows_; }

  /// Reorders [begin, end) so rows with code <= split_bin under feature f
  /// come first; returns the boundary index. `binned` supplies the codes
  /// (u8/u16 dispatch inside).
  size_t Split(const BinnedDataset& binned, size_t f, uint32_t split_bin,
               size_t begin, size_t end);

 private:
  std::vector<size_t> rows_;
};

/// Histogram-based regression-tree learner over a quantized dataset (the
/// LightGBM / XGBoost-approx idiom). Per node it accumulates one
/// (sum_target, sum_hessian, count) histogram bin per feature bin, scans
/// bins in ascending order for the best split, and recurses depth-first —
/// the same node numbering, gain formula (sum^2/hessian), stopping rules,
/// and leaf values as FitRegressionTree, so the two learners produce
/// identical trees whenever binning is lossless and target sums are exact.
///
/// Cost per tree is O(n·d) for the root histogram plus O(bins·d) per
/// node: the smaller child of every split is accumulated directly and the
/// larger one recovered as parent − sibling (histogram subtraction),
/// so a whole level of the tree costs about one pass over the data.
///
/// Determinism contract (PR 2): per-feature work units run under the
/// fixed-chunk ThreadPool::ParallelFor with each feature's histogram and
/// split scan accumulated in ascending row/bin order, and the cross-
/// feature reduction is serial in candidate order — results are
/// bit-identical for any thread count. Histogram subtraction is used only
/// when every feature is a split candidate at every node (no per-node
/// feature sampling), so parent and child histograms always cover the
/// same features; random-forest fits (max_features > 0) build per-node
/// candidate histograms directly.
///
/// `leaf_of_row`, when non-null, is resized to binned.rows() (-1 for rows
/// outside the training subset) and receives the node index of the leaf
/// each trained row landed in — the GBDT training loop uses it to apply
/// per-round margin updates without re-traversing the tree.
Tree FitRegressionTreeHist(const BinnedDataset& binned,
                           const std::vector<double>& targets,
                           const TreeConfig& config,
                           const std::vector<double>* hessian_weights = nullptr,
                           const std::vector<size_t>* row_subset = nullptr,
                           Rng* rng = nullptr,
                           std::vector<int32_t>* leaf_of_row = nullptr);

}  // namespace xai

#endif  // XAIDB_MODEL_HIST_LEARNER_H_
