#include "model/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace xai {
namespace {

constexpr char kMagic[] = "xaidb_model v1";

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) return Status::IOError("cannot open for write: " + path);
  *out << std::setprecision(17);
  *out << kMagic << "\n";
  return Status::OK();
}

Result<std::ifstream> OpenForRead(const std::string& path,
                                  const std::string& expected_type) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    return Status::InvalidArgument("bad magic in " + path);
  std::string kw;
  std::string type;
  in >> kw >> type;
  if (kw != "type" || type != expected_type)
    return Status::InvalidArgument("expected type " + expected_type +
                                   ", found " + type);
  return in;
}

void WriteTree(std::ofstream& out, const Tree& tree) {
  out << "tree " << tree.nodes.size() << "\n";
  for (const TreeNode& n : tree.nodes) {
    out << n.feature << " " << n.threshold << " " << n.left << " "
        << n.right << " " << n.value << " " << n.cover << "\n";
  }
}

Result<Tree> ReadTree(std::ifstream& in) {
  std::string kw;
  size_t n_nodes = 0;
  in >> kw >> n_nodes;
  if (kw != "tree" || !in)
    return Status::InvalidArgument("malformed tree header");
  if (n_nodes > 10'000'000)
    return Status::InvalidArgument("implausible tree size");
  Tree tree;
  tree.nodes.resize(n_nodes);
  for (TreeNode& node : tree.nodes) {
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.value >> node.cover;
    if (!in) return Status::InvalidArgument("malformed tree node");
  }
  return tree;
}

// Per-kind writers. The public entry point is the polymorphic
// SaveModel(const Model&) below; these carry the wire format.

Status SaveLinear(const LinearRegression& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type linear\n";
  out << "lambda " << model.lambda() << "\n";
  out << "intercept " << model.intercept() << "\n";
  out << "weights " << model.weights().size();
  for (double w : model.weights()) out << " " << w;
  out << "\n";
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveLogistic(const LogisticRegression& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type logistic\n";
  out << "lambda " << model.lambda() << "\n";
  out << "theta " << model.theta().size();
  for (double t : model.theta()) out << " " << t;
  out << "\n";
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveGbdt(const GradientBoostedTrees& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type gbdt\n";
  out << "loss "
      << (model.loss() == GbdtLoss::kLogistic ? "logistic" : "squared")
      << "\n";
  out << "base_score " << model.base_score() << "\n";
  out << "learning_rate " << model.learning_rate() << "\n";
  out << "num_features " << model.num_features() << "\n";
  out << "num_trees " << model.trees().size() << "\n";
  for (const Tree& t : model.trees()) WriteTree(out, t);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveDtree(const DecisionTree& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type dtree\n";
  out << "num_features " << model.num_features() << "\n";
  WriteTree(out, model.tree());
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveForest(const RandomForest& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type forest\n";
  out << "num_features " << model.num_features() << "\n";
  out << "num_trees " << model.trees().size() << "\n";
  for (const Tree& t : model.trees()) WriteTree(out, t);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

// kNN's parameters are the training set itself, schema included so the
// loaded Dataset is whole (KNN-Shapley valuation reads it). Feature names
// and category labels are written as whitespace-delimited tokens — names
// with embedded whitespace have no artifact form.
Status SaveKnn(const KnnClassifier& model, const std::string& path) {
  const Dataset& train = model.train();
  for (const FeatureSpec& spec : train.schema().features()) {
    if (spec.name.find_first_of(" \t\n") != std::string::npos)
      return Status::InvalidArgument(
          "knn artifact: feature name contains whitespace: " + spec.name);
    for (const std::string& cat : spec.categories)
      if (cat.find_first_of(" \t\n") != std::string::npos)
        return Status::InvalidArgument(
            "knn artifact: category contains whitespace: " + cat);
  }
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type knn\n";
  out << "k " << model.k() << "\n";
  out << "num_rows " << train.n() << "\n";
  out << "num_features " << train.d() << "\n";
  out << "schema " << train.schema().num_features() << "\n";
  for (const FeatureSpec& spec : train.schema().features()) {
    if (spec.is_numeric()) {
      out << "num " << spec.name << "\n";
    } else {
      out << "cat " << spec.name << " " << spec.categories.size();
      for (const std::string& cat : spec.categories) out << " " << cat;
      out << "\n";
    }
  }
  out << "labels";
  for (double y : train.y()) out << " " << y;
  out << "\n";
  for (size_t i = 0; i < train.n(); ++i) {
    const double* r = train.x().RowPtr(i);
    for (size_t j = 0; j < train.d(); ++j)
      out << (j == 0 ? "" : " ") << r[j];
    out << "\n";
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveNaiveBayes(const MultinomialNaiveBayes& model,
                      const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type nbayes\n";
  out << "prior_log_odds " << model.prior_log_odds() << "\n";
  out << "llr " << model.log_likelihood_ratios().size();
  for (double v : model.log_likelihood_ratios()) out << " " << v;
  out << "\n";
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace

Status SaveModel(const Model& model, const std::string& path) {
  if (const auto* m = dynamic_cast<const GradientBoostedTrees*>(&model))
    return SaveGbdt(*m, path);
  if (const auto* m = dynamic_cast<const DecisionTree*>(&model))
    return SaveDtree(*m, path);
  if (const auto* m = dynamic_cast<const RandomForest*>(&model))
    return SaveForest(*m, path);
  if (const auto* m = dynamic_cast<const LinearRegression*>(&model))
    return SaveLinear(*m, path);
  if (const auto* m = dynamic_cast<const LogisticRegression*>(&model))
    return SaveLogistic(*m, path);
  if (const auto* m = dynamic_cast<const KnnClassifier*>(&model))
    return SaveKnn(*m, path);
  if (const auto* m = dynamic_cast<const MultinomialNaiveBayes*>(&model))
    return SaveNaiveBayes(*m, path);
  return Status::InvalidArgument(
      "model has no artifact form (not a built-in fitted model)");
}

Result<std::string> ModelKindOf(const Model& model) {
  if (dynamic_cast<const GradientBoostedTrees*>(&model)) return {"gbdt"};
  if (dynamic_cast<const DecisionTree*>(&model)) return {"dtree"};
  if (dynamic_cast<const RandomForest*>(&model)) return {"forest"};
  if (dynamic_cast<const LinearRegression*>(&model)) return {"linear"};
  if (dynamic_cast<const LogisticRegression*>(&model)) return {"logistic"};
  if (dynamic_cast<const KnnClassifier*>(&model)) return {"knn"};
  if (dynamic_cast<const MultinomialNaiveBayes*>(&model)) return {"nbayes"};
  return Status::InvalidArgument(
      "model has no artifact form (not a built-in fitted model)");
}

Result<LinearRegression> LoadLinearRegression(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "linear"));
  std::string kw;
  double lambda = 0.0;
  double intercept = 0.0;
  size_t n = 0;
  in >> kw >> lambda >> kw >> intercept >> kw >> n;
  if (!in || n > 10'000'000)
    return Status::InvalidArgument("malformed linear model");
  std::vector<double> weights(n);
  for (double& w : weights) in >> w;
  if (!in) return Status::InvalidArgument("malformed weights");
  return LinearRegression::FromParameters(std::move(weights), intercept,
                                          lambda);
}

Result<LogisticRegression> LoadLogisticRegression(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "logistic"));
  std::string kw;
  double lambda = 0.0;
  size_t n = 0;
  in >> kw >> lambda >> kw >> n;
  if (!in || n == 0 || n > 10'000'000)
    return Status::InvalidArgument("malformed logistic model");
  std::vector<double> theta(n);
  for (double& t : theta) in >> t;
  if (!in) return Status::InvalidArgument("malformed theta");
  return LogisticRegression::FromParameters(std::move(theta), lambda);
}

Result<GradientBoostedTrees> LoadGbdt(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "gbdt"));
  std::string kw;
  std::string loss_name;
  double base = 0.0;
  double lr = 0.0;
  size_t num_features = 0;
  size_t num_trees = 0;
  in >> kw >> loss_name >> kw >> base >> kw >> lr >> kw >> num_features >>
      kw >> num_trees;
  if (!in || num_trees > 1'000'000)
    return Status::InvalidArgument("malformed gbdt header");
  std::vector<Tree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
    trees.push_back(std::move(tree));
  }
  const GbdtLoss loss =
      loss_name == "logistic" ? GbdtLoss::kLogistic : GbdtLoss::kSquared;
  return GradientBoostedTrees::FromParts(std::move(trees), base, lr, loss,
                                         num_features);
}

Result<DecisionTree> LoadDecisionTree(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "dtree"));
  std::string kw;
  size_t num_features = 0;
  in >> kw >> num_features;
  if (!in || kw != "num_features")
    return Status::InvalidArgument("malformed dtree header");
  XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
  return DecisionTree::FromParts(std::move(tree), num_features);
}

Result<RandomForest> LoadRandomForest(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "forest"));
  std::string kw;
  size_t num_features = 0;
  size_t num_trees = 0;
  in >> kw >> num_features >> kw >> num_trees;
  if (!in || num_trees == 0 || num_trees > 1'000'000)
    return Status::InvalidArgument("malformed forest header");
  std::vector<Tree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
    trees.push_back(std::move(tree));
  }
  return RandomForest::FromParts(std::move(trees), num_features);
}

Result<KnnClassifier> LoadKnn(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "knn"));
  std::string kw;
  int k = 0;
  size_t n = 0;
  size_t d = 0;
  size_t n_specs = 0;
  in >> kw >> k >> kw >> n >> kw >> d >> kw >> n_specs;
  if (!in || k <= 0 || n == 0 || n > 10'000'000 || d > 1'000'000 ||
      n_specs > 1'000'000)
    return Status::InvalidArgument("malformed knn header");
  std::vector<FeatureSpec> specs;
  specs.reserve(n_specs);
  for (size_t j = 0; j < n_specs; ++j) {
    std::string tag;
    std::string name;
    in >> tag >> name;
    if (!in) return Status::InvalidArgument("malformed knn schema");
    if (tag == "num") {
      specs.push_back(FeatureSpec::Numeric(std::move(name)));
    } else if (tag == "cat") {
      size_t n_cats = 0;
      in >> n_cats;
      if (!in || n_cats > 1'000'000)
        return Status::InvalidArgument("malformed knn schema");
      std::vector<std::string> cats(n_cats);
      for (std::string& cat : cats) in >> cat;
      if (!in) return Status::InvalidArgument("malformed knn schema");
      specs.push_back(FeatureSpec::Categorical(std::move(name),
                                               std::move(cats)));
    } else {
      return Status::InvalidArgument("malformed knn schema tag: " + tag);
    }
  }
  in >> kw;
  if (!in || kw != "labels")
    return Status::InvalidArgument("malformed knn labels");
  std::vector<double> y(n);
  for (double& v : y) in >> v;
  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) in >> x(i, j);
  if (!in) return Status::InvalidArgument("malformed knn rows");
  return KnnClassifier::FromParts(
      Dataset(Schema(std::move(specs)), std::move(x), std::move(y)), k);
}

Result<MultinomialNaiveBayes> LoadNaiveBayes(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "nbayes"));
  std::string kw;
  double prior = 0.0;
  size_t n = 0;
  in >> kw >> prior >> kw >> n;
  if (!in || n == 0 || n > 10'000'000)
    return Status::InvalidArgument("malformed nbayes model");
  std::vector<double> llr(n);
  for (double& v : llr) in >> v;
  if (!in) return Status::InvalidArgument("malformed llr");
  return MultinomialNaiveBayes::FromParts(std::move(llr), prior);
}

Result<std::unique_ptr<Model>> LoadAnyModel(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::string type, PeekModelType(path));
  if (type == "linear") {
    XAI_ASSIGN_OR_RETURN(LinearRegression m, LoadLinearRegression(path));
    return std::unique_ptr<Model>(new LinearRegression(std::move(m)));
  }
  if (type == "logistic") {
    XAI_ASSIGN_OR_RETURN(LogisticRegression m, LoadLogisticRegression(path));
    return std::unique_ptr<Model>(new LogisticRegression(std::move(m)));
  }
  if (type == "gbdt") {
    XAI_ASSIGN_OR_RETURN(GradientBoostedTrees m, LoadGbdt(path));
    return std::unique_ptr<Model>(new GradientBoostedTrees(std::move(m)));
  }
  if (type == "dtree") {
    XAI_ASSIGN_OR_RETURN(DecisionTree m, LoadDecisionTree(path));
    return std::unique_ptr<Model>(new DecisionTree(std::move(m)));
  }
  if (type == "forest") {
    XAI_ASSIGN_OR_RETURN(RandomForest m, LoadRandomForest(path));
    return std::unique_ptr<Model>(new RandomForest(std::move(m)));
  }
  if (type == "knn") {
    XAI_ASSIGN_OR_RETURN(KnnClassifier m, LoadKnn(path));
    return std::unique_ptr<Model>(new KnnClassifier(std::move(m)));
  }
  if (type == "nbayes") {
    XAI_ASSIGN_OR_RETURN(MultinomialNaiveBayes m, LoadNaiveBayes(path));
    return std::unique_ptr<Model>(new MultinomialNaiveBayes(std::move(m)));
  }
  return Status::InvalidArgument("unknown model type '" + type + "' in " +
                                 path);
}

Result<std::string> PeekModelType(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    return Status::InvalidArgument("bad magic in " + path);
  std::string kw;
  std::string type;
  in >> kw >> type;
  if (kw != "type" || type.empty())
    return Status::InvalidArgument("missing type in " + path);
  return type;
}

}  // namespace xai
