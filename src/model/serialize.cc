#include "model/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace xai {
namespace {

constexpr char kMagic[] = "xaidb_model v1";

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) return Status::IOError("cannot open for write: " + path);
  *out << std::setprecision(17);
  *out << kMagic << "\n";
  return Status::OK();
}

Result<std::ifstream> OpenForRead(const std::string& path,
                                  const std::string& expected_type) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    return Status::InvalidArgument("bad magic in " + path);
  std::string kw;
  std::string type;
  in >> kw >> type;
  if (kw != "type" || type != expected_type)
    return Status::InvalidArgument("expected type " + expected_type +
                                   ", found " + type);
  return in;
}

void WriteTree(std::ofstream& out, const Tree& tree) {
  out << "tree " << tree.nodes.size() << "\n";
  for (const TreeNode& n : tree.nodes) {
    out << n.feature << " " << n.threshold << " " << n.left << " "
        << n.right << " " << n.value << " " << n.cover << "\n";
  }
}

Result<Tree> ReadTree(std::ifstream& in) {
  std::string kw;
  size_t n_nodes = 0;
  in >> kw >> n_nodes;
  if (kw != "tree" || !in)
    return Status::InvalidArgument("malformed tree header");
  if (n_nodes > 10'000'000)
    return Status::InvalidArgument("implausible tree size");
  Tree tree;
  tree.nodes.resize(n_nodes);
  for (TreeNode& node : tree.nodes) {
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.value >> node.cover;
    if (!in) return Status::InvalidArgument("malformed tree node");
  }
  return tree;
}

}  // namespace

Status SaveModel(const LinearRegression& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type linear\n";
  out << "lambda " << model.lambda() << "\n";
  out << "intercept " << model.intercept() << "\n";
  out << "weights " << model.weights().size();
  for (double w : model.weights()) out << " " << w;
  out << "\n";
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveModel(const LogisticRegression& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type logistic\n";
  out << "lambda " << model.lambda() << "\n";
  out << "theta " << model.theta().size();
  for (double t : model.theta()) out << " " << t;
  out << "\n";
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveModel(const GradientBoostedTrees& model,
                 const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type gbdt\n";
  out << "loss "
      << (model.loss() == GbdtLoss::kLogistic ? "logistic" : "squared")
      << "\n";
  out << "base_score " << model.base_score() << "\n";
  out << "learning_rate " << model.learning_rate() << "\n";
  out << "num_features " << model.num_features() << "\n";
  out << "num_trees " << model.trees().size() << "\n";
  for (const Tree& t : model.trees()) WriteTree(out, t);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveModel(const DecisionTree& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type dtree\n";
  out << "num_features " << model.num_features() << "\n";
  WriteTree(out, model.tree());
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status SaveModel(const RandomForest& model, const std::string& path) {
  std::ofstream out;
  XAI_RETURN_NOT_OK(OpenForWrite(path, &out));
  out << "type forest\n";
  out << "num_features " << model.num_features() << "\n";
  out << "num_trees " << model.trees().size() << "\n";
  for (const Tree& t : model.trees()) WriteTree(out, t);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<LinearRegression> LoadLinearRegression(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "linear"));
  std::string kw;
  double lambda = 0.0;
  double intercept = 0.0;
  size_t n = 0;
  in >> kw >> lambda >> kw >> intercept >> kw >> n;
  if (!in || n > 10'000'000)
    return Status::InvalidArgument("malformed linear model");
  std::vector<double> weights(n);
  for (double& w : weights) in >> w;
  if (!in) return Status::InvalidArgument("malformed weights");
  return LinearRegression::FromParameters(std::move(weights), intercept,
                                          lambda);
}

Result<LogisticRegression> LoadLogisticRegression(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "logistic"));
  std::string kw;
  double lambda = 0.0;
  size_t n = 0;
  in >> kw >> lambda >> kw >> n;
  if (!in || n == 0 || n > 10'000'000)
    return Status::InvalidArgument("malformed logistic model");
  std::vector<double> theta(n);
  for (double& t : theta) in >> t;
  if (!in) return Status::InvalidArgument("malformed theta");
  return LogisticRegression::FromParameters(std::move(theta), lambda);
}

Result<GradientBoostedTrees> LoadGbdt(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "gbdt"));
  std::string kw;
  std::string loss_name;
  double base = 0.0;
  double lr = 0.0;
  size_t num_features = 0;
  size_t num_trees = 0;
  in >> kw >> loss_name >> kw >> base >> kw >> lr >> kw >> num_features >>
      kw >> num_trees;
  if (!in || num_trees > 1'000'000)
    return Status::InvalidArgument("malformed gbdt header");
  std::vector<Tree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
    trees.push_back(std::move(tree));
  }
  const GbdtLoss loss =
      loss_name == "logistic" ? GbdtLoss::kLogistic : GbdtLoss::kSquared;
  return GradientBoostedTrees::FromParts(std::move(trees), base, lr, loss,
                                         num_features);
}

Result<DecisionTree> LoadDecisionTree(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "dtree"));
  std::string kw;
  size_t num_features = 0;
  in >> kw >> num_features;
  if (!in || kw != "num_features")
    return Status::InvalidArgument("malformed dtree header");
  XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
  return DecisionTree::FromParts(std::move(tree), num_features);
}

Result<RandomForest> LoadRandomForest(const std::string& path) {
  XAI_ASSIGN_OR_RETURN(std::ifstream in, OpenForRead(path, "forest"));
  std::string kw;
  size_t num_features = 0;
  size_t num_trees = 0;
  in >> kw >> num_features >> kw >> num_trees;
  if (!in || num_trees == 0 || num_trees > 1'000'000)
    return Status::InvalidArgument("malformed forest header");
  std::vector<Tree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    XAI_ASSIGN_OR_RETURN(Tree tree, ReadTree(in));
    trees.push_back(std::move(tree));
  }
  return RandomForest::FromParts(std::move(trees), num_features);
}

Result<std::string> PeekModelType(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    return Status::InvalidArgument("bad magic in " + path);
  std::string kw;
  std::string type;
  in >> kw >> type;
  if (kw != "type" || type.empty())
    return Status::InvalidArgument("missing type in " + path);
  return type;
}

}  // namespace xai
