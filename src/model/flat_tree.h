#ifndef XAIDB_MODEL_FLAT_TREE_H_
#define XAIDB_MODEL_FLAT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/matrix.h"
#include "model/tree.h"

namespace xai {

/// A fitted tree ensemble compiled into one contiguous structure-of-arrays
/// layout (the LightGBM `Tree` idiom): every node field lives in its own
/// flat array, all trees concatenated, child links stored as *global*
/// indices so the traversal inner loop is pure index arithmetic —
///
///   i = x[feature[i]] <= threshold[i] ? left[i] : right[i]
///
/// with no node objects, no pointer chasing and no per-step offset math.
///
/// Two compile-time tricks make the hot loop branch-light:
///
///  1. **Leaf self-loops.** A leaf stores `left == right == self`, routing
///     feature 0 and threshold +inf, so the traversal step above is a
///     no-op once a row lands in a leaf (NaN routes right, also to self).
///  2. **Fixed trip count.** Each tree records its max depth; the
///     predictor runs exactly `depth` routing steps for every row. Rows
///     that reach their leaf early just self-loop, so the only
///     data-dependent control flow left is the `<=` select itself, and
///     several rows can be traversed as interleaved cursors to hide the
///     dependent-load latency.
///
/// Routing decisions are the exact comparisons the node-based `Tree`
/// performs, so every prediction (and every TreeSHAP cover ratio read off
/// these arrays) is bit-identical to the pointer-chasing reference — the
/// determinism contract the eval cache and coalescing service rely on.
///
/// `ExpectedValue` (the cover-weighted leaf average TreeSHAP attributes
/// against) is computed once per tree at compile time instead of rescanned
/// per explain.
class FlatEnsemble {
 public:
  FlatEnsemble() = default;

  /// Compiles fitted trees into the flat form. Node order within a tree is
  /// preserved, so node `k` of tree `t` lives at global index
  /// `root(t) + k`.
  static FlatEnsemble Compile(const std::vector<Tree>& trees);
  static FlatEnsemble Compile(const Tree& tree);

  size_t num_trees() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_nodes() const { return value_.size(); }
  bool empty() const { return num_trees() == 0; }

  /// Global index of tree t's root.
  int32_t root(size_t t) const { return offsets_[t]; }
  /// A leaf self-loops; no valid internal node can be its own child.
  bool is_leaf(int32_t i) const {
    return children_[2 * static_cast<size_t>(i)] == i;
  }
  int feature(int32_t i) const { return feature_[static_cast<size_t>(i)]; }
  double threshold(int32_t i) const {
    return threshold_[static_cast<size_t>(i)];
  }
  int32_t left(int32_t i) const {
    return children_[2 * static_cast<size_t>(i)];
  }
  int32_t right(int32_t i) const {
    return children_[2 * static_cast<size_t>(i) + 1];
  }
  double value(int32_t i) const { return value_[static_cast<size_t>(i)]; }
  double cover(int32_t i) const { return cover_[static_cast<size_t>(i)]; }

  /// Max root-to-leaf edge count of tree t (the predictor's trip count).
  int depth(size_t t) const { return depth_[t]; }
  /// Cover-weighted average leaf value of tree t, precomputed at compile
  /// time with the same accumulation order as Tree::ExpectedValue (so the
  /// double is identical).
  double expected_value(size_t t) const { return expected_value_[t]; }

  /// Global index of the leaf row x lands in under tree t.
  int32_t Leaf(size_t t, const double* x) const;
  /// Leaf value of tree t on row x (bit-identical to Tree::Predict).
  double PredictTree(size_t t, const double* x) const {
    return value_[static_cast<size_t>(Leaf(t, x))];
  }

  /// out[i] += scale * tree_t(row i) for every row of x: row blocks of
  /// interleaved traversal cursors, fixed `depth(t)` routing steps each.
  void AccumulateTree(size_t t, const Matrix& x, double scale,
                      std::vector<double>* out) const;

  /// out[i] += scale * sum_t tree_t(row i), traversed tree-outer /
  /// row-inner so one tree's arrays stay cache-hot across the whole row
  /// block. Per row, trees accumulate in tree order — the same order as
  /// the scalar ensemble loop, keeping results bit-identical.
  void AccumulateAll(const Matrix& x, double scale,
                     std::vector<double>* out) const;

 private:
  void AppendTree(const Tree& tree);
  /// Interleaved-cursor traversal of tree t over rows [begin, end).
  void AccumulateRange(size_t t, const Matrix& x, size_t begin, size_t end,
                       double scale, std::vector<double>* out) const;

  // One entry per node, all trees concatenated (SoA). The left/right child
  // arrays are interleaved as children_[2*i + side] so (a) a node's two
  // children always share a cache line and (b) the routing step is pure
  // index arithmetic on the comparison result — no ternary for the
  // compiler to turn back into a branch.
  std::vector<int32_t> feature_;    // Split feature; 0 (unused) at leaves.
  std::vector<double> threshold_;   // Split threshold; +inf at leaves.
  std::vector<int32_t> children_;   // [2i]=left, [2i+1]=right; self at leaves.
  std::vector<double> value_;       // Leaf/internal node value.
  std::vector<double> cover_;       // Training-sample weight (TreeSHAP).
  // One entry per tree (+1 sentinel for offsets_).
  std::vector<int32_t> offsets_;    // offsets_[t] = first node of tree t.
  std::vector<int> depth_;
  std::vector<double> expected_value_;
};

}  // namespace xai

#endif  // XAIDB_MODEL_FLAT_TREE_H_
