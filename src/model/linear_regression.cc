#include "model/linear_regression.h"

#include "math/linalg.h"

namespace xai {

Result<LinearRegression> LinearRegression::Fit(const Dataset& ds,
                                               const Options& opts) {
  return Fit(ds.x(), ds.y(), opts);
}

Result<LinearRegression> LinearRegression::Fit(const Matrix& x,
                                               const std::vector<double>& y,
                                               const Options& opts) {
  if (x.rows() != y.size())
    return Status::InvalidArgument("LinearRegression: X rows != y size");
  if (x.rows() == 0)
    return Status::InvalidArgument("LinearRegression: empty data");
  const size_t d = x.cols();
  // Augment with intercept column.
  Matrix xa(x.rows(), d + 1);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* r = x.RowPtr(i);
    double* o = xa.RowPtr(i);
    for (size_t j = 0; j < d; ++j) o[j] = r[j];
    o[d] = 1.0;
  }
  Matrix gram = xa.Gram();
  for (size_t j = 0; j < d; ++j) gram(j, j) += opts.lambda;
  gram(d, d) += 1e-12;  // Numerical guard; intercept unregularized.
  std::vector<double> xty = xa.TransposeTimes(y);
  XAI_ASSIGN_OR_RETURN(std::vector<double> theta, SolveSpd(gram, xty));
  LinearRegression m;
  m.weights_.assign(theta.begin(), theta.begin() + static_cast<long>(d));
  m.intercept_ = theta[d];
  m.lambda_ = opts.lambda;
  return m;
}

LinearRegression LinearRegression::FromParameters(
    std::vector<double> weights, double intercept, double lambda) {
  LinearRegression m;
  m.weights_ = std::move(weights);
  m.intercept_ = intercept;
  m.lambda_ = lambda;
  return m;
}

double LinearRegression::Predict(const std::vector<double>& x) const {
  return Dot(weights_, x) + intercept_;
}

std::vector<double> LinearRegression::PredictBatch(const Matrix& x) const {
  std::vector<double> out = x * weights_;
  for (double& v : out) v += intercept_;
  return out;
}

std::vector<double> LinearRegression::Theta() const {
  std::vector<double> t = weights_;
  t.push_back(intercept_);
  return t;
}

}  // namespace xai
