#include "model/decision_tree.h"

#include <cmath>

namespace xai {

Result<DecisionTree> DecisionTree::Fit(const Dataset& ds,
                                       const TreeConfig& config) {
  if (ds.n() == 0) return Status::InvalidArgument("DecisionTree: empty data");
  DecisionTree m;
  m.tree_ = FitRegressionTree(ds.x(), ds.y(), config);
  m.num_features_ = ds.d();
  return m;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  return tree_.Predict(x);
}

std::vector<double> DecisionTree::PredictBatch(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  tree_.AccumulateBatch(x, 1.0, &out);
  return out;
}

Result<RandomForest> RandomForest::Fit(const Dataset& ds,
                                       const Options& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("RandomForest: empty data");
  RandomForest m;
  m.num_features_ = ds.d();
  Rng rng(opts.seed);
  TreeConfig cfg = opts.tree;
  if (cfg.max_features == 0) {
    cfg.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(ds.d()))));
  }
  m.trees_.reserve(opts.num_trees);
  for (int t = 0; t < opts.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> rows(ds.n());
    for (size_t i = 0; i < ds.n(); ++i)
      rows[i] = static_cast<size_t>(rng.NextInt(ds.n()));
    Rng tree_rng = rng.Fork();
    m.trees_.push_back(
        FitRegressionTree(ds.x(), ds.y(), cfg, nullptr, &rows, &tree_rng));
  }
  return m;
}

double RandomForest::Predict(const std::vector<double>& x) const {
  double s = 0.0;
  for (const Tree& t : trees_) s += t.Predict(x);
  return s / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::PredictBatch(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  for (const Tree& t : trees_) t.AccumulateBatch(x, 1.0, &out);
  for (double& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

}  // namespace xai
