#include "model/decision_tree.h"

#include <cmath>

#include "common/thread_pool.h"
#include "data/binned.h"
#include "model/hist_learner.h"
#include "obs/obs.h"

namespace xai {

Result<DecisionTree> DecisionTree::Fit(const Dataset& ds,
                                       const TreeConfig& config) {
  if (ds.n() == 0) return Status::InvalidArgument("DecisionTree: empty data");
  return FromParts(FitRegressionTree(ds.x(), ds.y(), config), ds.d());
}

DecisionTree DecisionTree::FromParts(Tree tree, size_t num_features) {
  DecisionTree m;
  m.tree_ = std::move(tree);
  m.flat_ = FlatEnsemble::Compile(m.tree_);
  m.num_features_ = num_features;
  return m;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  return flat_.PredictTree(0, x.data());
}

std::vector<double> DecisionTree::PredictBatch(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  flat_.AccumulateTree(0, x, 1.0, &out);
  return out;
}

Result<RandomForest> RandomForest::Fit(const Dataset& ds,
                                       const Options& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("RandomForest: empty data");
  XAI_OBS_SPAN("train.fit_forest");
  TreeConfig cfg = opts.tree;
  if (cfg.max_features == 0) {
    cfg.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(ds.d()))));
  }
  // Quantize once; every tree of the forest shares the read-only codes.
  BinnedDataset binned;
  bool hist = cfg.train.method == TrainMethod::kHist;
  if (hist) {
    auto b = BinnedDataset::Build(ds.x(), cfg.train.max_bins);
    if (b.ok()) {
      binned = std::move(*b);
    } else {
      hist = false;
    }
  }
  // Per-tree ChunkSeed counter streams (PR 2 scheme): tree t's bootstrap
  // bag and feature-sampling stream depend only on (seed, t), never on
  // which thread fits it or how many trees ran before — forest training
  // is bit-identical for any thread count.
  std::vector<Tree> trees(static_cast<size_t>(opts.num_trees));
  GlobalPool().ParallelFor(
      0, trees.size(), 1, [&](size_t t) {
        Rng boot_rng(ChunkSeed(opts.seed, 2 * t));
        std::vector<size_t> rows(ds.n());
        for (size_t i = 0; i < ds.n(); ++i)
          rows[i] = static_cast<size_t>(boot_rng.NextInt(ds.n()));
        Rng tree_rng(ChunkSeed(opts.seed, 2 * t + 1));
        trees[t] = hist ? FitRegressionTreeHist(binned, ds.y(), cfg, nullptr,
                                                &rows, &tree_rng)
                        : FitRegressionTree(ds.x(), ds.y(), cfg, nullptr,
                                            &rows, &tree_rng);
      });
  return FromParts(std::move(trees), ds.d());
}

RandomForest RandomForest::FromParts(std::vector<Tree> trees,
                                     size_t num_features) {
  RandomForest m;
  m.trees_ = std::move(trees);
  m.flat_ = FlatEnsemble::Compile(m.trees_);
  m.num_features_ = num_features;
  return m;
}

double RandomForest::Predict(const std::vector<double>& x) const {
  double s = 0.0;
  for (size_t t = 0; t < flat_.num_trees(); ++t)
    s += flat_.PredictTree(t, x.data());
  return s / static_cast<double>(flat_.num_trees());
}

std::vector<double> RandomForest::PredictBatch(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  flat_.AccumulateAll(x, 1.0, &out);
  for (double& v : out) v /= static_cast<double>(flat_.num_trees());
  return out;
}

}  // namespace xai
