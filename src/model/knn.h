#ifndef XAIDB_MODEL_KNN_H_
#define XAIDB_MODEL_KNN_H_

#include "common/result.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// k-nearest-neighbor classifier (Euclidean distance; callers should
/// standardize features). Predict returns the fraction of the k nearest
/// training points with label 1. The stored training set is exposed because
/// the exact KNN-Shapley data-valuation recurrence (Jia et al.) operates on
/// the same distance ordering.
class KnnClassifier : public Model {
 public:
  static Result<KnnClassifier> Fit(const Dataset& ds, int k = 5);
  /// Reconstructs a fitted classifier from its parts (deserialization) —
  /// kNN's "parameters" are the training set itself.
  static KnnClassifier FromParts(Dataset train, int k);

  double Predict(const std::vector<double>& x) const override;
  /// Block distance computation with reused scratch buffers (bit-identical
  /// to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return train_.d(); }

  int k() const { return k_; }
  const Dataset& train() const { return train_; }

  /// Indices of training points sorted by ascending distance to x.
  std::vector<size_t> NeighborsByDistance(const std::vector<double>& x) const;

 private:
  Dataset train_;
  int k_ = 5;
};

}  // namespace xai

#endif  // XAIDB_MODEL_KNN_H_
