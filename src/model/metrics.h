#ifndef XAIDB_MODEL_METRICS_H_
#define XAIDB_MODEL_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Fraction of thresholded predictions matching {0,1} labels.
double Accuracy(const std::vector<double>& probs,
                const std::vector<double>& labels);
/// Mean binary cross-entropy; probabilities are clamped away from {0,1}.
double LogLoss(const std::vector<double>& probs,
               const std::vector<double>& labels);
/// Area under the ROC curve via the rank statistic (ties averaged).
double Auc(const std::vector<double>& scores,
           const std::vector<double>& labels);
/// F1 of the positive class at threshold 0.5.
double F1Score(const std::vector<double>& probs,
               const std::vector<double>& labels);
double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& truth);
/// Coefficient of determination.
double R2Score(const std::vector<double>& pred,
               const std::vector<double>& truth);

/// Convenience: model accuracy over a dataset.
double EvaluateAccuracy(const Model& m, const Dataset& ds);
double EvaluateAuc(const Model& m, const Dataset& ds);

}  // namespace xai

#endif  // XAIDB_MODEL_METRICS_H_
