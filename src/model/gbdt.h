#ifndef XAIDB_MODEL_GBDT_H_
#define XAIDB_MODEL_GBDT_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/flat_tree.h"
#include "model/model.h"
#include "model/tree.h"

namespace xai {

/// Gradient-boosted decision trees.
///
/// - Logistic loss (classification): each round fits a regression tree to
///   the negative gradient (y - p) with Newton leaf values
///   sum(residual)/sum(p(1-p)); Predict returns a probability and
///   PredictMargin the raw log-odds F(x) = base + sum lr * tree_t(x).
/// - Squared loss (regression): trees fit plain residuals, Predict returns
///   F(x) directly.
///
/// Trees and leaf training-index assignments are exposed for TreeShap
/// (which explains the margin F) and for the LeafRefit influence
/// approximation (Sharchilev et al.).
enum class GbdtLoss { kLogistic, kSquared };

struct GbdtOptions {
  GbdtLoss loss = GbdtLoss::kLogistic;
  int num_rounds = 50;
  double learning_rate = 0.1;
  TreeConfig tree = {.max_depth = 3, .min_samples_leaf = 5,
                     .max_features = 0};
  /// Row subsample fraction per round (stochastic gradient boosting);
  /// 1.0 = deterministic.
  double subsample = 1.0;
  uint64_t seed = 29;
};

class GradientBoostedTrees : public Model {
 public:
  using Loss = GbdtLoss;
  using Options = GbdtOptions;

  static Result<GradientBoostedTrees> Fit(const Dataset& ds,
                                          const Options& opts = Options());
  /// Reconstructs a fitted ensemble from its parts (deserialization).
  static GradientBoostedTrees FromParts(std::vector<Tree> trees,
                                        double base_score,
                                        double learning_rate, Loss loss,
                                        size_t num_features);

  /// Probability for logistic loss, value for squared loss.
  double Predict(const std::vector<double>& x) const override;
  /// Tree-outer / row-inner flat-array traversal over the whole ensemble
  /// (bit-identical to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return num_features_; }

  /// Raw additive score: base_score + lr * sum_t tree_t(x).
  double PredictMargin(const std::vector<double>& x) const;
  /// Batched margins, same traversal as PredictBatch.
  std::vector<double> PredictMarginBatch(const Matrix& x) const;

  const std::vector<Tree>& trees() const { return trees_; }
  /// The compiled serving/explaining form (built at Fit/FromParts).
  const FlatEnsemble& flat() const { return flat_; }
  double base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }
  Loss loss() const { return loss_; }

 private:
  std::vector<Tree> trees_;
  FlatEnsemble flat_;
  double base_score_ = 0.0;
  double learning_rate_ = 0.1;
  Loss loss_ = Loss::kLogistic;
  size_t num_features_ = 0;
};

}  // namespace xai

#endif  // XAIDB_MODEL_GBDT_H_
