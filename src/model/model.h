#ifndef XAIDB_MODEL_MODEL_H_
#define XAIDB_MODEL_MODEL_H_

#include <functional>
#include <utility>
#include <vector>

#include "math/matrix.h"

namespace xai {

/// The black-box interface every explainer consumes. For classifiers,
/// Predict returns P(y = 1 | x); for regressors, the predicted value.
/// Model-agnostic explainers (LIME, KernelSHAP, Anchors, counterfactual
/// search, ...) use nothing beyond this interface — mirroring the tutorial's
/// "model agnostic" axis of the XAI taxonomy.
///
/// PredictBatch is the library's evaluation workhorse: perturbation-based
/// explainers are dominated by model evaluations (tutorial Sec. 2.1.2), so
/// every explainer materializes its whole sample set and calls PredictBatch
/// once instead of Predict per row. Overrides must be *row-equivalent*:
/// PredictBatch(x)[i] == Predict(x.Row(i)) bit-for-bit (the determinism
/// tests rely on it).
class Model {
 public:
  virtual ~Model() = default;

  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Batched prediction; the default loops over rows through one reused
  /// scratch buffer (no per-row allocation or Matrix::Row copy).
  /// Overridden by every built-in model with a vectorized path.
  virtual std::vector<double> PredictBatch(const Matrix& x) const {
    std::vector<double> out(x.rows());
    std::vector<double> row(x.cols());
    for (size_t i = 0; i < x.rows(); ++i) {
      const double* r = x.RowPtr(i);
      row.assign(r, r + x.cols());
      out[i] = Predict(row);
    }
    return out;
  }

  virtual size_t num_features() const = 0;
};

/// Hard 0/1 label from a probability-producing model.
inline double PredictLabel(const Model& m, const std::vector<double>& x) {
  return m.Predict(x) >= 0.5 ? 1.0 : 0.0;
}

/// Adapts an arbitrary callable into a Model — handy for tests and for the
/// adversarial-attack scaffolding, which swaps behaviour based on an OOD
/// detector.
template <typename Fn>
class LambdaModel : public Model {
 public:
  using BatchFn = std::function<std::vector<double>(const Matrix&)>;

  LambdaModel(size_t num_features, Fn fn)
      : num_features_(num_features), fn_(std::move(fn)) {}
  /// Batch-aware overload: `batch_fn` serves PredictBatch directly, so
  /// tests can count batch calls or vectorize the test model themselves.
  LambdaModel(size_t num_features, Fn fn, BatchFn batch_fn)
      : num_features_(num_features),
        fn_(std::move(fn)),
        batch_fn_(std::move(batch_fn)) {}

  double Predict(const std::vector<double>& x) const override {
    return fn_(x);
  }
  std::vector<double> PredictBatch(const Matrix& x) const override {
    return batch_fn_ ? batch_fn_(x) : Model::PredictBatch(x);
  }
  size_t num_features() const override { return num_features_; }

 private:
  size_t num_features_;
  Fn fn_;
  BatchFn batch_fn_;
};

template <typename Fn>
LambdaModel<Fn> MakeLambdaModel(size_t num_features, Fn fn) {
  return LambdaModel<Fn>(num_features, std::move(fn));
}

template <typename Fn>
LambdaModel<Fn> MakeLambdaModel(size_t num_features, Fn fn,
                                typename LambdaModel<Fn>::BatchFn batch_fn) {
  return LambdaModel<Fn>(num_features, std::move(fn), std::move(batch_fn));
}

}  // namespace xai

#endif  // XAIDB_MODEL_MODEL_H_
