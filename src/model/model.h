#ifndef XAIDB_MODEL_MODEL_H_
#define XAIDB_MODEL_MODEL_H_

#include <vector>

#include "math/matrix.h"

namespace xai {

/// The black-box interface every explainer consumes. For classifiers,
/// Predict returns P(y = 1 | x); for regressors, the predicted value.
/// Model-agnostic explainers (LIME, KernelSHAP, Anchors, counterfactual
/// search, ...) use nothing beyond this interface — mirroring the tutorial's
/// "model agnostic" axis of the XAI taxonomy.
class Model {
 public:
  virtual ~Model() = default;

  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Batched prediction; the default loops over rows. Overridden where a
  /// faster path exists.
  virtual std::vector<double> PredictBatch(const Matrix& x) const {
    std::vector<double> out(x.rows());
    for (size_t i = 0; i < x.rows(); ++i) out[i] = Predict(x.Row(i));
    return out;
  }

  virtual size_t num_features() const = 0;
};

/// Hard 0/1 label from a probability-producing model.
inline double PredictLabel(const Model& m, const std::vector<double>& x) {
  return m.Predict(x) >= 0.5 ? 1.0 : 0.0;
}

/// Adapts an arbitrary callable into a Model — handy for tests and for the
/// adversarial-attack scaffolding, which swaps behaviour based on an OOD
/// detector.
template <typename Fn>
class LambdaModel : public Model {
 public:
  LambdaModel(size_t num_features, Fn fn)
      : num_features_(num_features), fn_(std::move(fn)) {}
  double Predict(const std::vector<double>& x) const override {
    return fn_(x);
  }
  size_t num_features() const override { return num_features_; }

 private:
  size_t num_features_;
  Fn fn_;
};

template <typename Fn>
LambdaModel<Fn> MakeLambdaModel(size_t num_features, Fn fn) {
  return LambdaModel<Fn>(num_features, std::move(fn));
}

}  // namespace xai

#endif  // XAIDB_MODEL_MODEL_H_
