#ifndef XAIDB_MODEL_SERIALIZE_H_
#define XAIDB_MODEL_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"

namespace xai {

/// Plain-text model persistence ("xaidb_model v1" format): line-oriented,
/// whitespace-separated, full double precision. Lets a trained model move
/// between processes (train once, explain elsewhere) without any binary
/// compatibility concerns.
///
/// Tree models round-trip through `FromParts`, which recompiles the
/// FlatEnsemble serving form — a loaded model predicts and explains
/// bit-identically to the one that was saved.

Status SaveModel(const LinearRegression& model, const std::string& path);
Status SaveModel(const LogisticRegression& model, const std::string& path);
Status SaveModel(const GradientBoostedTrees& model, const std::string& path);
Status SaveModel(const DecisionTree& model, const std::string& path);
Status SaveModel(const RandomForest& model, const std::string& path);

Result<LinearRegression> LoadLinearRegression(const std::string& path);
Result<LogisticRegression> LoadLogisticRegression(const std::string& path);
Result<GradientBoostedTrees> LoadGbdt(const std::string& path);
Result<DecisionTree> LoadDecisionTree(const std::string& path);
Result<RandomForest> LoadRandomForest(const std::string& path);

/// The `type` field of a saved model file ("linear", "logistic", "gbdt",
/// "dtree", "forest") without loading it — for dispatch.
Result<std::string> PeekModelType(const std::string& path);

}  // namespace xai

#endif  // XAIDB_MODEL_SERIALIZE_H_
