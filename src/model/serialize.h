#ifndef XAIDB_MODEL_SERIALIZE_H_
#define XAIDB_MODEL_SERIALIZE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"
#include "model/knn.h"
#include "model/linear_regression.h"
#include "model/logistic_regression.h"
#include "model/naive_bayes.h"

namespace xai {

/// Plain-text model persistence ("xaidb_model v1" format): line-oriented,
/// whitespace-separated, full double precision (setprecision 17, so every
/// double round-trips exactly and save -> load -> save is byte-stable).
/// Lets a trained model move between processes (train once, explain
/// elsewhere) without any binary compatibility concerns.
///
/// Tree models round-trip through `FromParts`, which recompiles the
/// FlatEnsemble serving form — a loaded model predicts and explains
/// bit-identically to the one that was saved.

/// Saves any built-in model through its base-class reference, dispatching
/// on the concrete type. Every fitted model the library can construct
/// (linear, logistic, gbdt, dtree, forest, knn, nbayes) is supported;
/// adapters like LambdaModel have no artifact form and are rejected with
/// InvalidArgument.
Status SaveModel(const Model& model, const std::string& path);

/// Loads a saved artifact of any kind, dispatching on PeekModelType — the
/// inverse of the polymorphic SaveModel above. The returned model is the
/// exact concrete type that was saved (dynamic_cast recovers it).
Result<std::unique_ptr<Model>> LoadAnyModel(const std::string& path);

/// Typed loaders, for callers that need the concrete type's API (tree
/// access, sufficient statistics, ...). Each rejects artifacts of any
/// other kind with InvalidArgument.
Result<LinearRegression> LoadLinearRegression(const std::string& path);
Result<LogisticRegression> LoadLogisticRegression(const std::string& path);
Result<GradientBoostedTrees> LoadGbdt(const std::string& path);
Result<DecisionTree> LoadDecisionTree(const std::string& path);
Result<RandomForest> LoadRandomForest(const std::string& path);
Result<KnnClassifier> LoadKnn(const std::string& path);
Result<MultinomialNaiveBayes> LoadNaiveBayes(const std::string& path);

/// The `type` field of a saved model file ("linear", "logistic", "gbdt",
/// "dtree", "forest", "knn", "nbayes") without loading it — for dispatch.
Result<std::string> PeekModelType(const std::string& path);

/// The artifact type string SaveModel would write for this model, or
/// InvalidArgument for models with no artifact form. The registry stores
/// this as the manifest `kind` and cross-checks it against PeekModelType
/// at load time.
Result<std::string> ModelKindOf(const Model& model);

}  // namespace xai

#endif  // XAIDB_MODEL_SERIALIZE_H_
