#include "model/knn.h"

#include <algorithm>
#include <numeric>

namespace xai {

Result<KnnClassifier> KnnClassifier::Fit(const Dataset& ds, int k) {
  if (ds.n() == 0) return Status::InvalidArgument("Knn: empty data");
  if (k <= 0) return Status::InvalidArgument("Knn: k must be positive");
  KnnClassifier m;
  m.train_ = ds;
  m.k_ = k;
  return m;
}

KnnClassifier KnnClassifier::FromParts(Dataset train, int k) {
  KnnClassifier m;
  m.train_ = std::move(train);
  m.k_ = k;
  return m;
}

std::vector<size_t> KnnClassifier::NeighborsByDistance(
    const std::vector<double>& x) const {
  const size_t n = train_.n();
  std::vector<double> dist(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = train_.x().RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < train_.d(); ++j) {
      const double dxy = r[j] - x[j];
      s += dxy * dxy;
    }
    dist[i] = s;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return dist[a] < dist[b]; });
  return order;
}

double KnnClassifier::Predict(const std::vector<double>& x) const {
  std::vector<size_t> order = NeighborsByDistance(x);
  const size_t kk = std::min<size_t>(static_cast<size_t>(k_), order.size());
  double pos = 0.0;
  for (size_t i = 0; i < kk; ++i) pos += train_.y()[order[i]];
  return pos / static_cast<double>(kk);
}

std::vector<double> KnnClassifier::PredictBatch(const Matrix& x) const {
  const size_t n = train_.n();
  const size_t d = train_.d();
  const size_t kk = std::min<size_t>(static_cast<size_t>(k_), n);
  std::vector<double> out(x.rows());
  // One distance/order scratch pair reused across the whole block — the
  // sort and comparator match NeighborsByDistance exactly.
  std::vector<double> dist(n);
  std::vector<size_t> order(n);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.RowPtr(r);
    for (size_t i = 0; i < n; ++i) {
      const double* t = train_.x().RowPtr(i);
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double dxy = t[j] - xr[j];
        s += dxy * dxy;
      }
      dist[i] = s;
    }
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return dist[a] < dist[b]; });
    double pos = 0.0;
    for (size_t i = 0; i < kk; ++i) pos += train_.y()[order[i]];
    out[r] = pos / static_cast<double>(kk);
  }
  return out;
}

}  // namespace xai
