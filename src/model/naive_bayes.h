#ifndef XAIDB_MODEL_NAIVE_BAYES_H_
#define XAIDB_MODEL_NAIVE_BAYES_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Multinomial naive Bayes over count features (the classic bag-of-words
/// text classifier). Besides being a fast baseline, it is *self-
/// explanatory*: each feature's log-likelihood-ratio is an exact additive
/// attribution of the log-odds — a useful ground truth to compare
/// model-agnostic explainers against (tests do exactly that with
/// LIME-for-text).
struct NaiveBayesOptions {
  /// Laplace smoothing pseudo-count.
  double alpha = 1.0;
};

class MultinomialNaiveBayes : public Model {
 public:
  using Options = NaiveBayesOptions;

  static Result<MultinomialNaiveBayes> Fit(const Dataset& ds,
                                           const Options& opts = Options());
  /// Reconstructs a fitted model from its parameters (deserialization).
  static MultinomialNaiveBayes FromParts(std::vector<double> llr,
                                         double prior_log_odds);

  /// P(y=1 | x).
  double Predict(const std::vector<double>& x) const override;
  /// Vectorized margin + sigmoid (bit-identical to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return llr_.size(); }

  /// Log-odds margin: prior_llr + sum_j x_j * llr_j.
  double Margin(const std::vector<double>& x) const;

  /// Per-feature log-likelihood ratio log P(j|1) - log P(j|0): the exact
  /// additive contribution of one count of feature j.
  const std::vector<double>& log_likelihood_ratios() const { return llr_; }
  double prior_log_odds() const { return prior_llr_; }

 private:
  std::vector<double> llr_;
  double prior_llr_ = 0.0;
};

}  // namespace xai

#endif  // XAIDB_MODEL_NAIVE_BAYES_H_
