#include "model/logistic_regression.h"

#include <cmath>

#include "math/linalg.h"
#include "math/stats.h"

namespace xai {
namespace {

double MarginAt(const double* x, size_t d, const std::vector<double>& theta) {
  double z = theta[d];
  for (size_t j = 0; j < d; ++j) z += theta[j] * x[j];
  return z;
}

}  // namespace

Result<LogisticRegression> LogisticRegression::Fit(const Dataset& ds,
                                                   const Options& opts) {
  return Fit(ds.x(), ds.y(), opts);
}

Result<LogisticRegression> LogisticRegression::Fit(
    const Matrix& x, const std::vector<double>& y, const Options& opts) {
  std::vector<double> zero(x.cols() + 1, 0.0);
  return FitFrom(x, y, zero, opts);
}

Result<LogisticRegression> LogisticRegression::FitFrom(
    const Matrix& x, const std::vector<double>& y,
    const std::vector<double>& init_theta, const Options& opts) {
  if (x.rows() != y.size())
    return Status::InvalidArgument("LogisticRegression: X rows != y size");
  if (x.rows() == 0)
    return Status::InvalidArgument("LogisticRegression: empty data");
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (init_theta.size() != d + 1)
    return Status::InvalidArgument("LogisticRegression: bad init size");

  std::vector<double> theta = init_theta;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int it = 0; it < opts.max_iter; ++it) {
    // Gradient and Hessian of J at theta.
    std::vector<double> grad(d + 1, 0.0);
    Matrix hess(d + 1, d + 1);
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.RowPtr(i);
      const double p = Sigmoid(MarginAt(xi, d, theta));
      const double err = (p - y[i]) * inv_n;
      const double w = std::max(p * (1.0 - p), 1e-10) * inv_n;
      for (size_t a = 0; a < d; ++a) {
        grad[a] += err * xi[a];
        const double wxa = w * xi[a];
        double* hrow = hess.RowPtr(a);
        for (size_t b = 0; b < d; ++b) hrow[b] += wxa * xi[b];
        hess(a, d) += wxa;
        hess(d, a) += wxa;
      }
      grad[d] += err;
      hess(d, d) += w;
    }
    for (size_t a = 0; a < d + 1; ++a) {
      grad[a] += opts.lambda * theta[a];
      hess(a, a) += opts.lambda;
    }
    XAI_ASSIGN_OR_RETURN(std::vector<double> step, SolveSpd(hess, grad));
    double step_norm = 0.0;
    for (size_t a = 0; a < d + 1; ++a) {
      theta[a] -= step[a];
      step_norm += step[a] * step[a];
    }
    if (std::sqrt(step_norm) < opts.tol) break;
  }

  LogisticRegression m;
  m.theta_ = std::move(theta);
  m.lambda_ = opts.lambda;
  return m;
}

LogisticRegression LogisticRegression::FromParameters(
    std::vector<double> theta, double lambda) {
  LogisticRegression m;
  m.theta_ = std::move(theta);
  m.lambda_ = lambda;
  return m;
}

double LogisticRegression::Predict(const std::vector<double>& x) const {
  return Sigmoid(Margin(x));
}

double LogisticRegression::Margin(const std::vector<double>& x) const {
  return MarginAt(x.data(), theta_.size() - 1, theta_);
}

std::vector<double> LogisticRegression::MarginBatch(const Matrix& x) const {
  // Accumulation starts at the intercept and walks features ascending —
  // the exact order MarginAt uses, so batch == scalar bit-for-bit.
  const size_t d = theta_.size() - 1;
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = MarginAt(x.RowPtr(i), d, theta_);
  return out;
}

std::vector<double> LogisticRegression::PredictBatch(const Matrix& x) const {
  std::vector<double> out = MarginBatch(x);
  for (double& v : out) v = Sigmoid(v);
  return out;
}

std::vector<double> LogisticRegression::SampleGradient(
    const std::vector<double>& x, double y) const {
  return SampleGradientAt(x, y, theta_);
}

std::vector<double> LogisticRegression::SampleGradientAt(
    const std::vector<double>& x, double y,
    const std::vector<double>& theta) {
  const size_t d = theta.size() - 1;
  const double p = Sigmoid(MarginAt(x.data(), d, theta));
  const double err = p - y;
  std::vector<double> g(d + 1);
  for (size_t j = 0; j < d; ++j) g[j] = err * x[j];
  g[d] = err;
  return g;
}

Matrix LogisticRegression::ObjectiveHessian(const Matrix& x) const {
  const size_t n = x.rows();
  const size_t d = theta_.size() - 1;
  const double inv_n = 1.0 / static_cast<double>(n);
  Matrix hess(d + 1, d + 1);
  for (size_t i = 0; i < n; ++i) {
    const double* xi = x.RowPtr(i);
    const double p = Sigmoid(MarginAt(xi, d, theta_));
    const double w = std::max(p * (1.0 - p), 1e-10) * inv_n;
    for (size_t a = 0; a < d; ++a) {
      const double wxa = w * xi[a];
      double* hrow = hess.RowPtr(a);
      for (size_t b = 0; b < d; ++b) hrow[b] += wxa * xi[b];
      hess(a, d) += wxa;
      hess(d, a) += wxa;
    }
    hess(d, d) += w;
  }
  for (size_t a = 0; a < d + 1; ++a) hess(a, a) += lambda_;
  return hess;
}

double LogisticRegression::Objective(const Matrix& x,
                                     const std::vector<double>& y) const {
  const size_t n = x.rows();
  const size_t d = theta_.size() - 1;
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double z = MarginAt(x.RowPtr(i), d, theta_);
    // CE = log(1+exp(z)) - y z  (stable form).
    loss += Log1pExp(z) - y[i] * z;
  }
  loss /= static_cast<double>(n);
  double reg = 0.0;
  for (double t : theta_) reg += t * t;
  return loss + 0.5 * lambda_ * reg;
}

}  // namespace xai
