#ifndef XAIDB_MODEL_TREE_H_
#define XAIDB_MODEL_TREE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"

namespace xai {

/// A node of a binary decision tree. Internal nodes route `x[feature] <=
/// threshold` to `left`, else `right`. Leaves carry `value`. Every node
/// carries `cover` (the training-sample weight that reached it), which is
/// exactly what the TreeSHAP path algorithm consumes.
struct TreeNode {
  int feature = -1;  // -1 marks a leaf.
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;
  double cover = 0.0;

  bool is_leaf() const { return feature < 0; }
};

/// A plain binary regression/score tree: nodes in a flat vector, node 0 is
/// the root. This is the shared representation behind DecisionTree,
/// RandomForest and GradientBoostedTrees, and the input to TreeShap.
struct Tree {
  std::vector<TreeNode> nodes;

  double Predict(const std::vector<double>& x) const;
  double Predict(const double* x) const { return nodes[LeafIndex(x)].value; }
  /// Index of the leaf that x lands in.
  int LeafIndex(const std::vector<double>& x) const;
  int LeafIndex(const double* x) const;

  /// out[i] += scale * Predict(row i) for every row of x, one LeafIndex
  /// walk per row. This is the *node-based reference* traversal: serving
  /// routes through the compiled FlatEnsemble (flat_tree.h) instead, and
  /// the flat-vs-node equivalence tests and benches compare against this
  /// path. GBDT training also uses it (trees aren't compiled mid-fit).
  void AccumulateBatch(const Matrix& x, double scale,
                       std::vector<double>* out) const;
  int MaxDepth() const;
  size_t NumLeaves() const;

  /// Expected prediction under the tree's own training distribution
  /// (cover-weighted average of leaf values) — the "background" value
  /// TreeSHAP attributes against. Rescans every leaf: hot paths read the
  /// copy FlatEnsemble precomputes at compile time instead.
  double ExpectedValue() const;
};

/// How a regression tree's splits are found.
enum class TrainMethod {
  /// Sort-per-node exact split enumeration — the reference oracle the
  /// histogram learner's parity tests compare against.
  kExact,
  /// Quantized histogram split finding over a BinnedDataset (default):
  /// per-feature parallel accumulation + parent−sibling subtraction.
  kHist,
};

/// Training-method knobs shared by DecisionTree/RandomForest/GBDT fits.
struct TrainOptions {
  TrainMethod method = TrainMethod::kHist;
  /// Histogram resolution per feature. <= 256 stores u8 bin codes,
  /// <= 65536 stores u16. Features with fewer distinct values than this
  /// are binned losslessly (one bin per value, exact-learner thresholds).
  int max_bins = 256;
  /// Derive the larger child's histogram as parent − sibling instead of
  /// re-accumulating it (off only for debugging/tests; only applies when
  /// feature sampling is off).
  bool hist_subtraction = true;
};

/// CART configuration.
struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 5;
  /// Number of candidate features per split; 0 = all (deterministic CART),
  /// otherwise sampled per node (random forest mode).
  int max_features = 0;
  TrainOptions train;
};

/// Fits a regression tree minimizing squared error on (X, targets) with
/// optional per-sample `hessian_weights`: when provided, leaf values are
/// sum(target_i)/sum(weight_i) — the Newton leaf step used by gradient
/// boosting with logistic loss. Without weights, leaf value = mean target.
///
/// Dispatches on config.train.method: kHist quantizes x into a
/// BinnedDataset and runs the histogram learner (hist_learner.h); callers
/// fitting many trees over the same matrix (forest/GBDT) should build the
/// BinnedDataset once and call FitRegressionTreeHist directly.
Tree FitRegressionTree(const Matrix& x, const std::vector<double>& targets,
                       const TreeConfig& config,
                       const std::vector<double>* hessian_weights = nullptr,
                       const std::vector<size_t>* row_subset = nullptr,
                       Rng* rng = nullptr);

}  // namespace xai

#endif  // XAIDB_MODEL_TREE_H_
