#include "model/naive_bayes.h"

#include <cmath>

#include "math/stats.h"

namespace xai {

Result<MultinomialNaiveBayes> MultinomialNaiveBayes::Fit(
    const Dataset& ds, const Options& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("NaiveBayes: empty data");
  const size_t d = ds.d();
  std::vector<double> count1(d, opts.alpha);
  std::vector<double> count0(d, opts.alpha);
  double total1 = opts.alpha * static_cast<double>(d);
  double total0 = opts.alpha * static_cast<double>(d);
  double n1 = 0.0;
  for (size_t i = 0; i < ds.n(); ++i) {
    const bool pos = ds.y()[i] >= 0.5;
    if (pos) n1 += 1.0;
    for (size_t j = 0; j < d; ++j) {
      const double c = ds.x()(i, j);
      if (c < 0.0)
        return Status::InvalidArgument(
            "NaiveBayes: count features must be non-negative");
      if (pos) {
        count1[j] += c;
        total1 += c;
      } else {
        count0[j] += c;
        total0 += c;
      }
    }
  }
  const double n0 = static_cast<double>(ds.n()) - n1;
  if (n1 == 0.0 || n0 == 0.0)
    return Status::InvalidArgument("NaiveBayes: need both classes");
  MultinomialNaiveBayes m;
  m.prior_llr_ = std::log(n1 / n0);
  m.llr_.resize(d);
  for (size_t j = 0; j < d; ++j)
    m.llr_[j] = std::log(count1[j] / total1) - std::log(count0[j] / total0);
  return m;
}

MultinomialNaiveBayes MultinomialNaiveBayes::FromParts(
    std::vector<double> llr, double prior_log_odds) {
  MultinomialNaiveBayes m;
  m.llr_ = std::move(llr);
  m.prior_llr_ = prior_log_odds;
  return m;
}

double MultinomialNaiveBayes::Margin(const std::vector<double>& x) const {
  double z = prior_llr_;
  for (size_t j = 0; j < llr_.size(); ++j) z += x[j] * llr_[j];
  return z;
}

double MultinomialNaiveBayes::Predict(const std::vector<double>& x) const {
  return Sigmoid(Margin(x));
}

std::vector<double> MultinomialNaiveBayes::PredictBatch(
    const Matrix& x) const {
  const size_t d = llr_.size();
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* r = x.RowPtr(i);
    double z = prior_llr_;
    for (size_t j = 0; j < d; ++j) z += r[j] * llr_[j];
    out[i] = Sigmoid(z);
  }
  return out;
}

}  // namespace xai
