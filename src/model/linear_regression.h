#ifndef XAIDB_MODEL_LINEAR_REGRESSION_H_
#define XAIDB_MODEL_LINEAR_REGRESSION_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Ridge linear regression fit by the normal equations
///   theta = (X~^T X~ + lambda I)^(-1) X~^T y,
/// where X~ is X with an appended all-ones intercept column (the intercept
/// is not regularized). Exposes the sufficient statistics (X^T X, X^T y)
/// so the PrIU-style incremental maintenance module can downdate them.
struct LinearRegressionOptions {
  double lambda = 1e-6;
};

class LinearRegression : public Model {
 public:
  using Options = LinearRegressionOptions;

  static Result<LinearRegression> Fit(const Dataset& ds,
                                      const Options& opts = Options());
  static Result<LinearRegression> Fit(const Matrix& x,
                                      const std::vector<double>& y,
                                      const Options& opts = Options());
  /// Reconstructs a fitted model from its parameters (deserialization).
  static LinearRegression FromParameters(std::vector<double> weights,
                                         double intercept, double lambda);

  double Predict(const std::vector<double>& x) const override;
  /// Single GEMV over the whole block (bit-identical to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return weights_.size(); }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  double lambda() const { return lambda_; }

  /// Full parameter vector [w_0..w_{d-1}, b].
  std::vector<double> Theta() const;

 private:
  std::vector<double> weights_;
  double intercept_ = 0.0;
  double lambda_ = 0.0;
};

}  // namespace xai

#endif  // XAIDB_MODEL_LINEAR_REGRESSION_H_
