#include "model/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/stats.h"

namespace xai {

double Accuracy(const std::vector<double>& probs,
                const std::vector<double>& labels) {
  assert(probs.size() == labels.size());
  if (probs.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < probs.size(); ++i)
    if ((probs[i] >= 0.5) == (labels[i] >= 0.5)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

double LogLoss(const std::vector<double>& probs,
               const std::vector<double>& labels) {
  assert(probs.size() == labels.size());
  if (probs.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = std::clamp(probs[i], 1e-12, 1.0 - 1e-12);
    loss += labels[i] >= 0.5 ? -std::log(p) : -std::log(1.0 - p);
  }
  return loss / static_cast<double>(probs.size());
}

double Auc(const std::vector<double>& scores,
           const std::vector<double>& labels) {
  assert(scores.size() == labels.size());
  const std::vector<double> ranks = Ranks(scores);
  double rank_sum_pos = 0.0;
  size_t n_pos = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0.5) {
      rank_sum_pos += ranks[i];
      ++n_pos;
    }
  }
  const size_t n_neg = labels.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double np = static_cast<double>(n_pos);
  const double nn = static_cast<double>(n_neg);
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

double F1Score(const std::vector<double>& probs,
               const std::vector<double>& labels) {
  assert(probs.size() == labels.size());
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool pred = probs[i] >= 0.5;
    const bool truth = labels[i] >= 0.5;
    if (pred && truth) ++tp;
    if (pred && !truth) ++fp;
    if (!pred && truth) ++fn;
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp) / denom;
}

double MeanSquaredError(const std::vector<double>& pred,
                        const std::vector<double>& truth) {
  assert(pred.size() == truth.size());
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

double R2Score(const std::vector<double>& pred,
               const std::vector<double>& truth) {
  const double mse = MeanSquaredError(pred, truth);
  const double var = Variance(truth) * static_cast<double>(truth.size() - 1) /
                     static_cast<double>(truth.size());
  if (var <= 0.0) return 0.0;
  return 1.0 - mse / var;
}

double EvaluateAccuracy(const Model& m, const Dataset& ds) {
  return Accuracy(m.PredictBatch(ds.x()), ds.y());
}

double EvaluateAuc(const Model& m, const Dataset& ds) {
  return Auc(m.PredictBatch(ds.x()), ds.y());
}

}  // namespace xai
