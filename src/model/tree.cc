#include "model/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/binned.h"
#include "model/hist_learner.h"
#include "obs/obs.h"

namespace xai {

double Tree::Predict(const std::vector<double>& x) const {
  return nodes[LeafIndex(x)].value;
}

int Tree::LeafIndex(const std::vector<double>& x) const {
  return LeafIndex(x.data());
}

int Tree::LeafIndex(const double* x) const {
  int i = 0;
  while (!nodes[i].is_leaf()) {
    const TreeNode& n = nodes[i];
    i = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return i;
}

void Tree::AccumulateBatch(const Matrix& x, double scale,
                           std::vector<double>* out) const {
  for (size_t i = 0; i < x.rows(); ++i)
    (*out)[i] += scale * nodes[static_cast<size_t>(LeafIndex(x.RowPtr(i)))].value;
}

int Tree::MaxDepth() const {
  // Iterative DFS carrying depth.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes[i].is_leaf()) {
      stack.push_back({nodes[i].left, d + 1});
      stack.push_back({nodes[i].right, d + 1});
    }
  }
  return max_depth;
}

size_t Tree::NumLeaves() const {
  size_t c = 0;
  for (const TreeNode& n : nodes)
    if (n.is_leaf()) ++c;
  return c;
}

double Tree::ExpectedValue() const {
  double total = 0.0;
  double weighted = 0.0;
  for (const TreeNode& n : nodes) {
    if (n.is_leaf()) {
      total += n.cover;
      weighted += n.cover * n.value;
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

namespace {

/// Recursive CART builder over an index range [begin, end) of `order`.
class TreeBuilder {
 public:
  TreeBuilder(const Matrix& x, const std::vector<double>& t,
              const std::vector<double>* h, const TreeConfig& config,
              Rng* rng)
      : x_(x), t_(t), h_(h), config_(config), rng_(rng) {}

  Tree Build(std::vector<size_t> rows) {
    tree_.nodes.clear();
    // One (value, row) scratch buffer for the whole fit: every node's
    // feature loop refills and re-sorts it in place, instead of paying a
    // fresh allocation per node.
    vals_.reserve(rows.size());
    BuildNode(&rows, 0, rows.size(), 0);
    return std::move(tree_);
  }

 private:
  double HWeight(size_t i) const { return h_ ? (*h_)[i] : 1.0; }

  // Creates the node for rows[begin, end) at `depth`; returns its index.
  int BuildNode(std::vector<size_t>* rows, size_t begin, size_t end,
                int depth) {
    double sum_t = 0.0;
    double sum_h = 0.0;
    for (size_t k = begin; k < end; ++k) {
      sum_t += t_[(*rows)[k]];
      sum_h += HWeight((*rows)[k]);
    }
    const int node_idx = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    tree_.nodes[node_idx].cover = static_cast<double>(end - begin);
    tree_.nodes[node_idx].value =
        sum_h > 1e-12 ? sum_t / sum_h : 0.0;

    const size_t n = end - begin;
    if (depth >= config_.max_depth ||
        n < 2 * static_cast<size_t>(config_.min_samples_leaf)) {
      return node_idx;
    }

    // Candidate features.
    const size_t d = x_.cols();
    std::vector<size_t> feats(d);
    std::iota(feats.begin(), feats.end(), 0);
    if (config_.max_features > 0 &&
        static_cast<size_t>(config_.max_features) < d && rng_) {
      feats = rng_->SampleWithoutReplacement(d, config_.max_features);
    }

    const double parent_score = sum_t * sum_t / std::max(sum_h, 1e-12);
    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<std::pair<double, size_t>>& vals = vals_;
    for (size_t f : feats) {
      vals.clear();
      for (size_t k = begin; k < end; ++k)
        vals.emplace_back(x_((*rows)[k], f), (*rows)[k]);
      std::sort(vals.begin(), vals.end());
      if (vals.front().first == vals.back().first) continue;
      double left_t = 0.0;
      double left_h = 0.0;
      for (size_t k = 0; k + 1 < n; ++k) {
        left_t += t_[vals[k].second];
        left_h += HWeight(vals[k].second);
        if (vals[k].first == vals[k + 1].first) continue;
        const size_t n_left = k + 1;
        const size_t n_right = n - n_left;
        if (n_left < static_cast<size_t>(config_.min_samples_leaf) ||
            n_right < static_cast<size_t>(config_.min_samples_leaf))
          continue;
        const double right_t = sum_t - left_t;
        const double right_h = sum_h - left_h;
        const double score =
            left_t * left_t / std::max(left_h, 1e-12) +
            right_t * right_t / std::max(right_h, 1e-12);
        const double gain = score - parent_score;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (vals[k].first + vals[k + 1].first);
        }
      }
    }

    if (best_feature < 0) return node_idx;

    // Partition rows in place: left block first.
    const auto mid_it = std::partition(
        rows->begin() + static_cast<std::ptrdiff_t>(begin),
        rows->begin() + static_cast<std::ptrdiff_t>(end), [&](size_t r) {
          return x_(r, static_cast<size_t>(best_feature)) <= best_threshold;
        });
    const size_t mid =
        static_cast<size_t>(mid_it - rows->begin());
    if (mid == begin || mid == end) return node_idx;  // Degenerate split.

    tree_.nodes[node_idx].feature = best_feature;
    tree_.nodes[node_idx].threshold = best_threshold;
    const int left = BuildNode(rows, begin, mid, depth + 1);
    tree_.nodes[node_idx].left = left;
    const int right = BuildNode(rows, mid, end, depth + 1);
    tree_.nodes[node_idx].right = right;
    return node_idx;
  }

  const Matrix& x_;
  const std::vector<double>& t_;
  const std::vector<double>* h_;
  const TreeConfig& config_;
  Rng* rng_;
  Tree tree_;
  std::vector<std::pair<double, size_t>> vals_;  // (feature value, row)
};

}  // namespace

Tree FitRegressionTree(const Matrix& x, const std::vector<double>& targets,
                       const TreeConfig& config,
                       const std::vector<double>* hessian_weights,
                       const std::vector<size_t>* row_subset, Rng* rng) {
  if (config.train.method == TrainMethod::kHist) {
    auto binned = BinnedDataset::Build(x, config.train.max_bins);
    // Degenerate inputs (empty matrix) fall through to the exact learner,
    // which shares the empty-tree behavior tests pin down.
    if (binned.ok()) {
      return FitRegressionTreeHist(*binned, targets, config, hessian_weights,
                                   row_subset, rng);
    }
  }
  XAI_OBS_SPAN("train.fit_tree_exact");
  std::vector<size_t> rows;
  if (row_subset) {
    rows = *row_subset;
  } else {
    rows.resize(x.rows());
    std::iota(rows.begin(), rows.end(), 0);
  }
  TreeBuilder builder(x, targets, hessian_weights, config, rng);
  Tree tree = builder.Build(std::move(rows));
  XAI_OBS_COUNT("train.trees_fit_exact");
  return tree;
}

}  // namespace xai
