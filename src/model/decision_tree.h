#ifndef XAIDB_MODEL_DECISION_TREE_H_
#define XAIDB_MODEL_DECISION_TREE_H_

#include "common/result.h"
#include "data/dataset.h"
#include "model/flat_tree.h"
#include "model/model.h"
#include "model/tree.h"

namespace xai {

/// Single CART tree. For classification the leaf value is the positive-class
/// fraction (so Predict returns a probability); for regression the mean
/// target. Binary-split variance reduction is used for both — for {0,1}
/// targets this is equivalent to the Gini gain.
///
/// Fit (and FromParts, the deserialization hook) compile the fitted tree
/// into a FlatEnsemble; Predict/PredictBatch and TreeSHAP all run off the
/// flat arrays, bit-identical to the node-based Tree reference.
class DecisionTree : public Model {
 public:
  static Result<DecisionTree> Fit(const Dataset& ds,
                                  const TreeConfig& config = {});
  /// Reconstructs a fitted tree from its parts (deserialization) and
  /// compiles the flat runtime form.
  static DecisionTree FromParts(Tree tree, size_t num_features);

  double Predict(const std::vector<double>& x) const override;
  /// Row-blocked flat-array traversal (bit-identical to Predict per row).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return num_features_; }

  const Tree& tree() const { return tree_; }
  /// The compiled serving/explaining form.
  const FlatEnsemble& flat() const { return flat_; }

 private:
  Tree tree_;
  FlatEnsemble flat_;
  size_t num_features_ = 0;
};

/// Bagged random forest of CART trees (bootstrap rows + per-node feature
/// subsampling); Predict averages tree outputs. Like DecisionTree, the
/// fitted trees are compiled into a FlatEnsemble that serves prediction
/// and TreeSHAP.
struct RandomForestOptions {
  int num_trees = 50;
  TreeConfig tree;
  uint64_t seed = 17;
};

class RandomForest : public Model {
 public:
  using Options = RandomForestOptions;

  static Result<RandomForest> Fit(const Dataset& ds, const Options& opts = Options());
  /// Reconstructs a fitted forest from its parts (deserialization) and
  /// compiles the flat runtime form.
  static RandomForest FromParts(std::vector<Tree> trees, size_t num_features);

  double Predict(const std::vector<double>& x) const override;
  /// Tree-outer / row-inner flat traversal (bit-identical to Predict).
  std::vector<double> PredictBatch(const Matrix& x) const override;
  size_t num_features() const override { return num_features_; }

  const std::vector<Tree>& trees() const { return trees_; }
  /// The compiled serving/explaining form.
  const FlatEnsemble& flat() const { return flat_; }

 private:
  std::vector<Tree> trees_;
  FlatEnsemble flat_;
  size_t num_features_ = 0;
};

}  // namespace xai

#endif  // XAIDB_MODEL_DECISION_TREE_H_
