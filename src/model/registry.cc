#include "model/registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "model/serialize.h"

namespace xai {
namespace {

constexpr char kManifestMagic[] = "xaidb_registry v1";
constexpr char kManifestFile[] = "MANIFEST";

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string VersionKey(const std::string& name, int version) {
  return name + "@" + std::to_string(version);
}

std::string HexFingerprint(uint64_t fp) {
  std::ostringstream os;
  os << std::hex << fp;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------- handles

ModelHandle::ModelHandle(std::shared_ptr<const Model> model, Meta meta)
    : model_(std::move(model)),
      meta_(std::make_shared<const Meta>(std::move(meta))) {}

ModelHandle ModelHandle::Borrow(const Model& model, std::string name,
                                int version) {
  Meta meta;
  meta.name = std::move(name);
  meta.version = version;
  Result<std::string> kind = ModelKindOf(model);
  meta.kind = kind.ok() ? *kind : std::string("adhoc");
  meta.fingerprint =
      SplitMix64(reinterpret_cast<uintptr_t>(&model) ^
                 (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(version)));
  return ModelHandle(
      std::shared_ptr<const Model>(&model, [](const Model*) {}),
      std::move(meta));
}

ModelHandle ModelHandle::Adopt(std::unique_ptr<Model> model,
                               std::string name, int version) {
  const Model& ref = *model;
  ModelHandle h = Borrow(ref, std::move(name), version);
  // Re-seat ownership while keeping the Borrow-derived metadata.
  h.model_ = std::shared_ptr<const Model>(std::move(model));
  return h;
}

std::string ModelHandle::VersionedName() const {
  return VersionKey(meta_->name, meta_->version);
}

// --------------------------------------------------------------- registry

struct ModelRegistry::State {
  std::string dir;
  mutable std::mutex mu;
  // name@version -> artifact, sorted so List() is deterministic.
  std::map<std::string, ModelArtifact> artifacts;
  std::map<std::string, int> serving;  // name -> serving version
  // Loaded versions, so every handle to name@version shares one instance.
  mutable std::map<std::string, std::shared_ptr<const Model>> loaded;

  std::string ManifestPath() const {
    return (std::filesystem::path(dir) / kManifestFile).string();
  }

  // Caller holds mu.
  Status WriteManifestLocked() const {
    const std::string tmp = ManifestPath() + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) return Status::IOError("cannot write manifest: " + tmp);
      out << kManifestMagic << "\n";
      for (const auto& [key, art] : artifacts) {
        out << "model " << art.name << " " << art.version << " " << art.kind
            << " " << HexFingerprint(art.fingerprint) << " " << art.path
            << "\n";
      }
      for (const auto& [name, version] : serving)
        out << "serving " << name << " " << version << "\n";
      if (!out) return Status::IOError("manifest write failed: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, ManifestPath(), ec);
    if (ec) return Status::IOError("manifest rename failed: " + ec.message());
    return Status::OK();
  }

  Status ReadManifest() {
    std::ifstream in(ManifestPath());
    if (!in) return Status::IOError("cannot open manifest: " + ManifestPath());
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic)
      return Status::InvalidArgument("bad registry magic in " +
                                     ManifestPath());
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "model") {
        ModelArtifact art;
        std::string fp_hex;
        ls >> art.name >> art.version >> art.kind >> fp_hex >> art.path;
        if (!ls || art.name.empty() || art.version <= 0 || art.path.empty())
          return Status::InvalidArgument(
              "malformed manifest line " + std::to_string(lineno) + ": " +
              line);
        std::istringstream hs(fp_hex);
        hs >> std::hex >> art.fingerprint;
        if (!hs)
          return Status::InvalidArgument("bad fingerprint on line " +
                                         std::to_string(lineno));
        const std::string key = VersionKey(art.name, art.version);
        if (artifacts.count(key))
          return Status::InvalidArgument("duplicate version in manifest: " +
                                         key);
        const std::string full =
            (std::filesystem::path(dir) / art.path).string();
        if (!std::filesystem::exists(full))
          return Status::IOError("manifest lists missing artifact: " + full);
        artifacts.emplace(key, std::move(art));
      } else if (tag == "serving") {
        std::string name;
        int version = 0;
        ls >> name >> version;
        if (!ls || name.empty() || version <= 0)
          return Status::InvalidArgument(
              "malformed serving line " + std::to_string(lineno) + ": " +
              line);
        if (!artifacts.count(VersionKey(name, version)))
          return Status::InvalidArgument(
              "serving line points at unknown version: " +
              VersionKey(name, version));
        serving[name] = version;
      } else {
        return Status::InvalidArgument("unknown manifest tag '" + tag +
                                       "' on line " + std::to_string(lineno));
      }
    }
    return Status::OK();
  }

  // Caller holds mu.
  int LatestVersionLocked(const std::string& name) const {
    int latest = 0;
    for (const auto& [key, art] : artifacts)
      if (art.name == name && art.version > latest) latest = art.version;
    return latest;
  }
};

Result<ModelRegistry> ModelRegistry::Open(const std::string& dir) {
  if (!std::filesystem::is_directory(dir))
    return Status::IOError("not a registry directory: " + dir);
  ModelRegistry reg;
  reg.state_ = std::make_shared<State>();
  reg.state_->dir = dir;
  XAI_RETURN_NOT_OK(reg.state_->ReadManifest());
  return reg;
}

Result<ModelRegistry> ModelRegistry::OpenOrCreate(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create registry dir: " + dir);
  const std::string manifest =
      (std::filesystem::path(dir) / kManifestFile).string();
  if (!std::filesystem::exists(manifest)) {
    std::ofstream out(manifest);
    if (!out) return Status::IOError("cannot create manifest: " + manifest);
    out << kManifestMagic << "\n";
  }
  return Open(dir);
}

const std::string& ModelRegistry::dir() const { return state_->dir; }

Result<ModelArtifact> ModelRegistry::Add(const Model& model,
                                         const std::string& name) {
  if (name.empty() || name.find_first_of(" \t@/") != std::string::npos)
    return Status::InvalidArgument("bad model name: '" + name + "'");
  XAI_ASSIGN_OR_RETURN(std::string kind, ModelKindOf(model));
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  ModelArtifact art;
  art.name = name;
  art.version = st.LatestVersionLocked(name) + 1;
  art.kind = kind;
  art.path = name + ".v" + std::to_string(art.version) + ".model";
  const std::string full = (std::filesystem::path(st.dir) / art.path).string();
  XAI_RETURN_NOT_OK(SaveModel(model, full));
  XAI_ASSIGN_OR_RETURN(art.fingerprint, FileFingerprint(full));
  st.artifacts.emplace(VersionKey(art.name, art.version), art);
  if (!st.serving.count(name)) st.serving[name] = art.version;
  XAI_RETURN_NOT_OK(st.WriteManifestLocked());
  return art;
}

Result<ModelHandle> ModelRegistry::Get(const std::string& name,
                                       int version) const {
  State& st = *state_;
  const std::string key = VersionKey(name, version);
  ModelArtifact art;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    auto it = st.artifacts.find(key);
    if (it == st.artifacts.end())
      return Status::NotFound("no such model version: " + key);
    auto cached = st.loaded.find(key);
    if (cached != st.loaded.end()) {
      ModelHandle::Meta meta;
      meta.name = name;
      meta.version = version;
      meta.kind = it->second.kind;
      meta.fingerprint = it->second.fingerprint;
      return ModelHandle(cached->second, std::move(meta));
    }
    art = it->second;
  }
  // Load outside the lock — artifacts can be large.
  const std::string full = (std::filesystem::path(st.dir) / art.path).string();
  XAI_ASSIGN_OR_RETURN(uint64_t fp, FileFingerprint(full));
  if (fp != art.fingerprint)
    return Status::InvalidArgument(
        "artifact fingerprint mismatch for " + key + " (file " + full +
        " changed since it was registered)");
  XAI_ASSIGN_OR_RETURN(std::string file_kind, PeekModelType(full));
  if (file_kind != art.kind)
    return Status::InvalidArgument("artifact kind mismatch for " + key +
                                   ": manifest says " + art.kind +
                                   ", file says " + file_kind);
  XAI_ASSIGN_OR_RETURN(std::unique_ptr<Model> model, LoadAnyModel(full));
  std::shared_ptr<const Model> shared(std::move(model));
  {
    std::lock_guard<std::mutex> lock(st.mu);
    // First loader wins if two threads raced.
    auto [it, inserted] = st.loaded.emplace(key, shared);
    if (!inserted) shared = it->second;
  }
  ModelHandle::Meta meta;
  meta.name = name;
  meta.version = version;
  meta.kind = art.kind;
  meta.fingerprint = art.fingerprint;
  return ModelHandle(std::move(shared), std::move(meta));
}

Result<ModelHandle> ModelRegistry::Resolve(const std::string& spec) const {
  const size_t at = spec.rfind('@');
  if (at == std::string::npos) return Serving(spec);
  const std::string name = spec.substr(0, at);
  int version = 0;
  std::istringstream vs(spec.substr(at + 1));
  vs >> version;
  if (!vs || version <= 0 || !vs.eof())
    return Status::InvalidArgument("bad version in spec: '" + spec + "'");
  return Get(name, version);
}

Result<ModelHandle> ModelRegistry::Serving(const std::string& name) const {
  State& st = *state_;
  int version = 0;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    auto it = st.serving.find(name);
    version = it != st.serving.end() ? it->second
                                     : st.LatestVersionLocked(name);
  }
  if (version == 0) return Status::NotFound("no versions of model: " + name);
  return Get(name, version);
}

Status ModelRegistry::SetServing(const std::string& name, int version) {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.artifacts.count(VersionKey(name, version)))
    return Status::NotFound("no such model version: " +
                            VersionKey(name, version));
  st.serving[name] = version;
  return st.WriteManifestLocked();
}

std::vector<ModelArtifact> ModelRegistry::List() const {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  std::vector<ModelArtifact> out;
  out.reserve(st.artifacts.size());
  for (const auto& [key, art] : st.artifacts) out.push_back(art);
  // Map keys sort "m@10" before "m@2"; order numerically instead.
  std::sort(out.begin(), out.end(),
            [](const ModelArtifact& a, const ModelArtifact& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return out;
}

int ModelRegistry::LatestVersion(const std::string& name) const {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.LatestVersionLocked(name);
}

Result<uint64_t> FileFingerprint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for fingerprint: " + path);
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis.
  char buf[1 << 14];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ULL;  // FNV prime.
    }
    if (!in) break;
  }
  return h;
}

}  // namespace xai
