#ifndef XAIDB_MODEL_REGISTRY_H_
#define XAIDB_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/model.h"

namespace xai {

/// A refcounted reference to one loaded model version. Handles are what
/// the serving layer passes around instead of raw `const Model&`: every
/// in-flight request captures the handle it started on, so a hot-swap can
/// flip the serving version atomically while old requests finish on the
/// version they were admitted under — the last handle to a version keeps
/// it alive, and it is destroyed when the refcount drains.
///
/// `fingerprint()` identifies the exact artifact bytes (or, for borrowed
/// in-memory models, the exact instance). It feeds ExplainerConfig::
/// model_fingerprint, which makes coalescing keys and coalition-cache
/// entries version-specific: requests against different versions never
/// share a batch or a cached coalition value.
class ModelHandle {
 public:
  ModelHandle() = default;

  /// Wraps a caller-owned in-memory model (no registry, no artifact).
  /// The caller must keep `model` alive for the handle's lifetime. The
  /// fingerprint is derived from the instance address and version, so two
  /// borrows of the same object with the same version agree.
  static ModelHandle Borrow(const Model& model, std::string name = "model",
                            int version = 1);

  /// Takes ownership of an in-memory model (no artifact on disk).
  static ModelHandle Adopt(std::unique_ptr<Model> model,
                           std::string name = "model", int version = 1);

  bool valid() const { return model_ != nullptr; }
  const Model& model() const { return *model_; }
  const Model* get() const { return model_.get(); }

  const std::string& name() const { return meta_->name; }
  int version() const { return meta_->version; }
  /// Artifact kind ("gbdt", "linear", ...); "adhoc" for models with no
  /// artifact form (LambdaModel borrows).
  const std::string& kind() const { return meta_->kind; }
  uint64_t fingerprint() const { return meta_->fingerprint; }

  /// "name@version" — the registry's unit of identity.
  std::string VersionedName() const;

  /// Number of live references to this version (including this one).
  long use_count() const { return model_.use_count(); }

 private:
  friend class ModelRegistry;
  struct Meta {
    std::string name;
    std::string kind;
    int version = 0;
    uint64_t fingerprint = 0;
  };
  ModelHandle(std::shared_ptr<const Model> model, Meta meta);

  std::shared_ptr<const Model> model_;
  std::shared_ptr<const Meta> meta_;
};

/// One manifest row: a named, versioned, fingerprinted artifact on disk.
struct ModelArtifact {
  std::string name;
  int version = 0;
  std::string kind;        // Artifact type string (serialize.h).
  uint64_t fingerprint = 0;  // FNV-1a over the artifact file's bytes.
  std::string path;        // Relative to the registry directory.
};

/// Versioned on-disk model store. A registry directory holds one artifact
/// file per model version plus a `MANIFEST` listing them:
///
///   xaidb_registry v1
///   model <name> <version> <kind> <fingerprint-hex> <relpath>
///   serving <name> <version>
///
/// `Add` serializes a model as the next version of a name; `Get` loads an
/// artifact (verifying kind against the file header and fingerprint
/// against the file bytes) and hands out refcounted ModelHandles. Loaded
/// versions are cached, so every handle to `name@version` shares one
/// in-memory instance. `serving` lines record which version a name serves
/// by default; flipping it (SetServing) is the registry half of a
/// hot-swap — the in-process half is ExplanationService::SwapModel.
///
/// The registry object is a shared reference to common state: copies see
/// each other's additions. Open/Get/Add/SetServing are thread-safe.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Opens an existing registry directory; fails if the manifest is
  /// missing, malformed, lists a missing artifact file, or contains a
  /// duplicate name@version.
  static Result<ModelRegistry> Open(const std::string& dir);

  /// Opens, creating the directory and an empty manifest if absent.
  static Result<ModelRegistry> OpenOrCreate(const std::string& dir);

  bool valid() const { return state_ != nullptr; }
  const std::string& dir() const;

  /// Serializes `model` as the next version of `name` (1 + latest, or 1),
  /// fingerprints the written file, appends it to the manifest, and makes
  /// it the serving version if the name had none.
  Result<ModelArtifact> Add(const Model& model, const std::string& name);

  /// Loads (or returns the cached) name@version. Verifies the artifact's
  /// header kind matches the manifest and the file bytes still hash to the
  /// manifest fingerprint, so a corrupted or swapped-out file is rejected.
  Result<ModelHandle> Get(const std::string& name, int version) const;

  /// Resolves "name" (serving version, else latest) or "name@version".
  Result<ModelHandle> Resolve(const std::string& spec) const;

  /// The version `name` currently serves (serving line, else latest).
  Result<ModelHandle> Serving(const std::string& name) const;

  /// Marks name@version as the serving version and persists the manifest.
  Status SetServing(const std::string& name, int version);

  /// All artifacts, ordered by (name, version).
  std::vector<ModelArtifact> List() const;

  /// Latest registered version of `name`, or 0 if none.
  int LatestVersion(const std::string& name) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// FNV-1a over a file's raw bytes — the registry's artifact fingerprint.
Result<uint64_t> FileFingerprint(const std::string& path);

}  // namespace xai

#endif  // XAIDB_MODEL_REGISTRY_H_
