#include "model/flat_tree.h"

#include <limits>

namespace xai {

void FlatEnsemble::AppendTree(const Tree& tree) {
  const int32_t base = static_cast<int32_t>(value_.size());
  offsets_.push_back(base);
  for (size_t k = 0; k < tree.nodes.size(); ++k) {
    const TreeNode& n = tree.nodes[k];
    const int32_t self = base + static_cast<int32_t>(k);
    if (n.is_leaf()) {
      feature_.push_back(0);
      threshold_.push_back(std::numeric_limits<double>::infinity());
      children_.push_back(self);
      children_.push_back(self);
    } else {
      feature_.push_back(n.feature);
      threshold_.push_back(n.threshold);
      children_.push_back(base + n.left);
      children_.push_back(base + n.right);
    }
    value_.push_back(n.value);
    cover_.push_back(n.cover);
  }
  depth_.push_back(tree.MaxDepth());
  expected_value_.push_back(tree.ExpectedValue());
}

FlatEnsemble FlatEnsemble::Compile(const std::vector<Tree>& trees) {
  FlatEnsemble f;
  size_t total = 0;
  for (const Tree& t : trees) total += t.nodes.size();
  f.feature_.reserve(total);
  f.threshold_.reserve(total);
  f.children_.reserve(2 * total);
  f.value_.reserve(total);
  f.cover_.reserve(total);
  f.offsets_.reserve(trees.size() + 1);
  f.depth_.reserve(trees.size());
  f.expected_value_.reserve(trees.size());
  for (const Tree& t : trees) f.AppendTree(t);
  f.offsets_.push_back(static_cast<int32_t>(f.value_.size()));
  return f;
}

FlatEnsemble FlatEnsemble::Compile(const Tree& tree) {
  FlatEnsemble f;
  f.AppendTree(tree);
  f.offsets_.push_back(static_cast<int32_t>(f.value_.size()));
  return f;
}

namespace {

/// One branch-free routing step: go left iff x[feature] <= threshold —
/// the identical comparison the node-based Tree performs, but consumed as
/// an array index (compiles to setcc + load, never a conditional jump).
inline int32_t Step(const int32_t* children, const int32_t* feature,
                    const double* threshold, const double* row, int32_t i) {
  const size_t side =
      1 - static_cast<size_t>(row[feature[i]] <= threshold[i]);
  return children[2 * static_cast<size_t>(i) + side];
}

}  // namespace

int32_t FlatEnsemble::Leaf(size_t t, const double* x) const {
  const int32_t* ch = children_.data();
  const int32_t* ft = feature_.data();
  const double* th = threshold_.data();
  int32_t i = offsets_[t];
  for (int d = depth_[t]; d > 0; --d) i = Step(ch, ft, th, x, i);
  return i;
}

void FlatEnsemble::AccumulateRange(size_t t, const Matrix& x, size_t begin,
                                   size_t end, double scale,
                                   std::vector<double>* out) const {
  const int32_t* ch = children_.data();
  const int32_t* ft = feature_.data();
  const double* th = threshold_.data();
  const double* val = value_.data();
  const int32_t tree_root = offsets_[t];
  const int tree_depth = depth_[t];
  double* o = out->data();

  // Interleaved cursors: kCursors rows descend in lockstep, so kCursors
  // independent dependent-load chains overlap instead of serializing.
  // Every cursor runs the same fixed `tree_depth` steps (leaves
  // self-loop), which is what makes the lockstep interleave valid and
  // leaves the comparison select as the only data-dependent operation.
  constexpr size_t kCursors = 32;
  size_t i = begin;
  for (; i + kCursors <= end; i += kCursors) {
    const double* rows[kCursors];
    int32_t idx[kCursors];
    for (size_t g = 0; g < kCursors; ++g) {
      rows[g] = x.RowPtr(i + g);
      idx[g] = tree_root;
    }
    for (int d = tree_depth; d > 0; --d)
      for (size_t g = 0; g < kCursors; ++g)
        idx[g] = Step(ch, ft, th, rows[g], idx[g]);
    for (size_t g = 0; g < kCursors; ++g) o[i + g] += scale * val[idx[g]];
  }
  for (; i < end; ++i) o[i] += scale * val[Leaf(t, x.RowPtr(i))];
}

void FlatEnsemble::AccumulateTree(size_t t, const Matrix& x, double scale,
                                  std::vector<double>* out) const {
  AccumulateRange(t, x, 0, x.rows(), scale, out);
}

void FlatEnsemble::AccumulateAll(const Matrix& x, double scale,
                                 std::vector<double>* out) const {
  // Row blocks outer, trees inner: the block's rows (and its slice of
  // `out`) stay L2-resident while the whole ensemble streams over them
  // once, instead of re-streaming the full row matrix per tree. Per row
  // the trees still accumulate in tree order, so results are bit-identical
  // to the unblocked sweep.
  constexpr size_t kRowBlock = 2048;
  const size_t n = x.rows();
  for (size_t begin = 0; begin < n; begin += kRowBlock) {
    const size_t end = begin + kRowBlock < n ? begin + kRowBlock : n;
    for (size_t t = 0; t < num_trees(); ++t)
      AccumulateRange(t, x, begin, end, scale, out);
  }
}

}  // namespace xai
