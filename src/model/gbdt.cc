#include "model/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/binned.h"
#include "math/stats.h"
#include "model/hist_learner.h"
#include "obs/obs.h"

namespace xai {

Result<GradientBoostedTrees> GradientBoostedTrees::Fit(const Dataset& ds,
                                                       const Options& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("GBDT: empty data");
  XAI_OBS_SPAN("train.fit_gbdt");
  const size_t n = ds.n();
  GradientBoostedTrees m;
  m.loss_ = opts.loss;
  m.learning_rate_ = opts.learning_rate;
  m.num_features_ = ds.d();
  Rng rng(opts.seed);

  // Quantize once; all rounds share the read-only bin codes.
  BinnedDataset binned;
  bool hist = opts.tree.train.method == TrainMethod::kHist;
  if (hist) {
    auto b = BinnedDataset::Build(ds.x(), opts.tree.train.max_bins);
    if (b.ok()) {
      binned = std::move(*b);
    } else {
      hist = false;
    }
  }

  if (opts.loss == Loss::kLogistic) {
    const double pos =
        std::accumulate(ds.y().begin(), ds.y().end(), 0.0) /
        static_cast<double>(n);
    const double p = std::clamp(pos, 1e-6, 1.0 - 1e-6);
    m.base_score_ = std::log(p / (1.0 - p));
  } else {
    m.base_score_ = Mean(ds.y());
  }

  std::vector<double> margin(n, m.base_score_);
  std::vector<double> residual(n);
  std::vector<double> hessian(n);
  std::vector<int32_t> leaf_of_row;

  m.trees_.reserve(opts.num_rounds);
  for (int round = 0; round < opts.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      if (opts.loss == Loss::kLogistic) {
        const double p = Sigmoid(margin[i]);
        residual[i] = ds.y()[i] - p;
        hessian[i] = std::max(p * (1.0 - p), 1e-6);
      } else {
        residual[i] = ds.y()[i] - margin[i];
        hessian[i] = 1.0;
      }
    }
    const std::vector<double>* hess =
        opts.loss == Loss::kLogistic ? &hessian : nullptr;

    std::vector<size_t> rows;
    const std::vector<size_t>* rows_ptr = nullptr;
    if (opts.subsample < 1.0) {
      const size_t k = std::max<size_t>(
          1, static_cast<size_t>(opts.subsample * static_cast<double>(n)));
      rows = rng.SampleWithoutReplacement(n, k);
      rows_ptr = &rows;
    }
    Rng tree_rng = rng.Fork();
    Rng* tree_rng_ptr = opts.tree.max_features > 0 ? &tree_rng : nullptr;
    Tree tree;
    if (hist && rows_ptr == nullptr) {
      // Full-data round: the learner already knows which leaf every row
      // landed in, so the margin update is one indexed add per row — no
      // tree re-traversal at all (the binned-codes fast path).
      tree = FitRegressionTreeHist(binned, residual, opts.tree, hess,
                                   nullptr, tree_rng_ptr, &leaf_of_row);
      for (size_t i = 0; i < n; ++i)
        margin[i] += opts.learning_rate *
                     tree.nodes[static_cast<size_t>(leaf_of_row[i])].value;
    } else {
      tree = hist ? FitRegressionTreeHist(binned, residual, opts.tree, hess,
                                          rows_ptr, tree_rng_ptr)
                  : FitRegressionTree(ds.x(), residual, opts.tree, hess,
                                      rows_ptr, tree_rng_ptr);
      // Subsampled rounds update margins for *all* rows: compile the round
      // tree and run the branch-free flat accumulation (same leaf, same
      // scale-and-add as the node walker, so exact-mode output is
      // unchanged — just no longer the last consumer of the slow path).
      const FlatEnsemble one = FlatEnsemble::Compile(tree);
      one.AccumulateTree(0, ds.x(), opts.learning_rate, &margin);
    }
    m.trees_.push_back(std::move(tree));
  }
  m.flat_ = FlatEnsemble::Compile(m.trees_);
  return m;
}

GradientBoostedTrees GradientBoostedTrees::FromParts(
    std::vector<Tree> trees, double base_score, double learning_rate,
    Loss loss, size_t num_features) {
  GradientBoostedTrees m;
  m.trees_ = std::move(trees);
  m.flat_ = FlatEnsemble::Compile(m.trees_);
  m.base_score_ = base_score;
  m.learning_rate_ = learning_rate;
  m.loss_ = loss;
  m.num_features_ = num_features;
  return m;
}

double GradientBoostedTrees::PredictMargin(
    const std::vector<double>& x) const {
  double f = base_score_;
  for (size_t t = 0; t < flat_.num_trees(); ++t)
    f += learning_rate_ * flat_.PredictTree(t, x.data());
  return f;
}

double GradientBoostedTrees::Predict(const std::vector<double>& x) const {
  const double f = PredictMargin(x);
  return loss_ == Loss::kLogistic ? Sigmoid(f) : f;
}

std::vector<double> GradientBoostedTrees::PredictMarginBatch(
    const Matrix& x) const {
  std::vector<double> out(x.rows(), base_score_);
  flat_.AccumulateAll(x, learning_rate_, &out);
  return out;
}

std::vector<double> GradientBoostedTrees::PredictBatch(const Matrix& x) const {
  std::vector<double> out = PredictMarginBatch(x);
  if (loss_ == Loss::kLogistic)
    for (double& v : out) v = Sigmoid(v);
  return out;
}

}  // namespace xai
