#include "model/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/stats.h"

namespace xai {

Result<GradientBoostedTrees> GradientBoostedTrees::Fit(const Dataset& ds,
                                                       const Options& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("GBDT: empty data");
  const size_t n = ds.n();
  GradientBoostedTrees m;
  m.loss_ = opts.loss;
  m.learning_rate_ = opts.learning_rate;
  m.num_features_ = ds.d();
  Rng rng(opts.seed);

  if (opts.loss == Loss::kLogistic) {
    const double pos =
        std::accumulate(ds.y().begin(), ds.y().end(), 0.0) /
        static_cast<double>(n);
    const double p = std::clamp(pos, 1e-6, 1.0 - 1e-6);
    m.base_score_ = std::log(p / (1.0 - p));
  } else {
    m.base_score_ = Mean(ds.y());
  }

  std::vector<double> margin(n, m.base_score_);
  std::vector<double> residual(n);
  std::vector<double> hessian(n);

  m.trees_.reserve(opts.num_rounds);
  for (int round = 0; round < opts.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      if (opts.loss == Loss::kLogistic) {
        const double p = Sigmoid(margin[i]);
        residual[i] = ds.y()[i] - p;
        hessian[i] = std::max(p * (1.0 - p), 1e-6);
      } else {
        residual[i] = ds.y()[i] - margin[i];
        hessian[i] = 1.0;
      }
    }
    const std::vector<double>* hess =
        opts.loss == Loss::kLogistic ? &hessian : nullptr;

    std::vector<size_t> rows;
    const std::vector<size_t>* rows_ptr = nullptr;
    if (opts.subsample < 1.0) {
      const size_t k = std::max<size_t>(
          1, static_cast<size_t>(opts.subsample * static_cast<double>(n)));
      rows = rng.SampleWithoutReplacement(n, k);
      rows_ptr = &rows;
    }
    Rng tree_rng = rng.Fork();
    Tree tree = FitRegressionTree(ds.x(), residual, opts.tree, hess, rows_ptr,
                                  opts.tree.max_features > 0 ? &tree_rng
                                                             : nullptr);
    tree.AccumulateBatch(ds.x(), opts.learning_rate, &margin);
    m.trees_.push_back(std::move(tree));
  }
  m.flat_ = FlatEnsemble::Compile(m.trees_);
  return m;
}

GradientBoostedTrees GradientBoostedTrees::FromParts(
    std::vector<Tree> trees, double base_score, double learning_rate,
    Loss loss, size_t num_features) {
  GradientBoostedTrees m;
  m.trees_ = std::move(trees);
  m.flat_ = FlatEnsemble::Compile(m.trees_);
  m.base_score_ = base_score;
  m.learning_rate_ = learning_rate;
  m.loss_ = loss;
  m.num_features_ = num_features;
  return m;
}

double GradientBoostedTrees::PredictMargin(
    const std::vector<double>& x) const {
  double f = base_score_;
  for (size_t t = 0; t < flat_.num_trees(); ++t)
    f += learning_rate_ * flat_.PredictTree(t, x.data());
  return f;
}

double GradientBoostedTrees::Predict(const std::vector<double>& x) const {
  const double f = PredictMargin(x);
  return loss_ == Loss::kLogistic ? Sigmoid(f) : f;
}

std::vector<double> GradientBoostedTrees::PredictMarginBatch(
    const Matrix& x) const {
  std::vector<double> out(x.rows(), base_score_);
  flat_.AccumulateAll(x, learning_rate_, &out);
  return out;
}

std::vector<double> GradientBoostedTrees::PredictBatch(const Matrix& x) const {
  std::vector<double> out = PredictMarginBatch(x);
  if (loss_ == Loss::kLogistic)
    for (double& v : out) v = Sigmoid(v);
  return out;
}

}  // namespace xai
