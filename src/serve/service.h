#ifndef XAIDB_SERVE_SERVICE_H_
#define XAIDB_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "feature/explainer_factory.h"
#include "model/model.h"
#include "model/registry.h"

namespace xai {

namespace obs {
class AuditLog;
}  // namespace obs

/// One explanation request as submitted by a caller. The service answers
/// with a FeatureAttribution (or a typed error) through the future
/// returned by Submit and/or a per-request callback.
struct ExplanationRequest {
  std::vector<double> instance;
  ExplainerKind kind = ExplainerKind::kKernelShap;
  /// Sampling budget override: 0 keeps the service config's defaults;
  /// otherwise overrides the active family's sample / permutation count
  /// (ignored by exact TreeSHAP). Requests with different budgets never
  /// coalesce — they would not be bit-identical.
  int budget = 0;
  /// Higher runs first; ties serve in submission order.
  int priority = 0;
  /// Per-request deadline measured from Submit; 0 = none. A request whose
  /// deadline passes before evaluation starts fails with DeadlineExceeded
  /// instead of being evaluated.
  std::chrono::milliseconds timeout{0};
};

struct ExplanationResponse;

struct ExplanationServiceOptions {
  /// Bounded MPSC queue capacity; Submit blocks (TrySubmit fails with
  /// Unavailable) when full.
  size_t queue_capacity = 256;
  /// Max requests coalesced into one ExplainBatch sweep.
  size_t max_batch = 64;
  /// When false every request is served alone (the bench's baseline).
  bool coalesce = true;
  /// When true the dispatcher accepts submissions but evaluates nothing
  /// until Resume() — lets tests stage a queue deterministically.
  bool start_paused = false;
  /// Per-family explainer options (seeds included), shared by all
  /// requests; a request's `budget` overlays the family's sample count.
  ExplainerConfig config;
  /// Capacity of the per-coalescing-key coalition-value cache installed
  /// into each Shapley-family explainer the service builds (0 disables
  /// caching). One cache per key: requests that coalesce share a memo
  /// table, so repeated instances across sweeps skip their model
  /// evaluations entirely. Caching never changes attribution bits.
  size_t cache_size = 1 << 15;
  /// Observer invoked on the dispatcher thread for every successfully
  /// served response, after the sweep and before the request's promise is
  /// fulfilled — the hook monitoring consumers (the attribution-drift
  /// watchdog in eval/drift.h) attach to. Keep it cheap: it runs inline
  /// in the dispatcher. Never called for expired or errored requests.
  std::function<void(const ExplanationRequest&, const ExplanationResponse&)>
      response_observer;
  /// When set, every successfully served response is appended to this
  /// crash-safe provenance ledger (obs/audit.h): row hash + full instance,
  /// model name/version/fingerprint, coalescing-key fingerprint, latency
  /// breakdown, and the top-k attribution values. The append is wait-free
  /// on the dispatcher thread — all ledger I/O happens on the log's own
  /// drain thread, and overflow drops (with a counter) rather than ever
  /// stalling serving. Never written for expired or errored requests.
  std::shared_ptr<obs::AuditLog> audit;
};

/// Where one request's time went, filled in by the dispatcher and
/// returned on every completed request. queue_ms + sweep_ms < total_ms in
/// general: the remainder is dispatcher bookkeeping plus (for coalesced
/// followers) time spent in sweeps of earlier batches.
struct ExplanationBreakdown {
  double queue_ms = 0.0;  ///< Submit → drafted into a batch.
  double sweep_ms = 0.0;  ///< ExplainBatch wall time of the batch it rode.
  double total_ms = 0.0;  ///< Submit → promise fulfilled.
  /// Live requests served by the same ExplainBatch sweep (self included).
  size_t coalesce_batch_size = 0;
  /// Flight-recorder id linking this request's trace events across
  /// threads; 0 when tracing is off or the request was sampled out.
  uint64_t trace_id = 0;
  /// Version of the model this request was evaluated against — the one it
  /// captured at Submit, which a concurrent hot-swap cannot change. The
  /// swap bench groups responses by this to check per-version
  /// bit-identity through a live flip.
  int model_version = 0;
};

/// What a completed request resolves to: the attribution plus the
/// latency breakdown for that specific request.
struct ExplanationResponse {
  FeatureAttribution attribution;
  ExplanationBreakdown breakdown;
};

/// Monotonic counters, readable at any time. `coalesced_duplicates` counts
/// requests answered from another identical request's computation.
struct ExplanationServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t expired = 0;
  uint64_t rejected = 0;
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  uint64_t coalesced_duplicates = 0;
  /// Coalition-value cache totals summed over every per-key cache the
  /// service has built (all zero when cache_size == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  /// Requests sitting in the queue right now (instantaneous, not
  /// monotonic) — the saturation signal the serve.queue_depth gauge
  /// samples on every enqueue/dequeue; visible here so callers that poll
  /// stats() see saturation before wait-time histograms degrade.
  uint64_t queue_depth = 0;
  /// Completed hot-swaps (SwapModel calls that flipped the serving
  /// handle).
  uint64_t swaps = 0;
  /// Version of the currently-serving model (also exported as the
  /// serve.model_version gauge, so a Prometheus scrape shows the flip).
  int model_version = 0;
};

/// Knobs for ExplanationService::SwapModel.
struct ModelSwapOptions {
  /// Max recent unique instances replayed per coalescing family to warm
  /// the incoming version's explainers and coalition caches before the
  /// flip. 0 skips warming (cold flip).
  size_t warm_rows = 64;
};

/// What a completed hot-swap did, for logs and the swap bench.
struct ModelSwapReport {
  std::string from;  ///< VersionedName of the outgoing model.
  std::string to;    ///< VersionedName of the incoming model.
  size_t warmed_families = 0;  ///< Coalescing families pre-built + warmed.
  size_t warmed_rows = 0;      ///< Recent instances replayed in total.
  double warm_ms = 0.0;        ///< Wall time spent building + warming.
};

/// Async explanation service: bounded MPSC queue in front of a single
/// dispatcher thread that coalesces compatible pending requests — same
/// (explainer kind, config fingerprint, arity) — into one ExplainBatch
/// sweep, and answers duplicate instances from one computation. Because
/// every explainer's ExplainBatch is bit-identical to per-row Explain, a
/// request's attribution does not depend on what it was batched with —
/// coalescing is invisible to callers except in latency.
///
/// Lifecycle: the destructor drains — every accepted request is completed
/// (evaluated or expired), never dropped.
///
/// Hot-swap: SwapModel warms an incoming model version behind the
/// currently-serving one, then flips the serving handle atomically.
/// Every request captures the serving handle at Submit and is evaluated
/// against exactly that version — in-flight requests finish on the
/// version they started on, kept alive by the handle's refcount. Because
/// the coalescing key includes the model fingerprint, pre- and post-swap
/// requests never share a batch or a cached result; old-version cache
/// entries age out through the coalition cache's CLOCK eviction.
class ExplanationService {
 public:
  using Callback = std::function<void(const Result<ExplanationResponse>&)>;

  /// `model` is the initially-serving version — a registry handle, or
  /// ModelHandle::Borrow(...) around a caller-owned in-memory model.
  ExplanationService(ModelHandle model, const Dataset& background,
                     ExplanationServiceOptions opts = {});
  ~ExplanationService();

  ExplanationService(const ExplanationService&) = delete;
  ExplanationService& operator=(const ExplanationService&) = delete;

  /// Enqueues; blocks while the queue is full. The future always resolves
  /// (value, error, or DeadlineExceeded). `cb`, if given, runs on the
  /// dispatcher thread right after the future is fulfilled. When the
  /// flight recorder is on, the request is assigned a trace_id here (see
  /// ExplanationBreakdown::trace_id) and its enqueue → dequeue → sweep →
  /// completion path emits linked trace events across threads.
  std::future<Result<ExplanationResponse>> Submit(ExplanationRequest req,
                                                  Callback cb = nullptr);

  /// Non-blocking Submit: Unavailable when the queue is full or the
  /// service is shut down.
  Result<std::future<Result<ExplanationResponse>>> TrySubmit(
      ExplanationRequest req, Callback cb = nullptr);

  /// Starts evaluation when constructed with start_paused.
  void Resume();

  /// Stops accepting new requests, drains everything already accepted,
  /// and joins the dispatcher. Idempotent.
  void Shutdown();

  /// Zero-downtime hot-swap to `next`. While the old version keeps
  /// serving: builds an explainer for `next` in every coalescing family
  /// seen so far (validating compatibility — a family that cannot be
  /// rebuilt, e.g. treeshap over a non-tree model, rejects the swap
  /// before anything changes), replays up to warm_rows recent unique
  /// instances per family so the incoming version's coalition-cache
  /// entries are hot, then atomically flips the serving handle. Requests
  /// submitted before the flip finish on the old version; requests after
  /// see only the new one. Thread-safe; concurrent swaps serialize.
  Result<ModelSwapReport> SwapModel(ModelHandle next,
                                    ModelSwapOptions swap_opts = {});

  /// The currently-serving model version (what a Submit issued now would
  /// capture).
  ModelHandle serving_model() const;

  ExplanationServiceStats stats() const;

 private:
  struct Pending;

  /// An explainer bound to one (coalescing family, model version). The
  /// handle keeps that version alive for as long as the explainer that
  /// borrows it exists — an old version swapped out mid-flight stays
  /// valid until its last entry (and last in-flight request) is gone.
  struct ExplainerEntry {
    std::unique_ptr<AttributionExplainer> explainer;
    ModelHandle handle;
  };

  /// Per-family record of recently-served unique instances, replayed by
  /// SwapModel to warm the incoming version. Keyed by the *family* key
  /// (model_fingerprint zeroed), so history survives swaps.
  struct FamilyHistory {
    ExplainerKind kind = ExplainerKind::kKernelShap;
    int budget = 0;
    size_t arity = 0;
    std::vector<std::vector<double>> rows;  // ring, capacity kHistoryCap
    std::unordered_set<uint64_t> seen;      // row hashes, for dedup
    size_t next = 0;
  };
  static constexpr size_t kHistoryCap = 128;

  std::unique_ptr<Pending> MakePending(ExplanationRequest req,
                                       Callback cb) const;
  void EnqueueLocked(std::unique_ptr<Pending> p);
  void RunDispatcher();
  void ServeBatch(std::vector<std::unique_ptr<Pending>> batch);
  static void FinishError(std::vector<std::unique_ptr<Pending>>& batch,
                          const Status& status);
  Result<AttributionExplainer*> GetExplainer(const Pending& leader);
  /// The family's shared coalition cache, created on first use (Shapley
  /// families only, nullptr otherwise). Guarded by mu_ internally.
  std::shared_ptr<CoalitionValueCache> FamilyCache(ExplainerKind kind,
                                                   uint64_t family_key);

  /// The serving version. Atomic shared_ptr: Submit loads it lock-free,
  /// SwapModel stores the replacement after warming.
  std::atomic<std::shared_ptr<const ModelHandle>> serving_;
  const Dataset& background_;
  ExplanationServiceOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;      // dispatcher waits here
  std::condition_variable cv_capacity_;  // blocking Submit waits here
  std::deque<std::unique_ptr<Pending>> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  uint64_t next_seq_ = 0;

  /// Serializes SwapModel calls (never held while mu_ is wanted by the
  /// dispatcher for long — warming runs outside mu_).
  std::mutex swap_mu_;

  /// Explainers cached per full coalescing key (family + model version).
  /// Guarded by mu_ for map access; a looked-up explainer runs outside
  /// the lock (dispatcher or warming thread, never both — pre-flip only
  /// the swap thread touches new-version entries).
  std::unordered_map<uint64_t, ExplainerEntry> explainers_;
  /// One coalition-value cache per coalescing *family* (Shapley families
  /// only), shared across model versions: a swap warms new-version
  /// entries into the same cache while stale-version entries age out via
  /// CLOCK eviction. Kept here so stats() can report totals. Guarded by
  /// mu_; the caches themselves are internally synchronized.
  std::unordered_map<uint64_t, std::shared_ptr<CoalitionValueCache>> caches_;
  /// Recent-instance history per family, for swap warming. Guarded by mu_.
  std::unordered_map<uint64_t, FamilyHistory> families_;

  ExplanationServiceStats stats_;  // guarded by mu_

  std::thread dispatcher_;
};

}  // namespace xai

#endif  // XAIDB_SERVE_SERVICE_H_
