#ifndef XAIDB_SERVE_SERVICE_H_
#define XAIDB_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "feature/explainer_factory.h"
#include "model/model.h"

namespace xai {

/// One explanation request as submitted by a caller. The service answers
/// with a FeatureAttribution (or a typed error) through the future
/// returned by Submit and/or a per-request callback.
struct ExplanationRequest {
  std::vector<double> instance;
  ExplainerKind kind = ExplainerKind::kKernelShap;
  /// Sampling budget override: 0 keeps the service config's defaults;
  /// otherwise overrides the active family's sample / permutation count
  /// (ignored by exact TreeSHAP). Requests with different budgets never
  /// coalesce — they would not be bit-identical.
  int budget = 0;
  /// Higher runs first; ties serve in submission order.
  int priority = 0;
  /// Per-request deadline measured from Submit; 0 = none. A request whose
  /// deadline passes before evaluation starts fails with DeadlineExceeded
  /// instead of being evaluated.
  std::chrono::milliseconds timeout{0};
};

struct ExplanationResponse;

struct ExplanationServiceOptions {
  /// Bounded MPSC queue capacity; Submit blocks (TrySubmit fails with
  /// Unavailable) when full.
  size_t queue_capacity = 256;
  /// Max requests coalesced into one ExplainBatch sweep.
  size_t max_batch = 64;
  /// When false every request is served alone (the bench's baseline).
  bool coalesce = true;
  /// When true the dispatcher accepts submissions but evaluates nothing
  /// until Resume() — lets tests stage a queue deterministically.
  bool start_paused = false;
  /// Per-family explainer options (seeds included), shared by all
  /// requests; a request's `budget` overlays the family's sample count.
  ExplainerConfig config;
  /// Capacity of the per-coalescing-key coalition-value cache installed
  /// into each Shapley-family explainer the service builds (0 disables
  /// caching). One cache per key: requests that coalesce share a memo
  /// table, so repeated instances across sweeps skip their model
  /// evaluations entirely. Caching never changes attribution bits.
  size_t cache_size = 1 << 15;
  /// Observer invoked on the dispatcher thread for every successfully
  /// served response, after the sweep and before the request's promise is
  /// fulfilled — the hook monitoring consumers (the attribution-drift
  /// watchdog in eval/drift.h) attach to. Keep it cheap: it runs inline
  /// in the dispatcher. Never called for expired or errored requests.
  std::function<void(const ExplanationRequest&, const ExplanationResponse&)>
      response_observer;
};

/// Where one request's time went, filled in by the dispatcher and
/// returned on every completed request. queue_ms + sweep_ms < total_ms in
/// general: the remainder is dispatcher bookkeeping plus (for coalesced
/// followers) time spent in sweeps of earlier batches.
struct ExplanationBreakdown {
  double queue_ms = 0.0;  ///< Submit → drafted into a batch.
  double sweep_ms = 0.0;  ///< ExplainBatch wall time of the batch it rode.
  double total_ms = 0.0;  ///< Submit → promise fulfilled.
  /// Live requests served by the same ExplainBatch sweep (self included).
  size_t coalesce_batch_size = 0;
  /// Flight-recorder id linking this request's trace events across
  /// threads; 0 when tracing is off or the request was sampled out.
  uint64_t trace_id = 0;
};

/// What a completed request resolves to: the attribution plus the
/// latency breakdown for that specific request.
struct ExplanationResponse {
  FeatureAttribution attribution;
  ExplanationBreakdown breakdown;
};

/// Monotonic counters, readable at any time. `coalesced_duplicates` counts
/// requests answered from another identical request's computation.
struct ExplanationServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t expired = 0;
  uint64_t rejected = 0;
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  uint64_t coalesced_duplicates = 0;
  /// Coalition-value cache totals summed over every per-key cache the
  /// service has built (all zero when cache_size == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  /// Requests sitting in the queue right now (instantaneous, not
  /// monotonic) — the saturation signal the serve.queue_depth gauge
  /// samples on every enqueue/dequeue; visible here so callers that poll
  /// stats() see saturation before wait-time histograms degrade.
  uint64_t queue_depth = 0;
};

/// Async explanation service: bounded MPSC queue in front of a single
/// dispatcher thread that coalesces compatible pending requests — same
/// (explainer kind, config fingerprint, arity) — into one ExplainBatch
/// sweep, and answers duplicate instances from one computation. Because
/// every explainer's ExplainBatch is bit-identical to per-row Explain, a
/// request's attribution does not depend on what it was batched with —
/// coalescing is invisible to callers except in latency.
///
/// Lifecycle: the destructor drains — every accepted request is completed
/// (evaluated or expired), never dropped.
class ExplanationService {
 public:
  using Callback = std::function<void(const Result<ExplanationResponse>&)>;

  ExplanationService(const Model& model, const Dataset& background,
                     ExplanationServiceOptions opts = {});
  ~ExplanationService();

  ExplanationService(const ExplanationService&) = delete;
  ExplanationService& operator=(const ExplanationService&) = delete;

  /// Enqueues; blocks while the queue is full. The future always resolves
  /// (value, error, or DeadlineExceeded). `cb`, if given, runs on the
  /// dispatcher thread right after the future is fulfilled. When the
  /// flight recorder is on, the request is assigned a trace_id here (see
  /// ExplanationBreakdown::trace_id) and its enqueue → dequeue → sweep →
  /// completion path emits linked trace events across threads.
  std::future<Result<ExplanationResponse>> Submit(ExplanationRequest req,
                                                  Callback cb = nullptr);

  /// Non-blocking Submit: Unavailable when the queue is full or the
  /// service is shut down.
  Result<std::future<Result<ExplanationResponse>>> TrySubmit(
      ExplanationRequest req, Callback cb = nullptr);

  /// Starts evaluation when constructed with start_paused.
  void Resume();

  /// Stops accepting new requests, drains everything already accepted,
  /// and joins the dispatcher. Idempotent.
  void Shutdown();

  ExplanationServiceStats stats() const;

 private:
  struct Pending;

  std::unique_ptr<Pending> MakePending(ExplanationRequest req,
                                       Callback cb) const;
  void EnqueueLocked(std::unique_ptr<Pending> p);
  void RunDispatcher();
  void ServeBatch(std::vector<std::unique_ptr<Pending>> batch);
  static void FinishError(std::vector<std::unique_ptr<Pending>>& batch,
                          const Status& status);
  Result<AttributionExplainer*> GetExplainer(ExplainerKind kind, int budget,
                                             uint64_t key);

  const Model& model_;
  const Dataset& background_;
  ExplanationServiceOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;      // dispatcher waits here
  std::condition_variable cv_capacity_;  // blocking Submit waits here
  std::deque<std::unique_ptr<Pending>> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  uint64_t next_seq_ = 0;

  /// Dispatcher-only: explainers cached per coalescing key.
  std::unordered_map<uint64_t, std::unique_ptr<AttributionExplainer>>
      explainers_;
  /// One coalition-value cache per coalescing key (Shapley families only),
  /// kept here so stats() can report totals. Guarded by mu_; the caches
  /// themselves are internally synchronized.
  std::unordered_map<uint64_t, std::shared_ptr<CoalitionValueCache>> caches_;

  ExplanationServiceStats stats_;  // guarded by mu_

  std::thread dispatcher_;
};

}  // namespace xai

#endif  // XAIDB_SERVE_SERVICE_H_
