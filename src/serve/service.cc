#include "serve/service.h"

#include <algorithm>
#include <map>

#include "math/matrix.h"
#include "obs/obs.h"

namespace xai {

namespace {

using Clock = std::chrono::steady_clock;

/// Overlays a request's budget onto the family's sample / permutation
/// count. The returned config fully determines the attribution, so its
/// Fingerprint doubles as the coalescing key.
ExplainerConfig ApplyBudget(ExplainerConfig c, ExplainerKind kind,
                            int budget) {
  if (budget <= 0) return c;
  switch (kind) {
    case ExplainerKind::kTreeShap:
      break;  // exact — no sampling budget to override
    case ExplainerKind::kKernelShap:
      c.kernel_shap.num_samples = budget;
      break;
    case ExplainerKind::kLime:
      c.lime.num_samples = budget;
      break;
    case ExplainerKind::kMcShapley:
      c.mc_shapley.num_permutations = budget;
      break;
  }
  return c;
}

}  // namespace

struct ExplanationService::Pending {
  ExplanationRequest req;
  std::promise<Result<ExplanationResponse>> promise;
  Callback cb;
  Clock::time_point submit_time;
  Clock::time_point deadline;  // time_point::max() when none
  uint64_t seq = 0;
  uint64_t key = 0;
  /// Filled in as the request moves through the pipeline; trace_id is
  /// assigned at Submit, queue_ms/sweep_ms/batch size by the dispatcher.
  ExplanationBreakdown breakdown;

  /// Fulfils promise then callback, recording end-to-end latency and
  /// closing the request's async trace span. Runs on the dispatcher
  /// thread (or the submitting thread for shutdown rejections).
  void Finish(Result<ExplanationResponse> result) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - submit_time)
                        .count();
    XAI_OBS_OBSERVE("serve.request_latency_us", us);
    if (result.ok()) {
      result.value().breakdown = breakdown;
      result.value().breakdown.total_ms = static_cast<double>(us) * 1e-3;
    }
    if (breakdown.trace_id != 0)
      obs::TraceAsyncEnd("serve.request", breakdown.trace_id);
    promise.set_value(result);
    if (cb) cb(result);
  }
};

ExplanationService::ExplanationService(const Model& model,
                                       const Dataset& background,
                                       ExplanationServiceOptions opts)
    : model_(model),
      background_(background),
      opts_(std::move(opts)),
      paused_(opts_.start_paused) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  dispatcher_ = std::thread([this] { RunDispatcher(); });
}

ExplanationService::~ExplanationService() { Shutdown(); }

std::unique_ptr<ExplanationService::Pending> ExplanationService::MakePending(
    ExplanationRequest req, Callback cb) const {
  auto p = std::make_unique<Pending>();
  p->submit_time = Clock::now();
  p->deadline = req.timeout.count() > 0 ? p->submit_time + req.timeout
                                        : Clock::time_point::max();
  p->cb = std::move(cb);
  p->key = ApplyBudget(opts_.config, req.kind, req.budget)
               .Fingerprint(req.kind) ^
           (0x9e3779b97f4a7c15ULL * (req.instance.size() + 1));
  p->req = std::move(req);
  // Trace-context propagation starts here: the request's id is minted on
  // the submitting thread, its async span opens on this thread, and the
  // dispatcher re-installs the id around everything done on its behalf.
  p->breakdown.trace_id = obs::NewTraceId();
  if (p->breakdown.trace_id != 0) {
    obs::ScopedTraceContext ctx(
        obs::TraceContext{p->breakdown.trace_id, 0});
    obs::TraceAsyncBegin("serve.request", p->breakdown.trace_id);
    obs::TraceInstant("serve.submit",
                      static_cast<double>(p->breakdown.trace_id));
  }
  return p;
}

void ExplanationService::EnqueueLocked(std::unique_ptr<Pending> p) {
  p->seq = next_seq_++;
  ++stats_.submitted;
  queue_.push_back(std::move(p));
  XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
}

std::future<Result<ExplanationResponse>> ExplanationService::Submit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_capacity_.wait(lock, [&] {
      return shutdown_ || queue_.size() < opts_.queue_capacity;
    });
    if (shutdown_) {
      ++stats_.rejected;
      lock.unlock();
      p->Finish(Status::Unavailable("ExplanationService is shut down"));
      return fut;
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

Result<std::future<Result<ExplanationResponse>>> ExplanationService::TrySubmit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService is shut down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService queue is full");
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

void ExplanationService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void ExplanationService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    paused_ = false;  // drain even if never resumed
  }
  cv_work_.notify_all();
  cv_capacity_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ExplanationServiceStats ExplanationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExplanationServiceStats out = stats_;
  out.queue_depth = queue_.size();
  for (const auto& [key, cache] : caches_) {
    const EvalCacheStats cs = cache->stats();
    out.cache_hits += cs.hits;
    out.cache_misses += cs.misses;
    out.cache_evictions += cs.evictions;
    out.cache_entries += cs.entries;
  }
  return out;
}

void ExplanationService::RunDispatcher() {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;  // spurious wake while paused
      }
      // Leader: highest priority; ties go to the earliest submission
      // (the queue is in seq order, so the first max wins).
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i)
        if (queue_[i]->req.priority > queue_[best]->req.priority) best = i;
      const uint64_t key = queue_[best]->key;
      const size_t limit = opts_.coalesce ? opts_.max_batch : 1;
      batch.push_back(std::move(queue_[best]));
      queue_.erase(queue_.begin() + static_cast<long>(best));
      // Followers: every compatible pending request, in submission order.
      // kind + budget are compared directly so a (vanishingly unlikely)
      // fingerprint collision can never mix families in one sweep.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < limit;) {
        if ((*it)->key == key && (*it)->req.kind == batch[0]->req.kind &&
            (*it)->req.budget == batch[0]->req.budget) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    cv_capacity_.notify_all();
    ServeBatch(std::move(batch));
  }
}

Result<AttributionExplainer*> ExplanationService::GetExplainer(
    ExplainerKind kind, int budget, uint64_t key) {
  auto it = explainers_.find(key);
  if (it != explainers_.end()) return it->second.get();
  ExplainerConfig cfg = ApplyBudget(opts_.config, kind, budget);
  // One memo cache per coalescing key: every sweep the key's explainer
  // runs shares it, so instances repeated across batches hit instead of
  // re-evaluating the model. Only the Shapley families route coalition
  // values through the engine; building caches for the others would just
  // pad the stats with dead capacity.
  if (opts_.cache_size > 0 && (kind == ExplainerKind::kKernelShap ||
                               kind == ExplainerKind::kMcShapley)) {
    cfg.cache = std::make_shared<CoalitionValueCache>(opts_.cache_size);
    std::lock_guard<std::mutex> lock(mu_);
    caches_.emplace(key, cfg.cache);
  }
  XAI_ASSIGN_OR_RETURN(std::unique_ptr<AttributionExplainer> ex,
                       MakeExplainer(kind, model_, background_, cfg));
  AttributionExplainer* raw = ex.get();
  explainers_.emplace(key, std::move(ex));
  return raw;
}

void ExplanationService::FinishError(
    std::vector<std::unique_ptr<Pending>>& batch, const Status& status) {
  for (auto& p : batch) p->Finish(status);
}

void ExplanationService::ServeBatch(
    std::vector<std::unique_ptr<Pending>> batch) {
  XAI_OBS_COUNT("serve.batches");
  XAI_OBS_COUNT_N("serve.batched_requests", batch.size());

  // Partition: requests whose deadline passed while queued are expired
  // without evaluation — cheaper than computing an answer nobody is
  // waiting for.
  const auto now = Clock::now();
  std::vector<std::unique_ptr<Pending>> expired;
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (now >= p->deadline) {
      XAI_OBS_COUNT("serve.expired");
      expired.push_back(std::move(p));
    } else {
      live.push_back(std::move(p));
    }
  }

  // Queue wait ends now, for every live request drafted into this batch.
  for (auto& p : live) {
    const auto wait_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - p->submit_time)
            .count();
    p->breakdown.queue_ms = static_cast<double>(wait_us) * 1e-3;
    p->breakdown.coalesce_batch_size = live.size();
    XAI_OBS_OBSERVE("serve.queue_wait_us", wait_us);
    if (p->breakdown.trace_id != 0) {
      obs::ScopedTraceContext ctx(
          obs::TraceContext{p->breakdown.trace_id, 0});
      obs::TraceInstant("serve.dequeue", p->breakdown.queue_ms);
    }
  }

  // Collapse bit-identical instances: each unique row is evaluated once
  // and its attribution fans out to every duplicate request — sound
  // because attributions are deterministic in (instance, key).
  std::map<std::vector<double>, size_t> index;
  std::vector<size_t> slot(live.size());
  std::vector<const std::vector<double>*> unique_rows;
  for (size_t i = 0; i < live.size(); ++i) {
    auto [it, inserted] =
        index.try_emplace(live[i]->req.instance, unique_rows.size());
    if (inserted) unique_rows.push_back(&live[i]->req.instance);
    slot[i] = it->second;
  }
  const uint64_t n_duplicates = live.size() - unique_rows.size();
  XAI_OBS_COUNT_N("serve.coalesced_duplicates", n_duplicates);

  // Publish stats BEFORE fulfilling any promise: a caller that observed
  // its future resolve must see this batch already reflected in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.expired += expired.size();
    stats_.completed += live.size();
    stats_.coalesced_duplicates += n_duplicates;
  }

  FinishError(expired, Status::DeadlineExceeded(
                           "deadline passed before evaluation started"));
  if (live.empty()) return;

  Matrix rows(unique_rows.size(), live[0]->req.instance.size());
  for (size_t i = 0; i < unique_rows.size(); ++i)
    rows.SetRow(i, *unique_rows[i]);

  // The sweep runs under the leader's trace context: the serve_batch span
  // and every ParallelFor chunk inside the explainer carry its trace_id.
  // Coalesced riders link themselves to the leader with a ride_batch
  // instant so their timelines point at the sweep that answered them.
  const uint64_t leader_trace = live[0]->breakdown.trace_id;
  obs::ScopedTraceContext sweep_ctx(obs::TraceContext{leader_trace, 0});
  XAI_OBS_SPAN("serve_batch");
  for (auto& p : live) {
    if (p->breakdown.trace_id != 0 && p->breakdown.trace_id != leader_trace) {
      obs::ScopedTraceContext ctx(obs::TraceContext{
          p->breakdown.trace_id, obs::CurrentTraceContext().span_id});
      obs::TraceInstant("serve.ride_batch",
                        static_cast<double>(leader_trace));
    }
  }

  Result<AttributionExplainer*> ex =
      GetExplainer(live[0]->req.kind, live[0]->req.budget, live[0]->key);
  if (!ex.ok()) {
    FinishError(live, ex.status());
    return;
  }
  obs::Stopwatch sweep;
  Result<std::vector<FeatureAttribution>> results = (*ex)->ExplainBatch(rows);
  const double sweep_us = sweep.ElapsedUs();
  // Request-weighted (one observation per request, not per batch), so the
  // serve.sweep_us percentiles answer "what sweep time did a request see".
  for (auto& p : live) {
    p->breakdown.sweep_ms = sweep_us * 1e-3;
    XAI_OBS_OBSERVE("serve.sweep_us", sweep_us);
  }
  if (!results.ok()) {
    FinishError(live, results.status());
    return;
  }
  for (size_t i = 0; i < live.size(); ++i) {
    ExplanationResponse resp;
    resp.attribution = results.value()[slot[i]];
    // Monitoring hook: observers see the response (attribution + the
    // breakdown as known so far) before the caller's future resolves, so
    // a drift verdict can never lag the response that caused it.
    if (opts_.response_observer) {
      resp.breakdown = live[i]->breakdown;
      opts_.response_observer(live[i]->req, resp);
    }
    live[i]->Finish(std::move(resp));
  }
}

}  // namespace xai
