#include "serve/service.h"

#include <algorithm>
#include <map>

#include "math/matrix.h"
#include "obs/obs.h"

namespace xai {

namespace {

using Clock = std::chrono::steady_clock;

/// Overlays a request's budget onto the family's sample / permutation
/// count. The returned config fully determines the attribution, so its
/// Fingerprint doubles as the coalescing key.
ExplainerConfig ApplyBudget(ExplainerConfig c, ExplainerKind kind,
                            int budget) {
  if (budget <= 0) return c;
  switch (kind) {
    case ExplainerKind::kTreeShap:
      break;  // exact — no sampling budget to override
    case ExplainerKind::kKernelShap:
      c.kernel_shap.num_samples = budget;
      break;
    case ExplainerKind::kLime:
      c.lime.num_samples = budget;
      break;
    case ExplainerKind::kMcShapley:
      c.mc_shapley.num_permutations = budget;
      break;
  }
  return c;
}

}  // namespace

struct ExplanationService::Pending {
  ExplanationRequest req;
  std::promise<Result<FeatureAttribution>> promise;
  Callback cb;
  Clock::time_point submit_time;
  Clock::time_point deadline;  // time_point::max() when none
  uint64_t seq = 0;
  uint64_t key = 0;

  /// Fulfils promise then callback, recording end-to-end latency. Runs on
  /// the dispatcher thread.
  void Finish(const Result<FeatureAttribution>& result) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - submit_time)
                        .count();
    XAI_OBS_OBSERVE("serve.request_latency_us", us);
    promise.set_value(result);
    if (cb) cb(result);
  }
};

ExplanationService::ExplanationService(const Model& model,
                                       const Dataset& background,
                                       ExplanationServiceOptions opts)
    : model_(model),
      background_(background),
      opts_(std::move(opts)),
      paused_(opts_.start_paused) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  dispatcher_ = std::thread([this] { RunDispatcher(); });
}

ExplanationService::~ExplanationService() { Shutdown(); }

std::unique_ptr<ExplanationService::Pending> ExplanationService::MakePending(
    ExplanationRequest req, Callback cb) const {
  auto p = std::make_unique<Pending>();
  p->submit_time = Clock::now();
  p->deadline = req.timeout.count() > 0 ? p->submit_time + req.timeout
                                        : Clock::time_point::max();
  p->cb = std::move(cb);
  p->key = ApplyBudget(opts_.config, req.kind, req.budget)
               .Fingerprint(req.kind) ^
           (0x9e3779b97f4a7c15ULL * (req.instance.size() + 1));
  p->req = std::move(req);
  return p;
}

void ExplanationService::EnqueueLocked(std::unique_ptr<Pending> p) {
  p->seq = next_seq_++;
  ++stats_.submitted;
  queue_.push_back(std::move(p));
  XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
}

std::future<Result<FeatureAttribution>> ExplanationService::Submit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_capacity_.wait(lock, [&] {
      return shutdown_ || queue_.size() < opts_.queue_capacity;
    });
    if (shutdown_) {
      ++stats_.rejected;
      lock.unlock();
      p->Finish(Status::Unavailable("ExplanationService is shut down"));
      return fut;
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

Result<std::future<Result<FeatureAttribution>>> ExplanationService::TrySubmit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService is shut down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService queue is full");
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

void ExplanationService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void ExplanationService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    paused_ = false;  // drain even if never resumed
  }
  cv_work_.notify_all();
  cv_capacity_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ExplanationServiceStats ExplanationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ExplanationService::RunDispatcher() {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;  // spurious wake while paused
      }
      // Leader: highest priority; ties go to the earliest submission
      // (the queue is in seq order, so the first max wins).
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i)
        if (queue_[i]->req.priority > queue_[best]->req.priority) best = i;
      const uint64_t key = queue_[best]->key;
      const size_t limit = opts_.coalesce ? opts_.max_batch : 1;
      batch.push_back(std::move(queue_[best]));
      queue_.erase(queue_.begin() + static_cast<long>(best));
      // Followers: every compatible pending request, in submission order.
      // kind + budget are compared directly so a (vanishingly unlikely)
      // fingerprint collision can never mix families in one sweep.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < limit;) {
        if ((*it)->key == key && (*it)->req.kind == batch[0]->req.kind &&
            (*it)->req.budget == batch[0]->req.budget) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    cv_capacity_.notify_all();
    ServeBatch(std::move(batch));
  }
}

Result<AttributionExplainer*> ExplanationService::GetExplainer(
    ExplainerKind kind, int budget, uint64_t key) {
  auto it = explainers_.find(key);
  if (it != explainers_.end()) return it->second.get();
  XAI_ASSIGN_OR_RETURN(
      std::unique_ptr<AttributionExplainer> ex,
      MakeExplainer(kind, model_, background_,
                    ApplyBudget(opts_.config, kind, budget)));
  AttributionExplainer* raw = ex.get();
  explainers_.emplace(key, std::move(ex));
  return raw;
}

void ExplanationService::ServeBatch(
    std::vector<std::unique_ptr<Pending>> batch) {
  XAI_OBS_SPAN("serve_batch");
  XAI_OBS_COUNT("serve.batches");
  XAI_OBS_COUNT_N("serve.batched_requests", batch.size());

  // Partition: requests whose deadline passed while queued are expired
  // without evaluation — cheaper than computing an answer nobody is
  // waiting for.
  const auto now = Clock::now();
  std::vector<std::unique_ptr<Pending>> expired;
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (now >= p->deadline) {
      XAI_OBS_COUNT("serve.expired");
      expired.push_back(std::move(p));
    } else {
      live.push_back(std::move(p));
    }
  }

  // Collapse bit-identical instances: each unique row is evaluated once
  // and its attribution fans out to every duplicate request — sound
  // because attributions are deterministic in (instance, key).
  std::map<std::vector<double>, size_t> index;
  std::vector<size_t> slot(live.size());
  std::vector<const std::vector<double>*> unique_rows;
  for (size_t i = 0; i < live.size(); ++i) {
    auto [it, inserted] =
        index.try_emplace(live[i]->req.instance, unique_rows.size());
    if (inserted) unique_rows.push_back(&live[i]->req.instance);
    slot[i] = it->second;
  }
  const uint64_t n_duplicates = live.size() - unique_rows.size();
  XAI_OBS_COUNT_N("serve.coalesced_duplicates", n_duplicates);

  // Publish stats BEFORE fulfilling any promise: a caller that observed
  // its future resolve must see this batch already reflected in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.expired += expired.size();
    stats_.completed += live.size();
    stats_.coalesced_duplicates += n_duplicates;
  }

  for (auto& p : expired)
    p->Finish(
        Status::DeadlineExceeded("deadline passed before evaluation started"));
  if (live.empty()) return;

  Matrix rows(unique_rows.size(), live[0]->req.instance.size());
  for (size_t i = 0; i < unique_rows.size(); ++i)
    rows.SetRow(i, *unique_rows[i]);

  Result<AttributionExplainer*> ex =
      GetExplainer(live[0]->req.kind, live[0]->req.budget, live[0]->key);
  if (!ex.ok()) {
    for (auto& p : live) p->Finish(ex.status());
    return;
  }
  Result<std::vector<FeatureAttribution>> results = (*ex)->ExplainBatch(rows);
  if (!results.ok()) {
    for (auto& p : live) p->Finish(results.status());
    return;
  }
  for (size_t i = 0; i < live.size(); ++i)
    live[i]->Finish(results.value()[slot[i]]);
}

}  // namespace xai
