#include "serve/service.h"

#include <algorithm>
#include <map>

#include "math/matrix.h"
#include "obs/audit.h"
#include "obs/obs.h"

namespace xai {

namespace {

using Clock = std::chrono::steady_clock;

/// Overlays a request's budget onto the family's sample / permutation
/// count. The returned config fully determines the attribution, so its
/// Fingerprint doubles as the coalescing key.
ExplainerConfig ApplyBudget(ExplainerConfig c, ExplainerKind kind,
                            int budget) {
  if (budget <= 0) return c;
  switch (kind) {
    case ExplainerKind::kTreeShap:
      break;  // exact — no sampling budget to override
    case ExplainerKind::kKernelShap:
      c.kernel_shap.num_samples = budget;
      break;
    case ExplainerKind::kLime:
      c.lime.num_samples = budget;
      break;
    case ExplainerKind::kMcShapley:
      c.mc_shapley.num_permutations = budget;
      break;
  }
  return c;
}

/// Folds the request arity into a config fingerprint — requests of
/// different width can never share a sweep's Matrix.
uint64_t MixArity(uint64_t fp, size_t arity) {
  return fp ^ (0x9e3779b97f4a7c15ULL * (arity + 1));
}

/// FNV-1a over a row's raw bytes, for the warm-history dedup set.
uint64_t HashRow(const std::vector<double>& row) {
  uint64_t h = 14695981039346656037ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(row.data());
  for (size_t i = 0; i < row.size() * sizeof(double); ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool IsShapleyFamily(ExplainerKind kind) {
  return kind == ExplainerKind::kKernelShap ||
         kind == ExplainerKind::kMcShapley;
}

}  // namespace

struct ExplanationService::Pending {
  ExplanationRequest req;
  std::promise<Result<ExplanationResponse>> promise;
  Callback cb;
  Clock::time_point submit_time;
  Clock::time_point deadline;  // time_point::max() when none
  uint64_t seq = 0;
  /// Full coalescing key: family fingerprint with the model version baked
  /// in, plus arity. Only requests captured on the same version coalesce.
  uint64_t key = 0;
  /// Version-agnostic family key (model_fingerprint zeroed) — indexes the
  /// shared-across-swaps coalition cache and warm history.
  uint64_t family_key = 0;
  /// The serving version captured at Submit. Holding it here is what
  /// guarantees the request is evaluated on the version it was admitted
  /// under, even if a swap flips the serving handle while it queues.
  ModelHandle handle;
  /// Filled in as the request moves through the pipeline; trace_id is
  /// assigned at Submit, queue_ms/sweep_ms/batch size by the dispatcher.
  ExplanationBreakdown breakdown;

  /// Fulfils promise then callback, recording end-to-end latency and
  /// closing the request's async trace span. Runs on the dispatcher
  /// thread (or the submitting thread for shutdown rejections).
  void Finish(Result<ExplanationResponse> result) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - submit_time)
                        .count();
    XAI_OBS_OBSERVE("serve.request_latency_us", us);
    if (result.ok()) {
      result.value().breakdown = breakdown;
      result.value().breakdown.total_ms = static_cast<double>(us) * 1e-3;
    }
    if (breakdown.trace_id != 0)
      obs::TraceAsyncEnd("serve.request", breakdown.trace_id);
    promise.set_value(result);
    if (cb) cb(result);
  }
};

ExplanationService::ExplanationService(ModelHandle model,
                                       const Dataset& background,
                                       ExplanationServiceOptions opts)
    : serving_(std::make_shared<const ModelHandle>(std::move(model))),
      background_(background),
      opts_(std::move(opts)),
      paused_(opts_.start_paused) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  stats_.model_version = serving_.load()->version();
  XAI_OBS_GAUGE_SET("serve.model_version", stats_.model_version);
  dispatcher_ = std::thread([this] { RunDispatcher(); });
}

ExplanationService::~ExplanationService() { Shutdown(); }

std::unique_ptr<ExplanationService::Pending> ExplanationService::MakePending(
    ExplanationRequest req, Callback cb) const {
  auto p = std::make_unique<Pending>();
  p->submit_time = Clock::now();
  p->deadline = req.timeout.count() > 0 ? p->submit_time + req.timeout
                                        : Clock::time_point::max();
  p->cb = std::move(cb);
  // Capture the serving version now: the request is evaluated against
  // exactly this handle no matter how many swaps land while it queues.
  p->handle = *serving_.load();
  ExplainerConfig cfg = ApplyBudget(opts_.config, req.kind, req.budget);
  cfg.model_fingerprint = 0;  // family key: any version
  p->family_key = MixArity(cfg.Fingerprint(req.kind), req.instance.size());
  cfg.model_fingerprint = p->handle.fingerprint();
  p->key = MixArity(cfg.Fingerprint(req.kind), req.instance.size());
  p->breakdown.model_version = p->handle.version();
  p->req = std::move(req);
  // Trace-context propagation starts here: the request's id is minted on
  // the submitting thread, its async span opens on this thread, and the
  // dispatcher re-installs the id around everything done on its behalf.
  p->breakdown.trace_id = obs::NewTraceId();
  if (p->breakdown.trace_id != 0) {
    obs::ScopedTraceContext ctx(
        obs::TraceContext{p->breakdown.trace_id, 0});
    obs::TraceAsyncBegin("serve.request", p->breakdown.trace_id);
    obs::TraceInstant("serve.submit",
                      static_cast<double>(p->breakdown.trace_id));
  }
  return p;
}

void ExplanationService::EnqueueLocked(std::unique_ptr<Pending> p) {
  p->seq = next_seq_++;
  ++stats_.submitted;
  queue_.push_back(std::move(p));
  XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
}

std::future<Result<ExplanationResponse>> ExplanationService::Submit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_capacity_.wait(lock, [&] {
      return shutdown_ || queue_.size() < opts_.queue_capacity;
    });
    if (shutdown_) {
      ++stats_.rejected;
      lock.unlock();
      p->Finish(Status::Unavailable("ExplanationService is shut down"));
      return fut;
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

Result<std::future<Result<ExplanationResponse>>> ExplanationService::TrySubmit(
    ExplanationRequest req, Callback cb) {
  auto p = MakePending(std::move(req), std::move(cb));
  auto fut = p->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService is shut down");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++stats_.rejected;
      return Status::Unavailable("ExplanationService queue is full");
    }
    EnqueueLocked(std::move(p));
  }
  cv_work_.notify_one();
  return fut;
}

void ExplanationService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void ExplanationService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    paused_ = false;  // drain even if never resumed
  }
  cv_work_.notify_all();
  cv_capacity_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ModelHandle ExplanationService::serving_model() const {
  return *serving_.load();
}

Result<ModelSwapReport> ExplanationService::SwapModel(
    ModelHandle next, ModelSwapOptions swap_opts) {
  if (!next.valid())
    return Status::InvalidArgument("SwapModel: invalid model handle");
  if (next.model().num_features() != 0 && background_.d() != 0 &&
      next.model().num_features() != background_.d())
    return Status::InvalidArgument(
        "SwapModel: incoming model expects " +
        std::to_string(next.model().num_features()) + " features, service " +
        "background has " + std::to_string(background_.d()));
  // One swap at a time; the dispatcher keeps serving the old version
  // throughout — we only take mu_ for short map snapshots/inserts.
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  const ModelHandle prev = *serving_.load();

  ModelSwapReport report;
  report.from = prev.VersionedName();
  report.to = next.VersionedName();
  obs::Stopwatch warm_timer;

  // Snapshot every coalescing family seen so far, with its recent rows.
  struct FamilySnapshot {
    uint64_t family_key = 0;
    ExplainerKind kind = ExplainerKind::kKernelShap;
    int budget = 0;
    size_t arity = 0;
    std::vector<std::vector<double>> rows;
  };
  std::vector<FamilySnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(families_.size());
    for (const auto& [fkey, hist] : families_) {
      FamilySnapshot fs;
      fs.family_key = fkey;
      fs.kind = hist.kind;
      fs.budget = hist.budget;
      fs.arity = hist.arity;
      const size_t take = std::min(swap_opts.warm_rows, hist.rows.size());
      fs.rows.assign(hist.rows.end() - static_cast<long>(take),
                     hist.rows.end());
      snapshot.push_back(std::move(fs));
    }
  }

  // Build (validating!) and warm the incoming version's explainer for
  // every family BEFORE the flip. A family the new model cannot serve —
  // treeshap over a non-tree model, say — rejects the whole swap here,
  // with the old version still serving and nothing mutated.
  std::vector<std::pair<uint64_t, ExplainerEntry>> built;
  built.reserve(snapshot.size());
  for (FamilySnapshot& fs : snapshot) {
    ExplainerConfig cfg = ApplyBudget(opts_.config, fs.kind, fs.budget);
    cfg.model_fingerprint = next.fingerprint();
    cfg.cache = FamilyCache(fs.kind, fs.family_key);
    const uint64_t key = MixArity(cfg.Fingerprint(fs.kind), fs.arity);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (explainers_.count(key)) continue;  // re-swap to a known version
    }
    auto ex = MakeExplainer(fs.kind, next, background_, cfg);
    if (!ex.ok())
      return Status::InvalidArgument(
          "SwapModel: incoming model " + next.VersionedName() +
          " cannot serve family '" + ExplainerKindName(fs.kind) +
          "': " + ex.status().message());
    if (!fs.rows.empty()) {
      Matrix rows(fs.rows.size(), fs.arity);
      for (size_t i = 0; i < fs.rows.size(); ++i) rows.SetRow(i, fs.rows[i]);
      // Warming replay: populates the family's shared coalition cache
      // with new-version entries (distinct keyspace — the eval engine's
      // context fingerprint covers the model identity) while the old
      // version still answers live traffic. Attribution output discarded.
      Result<std::vector<FeatureAttribution>> warmed =
          ex.value()->ExplainBatch(rows);
      if (!warmed.ok())
        return Status::InvalidArgument(
            "SwapModel: warming failed for family '" +
            std::string(ExplainerKindName(fs.kind)) +
            "': " + warmed.status().message());
      report.warmed_rows += fs.rows.size();
    }
    ExplainerEntry entry;
    entry.explainer = std::move(ex).value();
    entry.handle = next;
    built.emplace_back(key, std::move(entry));
    ++report.warmed_families;
  }

  // Publish the pre-built explainers, then flip. Requests captured before
  // the store keep their old handle (and old-version explainers, which
  // stay in explainers_ for as long as they might be needed); requests
  // captured after see only `next`.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, entry] : built)
      explainers_.emplace(key, std::move(entry));
  }
  serving_.store(std::make_shared<const ModelHandle>(next));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.swaps;
    stats_.model_version = next.version();
  }
  XAI_OBS_COUNT("serve.swaps");
  XAI_OBS_GAUGE_SET("serve.model_version", next.version());
  report.warm_ms = warm_timer.ElapsedUs() * 1e-3;
  return report;
}

ExplanationServiceStats ExplanationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExplanationServiceStats out = stats_;
  out.queue_depth = queue_.size();
  for (const auto& [key, cache] : caches_) {
    const EvalCacheStats cs = cache->stats();
    out.cache_hits += cs.hits;
    out.cache_misses += cs.misses;
    out.cache_evictions += cs.evictions;
    out.cache_entries += cs.entries;
  }
  return out;
}

void ExplanationService::RunDispatcher() {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;  // spurious wake while paused
      }
      // Leader: highest priority; ties go to the earliest submission
      // (the queue is in seq order, so the first max wins).
      size_t best = 0;
      for (size_t i = 1; i < queue_.size(); ++i)
        if (queue_[i]->req.priority > queue_[best]->req.priority) best = i;
      const uint64_t key = queue_[best]->key;
      const size_t limit = opts_.coalesce ? opts_.max_batch : 1;
      batch.push_back(std::move(queue_[best]));
      queue_.erase(queue_.begin() + static_cast<long>(best));
      // Followers: every compatible pending request, in submission order.
      // kind + budget are compared directly so a (vanishingly unlikely)
      // fingerprint collision can never mix families in one sweep.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < limit;) {
        if ((*it)->key == key && (*it)->req.kind == batch[0]->req.kind &&
            (*it)->req.budget == batch[0]->req.budget) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      XAI_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    cv_capacity_.notify_all();
    ServeBatch(std::move(batch));
  }
}

std::shared_ptr<CoalitionValueCache> ExplanationService::FamilyCache(
    ExplainerKind kind, uint64_t family_key) {
  // One memo cache per coalescing *family*, shared by every model version
  // the family serves: instances repeated across batches (and across a
  // hot-swap's warming pass) hit instead of re-evaluating the model. Only
  // the Shapley families route coalition values through the engine;
  // building caches for the others would just pad the stats with dead
  // capacity.
  if (opts_.cache_size == 0 || !IsShapleyFamily(kind)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = caches_.find(family_key);
  if (it != caches_.end()) return it->second;
  auto cache = std::make_shared<CoalitionValueCache>(opts_.cache_size);
  caches_.emplace(family_key, cache);
  return cache;
}

Result<AttributionExplainer*> ExplanationService::GetExplainer(
    const Pending& leader) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = explainers_.find(leader.key);
    if (it != explainers_.end()) return it->second.explainer.get();
  }
  const ExplainerKind kind = leader.req.kind;
  ExplainerConfig cfg = ApplyBudget(opts_.config, kind, leader.req.budget);
  cfg.model_fingerprint = leader.handle.fingerprint();
  cfg.cache = FamilyCache(kind, leader.family_key);
  XAI_ASSIGN_OR_RETURN(std::unique_ptr<AttributionExplainer> ex,
                       MakeExplainer(kind, leader.handle, background_, cfg));
  AttributionExplainer* raw = ex.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      explainers_.try_emplace(leader.key);
  if (inserted) {
    it->second.explainer = std::move(ex);
    it->second.handle = leader.handle;
  }
  return inserted ? raw : it->second.explainer.get();
}

void ExplanationService::FinishError(
    std::vector<std::unique_ptr<Pending>>& batch, const Status& status) {
  for (auto& p : batch) p->Finish(status);
}

void ExplanationService::ServeBatch(
    std::vector<std::unique_ptr<Pending>> batch) {
  XAI_OBS_COUNT("serve.batches");
  XAI_OBS_COUNT_N("serve.batched_requests", batch.size());

  // Partition: requests whose deadline passed while queued are expired
  // without evaluation — cheaper than computing an answer nobody is
  // waiting for.
  const auto now = Clock::now();
  std::vector<std::unique_ptr<Pending>> expired;
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (now >= p->deadline) {
      XAI_OBS_COUNT("serve.expired");
      expired.push_back(std::move(p));
    } else {
      live.push_back(std::move(p));
    }
  }

  // Queue wait ends now, for every live request drafted into this batch.
  for (auto& p : live) {
    const auto wait_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - p->submit_time)
            .count();
    p->breakdown.queue_ms = static_cast<double>(wait_us) * 1e-3;
    p->breakdown.coalesce_batch_size = live.size();
    XAI_OBS_OBSERVE("serve.queue_wait_us", wait_us);
    if (p->breakdown.trace_id != 0) {
      obs::ScopedTraceContext ctx(
          obs::TraceContext{p->breakdown.trace_id, 0});
      obs::TraceInstant("serve.dequeue", p->breakdown.queue_ms);
    }
  }

  // Collapse bit-identical instances: each unique row is evaluated once
  // and its attribution fans out to every duplicate request — sound
  // because attributions are deterministic in (instance, key).
  std::map<std::vector<double>, size_t> index;
  std::vector<size_t> slot(live.size());
  std::vector<const std::vector<double>*> unique_rows;
  for (size_t i = 0; i < live.size(); ++i) {
    auto [it, inserted] =
        index.try_emplace(live[i]->req.instance, unique_rows.size());
    if (inserted) unique_rows.push_back(&live[i]->req.instance);
    slot[i] = it->second;
  }
  const uint64_t n_duplicates = live.size() - unique_rows.size();
  XAI_OBS_COUNT_N("serve.coalesced_duplicates", n_duplicates);

  // Publish stats BEFORE fulfilling any promise: a caller that observed
  // its future resolve must see this batch already reflected in stats().
  // The same critical section records this batch's unique rows into the
  // family's warm history — the instances SwapModel replays against an
  // incoming model version.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.batched_requests += batch.size();
    stats_.expired += expired.size();
    stats_.completed += live.size();
    stats_.coalesced_duplicates += n_duplicates;
    if (!live.empty()) {
      FamilyHistory& hist = families_[live[0]->family_key];
      hist.kind = live[0]->req.kind;
      hist.budget = live[0]->req.budget;
      hist.arity = live[0]->req.instance.size();
      for (const std::vector<double>* row : unique_rows) {
        if (!hist.seen.insert(HashRow(*row)).second) continue;
        if (hist.rows.size() < kHistoryCap) {
          hist.rows.push_back(*row);
        } else {
          // Ring overwrite; drop the evictee's hash so it can re-enter.
          hist.seen.erase(HashRow(hist.rows[hist.next]));
          hist.rows[hist.next] = *row;
          hist.next = (hist.next + 1) % kHistoryCap;
        }
      }
    }
  }

  FinishError(expired, Status::DeadlineExceeded(
                           "deadline passed before evaluation started"));
  if (live.empty()) return;

  Matrix rows(unique_rows.size(), live[0]->req.instance.size());
  for (size_t i = 0; i < unique_rows.size(); ++i)
    rows.SetRow(i, *unique_rows[i]);

  // The sweep runs under the leader's trace context: the serve_batch span
  // and every ParallelFor chunk inside the explainer carry its trace_id.
  // Coalesced riders link themselves to the leader with a ride_batch
  // instant so their timelines point at the sweep that answered them.
  const uint64_t leader_trace = live[0]->breakdown.trace_id;
  obs::ScopedTraceContext sweep_ctx(obs::TraceContext{leader_trace, 0});
  XAI_OBS_SPAN("serve_batch");
  for (auto& p : live) {
    if (p->breakdown.trace_id != 0 && p->breakdown.trace_id != leader_trace) {
      obs::ScopedTraceContext ctx(obs::TraceContext{
          p->breakdown.trace_id, obs::CurrentTraceContext().span_id});
      obs::TraceInstant("serve.ride_batch",
                        static_cast<double>(leader_trace));
    }
  }

  Result<AttributionExplainer*> ex = GetExplainer(*live[0]);
  if (!ex.ok()) {
    FinishError(live, ex.status());
    return;
  }
  obs::Stopwatch sweep;
  Result<std::vector<FeatureAttribution>> results = (*ex)->ExplainBatch(rows);
  const double sweep_us = sweep.ElapsedUs();
  // Request-weighted (one observation per request, not per batch), so the
  // serve.sweep_us percentiles answer "what sweep time did a request see".
  for (auto& p : live) {
    p->breakdown.sweep_ms = sweep_us * 1e-3;
    XAI_OBS_OBSERVE("serve.sweep_us", sweep_us);
  }
  if (!results.ok()) {
    FinishError(live, results.status());
    return;
  }
  for (size_t i = 0; i < live.size(); ++i) {
    ExplanationResponse resp;
    resp.attribution = results.value()[slot[i]];
    // Monitoring hook: observers see the response (attribution + the
    // breakdown as known so far) before the caller's future resolves, so
    // a drift verdict can never lag the response that caused it.
    if (opts_.response_observer) {
      resp.breakdown = live[i]->breakdown;
      opts_.response_observer(live[i]->req, resp);
    }
    live[i]->Finish(std::move(resp));
    // Provenance: ledger the served response after its promise resolves.
    // The staged append fills a ring slot in place (no allocation, no
    // syscall — the ledger's drain thread does all I/O), so auditing adds
    // nothing observable to request latency; a full ring drops and counts.
    if (opts_.audit) {
      if (obs::AuditRecord* rec = opts_.audit->StageAppend()) {
        const Pending& p = *live[i];
        const FeatureAttribution& fa = results.value()[slot[i]];
        rec->trace_id = p.breakdown.trace_id;
        rec->row_hash = HashRow(p.req.instance);
        rec->model_fingerprint = p.handle.fingerprint();
        rec->config_fingerprint = p.key;
        rec->model_name = p.handle.name();
        rec->model_version = p.handle.version();
        rec->kind = static_cast<uint8_t>(p.req.kind);
        rec->budget = p.req.budget;
        rec->queue_ms = static_cast<float>(p.breakdown.queue_ms);
        rec->sweep_ms = static_cast<float>(p.breakdown.sweep_ms);
        rec->total_ms = static_cast<float>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - p.submit_time)
                .count() *
            1e-3);
        rec->batch_size =
            static_cast<uint32_t>(p.breakdown.coalesce_batch_size);
        rec->instance = p.req.instance;
        rec->base_value = fa.base_value;
        rec->prediction = fa.prediction;
        obs::TopKAttributionsInto(fa.values, opts_.audit->options().top_k,
                                  &rec->top_attr);
        opts_.audit->CommitAppend();
      }
    }
  }
}

}  // namespace xai
