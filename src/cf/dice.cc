#include "cf/dice.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace xai {
namespace {

/// Random candidate: perturb a random subset of actionable features with
/// values observed in the data (plausible marginals).
std::vector<double> RandomCandidate(const FeatureSpace& space,
                                    const std::vector<double>& instance,
                                    Rng* rng) {
  const size_t d = instance.size();
  std::vector<size_t> actionable;
  for (size_t j = 0; j < d; ++j)
    if (space.actionable[j]) actionable.push_back(j);
  std::vector<double> x = instance;
  if (actionable.empty()) return x;
  const size_t k =
      1 + static_cast<size_t>(rng->NextInt(actionable.size()));
  std::vector<size_t> chosen =
      rng->SampleWithoutReplacement(actionable.size(), k);
  for (size_t c : chosen) {
    const size_t j = actionable[c];
    const auto& vals = space.observed[j];
    x[j] = vals[rng->NextInt(vals.size())];
  }
  return x;
}

void Sparsify(const Model& model, const FeatureSpace& space,
              const std::vector<double>& instance, int desired_class,
              std::vector<double>* candidate) {
  // Try reverting changed features one by one, cheapest-to-keep first
  // (largest distance contribution reverted first).
  const size_t d = instance.size();
  std::vector<std::pair<double, size_t>> changed;
  for (size_t j = 0; j < d; ++j) {
    if (std::fabs((*candidate)[j] - instance[j]) > 1e-9) {
      const double contrib =
          space.is_numeric[j]
              ? std::fabs((*candidate)[j] - instance[j]) / space.std[j]
              : 1.0;
      changed.emplace_back(-contrib, j);
    }
  }
  std::sort(changed.begin(), changed.end());
  for (const auto& [neg_contrib, j] : changed) {
    XAI_OBS_COUNT("cf.dice.sparsify_evals");
    const double saved = (*candidate)[j];
    (*candidate)[j] = instance[j];
    const double p = model.Predict(*candidate);
    const bool still_valid = desired_class == 1 ? p >= 0.5 : p < 0.5;
    if (!still_valid) (*candidate)[j] = saved;
  }
}

}  // namespace

Result<CounterfactualSet> DiceCounterfactuals(
    const Model& model, const FeatureSpace& space,
    const std::vector<double>& instance, int desired_class,
    const DiceOptions& opts) {
  if (instance.size() != space.num_features())
    return Status::InvalidArgument("Dice: instance arity mismatch");
  XAI_OBS_SPAN("cf_dice");
  Rng rng(opts.seed);

  // Stage 1: collect valid (and, if requested, on-manifold) candidates.
  const double manifold_cutoff =
      opts.manifold_quantile > 0.0
          ? ManifoldDistanceQuantile(space, opts.manifold_quantile)
          : 0.0;
  std::vector<Counterfactual> pool;
  for (int i = 0; i < opts.num_candidates; ++i) {
    XAI_OBS_COUNT("cf.dice.candidates");
    std::vector<double> x = RandomCandidate(space, instance, &rng);
    Counterfactual cf =
        MakeCounterfactual(model, space, instance, std::move(x),
                           desired_class);
    if (!cf.valid) continue;
    if (cf.num_changed == 0) continue;  // The instance itself is not a CF.
    if (opts.manifold_quantile > 0.0 &&
        ManifoldKnnDistance(space, cf.instance) > manifold_cutoff)
      continue;
    pool.push_back(std::move(cf));
  }
  if (pool.empty())
    return Status::NotFound("Dice: no valid counterfactual found");

  // Keep the closest pool_size candidates.
  std::sort(pool.begin(), pool.end(),
            [](const Counterfactual& a, const Counterfactual& b) {
              return a.distance < b.distance;
            });
  if (pool.size() > static_cast<size_t>(opts.pool_size))
    pool.resize(static_cast<size_t>(opts.pool_size));

  // Stage 2: sparsify pool members. When the instance itself already has
  // the desired class, sparsification can revert every change; drop such
  // degenerate members (they are not counterfactuals).
  if (opts.sparsify) {
    for (Counterfactual& cf : pool) {
      Sparsify(model, space, instance, desired_class, &cf.instance);
      cf = MakeCounterfactual(model, space, instance,
                              std::move(cf.instance), desired_class);
    }
    pool.erase(std::remove_if(pool.begin(), pool.end(),
                              [](const Counterfactual& cf) {
                                return cf.num_changed == 0;
                              }),
               pool.end());
    if (pool.empty())
      return Status::NotFound(
          "Dice: instance already satisfies the desired class");
  }

  // Stage 3: maximal-marginal-relevance greedy selection for diversity.
  CounterfactualSet out;
  std::vector<bool> taken(pool.size(), false);
  const int want =
      std::min<int>(opts.num_counterfactuals, static_cast<int>(pool.size()));
  for (int pick = 0; pick < want; ++pick) {
    double best_score = -1e300;
    int best = -1;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      double min_div = 0.0;
      if (!out.counterfactuals.empty()) {
        min_div = 1e300;
        for (const Counterfactual& sel : out.counterfactuals)
          min_div = std::min(min_div,
                             CounterfactualDistance(space, pool[i].instance,
                                                    sel.instance));
      }
      const double score =
          -pool[i].distance + opts.diversity_weight * min_div;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    taken[static_cast<size_t>(best)] = true;
    out.counterfactuals.push_back(pool[static_cast<size_t>(best)]);
  }
  out.diversity = SetDiversity(space, out.counterfactuals);
  return out;
}

}  // namespace xai
