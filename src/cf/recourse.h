#ifndef XAIDB_CF_RECOURSE_H_
#define XAIDB_CF_RECOURSE_H_

#include <string>
#include <vector>

#include "cf/cf_common.h"
#include "common/result.h"
#include "model/logistic_regression.h"

namespace xai {

/// One suggested change of a recourse action.
struct RecourseStep {
  size_t feature;
  double from;
  double to;
};

/// An actionable recourse recommendation (Ustun, Spangher & Liu 2019),
/// tutorial Section 2.1.4: the cheapest set of changes to *actionable*
/// features that flips a linear classifier's decision to positive.
struct RecourseAction {
  std::vector<RecourseStep> steps;
  double cost = 0.0;          // Sum of per-feature |delta|/std * unit cost.
  double new_probability = 0.0;
  bool feasible = false;

  std::string ToString(const Schema& schema) const;
};

struct RecourseOptions {
  /// Target probability to reach (strictly above the 0.5 boundary by
  /// default so the flip is robust).
  double target_probability = 0.55;
  /// Per-feature unit costs in normalized units; empty = all 1.
  std::vector<double> unit_costs;
};

/// Computes minimal-cost recourse for a logistic model by greedy
/// coordinate moves: repeatedly push the actionable feature with the best
/// margin-gain-per-cost ratio toward its bound until the target
/// probability is reached (optimal for L1 costs with box constraints on a
/// linear margin). Fails (feasible = false) if the bounds cannot flip the
/// decision.
Result<RecourseAction> LinearRecourse(const LogisticRegression& model,
                                      const FeatureSpace& space,
                                      const std::vector<double>& instance,
                                      const RecourseOptions& opts = RecourseOptions());

}  // namespace xai

#endif  // XAIDB_CF_RECOURSE_H_
