#ifndef XAIDB_CF_CF_COMMON_H_
#define XAIDB_CF_CF_COMMON_H_

#include <vector>

#include "core/explanation.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "model/model.h"

namespace xai {

/// Per-feature search space and actionability for counterfactual search,
/// derived from a reference dataset. The tutorial (2.1.4, Section 3)
/// stresses that counterfactuals must be *plausible* (stay on the data
/// manifold) and *feasible* (respect real-world mutability) — these
/// constraints encode feasibility; plausibility is handled by sampling
/// observed values.
struct FeatureSpace {
  std::vector<double> min_value;
  std::vector<double> max_value;
  std::vector<double> std;            // Distance normalization (numeric).
  std::vector<bool> is_numeric;
  std::vector<bool> actionable;       // Features the user can change.
  /// Observed values per feature, for plausibility-preserving sampling.
  std::vector<std::vector<double>> observed;
  /// A subsample of full reference rows (up to 500) for joint-distribution
  /// ("data manifold") plausibility checks — per-column sampling keeps
  /// marginals realistic but can produce impossible combinations, the
  /// failure mode the tutorial flags (Section 2.1.4: counterfactuals
  /// "sometimes provide unrealistic and impossible instances").
  Matrix sample_rows;

  static FeatureSpace FromDataset(const Dataset& ds);

  /// Marks a feature immutable (e.g. gender, age in recourse settings).
  void SetImmutable(size_t feature) { actionable[feature] = false; }

  size_t num_features() const { return min_value.size(); }
};

/// Normalized L1 distance used for proximity: |dx|/std for numeric
/// features, 1.0 per changed categorical feature.
double CounterfactualDistance(const FeatureSpace& space,
                              const std::vector<double>& a,
                              const std::vector<double>& b);

/// Number of coordinates that differ (sparsity).
size_t NumChanged(const std::vector<double>& a, const std::vector<double>& b);

/// Builds a Counterfactual record (validity = crossed 0.5 in the desired
/// direction: desired_class 1 means we want prediction >= 0.5).
Counterfactual MakeCounterfactual(const Model& model,
                                  const FeatureSpace& space,
                                  const std::vector<double>& original,
                                  std::vector<double> candidate,
                                  int desired_class);

/// Mean pairwise distance among a set of counterfactuals (DiCE diversity).
double SetDiversity(const FeatureSpace& space,
                    const std::vector<Counterfactual>& cfs);

/// Mean normalized-L1 distance from x to its k nearest sample rows — a
/// data-manifold proximity score (low = plausible joint combination).
double ManifoldKnnDistance(const FeatureSpace& space,
                           const std::vector<double>& x, int k = 5);

/// The q-quantile of the sample rows' own leave-one-out manifold distance:
/// the natural rejection threshold ("as plausible as real data").
double ManifoldDistanceQuantile(const FeatureSpace& space, double q,
                                int k = 5);

}  // namespace xai

#endif  // XAIDB_CF_CF_COMMON_H_
