#ifndef XAIDB_CF_GECO_H_
#define XAIDB_CF_GECO_H_

#include <functional>
#include <vector>

#include "cf/cf_common.h"
#include "common/result.h"
#include "common/rng.h"

namespace xai {

/// A PLAF-style plausibility/feasibility constraint (GeCo's constraint
/// language, Schleich et al. 2021): a predicate over (original, candidate)
/// pairs that every counterfactual must satisfy.
struct PlafConstraint {
  std::function<bool(const std::vector<double>& original,
                     const std::vector<double>& candidate)>
      predicate;
  std::string description;

  /// feature may not change.
  static PlafConstraint Immutable(size_t feature, std::string name);
  /// feature may only increase (e.g. age, education).
  static PlafConstraint MonotoneIncrease(size_t feature, std::string name);
  /// feature may only decrease.
  static PlafConstraint MonotoneDecrease(size_t feature, std::string name);
  /// if `feature` changes, `implied` must also change (dependency rule).
  static PlafConstraint ChangeImplies(size_t feature, size_t implied,
                                      std::string name);
};

struct GecoOptions {
  int population = 100;
  int generations = 30;
  /// Fraction of population kept as elite each generation.
  double elite_fraction = 0.3;
  /// Per-feature mutation probability.
  double mutation_rate = 0.3;
  int num_counterfactuals = 3;
  uint64_t seed = 31337;
};

/// GeCo-style genetic counterfactual search with PLAF constraints
/// (tutorial Section 3, "Efficiency of Feature-based Explanations"):
/// maintains a population of candidates mutated with *observed* feature
/// values, discards constraint violators, and selects by lexicographic
/// fitness (validity, then distance, then sparsity). Candidates start from
/// few-feature changes, so returned counterfactuals tend to be sparse —
/// GeCo's "quality counterfactuals in real time" design point.
Result<CounterfactualSet> GecoCounterfactuals(
    const Model& model, const FeatureSpace& space,
    const std::vector<double>& instance, int desired_class,
    const std::vector<PlafConstraint>& constraints,
    const GecoOptions& opts = GecoOptions());

}  // namespace xai

#endif  // XAIDB_CF_GECO_H_
