#include "cf/geco.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace xai {

PlafConstraint PlafConstraint::Immutable(size_t feature, std::string name) {
  return {[feature](const std::vector<double>& o,
                    const std::vector<double>& c) {
            return std::fabs(o[feature] - c[feature]) <= 1e-9;
          },
          "immutable(" + name + ")"};
}

PlafConstraint PlafConstraint::MonotoneIncrease(size_t feature,
                                                std::string name) {
  return {[feature](const std::vector<double>& o,
                    const std::vector<double>& c) {
            return c[feature] >= o[feature] - 1e-9;
          },
          "monotone_increase(" + name + ")"};
}

PlafConstraint PlafConstraint::MonotoneDecrease(size_t feature,
                                                std::string name) {
  return {[feature](const std::vector<double>& o,
                    const std::vector<double>& c) {
            return c[feature] <= o[feature] + 1e-9;
          },
          "monotone_decrease(" + name + ")"};
}

PlafConstraint PlafConstraint::ChangeImplies(size_t feature, size_t implied,
                                             std::string name) {
  return {[feature, implied](const std::vector<double>& o,
                             const std::vector<double>& c) {
            const bool changed = std::fabs(o[feature] - c[feature]) > 1e-9;
            const bool implied_changed =
                std::fabs(o[implied] - c[implied]) > 1e-9;
            return !changed || implied_changed;
          },
          "change_implies(" + name + ")"};
}

namespace {

bool SatisfiesAll(const std::vector<PlafConstraint>& constraints,
                  const std::vector<double>& original,
                  const std::vector<double>& candidate) {
  for (const PlafConstraint& c : constraints)
    if (!c.predicate(original, candidate)) return false;
  return true;
}

/// Lexicographic fitness: valid first, then fewer changes, then distance.
struct Fitness {
  bool valid;
  double gap;       // |0.5 - prediction| distance to the boundary if invalid.
  size_t changed;
  double distance;

  bool BetterThan(const Fitness& o) const {
    if (valid != o.valid) return valid;
    if (!valid) return gap < o.gap;
    if (changed != o.changed) return changed < o.changed;
    return distance < o.distance;
  }
};

Fitness Evaluate(const Model& model, const FeatureSpace& space,
                 const std::vector<double>& instance, int desired_class,
                 const std::vector<double>& candidate) {
  XAI_OBS_COUNT("cf.geco.evaluations");
  const double p = model.Predict(candidate);
  Fitness f;
  f.valid = desired_class == 1 ? p >= 0.5 : p < 0.5;
  f.gap = desired_class == 1 ? std::max(0.0, 0.5 - p)
                             : std::max(0.0, p - 0.5);
  f.changed = NumChanged(instance, candidate);
  f.distance = CounterfactualDistance(space, instance, candidate);
  return f;
}

void Mutate(const FeatureSpace& space, const GecoOptions& opts,
            std::vector<double>* x, Rng* rng) {
  for (size_t j = 0; j < x->size(); ++j) {
    if (!space.actionable[j]) continue;
    if (!rng->Bernoulli(opts.mutation_rate)) continue;
    const auto& vals = space.observed[j];
    (*x)[j] = vals[rng->NextInt(vals.size())];
  }
}

std::vector<double> Crossover(const std::vector<double>& a,
                              const std::vector<double>& b, Rng* rng) {
  std::vector<double> c(a.size());
  for (size_t j = 0; j < a.size(); ++j) c[j] = rng->Bernoulli(0.5) ? a[j] : b[j];
  return c;
}

}  // namespace

Result<CounterfactualSet> GecoCounterfactuals(
    const Model& model, const FeatureSpace& space,
    const std::vector<double>& instance, int desired_class,
    const std::vector<PlafConstraint>& constraints, const GecoOptions& opts) {
  if (instance.size() != space.num_features())
    return Status::InvalidArgument("Geco: instance arity mismatch");
  XAI_OBS_SPAN("cf_geco");
  Rng rng(opts.seed);

  struct Member {
    std::vector<double> x;
    Fitness fit;
  };
  auto make_member = [&](std::vector<double> x) {
    Member m;
    m.fit = Evaluate(model, space, instance, desired_class, x);
    m.x = std::move(x);
    return m;
  };

  // Initial population: single-feature changes (GeCo grows change sets
  // lazily from small to large).
  std::vector<Member> pop;
  pop.reserve(static_cast<size_t>(opts.population));
  int guard = 0;
  while (pop.size() < static_cast<size_t>(opts.population) &&
         guard < opts.population * 50) {
    ++guard;
    std::vector<double> x = instance;
    const size_t j = static_cast<size_t>(rng.NextInt(instance.size()));
    if (!space.actionable[j]) continue;
    const auto& vals = space.observed[j];
    x[j] = vals[rng.NextInt(vals.size())];
    if (!SatisfiesAll(constraints, instance, x)) continue;
    pop.push_back(make_member(std::move(x)));
  }
  if (pop.empty())
    return Status::NotFound("Geco: constraints leave no candidates");

  auto by_fitness = [](const Member& a, const Member& b) {
    return a.fit.BetterThan(b.fit);
  };

  for (int gen = 0; gen < opts.generations; ++gen) {
    XAI_OBS_COUNT("cf.geco.generations");
    std::sort(pop.begin(), pop.end(), by_fitness);
    const size_t elite = std::max<size_t>(
        2, static_cast<size_t>(opts.elite_fraction *
                               static_cast<double>(pop.size())));
    std::vector<Member> next(pop.begin(),
                             pop.begin() + static_cast<long>(std::min(
                                               elite, pop.size())));
    while (next.size() < static_cast<size_t>(opts.population)) {
      const Member& a = pop[rng.NextInt(std::min(elite, pop.size()))];
      const Member& b = pop[rng.NextInt(std::min(elite, pop.size()))];
      std::vector<double> child = Crossover(a.x, b.x, &rng);
      Mutate(space, opts, &child, &rng);
      if (!SatisfiesAll(constraints, instance, child)) continue;
      next.push_back(make_member(std::move(child)));
    }
    pop = std::move(next);
  }
  std::sort(pop.begin(), pop.end(), by_fitness);

  CounterfactualSet out;
  for (const Member& m : pop) {
    if (!m.fit.valid) continue;
    if (m.fit.changed == 0) continue;  // The instance itself is not a CF.
    // Skip near-duplicates of already selected counterfactuals.
    bool dup = false;
    for (const Counterfactual& sel : out.counterfactuals)
      if (CounterfactualDistance(space, sel.instance, m.x) < 1e-9) dup = true;
    if (dup) continue;
    out.counterfactuals.push_back(
        MakeCounterfactual(model, space, instance, m.x, desired_class));
    if (out.counterfactuals.size() ==
        static_cast<size_t>(opts.num_counterfactuals))
      break;
  }
  if (out.counterfactuals.empty())
    return Status::NotFound("Geco: no valid counterfactual found");
  out.diversity = SetDiversity(space, out.counterfactuals);
  return out;
}

}  // namespace xai
