#include "cf/cf_common.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"

namespace xai {

FeatureSpace FeatureSpace::FromDataset(const Dataset& ds) {
  FeatureSpace s;
  const size_t d = ds.d();
  s.min_value.resize(d);
  s.max_value.resize(d);
  s.std.resize(d);
  s.is_numeric.resize(d);
  s.actionable.assign(d, true);
  s.observed.resize(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col = ds.x().Col(j);
    s.min_value[j] = *std::min_element(col.begin(), col.end());
    s.max_value[j] = *std::max_element(col.begin(), col.end());
    s.std[j] = std::max(StdDev(col), 1e-9);
    s.is_numeric[j] = ds.schema().feature(j).is_numeric();
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    s.observed[j] = std::move(col);
  }
  const size_t keep = std::min<size_t>(ds.n(), 500);
  const size_t stride = std::max<size_t>(1, ds.n() / keep);
  for (size_t i = 0; i < ds.n(); i += stride)
    s.sample_rows.AppendRow(ds.row(i));
  return s;
}

double CounterfactualDistance(const FeatureSpace& space,
                              const std::vector<double>& a,
                              const std::vector<double>& b) {
  double dist = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    if (space.is_numeric[j]) {
      dist += std::fabs(a[j] - b[j]) / space.std[j];
    } else if (std::lround(a[j]) != std::lround(b[j])) {
      dist += 1.0;
    }
  }
  return dist;
}

size_t NumChanged(const std::vector<double>& a,
                  const std::vector<double>& b) {
  size_t c = 0;
  for (size_t j = 0; j < a.size(); ++j)
    if (std::fabs(a[j] - b[j]) > 1e-9) ++c;
  return c;
}

Counterfactual MakeCounterfactual(const Model& model,
                                  const FeatureSpace& space,
                                  const std::vector<double>& original,
                                  std::vector<double> candidate,
                                  int desired_class) {
  Counterfactual cf;
  cf.prediction = model.Predict(candidate);
  cf.valid = desired_class == 1 ? cf.prediction >= 0.5 : cf.prediction < 0.5;
  cf.num_changed = NumChanged(original, candidate);
  cf.distance = CounterfactualDistance(space, original, candidate);
  cf.instance = std::move(candidate);
  return cf;
}

double ManifoldKnnDistance(const FeatureSpace& space,
                           const std::vector<double>& x, int k) {
  const size_t n = space.sample_rows.rows();
  if (n == 0) return 0.0;
  std::vector<double> dists(n);
  for (size_t i = 0; i < n; ++i)
    dists[i] = CounterfactualDistance(space, x, space.sample_rows.Row(i));
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n);
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(kk),
                    dists.end());
  double total = 0.0;
  for (size_t i = 0; i < kk; ++i) total += dists[i];
  return total / static_cast<double>(kk);
}

double ManifoldDistanceQuantile(const FeatureSpace& space, double q, int k) {
  const size_t n = space.sample_rows.rows();
  if (n < 2) return 0.0;
  std::vector<double> self_dists;
  self_dists.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Leave-one-out: distance to k nearest *other* rows.
    std::vector<double> dists;
    dists.reserve(n - 1);
    const std::vector<double> xi = space.sample_rows.Row(i);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(
          CounterfactualDistance(space, xi, space.sample_rows.Row(j)));
    }
    const size_t kk = std::min<size_t>(static_cast<size_t>(k), dists.size());
    std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(kk),
                      dists.end());
    double total = 0.0;
    for (size_t d = 0; d < kk; ++d) total += dists[d];
    self_dists.push_back(total / static_cast<double>(kk));
  }
  std::sort(self_dists.begin(), self_dists.end());
  const double pos =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(self_dists.size() - 1);
  return self_dists[static_cast<size_t>(pos)];
}

double SetDiversity(const FeatureSpace& space,
                    const std::vector<Counterfactual>& cfs) {
  if (cfs.size() < 2) return 0.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < cfs.size(); ++i) {
    for (size_t j = i + 1; j < cfs.size(); ++j) {
      total += CounterfactualDistance(space, cfs[i].instance,
                                      cfs[j].instance);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace xai
