#ifndef XAIDB_CF_DICE_H_
#define XAIDB_CF_DICE_H_

#include <vector>

#include "cf/cf_common.h"
#include "common/result.h"
#include "common/rng.h"

namespace xai {

struct DiceOptions {
  /// How many diverse counterfactuals to return.
  int num_counterfactuals = 4;
  /// Random candidates generated before diverse selection.
  int num_candidates = 2000;
  /// Candidate pool kept for the diversity-aware greedy selection.
  int pool_size = 50;
  /// Trade-off in greedy selection: score = -distance + diversity_weight *
  /// (min distance to already-selected counterfactuals).
  double diversity_weight = 0.5;
  /// Post-processing: greedily revert changed features that are not needed
  /// to keep validity (sparsity enhancement, as in the DiCE paper).
  bool sparsify = true;
  /// When > 0, reject candidates whose k-NN distance to the data exceeds
  /// the given quantile of the data's own k-NN distances — constrain the
  /// counterfactuals to the data manifold (the plausibility fix the
  /// tutorial cites for "unrealistic and impossible" counterfactuals).
  /// 0 disables the check. Typical value: 0.95.
  double manifold_quantile = 0.0;
  uint64_t seed = 2023;
};

/// DiCE-style diverse counterfactual explanations (Mothilal, Sharma & Tan
/// 2020), tutorial Section 2.1.4: returns a *set* of valid, proximate and
/// mutually diverse counterfactuals so the user sees several distinct paths
/// to the desired outcome. Search is gradient-free: plausibility-preserving
/// random candidates (feature values drawn from observed data) followed by
/// maximal-marginal-relevance selection and greedy sparsification.
Result<CounterfactualSet> DiceCounterfactuals(
    const Model& model, const FeatureSpace& space,
    const std::vector<double>& instance, int desired_class,
    const DiceOptions& opts = DiceOptions());

}  // namespace xai

#endif  // XAIDB_CF_DICE_H_
