#include "cf/recourse.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "math/stats.h"

namespace xai {

std::string RecourseAction::ToString(const Schema& schema) const {
  std::ostringstream os;
  os.precision(4);
  if (!feasible) {
    os << "no feasible recourse within bounds";
    return os.str();
  }
  os << "recourse (cost=" << cost << ", p=" << new_probability << "):\n";
  for (const RecourseStep& s : steps) {
    os << "  " << schema.FormatValue(s.feature, s.from) << " -> "
       << schema.FormatValue(s.feature, s.to) << "\n";
  }
  return os.str();
}

Result<RecourseAction> LinearRecourse(const LogisticRegression& model,
                                      const FeatureSpace& space,
                                      const std::vector<double>& instance,
                                      const RecourseOptions& opts) {
  const size_t d = instance.size();
  if (space.num_features() != d)
    return Status::InvalidArgument("Recourse: arity mismatch");
  if (!opts.unit_costs.empty() && opts.unit_costs.size() != d)
    return Status::InvalidArgument("Recourse: unit_costs size mismatch");
  const double p0 = std::clamp(opts.target_probability, 1e-6, 1.0 - 1e-6);
  const double target_margin = std::log(p0 / (1.0 - p0));

  const std::vector<double>& w = model.theta();  // [w_0..w_{d-1}, b]
  double margin = model.Margin(instance);

  RecourseAction action;
  if (margin >= target_margin) {
    action.feasible = true;  // Already positive.
    action.new_probability = Sigmoid(margin);
    return action;
  }

  // Candidate moves: numeric actionable features only (categorical flips
  // are handled by the counterfactual searchers; linear recourse treats
  // continuous levers). Ratio = |w_j| * std_j / cost_j = margin gain per
  // unit of normalized cost.
  struct Lever {
    size_t j;
    double ratio;
  };
  std::vector<Lever> levers;
  for (size_t j = 0; j < d; ++j) {
    if (!space.actionable[j] || !space.is_numeric[j]) continue;
    if (std::fabs(w[j]) < 1e-12) continue;
    const double cost_j =
        opts.unit_costs.empty() ? 1.0 : opts.unit_costs[j];
    if (cost_j <= 0.0) continue;
    levers.push_back({j, std::fabs(w[j]) * space.std[j] / cost_j});
  }
  std::sort(levers.begin(), levers.end(),
            [](const Lever& a, const Lever& b) { return a.ratio > b.ratio; });

  std::vector<double> x = instance;
  for (const Lever& lever : levers) {
    if (margin >= target_margin) break;
    const size_t j = lever.j;
    // Move toward the favorable bound.
    const double bound = w[j] > 0 ? space.max_value[j] : space.min_value[j];
    const double max_gain = w[j] * (bound - x[j]);
    if (max_gain <= 0.0) continue;
    const double needed = target_margin - margin;
    double delta;
    if (max_gain >= needed) {
      delta = needed / w[j];
    } else {
      delta = bound - x[j];
    }
    const double from = x[j];
    x[j] += delta;
    margin += w[j] * delta;
    const double cost_j = opts.unit_costs.empty() ? 1.0 : opts.unit_costs[j];
    action.cost += std::fabs(delta) / space.std[j] * cost_j;
    action.steps.push_back({j, from, x[j]});
  }

  action.feasible = margin >= target_margin - 1e-9;
  action.new_probability = Sigmoid(margin);
  if (!action.feasible)
    return action;  // Report infeasibility with partial diagnostics.
  return action;
}

}  // namespace xai
