#ifndef XAIDB_FEATURE_GLOBAL_EXPLANATIONS_H_
#define XAIDB_FEATURE_GLOBAL_EXPLANATIONS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Global explanation methods — the "explains the overall behavior of the
/// model" end of the tutorial's local/global axis (Section 1's taxonomy
/// dimension (c)).

/// Permutation feature importance: the drop in a performance metric when
/// one feature's column is shuffled (Breiman-style). Returns one
/// importance per feature (positive = the model relies on it).
struct PermutationImportanceOptions {
  int repetitions = 3;
  uint64_t seed = 321;
};
std::vector<double> PermutationImportance(
    const Model& model, const Dataset& ds,
    const PermutationImportanceOptions& opts = PermutationImportanceOptions());

/// Partial dependence of the model on one feature: the average prediction
/// when the feature is clamped to each grid value and all other features
/// keep their observed joint distribution.
struct PartialDependence {
  std::vector<double> grid;
  std::vector<double> average_prediction;
};
Result<PartialDependence> ComputePartialDependence(const Model& model,
                                                   const Dataset& ds,
                                                   size_t feature,
                                                   int grid_points = 20,
                                                   size_t max_rows = 200);

/// Individual conditional expectation curves: one per-row curve of
/// prediction vs clamped feature value (the disaggregation of PDP that
/// reveals heterogeneous effects PDP averages away).
struct IceCurves {
  std::vector<double> grid;
  /// curves[r][g] = prediction of row r at grid value g.
  std::vector<std::vector<double>> curves;
};
Result<IceCurves> ComputeIceCurves(const Model& model, const Dataset& ds,
                                   size_t feature, int grid_points = 20,
                                   size_t max_rows = 50);

/// Per-feature global SHAP summary ("from local explanations to global
/// understanding", Lundberg et al. 2020): mean |phi|, and the direction
/// of the feature's effect (correlation between feature value and its
/// attribution across rows).
struct ShapSummary {
  std::vector<double> mean_abs_attribution;
  std::vector<double> direction;  // corr(x_j, phi_j) in [-1, 1].
};
Result<ShapSummary> SummarizeAttributions(AttributionExplainer* explainer,
                                          const Dataset& ds,
                                          size_t max_rows = 100);

/// Submodular pick (SP-LIME, Ribeiro et al. 2016): choose a budget of
/// instances whose explanations jointly cover the globally important
/// features — the representative gallery shown to a human auditor.
/// Returns row indices in pick order.
Result<std::vector<size_t>> SubmodularPick(AttributionExplainer* explainer,
                                           const Dataset& ds, size_t budget,
                                           size_t max_rows = 60);

}  // namespace xai

#endif  // XAIDB_FEATURE_GLOBAL_EXPLANATIONS_H_
