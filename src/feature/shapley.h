#ifndef XAIDB_FEATURE_SHAPLEY_H_
#define XAIDB_FEATURE_SHAPLEY_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/game.h"

namespace xai {

/// Exact Shapley values by subset enumeration:
///   phi_i = sum_{S ⊆ N\{i}} |S|!(n-|S|-1)!/n! (v(S ∪ {i}) - v(S)).
/// Exponential (2^n evaluations of v) — the intractability the tutorial
/// highlights in Section 2.1.2 and experiment E1 measures. Rejects games
/// with more than `max_players` (default 20) players.
Result<std::vector<double>> ExactShapley(const CoalitionGame& game,
                                         int max_players = 20);

/// Monte-Carlo Shapley by permutation sampling: for each sampled
/// permutation, walk players in order and credit each with its marginal
/// contribution. Unbiased; error ~ O(1/sqrt(num_permutations)).
std::vector<double> PermutationShapley(const CoalitionGame& game,
                                       int num_permutations, Rng* rng);

/// The sweep behind PermutationShapley with the permutations supplied by
/// the caller. Batched explainers (McShapleyExplainer::ExplainBatch) draw
/// the permutation set once and reuse it across instances; running this
/// with the permutations Rng(seed) would produce is bit-identical to
/// PermutationShapley at that seed.
std::vector<double> PermutationShapleyWithPerms(
    const CoalitionGame& game, const std::vector<std::vector<size_t>>& perms);

/// Banzhaf values by subset sampling (each player's expected marginal
/// contribution to a uniformly random coalition of the others) — the
/// other classic semivalue, used by QII's set influence.
std::vector<double> SampledBanzhaf(const CoalitionGame& game,
                                   int num_samples, Rng* rng);

/// Owen values — Shapley with a coalition structure (Monte-Carlo over
/// group-respecting permutations: groups are shuffled, members stay
/// contiguous). The right attribution when players come in a priori
/// bundles, e.g. the one-hot columns of one categorical feature: the
/// bundle's total credit equals the group-level Shapley value, split
/// among members by within-group marginals. `groups[g]` lists player
/// indices; every player must appear in exactly one group.
Result<std::vector<double>> OwenValues(
    const CoalitionGame& game, const std::vector<std::vector<size_t>>& groups,
    int num_permutations, Rng* rng);

/// Exact Shapley *interaction* index (Grabisch & Roubens; the quantity
/// behind SHAP interaction values). Off-diagonal entries:
///   I_ij = sum_{S ⊆ N\{i,j}} |S|!(n-|S|-2)!/(2(n-1)!) * delta_ij(S),
///   delta_ij(S) = v(S∪{i,j}) - v(S∪{i}) - v(S∪{j}) + v(S),
/// symmetric and zero for additive games. Diagonal entries follow the
/// SHAP convention I_ii = phi_i - sum_{j != i} I_ij, so each row sums to
/// the Shapley value and the whole matrix sums to v(N) - v(empty).
/// Exponential in n (2^n evaluations); rejects n > max_players.
Result<Matrix> ExactShapleyInteractions(const CoalitionGame& game,
                                        int max_players = 16);

}  // namespace xai

#endif  // XAIDB_FEATURE_SHAPLEY_H_
