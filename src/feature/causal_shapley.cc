#include "feature/causal_shapley.h"

#include <algorithm>

#include "feature/shapley.h"

namespace xai {

ScmInterventionalGame::ScmInterventionalGame(
    const Model& model, const Scm& scm, std::vector<size_t> feature_nodes,
    std::vector<double> instance, int samples_per_eval, uint64_t seed)
    : model_(model), scm_(scm), feature_nodes_(std::move(feature_nodes)),
      instance_(std::move(instance)), samples_(samples_per_eval),
      seed_(seed) {}

double ScmInterventionalGame::Value(
    const std::vector<bool>& in_coalition) const {
  std::vector<Intervention> dos;
  for (size_t j = 0; j < instance_.size(); ++j)
    if (in_coalition[j]) dos.push_back({feature_nodes_[j], instance_[j]});
  // Deterministic per-coalition stream: Value must be a pure function.
  uint64_t h = seed_;
  for (size_t j = 0; j < instance_.size(); ++j)
    h = h * 1099511628211ULL + (in_coalition[j] ? 2 : 1);
  Rng rng(h);
  double total = 0.0;
  std::vector<double> x(instance_.size());
  for (int s = 0; s < samples_; ++s) {
    std::vector<double> sample = scm_.SampleDo(dos, &rng);
    for (size_t j = 0; j < instance_.size(); ++j)
      x[j] = sample[feature_nodes_[j]];
    total += model_.Predict(x);
  }
  return total / static_cast<double>(samples_);
}

Result<std::vector<double>> CausalShapley(
    const Model& model, const Scm& scm,
    const std::vector<size_t>& feature_nodes,
    const std::vector<double>& instance, const CausalShapleyOptions& opts) {
  if (feature_nodes.size() != instance.size())
    return Status::InvalidArgument("CausalShapley: node/instance mismatch");
  ScmInterventionalGame game(model, scm, feature_nodes, instance,
                             opts.samples_per_eval, opts.seed);
  if (static_cast<int>(instance.size()) <= opts.exact_up_to)
    return ExactShapley(game);
  Rng rng(opts.seed + 13);
  return PermutationShapley(game, opts.num_permutations, &rng);
}

std::vector<double> AsymmetricShapley(const CoalitionGame& game,
                                      const Dag& dag,
                                      const std::vector<size_t>& feature_nodes,
                                      int num_orderings, Rng* rng) {
  const size_t d = game.num_players();
  std::vector<double> phi(d, 0.0);
  std::vector<bool> coalition(d);

  // Precompute the ancestor relation among the mapped nodes: feature a must
  // precede feature b when node(a) is a strict ancestor of node(b).
  std::vector<std::vector<bool>> must_precede(d, std::vector<bool>(d, false));
  for (size_t a = 0; a < d; ++a)
    for (size_t b = 0; b < d; ++b)
      if (a != b && feature_nodes[a] != feature_nodes[b] &&
          dag.IsAncestor(feature_nodes[a], feature_nodes[b]))
        must_precede[a][b] = true;

  for (int o = 0; o < num_orderings; ++o) {
    // Random topological order of the features: repeatedly pick uniformly
    // among features whose required predecessors are all placed.
    std::vector<bool> placed(d, false);
    std::vector<size_t> order;
    order.reserve(d);
    while (order.size() < d) {
      std::vector<size_t> ready;
      for (size_t j = 0; j < d; ++j) {
        if (placed[j]) continue;
        bool ok = true;
        for (size_t a = 0; a < d; ++a) {
          if (must_precede[a][j] && !placed[a]) {
            ok = false;
            break;
          }
        }
        if (ok) ready.push_back(j);
      }
      const size_t pick = ready[rng->NextInt(ready.size())];
      placed[pick] = true;
      order.push_back(pick);
    }
    std::fill(coalition.begin(), coalition.end(), false);
    double prev = game.Value(coalition);
    for (size_t j : order) {
      coalition[j] = true;
      const double cur = game.Value(coalition);
      phi[j] += cur - prev;
      prev = cur;
    }
  }
  for (double& v : phi) v /= static_cast<double>(num_orderings);
  return phi;
}

namespace {

void ExtendExtensions(const std::vector<std::vector<bool>>& must_precede,
                      std::vector<bool>* placed, std::vector<size_t>* cur,
                      std::vector<std::vector<size_t>>* out, size_t limit) {
  if (out->size() >= limit) return;
  const size_t d = placed->size();
  if (cur->size() == d) {
    out->push_back(*cur);
    return;
  }
  for (size_t j = 0; j < d; ++j) {
    if ((*placed)[j]) continue;
    bool ok = true;
    for (size_t a = 0; a < d; ++a) {
      if (must_precede[a][j] && !(*placed)[a]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    (*placed)[j] = true;
    cur->push_back(j);
    ExtendExtensions(must_precede, placed, cur, out, limit);
    cur->pop_back();
    (*placed)[j] = false;
  }
}

}  // namespace

std::vector<std::vector<size_t>> TopologicalExtensions(
    const Dag& dag, const std::vector<size_t>& nodes, size_t limit) {
  const size_t d = nodes.size();
  std::vector<std::vector<bool>> must_precede(d, std::vector<bool>(d, false));
  for (size_t a = 0; a < d; ++a)
    for (size_t b = 0; b < d; ++b)
      if (a != b && nodes[a] != nodes[b] &&
          dag.IsAncestor(nodes[a], nodes[b]))
        must_precede[a][b] = true;
  std::vector<std::vector<size_t>> out;
  std::vector<bool> placed(d, false);
  std::vector<size_t> cur;
  ExtendExtensions(must_precede, &placed, &cur, &out, limit);
  return out;
}

}  // namespace xai
