#ifndef XAIDB_FEATURE_TREE_SHAP_H_
#define XAIDB_FEATURE_TREE_SHAP_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "core/game.h"
#include "data/dataset.h"
#include "model/decision_tree.h"
#include "model/flat_tree.h"
#include "model/gbdt.h"
#include "model/tree.h"

namespace xai {

/// Path-dependent TreeSHAP (Lundberg, Erion, Lee et al., Nature MI 2020):
/// exact Shapley values of the tree's conditional-expectation game in
/// O(L D^2) per instance instead of O(2^d) — the polynomial-time headline
/// the tutorial highlights in Section 2.1.2 (experiments E1/E2).
///
/// `phi` receives one value per feature; the values satisfy
///   sum(phi) = tree(x) - tree.ExpectedValue().
///
/// This node-object walker is the *reference* implementation; the serving
/// path is FlatTreeShapValues below, which runs the same Extend/Unwind
/// recursion over the compiled SoA arrays and is verified bit-identical.
void TreeShapValues(const Tree& tree, const std::vector<double>& x,
                    std::vector<double>* phi);

/// Path-dependent TreeSHAP for tree `t` of a compiled FlatEnsemble: the
/// identical Extend/Unwind path-weight recursion, but every node read
/// (feature, threshold, children, cover, leaf value) is an index into the
/// flat arrays — prediction and explanation share one memory layout.
/// Bit-identical to TreeShapValues on the tree the ensemble was compiled
/// from.
void FlatTreeShapValues(const FlatEnsemble& ensemble, size_t t,
                        const double* x, std::vector<double>* phi);

/// SHAP values for an additive tree ensemble sum_t scale * tree_t(x) (+
/// base). Returns one value per feature.
std::vector<double> EnsembleTreeShap(const std::vector<Tree>& trees,
                                     double scale, size_t num_features,
                                     const std::vector<double>& x);

/// The cover-weighted conditional-expectation game TreeSHAP solves:
///   v(S) = E[tree(x) | x_S]  (descend on S-features, cover-average others).
/// Exponential when fed to ExactShapley — used to verify TreeSHAP's
/// exactness and to measure the exact-vs-polynomial runtime gap.
class TreePathGame : public CoalitionGame {
 public:
  TreePathGame(const std::vector<Tree>& trees, double scale,
               size_t num_features, std::vector<double> instance);

  size_t num_players() const override { return instance_.size(); }
  double Value(const std::vector<bool>& in_coalition) const override;

 private:
  double NodeExpectation(const Tree& tree, int node,
                         const std::vector<bool>& s) const;

  const std::vector<Tree>& trees_;
  double scale_;
  std::vector<double> instance_;
};

/// AttributionExplainer facade over a GBDT (explains the raw margin — the
/// standard choice, attributions in log-odds space) or a single decision
/// tree / random forest (explains the probability).
///
/// Walks the model's compiled FlatEnsemble — the same SoA arrays serving
/// prediction — and reads the per-tree expected values precomputed at
/// compile time (no per-explain leaf rescans). The model must outlive the
/// explainer.
class TreeShapExplainer : public AttributionExplainer {
 public:
  explicit TreeShapExplainer(const GradientBoostedTrees& gbdt,
                             const Schema& schema);
  explicit TreeShapExplainer(const DecisionTree& tree, const Schema& schema);
  explicit TreeShapExplainer(const RandomForest& forest, const Schema& schema);

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Amortized multi-instance sweep, traversed tree-outer / row-inner so
  /// each tree's flat arrays stay cache-resident across the whole row
  /// block (the same locality win as the ensembles' PredictBatch). Per row
  /// the per-tree contributions still accumulate in tree order, so row i
  /// is bit-identical to Explain(row i).
  Result<std::vector<FeatureAttribution>> ExplainBatch(
      const Matrix& instances) override;

 private:
  const FlatEnsemble* flat_ = nullptr;
  double scale_ = 1.0;
  double base_ = 0.0;
  size_t num_features_ = 0;
  const Schema& schema_;
};

/// Global importance as the tutorial's "local explanations to global
/// understanding": mean |SHAP value| per feature over a dataset.
std::vector<double> GlobalMeanAbsShap(TreeShapExplainer* explainer,
                                      const Dataset& ds, size_t max_rows = 200);

/// *Interventional* TreeSHAP against a single reference row (Lundberg et
/// al. 2020, "true to the model" variant): exact Shapley values of the
/// cube game v(S) = tree(x_S combined with reference on ~S), computed in
/// one tree walk instead of 2^d evaluations. Each root-to-leaf path
/// partitions its unique split features into X (instance-satisfied) and B
/// (reference-satisfied); the leaf is a unanimity-minus-blockers game with
/// closed-form Shapley contribution
///   +v * (|X|-1)! |B|! / (|X|+|B|)!  for i in X,
///   -v * |X)! (|B|-1)! / (|X|+|B|)!  for i in B.
/// Accumulates into `phi`; sum(phi) = tree(x) - tree(reference).
void InterventionalTreeShap(const Tree& tree, const std::vector<double>& x,
                            const std::vector<double>& reference,
                            std::vector<double>* phi);

/// Interventional SHAP averaged over a background dataset for an additive
/// ensemble: equals the exact Shapley values of MarginalFeatureGame over
/// the same background (tests verify the equality).
std::vector<double> InterventionalEnsembleShap(
    const std::vector<Tree>& trees, double scale, size_t num_features,
    const std::vector<double>& x, const Matrix& background,
    size_t max_background = 100);

}  // namespace xai

#endif  // XAIDB_FEATURE_TREE_SHAP_H_
