#include "feature/lime.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "math/linalg.h"
#include "math/stats.h"
#include "obs/obs.h"

namespace xai {

namespace {
/// Neighborhood rows per batched PredictBatch chunk; fixed boundaries and
/// disjoint output slices keep parallel scoring bit-identical to serial.
constexpr size_t kRowChunk = 256;
}  // namespace

LimeExplainer::LimeExplainer(const Model& model, const Dataset& background,
                             LimeOptions opts)
    : model_(model),
      background_(background),
      opts_(opts),
      stats_(ComputeColumnStats(background)) {}

Result<FeatureAttribution> LimeExplainer::Explain(
    const std::vector<double>& instance) {
  XAI_OBS_HIST_TIMER("feature.lime.explain_us");
  XAI_OBS_SPAN("lime");
  return ExplainRow(stats_, instance);
}

Result<std::vector<FeatureAttribution>> LimeExplainer::ExplainBatch(
    const Matrix& instances) {
  XAI_OBS_HIST_TIMER("feature.lime.explain_batch_us");
  XAI_OBS_SPAN("lime_batch");
  if (instances.rows() == 0) return std::vector<FeatureAttribution>{};
  std::vector<FeatureAttribution> out;
  out.reserve(instances.rows());
  for (size_t i = 0; i < instances.rows(); ++i) {
    XAI_ASSIGN_OR_RETURN(FeatureAttribution attr,
                         ExplainRow(stats_, instances.Row(i)));
    out.push_back(std::move(attr));
  }
  return out;
}

Result<FeatureAttribution> LimeExplainer::ExplainRow(
    const ColumnStats& stats, const std::vector<double>& instance) {
  const size_t d = instance.size();
  if (d != background_.d())
    return Status::InvalidArgument("Lime: instance arity != background");
  Rng rng(opts_.seed);
  TabularPerturber perturber(background_.schema(), stats, instance);

  const double width = opts_.kernel_width > 0
                           ? opts_.kernel_width
                           : 0.75 * std::sqrt(static_cast<double>(d));
  const int n = opts_.num_samples;

  // Phase 1: draw the whole perturbation neighborhood as one matrix
  // (serial — the RNG owns the draw order). Phase 2: score it through
  // PredictBatch in parallel chunks. Phase 3: the design matrix over the
  // binary representation, plus intercept column.
  Matrix z(n, d + 1);
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<double> w(n);
  TabularPerturber::BatchSample neighborhood;
  {
    XAI_OBS_SPAN("sample");
    XAI_OBS_COUNT_N("feature.lime.samples", n);
    neighborhood = perturber.DrawBatch(static_cast<size_t>(n), &rng);
  }
  {
    XAI_OBS_SPAN("eval");
    XAI_OBS_COUNT_N("feature.lime.model_evals", n);
    XAI_OBS_OBSERVE("feature.lime.batch_rows", n);
    XAI_OBS_GAUGE_SET("parallel.threads", GlobalThreadCount());
    XAI_OBS_TRACE_COUNTER("lime.model_evals", n);
    const size_t rows = static_cast<size_t>(n);
    const size_t num_chunks = (rows + kRowChunk - 1) / kRowChunk;
    GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
      const size_t lo = c * kRowChunk;
      const size_t hi = std::min(rows, lo + kRowChunk);
      std::vector<size_t> idx(hi - lo);
      for (size_t r = lo; r < hi; ++r) idx[r - lo] = r;
      const std::vector<double> preds =
          model_.PredictBatch(neighborhood.x.SelectRows(idx));
      std::copy(preds.begin(), preds.end(), y.begin() + static_cast<long>(lo));
    });
  }
  for (int i = 0; i < n; ++i) {
    const std::vector<uint8_t>& zi = neighborhood.z[static_cast<size_t>(i)];
    double dist2 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      z(i, j) = zi[j];
      if (!zi[j]) dist2 += 1.0;
    }
    z(i, d) = 1.0;
    w[i] = std::exp(-dist2 / (width * width));
  }

  std::vector<double> coef;
  {
    XAI_OBS_SPAN("solve");
    XAI_ASSIGN_OR_RETURN(coef, RidgeRegression(z, y, opts_.lambda, &w));
  }

  // Weighted local R^2.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double wsum = 0.0;
  double wmean = 0.0;
  for (int i = 0; i < n; ++i) {
    wmean += w[i] * y[i];
    wsum += w[i];
  }
  wmean /= std::max(wsum, 1e-12);
  for (int i = 0; i < n; ++i) {
    double pred = coef[d];
    for (size_t j = 0; j < d; ++j) pred += coef[j] * z(i, j);
    ss_res += w[i] * (y[i] - pred) * (y[i] - pred);
    ss_tot += w[i] * (y[i] - wmean) * (y[i] - wmean);
  }
  last_local_r2_ = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 0.0;

  FeatureAttribution out;
  out.values.assign(coef.begin(), coef.begin() + static_cast<long>(d));
  if (opts_.num_features > 0 &&
      static_cast<size_t>(opts_.num_features) < d) {
    // Zero all but the top-k coefficients (LIME's feature selection).
    std::vector<size_t> keep =
        TopKByMagnitude(out.values, static_cast<size_t>(opts_.num_features));
    std::vector<double> selected(d, 0.0);
    for (size_t j : keep) selected[j] = out.values[j];
    out.values = std::move(selected);
  }
  for (size_t j = 0; j < d; ++j)
    out.feature_names.push_back(background_.schema().feature(j).name);
  out.base_value = coef[d];
  out.prediction = model_.Predict(instance);
  return out;
}

}  // namespace xai
