#include "feature/lime.h"

#include <cmath>

#include "math/linalg.h"
#include "math/stats.h"
#include "obs/obs.h"

namespace xai {

LimeExplainer::LimeExplainer(const Model& model, const Dataset& background,
                             LimeOptions opts)
    : model_(model), background_(background), opts_(opts) {}

Result<FeatureAttribution> LimeExplainer::Explain(
    const std::vector<double>& instance) {
  XAI_OBS_HIST_TIMER("feature.lime.explain_us");
  XAI_OBS_SPAN("lime");
  const size_t d = instance.size();
  if (d != background_.d())
    return Status::InvalidArgument("Lime: instance arity != background");
  Rng rng(opts_.seed);
  TabularPerturber perturber(background_, instance);

  const double width = opts_.kernel_width > 0
                           ? opts_.kernel_width
                           : 0.75 * std::sqrt(static_cast<double>(d));
  const int n = opts_.num_samples;

  // Design matrix over the binary representation, plus intercept column.
  Matrix z(n, d + 1);
  std::vector<double> y(n);
  std::vector<double> w(n);
  {
    XAI_OBS_SPAN("sample");
    for (int i = 0; i < n; ++i) {
      XAI_OBS_COUNT("feature.lime.samples");
      XAI_OBS_COUNT("feature.lime.model_evals");
      TabularPerturber::Sample s = perturber.Draw(&rng);
      double dist2 = 0.0;
      for (size_t j = 0; j < d; ++j) {
        z(i, j) = s.z[j];
        if (!s.z[j]) dist2 += 1.0;
      }
      z(i, d) = 1.0;
      y[i] = model_.Predict(s.x);
      w[i] = std::exp(-dist2 / (width * width));
    }
  }

  std::vector<double> coef;
  {
    XAI_OBS_SPAN("solve");
    XAI_ASSIGN_OR_RETURN(coef, RidgeRegression(z, y, opts_.lambda, &w));
  }

  // Weighted local R^2.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double wsum = 0.0;
  double wmean = 0.0;
  for (int i = 0; i < n; ++i) {
    wmean += w[i] * y[i];
    wsum += w[i];
  }
  wmean /= std::max(wsum, 1e-12);
  for (int i = 0; i < n; ++i) {
    double pred = coef[d];
    for (size_t j = 0; j < d; ++j) pred += coef[j] * z(i, j);
    ss_res += w[i] * (y[i] - pred) * (y[i] - pred);
    ss_tot += w[i] * (y[i] - wmean) * (y[i] - wmean);
  }
  last_local_r2_ = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 0.0;

  FeatureAttribution out;
  out.values.assign(coef.begin(), coef.begin() + static_cast<long>(d));
  if (opts_.num_features > 0 &&
      static_cast<size_t>(opts_.num_features) < d) {
    // Zero all but the top-k coefficients (LIME's feature selection).
    std::vector<size_t> keep =
        TopKByMagnitude(out.values, static_cast<size_t>(opts_.num_features));
    std::vector<double> selected(d, 0.0);
    for (size_t j : keep) selected[j] = out.values[j];
    out.values = std::move(selected);
  }
  for (size_t j = 0; j < d; ++j)
    out.feature_names.push_back(background_.schema().feature(j).name);
  out.base_value = coef[d];
  out.prediction = model_.Predict(instance);
  return out;
}

}  // namespace xai
