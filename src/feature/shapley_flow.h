#ifndef XAIDB_FEATURE_SHAPLEY_FLOW_H_
#define XAIDB_FEATURE_SHAPLEY_FLOW_H_

#include <map>
#include <utility>
#include <vector>

#include "causal/scm.h"
#include "common/result.h"

namespace xai {

/// Shapley-flow-style *edge* attribution (Wang, Wiens & Lundberg 2021),
/// tutorial Section 2.1.3: instead of crediting features (nodes), credit
/// flows along graph edges, so a cause's influence is visible both at its
/// source and along every path it takes to the output.
///
/// This implementation covers the closed-form case of a fully *linear* SCM
/// with a designated sink node: the flow of a path P from source s to the
/// sink is
///   flow(P) = (prod of edge coefficients along P) * (x_s - baseline_s)
/// and an edge's credit is the sum of flows of paths through it. For linear
/// models this matches the sampling-based algorithm of the paper and
/// satisfies its two characteristic properties, which the tests check:
///  * conservation: credit entering the sink sums to f(x) - f(baseline);
///  * source consistency: total flow leaving source s equals the
///    (asymmetric-at-root) attribution of s.
struct EdgeAttribution {
  std::map<std::pair<size_t, size_t>, double> edge_credit;
  double sink_delta = 0.0;  // f(x) - f(baseline).

  /// Sum of credits over edges into `node`.
  double InFlow(size_t node) const;
  /// Sum of credits over edges out of `node`.
  double OutFlow(size_t node) const;
};

/// Computes edge credits for a linear SCM between `baseline` and `instance`
/// node-value assignments. Fails on non-linear SCMs.
Result<EdgeAttribution> LinearShapleyFlow(const Scm& scm, size_t sink,
                                          const std::vector<double>& baseline,
                                          const std::vector<double>& instance);

}  // namespace xai

#endif  // XAIDB_FEATURE_SHAPLEY_FLOW_H_
