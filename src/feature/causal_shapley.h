#ifndef XAIDB_FEATURE_CAUSAL_SHAPLEY_H_
#define XAIDB_FEATURE_CAUSAL_SHAPLEY_H_

#include <vector>

#include "causal/scm.h"
#include "common/result.h"
#include "core/explainer.h"
#include "core/game.h"
#include "model/model.h"

namespace xai {

/// The interventional coalition game behind *causal Shapley values*
/// (Heskes et al. 2020), tutorial Section 2.1.3:
///   v(S) = E[f(X) | do(X_S = x_S)]
/// estimated by Monte-Carlo sampling from the SCM under intervention.
/// Unlike the marginal game, downstream features respond to the
/// intervention, so indirect causal influence is credited to the cause.
class ScmInterventionalGame : public CoalitionGame {
 public:
  /// `feature_nodes[j]` maps model feature j to its SCM node.
  ScmInterventionalGame(const Model& model, const Scm& scm,
                        std::vector<size_t> feature_nodes,
                        std::vector<double> instance,
                        int samples_per_eval = 256, uint64_t seed = 55);

  size_t num_players() const override { return instance_.size(); }
  double Value(const std::vector<bool>& in_coalition) const override;

 private:
  const Model& model_;
  const Scm& scm_;
  std::vector<size_t> feature_nodes_;
  std::vector<double> instance_;
  int samples_;
  uint64_t seed_;
};

struct CausalShapleyOptions {
  int samples_per_eval = 256;
  /// Use exact subset enumeration up to this many features, else
  /// permutation sampling.
  int exact_up_to = 12;
  int num_permutations = 50;
  uint64_t seed = 55;
};

/// Causal Shapley values: symmetric Shapley over the interventional game.
/// All four classic axioms hold (in particular efficiency:
/// sum(phi) = f(x) - E[f]), yet credit flows along causal paths.
Result<std::vector<double>> CausalShapley(const Model& model, const Scm& scm,
                                          const std::vector<size_t>& feature_nodes,
                                          const std::vector<double>& instance,
                                          const CausalShapleyOptions& opts);

/// Asymmetric Shapley values (Frye, Rowat & Feige 2019): marginal
/// contributions averaged only over permutations consistent with the causal
/// partial order (ancestors enter before descendants). Sacrifices the
/// symmetry axiom; distal causes absorb their downstream influence.
/// Works over any CoalitionGame — pass the same interventional or
/// conditional game used for symmetric values to isolate the ordering
/// effect.
std::vector<double> AsymmetricShapley(const CoalitionGame& game,
                                      const Dag& dag,
                                      const std::vector<size_t>& feature_nodes,
                                      int num_orderings, Rng* rng);

/// Enumerates (up to `limit`) topological linear extensions of the DAG
/// restricted to the given nodes; used for exact small-case asymmetric
/// values and tested against the sampler.
std::vector<std::vector<size_t>> TopologicalExtensions(
    const Dag& dag, const std::vector<size_t>& nodes, size_t limit = 5000);

}  // namespace xai

#endif  // XAIDB_FEATURE_CAUSAL_SHAPLEY_H_
