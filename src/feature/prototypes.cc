#include "feature/prototypes.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "math/stats.h"

namespace xai {
namespace {

/// Squared Euclidean distance between rows a and b of x.
double Dist2(const Matrix& x, size_t a, size_t b) {
  double s = 0.0;
  for (size_t j = 0; j < x.cols(); ++j) {
    const double d = x(a, j) - x(b, j);
    s += d * d;
  }
  return s;
}

}  // namespace

Result<PrototypeReport> SelectPrototypes(const Dataset& ds,
                                         const PrototypeOptions& opts) {
  const size_t n = std::min(ds.n(), opts.max_rows);
  if (n == 0) return Status::InvalidArgument("SelectPrototypes: empty data");
  if (opts.num_prototypes == 0 || opts.num_prototypes > n)
    return Status::InvalidArgument("SelectPrototypes: bad prototype count");

  // Kernel matrix with the median heuristic over *random* pairs (near-
  // index pairs would be biased toward within-cluster distances when the
  // data arrives cluster-ordered), shrunk by 2 so distinct modes stay
  // distinguishable under the kernel.
  double bw = opts.bandwidth;
  if (bw <= 0.0) {
    Rng rng(0xBADDCAFE);
    std::vector<double> d2s;
    d2s.reserve(512);
    for (int s = 0; s < 512; ++s) {
      const size_t a = static_cast<size_t>(rng.NextInt(n));
      const size_t b = static_cast<size_t>(rng.NextInt(n));
      if (a != b) d2s.push_back(Dist2(ds.x(), a, b));
    }
    bw = std::sqrt(std::max(Median(d2s), 1e-12)) / 2.0;
  }
  const double gamma = 1.0 / (2.0 * bw * bw);
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double v = std::exp(-gamma * Dist2(ds.x(), i, j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  // mean_k[i] = (1/n) sum_j K(i, j): the data term of the witness.
  std::vector<double> mean_k(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += k(i, j);
    mean_k[i] = s / static_cast<double>(n);
  }

  PrototypeReport report;
  std::vector<bool> chosen(n, false);
  // Greedy MMD^2 minimization. With m prototypes P:
  //   MMD^2 = const(data) - (2/m) sum_{p in P} mean_k[p]
  //           + (1/m^2) sum_{p,q in P} K(p,q).
  // Maintained incrementally: pp_sum = sum over P x P of K, and
  // mean_sum = sum over P of mean_k.
  double pp_sum = 0.0;
  double mean_sum = 0.0;
  for (size_t pick = 0; pick < opts.num_prototypes; ++pick) {
    const double m1 = static_cast<double>(pick + 1);
    double best_obj = 1e300;
    size_t best = n;
    double best_cross = 0.0;
    for (size_t c = 0; c < n; ++c) {
      if (chosen[c]) continue;
      double cross = 0.0;
      for (size_t p : report.prototypes) cross += k(c, p);
      const double new_pp = pp_sum + 2.0 * cross + k(c, c);
      const double obj =
          new_pp / (m1 * m1) - 2.0 / m1 * (mean_sum + mean_k[c]);
      if (obj < best_obj) {
        best_obj = obj;
        best = c;
        best_cross = cross;
      }
    }
    if (best == n) break;
    chosen[best] = true;
    pp_sum += 2.0 * best_cross + k(best, best);
    mean_sum += mean_k[best];
    report.prototypes.push_back(best);
    report.mmd2 = best_obj;  // Up to the constant (1/n^2) sum K term.
  }
  // Add the data constant so mmd2 is a true squared MMD (>= 0).
  double data_const = 0.0;
  for (size_t i = 0; i < n; ++i) data_const += mean_k[i];
  report.mmd2 += data_const / static_cast<double>(n);

  // Witness function at each point: w(i) = mean_k[i] - (1/m) sum_p K(i,p).
  const double m = static_cast<double>(report.prototypes.size());
  std::vector<double> witness(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t p : report.prototypes) s += k(i, p);
    witness[i] = std::fabs(mean_k[i] - s / m);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return witness[a] > witness[b]; });
  for (size_t i = 0; i < n && report.criticisms.size() < opts.num_criticisms;
       ++i) {
    if (!chosen[order[i]]) report.criticisms.push_back(order[i]);
  }
  return report;
}

}  // namespace xai
