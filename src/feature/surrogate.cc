#include "feature/surrogate.h"

#include "model/metrics.h"

namespace xai {
namespace {

/// Black-box outputs as the regression target.
Dataset Distill(const Model& model, const Dataset& reference) {
  return Dataset(reference.schema(), reference.x(),
                 model.PredictBatch(reference.x()));
}

}  // namespace

Result<TreeSurrogate> FitTreeSurrogate(const Model& model,
                                       const Dataset& reference,
                                       const TreeConfig& config) {
  Dataset distilled = Distill(model, reference);
  XAI_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Fit(distilled, config));
  TreeSurrogate out;
  out.tree = std::move(tree);
  out.fidelity_r2 =
      R2Score(out.tree.PredictBatch(reference.x()), distilled.y());
  return out;
}

Result<LinearSurrogate> FitLinearSurrogate(const Model& model,
                                           const Dataset& reference) {
  Dataset distilled = Distill(model, reference);
  XAI_ASSIGN_OR_RETURN(LinearRegression linear,
                       LinearRegression::Fit(distilled));
  LinearSurrogate out;
  out.linear = std::move(linear);
  out.fidelity_r2 =
      R2Score(out.linear.PredictBatch(reference.x()), distilled.y());
  return out;
}

}  // namespace xai
