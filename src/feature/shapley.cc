#include "feature/shapley.h"

#include "math/combinatorics.h"
#include "math/matrix.h"
#include "obs/obs.h"

namespace xai {

Result<std::vector<double>> ExactShapley(const CoalitionGame& game,
                                         int max_players) {
  const int n = static_cast<int>(game.num_players());
  if (n > max_players)
    return Status::InvalidArgument(
        "ExactShapley: too many players for exact enumeration");
  if (n == 0) return std::vector<double>{};
  XAI_OBS_SPAN("shapley_exact");

  // Cache v(S) for every mask.
  const uint32_t full = n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
  XAI_OBS_COUNT_N("feature.shapley.exact_coalitions",
                  static_cast<uint64_t>(full) + 1);
  std::vector<double> value(static_cast<size_t>(full) + 1);
  std::vector<bool> coalition(n);
  for (uint32_t mask = 0; mask <= full; ++mask) {
    for (int j = 0; j < n; ++j) coalition[j] = (mask >> j) & 1u;
    value[mask] = game.Value(coalition);
  }

  std::vector<double> phi(n, 0.0);
  // Precompute weights by coalition size.
  std::vector<double> w(n);
  for (int s = 0; s < n; ++s) w[s] = ShapleyWeight(n, s);
  for (uint32_t mask = 0; mask <= full; ++mask) {
    const int s = PopCount(mask);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      phi[i] += w[s] * (value[mask | (1u << i)] - value[mask]);
    }
  }
  return phi;
}

std::vector<double> PermutationShapley(const CoalitionGame& game,
                                       int num_permutations, Rng* rng) {
  XAI_OBS_SPAN("shapley_mc");
  const size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  std::vector<bool> coalition(n);
  for (int p = 0; p < num_permutations; ++p) {
    XAI_OBS_SPAN("perm");
    XAI_OBS_COUNT("feature.shapley.permutations");
    std::vector<size_t> perm = rng->Permutation(n);
    std::fill(coalition.begin(), coalition.end(), false);
    double prev = game.Value(coalition);
    for (size_t k = 0; k < n; ++k) {
      coalition[perm[k]] = true;
      const double cur = game.Value(coalition);
      phi[perm[k]] += cur - prev;
      prev = cur;
    }
  }
  for (double& v : phi) v /= static_cast<double>(num_permutations);
  return phi;
}

Result<std::vector<double>> OwenValues(
    const CoalitionGame& game, const std::vector<std::vector<size_t>>& groups,
    int num_permutations, Rng* rng) {
  const size_t n = game.num_players();
  std::vector<int> owner(n, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t p : groups[g]) {
      if (p >= n || owner[p] != -1)
        return Status::InvalidArgument(
            "OwenValues: groups must partition the players");
      owner[p] = static_cast<int>(g);
    }
  }
  for (size_t p = 0; p < n; ++p)
    if (owner[p] == -1)
      return Status::InvalidArgument("OwenValues: player missing a group");

  std::vector<double> phi(n, 0.0);
  std::vector<bool> coalition(n);
  for (int t = 0; t < num_permutations; ++t) {
    XAI_OBS_COUNT("feature.shapley.owen_permutations");
    // Group-respecting permutation: shuffle groups and members.
    std::vector<size_t> group_order = rng->Permutation(groups.size());
    std::fill(coalition.begin(), coalition.end(), false);
    double prev = game.Value(coalition);
    for (size_t gi : group_order) {
      std::vector<size_t> members = groups[gi];
      rng->Shuffle(&members);
      for (size_t p : members) {
        coalition[p] = true;
        const double cur = game.Value(coalition);
        phi[p] += cur - prev;
        prev = cur;
      }
    }
  }
  for (double& v : phi) v /= static_cast<double>(num_permutations);
  return phi;
}

Result<Matrix> ExactShapleyInteractions(const CoalitionGame& game,
                                        int max_players) {
  const int n = static_cast<int>(game.num_players());
  if (n > max_players)
    return Status::InvalidArgument(
        "ExactShapleyInteractions: too many players");
  if (n == 0) return Matrix();

  const uint32_t full = (n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  std::vector<double> value(static_cast<size_t>(full) + 1);
  std::vector<bool> coalition(static_cast<size_t>(n));
  for (uint32_t mask = 0; mask <= full; ++mask) {
    for (int j = 0; j < n; ++j) coalition[static_cast<size_t>(j)] = (mask >> j) & 1u;
    value[mask] = game.Value(coalition);
  }

  // Interaction weights by |S| (over N \ {i,j}).
  std::vector<double> w(static_cast<size_t>(std::max(1, n - 1)));
  for (int s = 0; s <= n - 2; ++s) {
    w[static_cast<size_t>(s)] =
        Factorial(s) * Factorial(n - s - 2) / (2.0 * Factorial(n - 1));
  }

  Matrix inter(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const uint32_t bij = (1u << i) | (1u << j);
      double total = 0.0;
      for (uint32_t mask = 0; mask <= full; ++mask) {
        if (mask & bij) continue;
        const double delta = value[mask | bij] - value[mask | (1u << i)] -
                             value[mask | (1u << j)] + value[mask];
        total += w[static_cast<size_t>(PopCount(mask))] * delta;
      }
      inter(static_cast<size_t>(i), static_cast<size_t>(j)) = total;
      inter(static_cast<size_t>(j), static_cast<size_t>(i)) = total;
    }
  }

  // Diagonal: phi_i minus the off-diagonal interactions (SHAP convention).
  XAI_ASSIGN_OR_RETURN(std::vector<double> phi,
                       ExactShapley(game, max_players));
  for (int i = 0; i < n; ++i) {
    double off = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) off += inter(static_cast<size_t>(i), static_cast<size_t>(j));
    inter(static_cast<size_t>(i), static_cast<size_t>(i)) =
        phi[static_cast<size_t>(i)] - off;
  }
  return inter;
}

std::vector<double> SampledBanzhaf(const CoalitionGame& game, int num_samples,
                                   Rng* rng) {
  const size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  std::vector<int> counts(n, 0);
  std::vector<bool> coalition(n);
  for (int s = 0; s < num_samples; ++s) {
    XAI_OBS_COUNT("feature.shapley.banzhaf_samples");
    for (size_t j = 0; j < n; ++j) coalition[j] = rng->Bernoulli(0.5);
    const size_t i = static_cast<size_t>(rng->NextInt(n));
    coalition[i] = false;
    const double without = game.Value(coalition);
    coalition[i] = true;
    const double with = game.Value(coalition);
    phi[i] += with - without;
    ++counts[i];
  }
  for (size_t i = 0; i < n; ++i)
    if (counts[i] > 0) phi[i] /= static_cast<double>(counts[i]);
  return phi;
}

}  // namespace xai
