#include "feature/shapley.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "math/combinatorics.h"
#include "math/matrix.h"
#include "obs/obs.h"

namespace xai {

namespace {

/// Permutations per parallel chunk. Chunk boundaries depend only on the
/// permutation count — never on the thread count — and chunk partial sums
/// are reduced in chunk order, so MC-Shapley is bit-identical for any
/// XAIDB_THREADS value at a fixed seed.
constexpr size_t kPermutationChunk = 4;

/// Coalition masks per chunk when enumerating 2^n values.
constexpr size_t kMaskChunk = 256;

/// Fills `value[mask]` for every mask in [0, total) by chunked batched
/// evaluation: each chunk materializes its coalitions and makes one
/// ValueBatch call; chunks run on the global pool, writing disjoint
/// slices. Shared by exact Shapley values and interactions.
void EnumerateAllCoalitions(const CoalitionGame& game, size_t total,
                            std::vector<double>* value) {
  const size_t n = game.num_players();
  const size_t num_chunks = (total + kMaskChunk - 1) / kMaskChunk;
  GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
    const size_t lo = c * kMaskChunk;
    const size_t hi = std::min(total, lo + kMaskChunk);
    std::vector<std::vector<bool>> coalitions(hi - lo,
                                              std::vector<bool>(n, false));
    for (size_t mask = lo; mask < hi; ++mask)
      for (size_t j = 0; j < n; ++j)
        coalitions[mask - lo][j] = (mask >> j) & 1u;
    const std::vector<double> vals = game.ValueBatch(coalitions);
    std::copy(vals.begin(), vals.end(), value->begin() + static_cast<long>(lo));
  });
}

}  // namespace

Result<std::vector<double>> ExactShapley(const CoalitionGame& game,
                                         int max_players) {
  const int n = static_cast<int>(game.num_players());
  if (n > max_players)
    return Status::InvalidArgument(
        "ExactShapley: too many players for exact enumeration");
  if (n == 0) return std::vector<double>{};
  XAI_OBS_SPAN("shapley_exact");

  // Cache v(S) for every mask.
  const uint32_t full = n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
  XAI_OBS_COUNT_N("feature.shapley.exact_coalitions",
                  static_cast<uint64_t>(full) + 1);
  std::vector<double> value(static_cast<size_t>(full) + 1);
  EnumerateAllCoalitions(game, static_cast<size_t>(full) + 1, &value);

  std::vector<double> phi(n, 0.0);
  // Precompute weights by coalition size.
  std::vector<double> w(n);
  for (int s = 0; s < n; ++s) w[s] = ShapleyWeight(n, s);
  for (uint32_t mask = 0; mask <= full; ++mask) {
    const int s = PopCount(mask);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      phi[i] += w[s] * (value[mask | (1u << i)] - value[mask]);
    }
  }
  return phi;
}

std::vector<double> PermutationShapley(const CoalitionGame& game,
                                       int num_permutations, Rng* rng) {
  const size_t n = game.num_players();
  if (n == 0 || num_permutations <= 0) return std::vector<double>(n, 0.0);
  // All permutations come off the caller's stream up front; the sweep
  // below never touches rng, so chunking cannot perturb the draw order.
  std::vector<std::vector<size_t>> perms(
      static_cast<size_t>(num_permutations));
  for (auto& p : perms) p = rng->Permutation(n);
  return PermutationShapleyWithPerms(game, perms);
}

std::vector<double> PermutationShapleyWithPerms(
    const CoalitionGame& game, const std::vector<std::vector<size_t>>& perms) {
  XAI_OBS_SPAN("shapley_mc");
  const size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  const size_t num_perms = perms.size();
  if (n == 0 || num_perms == 0) return phi;
  XAI_OBS_COUNT_N("feature.shapley.permutations", num_perms);
  XAI_OBS_GAUGE_SET("parallel.threads", GlobalThreadCount());

  const size_t num_chunks =
      (num_perms + kPermutationChunk - 1) / kPermutationChunk;
  std::vector<std::vector<double>> partial(num_chunks,
                                           std::vector<double>(n, 0.0));
  GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
    XAI_OBS_SPAN("perm_chunk");
    const size_t lo = c * kPermutationChunk;
    const size_t hi = std::min(num_perms, lo + kPermutationChunk);
    // One batched evaluation for the whole chunk: every permutation
    // contributes its n+1 prefix coalitions (empty included).
    std::vector<std::vector<bool>> coalitions;
    coalitions.reserve((hi - lo) * (n + 1));
    for (size_t p = lo; p < hi; ++p) {
      std::vector<bool> cur(n, false);
      coalitions.push_back(cur);
      for (size_t k = 0; k < n; ++k) {
        cur[perms[p][k]] = true;
        coalitions.push_back(cur);
      }
    }
    const std::vector<double> vals = game.ValueBatch(coalitions);
    std::vector<double>& acc = partial[c];
    size_t off = 0;
    for (size_t p = lo; p < hi; ++p) {
      for (size_t k = 0; k < n; ++k)
        acc[perms[p][k]] += vals[off + k + 1] - vals[off + k];
      off += n + 1;
    }
  });

  // Chunk partials reduce in chunk order: the fixed summation tree that
  // keeps results independent of scheduling.
  for (const std::vector<double>& acc : partial)
    for (size_t i = 0; i < n; ++i) phi[i] += acc[i];
  for (double& v : phi) v /= static_cast<double>(num_perms);
  return phi;
}

Result<std::vector<double>> OwenValues(
    const CoalitionGame& game, const std::vector<std::vector<size_t>>& groups,
    int num_permutations, Rng* rng) {
  const size_t n = game.num_players();
  std::vector<int> owner(n, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t p : groups[g]) {
      if (p >= n || owner[p] != -1)
        return Status::InvalidArgument(
            "OwenValues: groups must partition the players");
      owner[p] = static_cast<int>(g);
    }
  }
  for (size_t p = 0; p < n; ++p)
    if (owner[p] == -1)
      return Status::InvalidArgument("OwenValues: player missing a group");

  std::vector<double> phi(n, 0.0);
  for (int t = 0; t < num_permutations; ++t) {
    XAI_OBS_COUNT("feature.shapley.owen_permutations");
    // Group-respecting permutation: shuffle groups and members, then walk
    // the full player order once, batching all n+1 prefix evaluations.
    std::vector<size_t> group_order = rng->Permutation(groups.size());
    std::vector<size_t> player_order;
    player_order.reserve(n);
    for (size_t gi : group_order) {
      std::vector<size_t> members = groups[gi];
      rng->Shuffle(&members);
      player_order.insert(player_order.end(), members.begin(), members.end());
    }
    std::vector<std::vector<bool>> coalitions;
    coalitions.reserve(n + 1);
    std::vector<bool> cur(n, false);
    coalitions.push_back(cur);
    for (size_t p : player_order) {
      cur[p] = true;
      coalitions.push_back(cur);
    }
    const std::vector<double> vals = game.ValueBatch(coalitions);
    for (size_t k = 0; k < n; ++k)
      phi[player_order[k]] += vals[k + 1] - vals[k];
  }
  for (double& v : phi) v /= static_cast<double>(num_permutations);
  return phi;
}

Result<Matrix> ExactShapleyInteractions(const CoalitionGame& game,
                                        int max_players) {
  const int n = static_cast<int>(game.num_players());
  if (n > max_players)
    return Status::InvalidArgument(
        "ExactShapleyInteractions: too many players");
  if (n == 0) return Matrix();

  const uint32_t full = (n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  std::vector<double> value(static_cast<size_t>(full) + 1);
  EnumerateAllCoalitions(game, static_cast<size_t>(full) + 1, &value);

  // Interaction weights by |S| (over N \ {i,j}).
  std::vector<double> w(static_cast<size_t>(std::max(1, n - 1)));
  for (int s = 0; s <= n - 2; ++s) {
    w[static_cast<size_t>(s)] =
        Factorial(s) * Factorial(n - s - 2) / (2.0 * Factorial(n - 1));
  }

  Matrix inter(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const uint32_t bij = (1u << i) | (1u << j);
      double total = 0.0;
      for (uint32_t mask = 0; mask <= full; ++mask) {
        if (mask & bij) continue;
        const double delta = value[mask | bij] - value[mask | (1u << i)] -
                             value[mask | (1u << j)] + value[mask];
        total += w[static_cast<size_t>(PopCount(mask))] * delta;
      }
      inter(static_cast<size_t>(i), static_cast<size_t>(j)) = total;
      inter(static_cast<size_t>(j), static_cast<size_t>(i)) = total;
    }
  }

  // Diagonal: phi_i minus the off-diagonal interactions (SHAP convention).
  XAI_ASSIGN_OR_RETURN(std::vector<double> phi,
                       ExactShapley(game, max_players));
  for (int i = 0; i < n; ++i) {
    double off = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) off += inter(static_cast<size_t>(i), static_cast<size_t>(j));
    inter(static_cast<size_t>(i), static_cast<size_t>(i)) =
        phi[static_cast<size_t>(i)] - off;
  }
  return inter;
}

std::vector<double> SampledBanzhaf(const CoalitionGame& game, int num_samples,
                                   Rng* rng) {
  const size_t n = game.num_players();
  std::vector<double> phi(n, 0.0);
  if (n == 0 || num_samples <= 0) return phi;
  XAI_OBS_COUNT_N("feature.shapley.banzhaf_samples",
                  static_cast<uint64_t>(num_samples));
  // Draw every (coalition, player) pair first, then evaluate the
  // without/with pairs in one batched sweep.
  std::vector<std::vector<bool>> coalitions;
  coalitions.reserve(2 * static_cast<size_t>(num_samples));
  std::vector<size_t> players(static_cast<size_t>(num_samples));
  std::vector<bool> coalition(n);
  for (int s = 0; s < num_samples; ++s) {
    for (size_t j = 0; j < n; ++j) coalition[j] = rng->Bernoulli(0.5);
    const size_t i = static_cast<size_t>(rng->NextInt(n));
    players[static_cast<size_t>(s)] = i;
    coalition[i] = false;
    coalitions.push_back(coalition);
    coalition[i] = true;
    coalitions.push_back(coalition);
  }
  const std::vector<double> vals = game.ValueBatch(coalitions);
  std::vector<int> counts(n, 0);
  for (int s = 0; s < num_samples; ++s) {
    const size_t i = players[static_cast<size_t>(s)];
    phi[i] += vals[2 * static_cast<size_t>(s) + 1] -
              vals[2 * static_cast<size_t>(s)];
    ++counts[i];
  }
  for (size_t i = 0; i < n; ++i)
    if (counts[i] > 0) phi[i] /= static_cast<double>(counts[i]);
  return phi;
}

}  // namespace xai
