#include "feature/shapley_flow.h"

#include <functional>

namespace xai {

double EdgeAttribution::InFlow(size_t node) const {
  double s = 0.0;
  for (const auto& [edge, credit] : edge_credit)
    if (edge.second == node) s += credit;
  return s;
}

double EdgeAttribution::OutFlow(size_t node) const {
  double s = 0.0;
  for (const auto& [edge, credit] : edge_credit)
    if (edge.first == node) s += credit;
  return s;
}

Result<EdgeAttribution> LinearShapleyFlow(
    const Scm& scm, size_t sink, const std::vector<double>& baseline,
    const std::vector<double>& instance) {
  const Dag& dag = scm.dag();
  const size_t n = dag.num_nodes();
  if (baseline.size() != n || instance.size() != n)
    return Status::InvalidArgument("ShapleyFlow: assignment size mismatch");
  if (sink >= n) return Status::OutOfRange("ShapleyFlow: bad sink");

  // Verify linearity (AnalyticMeanCov rejects non-linear equations).
  std::vector<double> mean_unused;
  Matrix cov_unused;
  XAI_RETURN_NOT_OK(scm.AnalyticMeanCov(&mean_unused, &cov_unused));

  // Recover each edge coefficient by differencing two interventional
  // evaluations under *common random numbers*: both runs clamp the same
  // parent set, so the noise draws are identical and cancel exactly —
  // one sample per probe suffices for a linear SCM.
  std::map<std::pair<size_t, size_t>, double> coeff;
  for (const auto& [u, v] : dag.edges()) {
    const auto& parents = dag.parents(v);
    std::vector<Intervention> dos0;
    std::vector<Intervention> dos1;
    for (size_t p : parents) {
      dos0.push_back({p, 0.0});
      dos1.push_back({p, p == u ? 1.0 : 0.0});
    }
    const uint64_t probe_seed = 99 + u * 131 + v;
    Rng rng1(probe_seed);
    Rng rng0(probe_seed);
    const double v1 = scm.SampleDo(dos1, &rng1)[v];
    const double v0 = scm.SampleDo(dos0, &rng0)[v];
    coeff[{u, v}] = v1 - v0;
  }

  // gain[v] = sum over paths v -> sink of edge-coefficient products
  // (gain[sink] = 1; nodes with no path to the sink get 0).
  std::vector<double> gain(n, 0.0);
  std::vector<bool> done(n, false);
  std::function<double(size_t)> downstream = [&](size_t u) -> double {
    if (u == sink) return 1.0;
    if (done[u]) return gain[u];
    double s = 0.0;
    for (size_t c : dag.children(u)) s += coeff[{u, c}] * downstream(c);
    done[u] = true;
    gain[u] = s;
    return s;
  };

  // Edge credit: the portion of the sink change flowing through (u, v) is
  // coeff(u,v) * (total delta at u) * gain(v). Flow conservation holds by
  // construction: out-flow(v) - in-flow(v) = exogenous delta injected at v
  // times gain(v), and in-flow(sink) = f(x) - f(baseline) when the sink is
  // purely determined by its parents.
  EdgeAttribution out;
  for (const auto& [u, v] : dag.edges()) {
    const double delta_u = instance[u] - baseline[u];
    out.edge_credit[{u, v}] = coeff[{u, v}] * delta_u * downstream(v);
  }
  out.sink_delta = instance[sink] - baseline[sink];
  return out;
}

}  // namespace xai
