#ifndef XAIDB_FEATURE_LIME_H_
#define XAIDB_FEATURE_LIME_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "core/perturb.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "model/model.h"

namespace xai {

struct LimeOptions {
  int num_samples = 1000;
  /// Exponential kernel width over the binary representation distance;
  /// <= 0 means the LIME default 0.75 * sqrt(d).
  double kernel_width = -1.0;
  /// Ridge regularization of the local surrogate.
  double lambda = 1e-3;
  /// Keep only the top-k features (0 = all): LIME's feature selection.
  int num_features = 0;
  uint64_t seed = 99;
};

/// LIME for tabular data (Ribeiro et al. 2016), tutorial Section 2.1.1:
/// samples perturbations of the instance, weights them by proximity with
/// an exponential kernel over the binary "interpretable representation",
/// and fits a weighted ridge regression whose coefficients are the
/// explanation. The sampling step is exactly the component the tutorial
/// flags as unreliable (Visani stability, Slack adversarial attacks);
/// experiments E3/E4 probe it.
class LimeExplainer : public AttributionExplainer {
 public:
  LimeExplainer(const Model& model, const Dataset& background,
                LimeOptions opts = {});

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Amortized multi-instance sweep: the background column statistics the
  /// perturber samples from are computed once at construction and shared
  /// by every row (and every solo Explain). The perturbation draws
  /// themselves restart from Rng(opts.seed) per row — they depend on the
  /// instance (numeric draws are centered on it), so re-drawing per row is
  /// exactly what keeps row i bit-identical to Explain(row i).
  Result<std::vector<FeatureAttribution>> ExplainBatch(
      const Matrix& instances) override;

  /// Local weighted R^2 of the last surrogate fit — LIME's own fidelity
  /// diagnostic.
  double last_local_r2() const { return last_local_r2_; }

 private:
  Result<FeatureAttribution> ExplainRow(const ColumnStats& stats,
                                        const std::vector<double>& instance);

  const Model& model_;
  const Dataset& background_;
  LimeOptions opts_;
  /// Background column statistics the perturber samples from. The
  /// background is borrowed and immutable for the explainer's lifetime, so
  /// these are computed once at construction — previously every solo
  /// Explain re-scanned the full background to rebuild identical stats.
  ColumnStats stats_;
  double last_local_r2_ = 0.0;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_LIME_H_
