#ifndef XAIDB_FEATURE_NECESSITY_SUFFICIENCY_H_
#define XAIDB_FEATURE_NECESSITY_SUFFICIENCY_H_

#include <vector>

#include "causal/scm.h"
#include "common/result.h"
#include "model/model.h"

namespace xai {

/// LEWIS-style probabilistic contrastive counterfactual scores (Galhotra,
/// Pradhan & Salimi 2021), tutorial Section 2.1.3/2.1.4. Counterfactual
/// reasoning is performed properly over an additive-noise SCM:
/// (1) *abduction* — recover each node's exogenous noise from the observed
///     full instance; (2) *action* — clamp the chosen features;
/// (3) *prediction* — propagate deterministically with the recovered noise.
class NecessitySufficiency {
 public:
  /// `feature_nodes[j]` maps model feature j to its SCM node. The SCM must
  /// be complete and its equations evaluable noise-free (linear or custom).
  NecessitySufficiency(const Model& model, const Scm& scm,
                       std::vector<size_t> feature_nodes,
                       uint64_t seed = 404);

  /// Counterfactual instance: given observed `instance` (values for every
  /// SCM node), intervene do(nodes in `features` := `values`) and return
  /// the resulting feature vector under recovered noise.
  std::vector<double> Counterfactual(const std::vector<double>& node_values,
                                     const std::vector<size_t>& features,
                                     const std::vector<double>& values) const;

  /// Necessity of S = `features` with the instance's values, for a
  /// positively-classified instance x: the probability (over alternative
  /// values of S drawn from the observational distribution) that
  /// counterfactually replacing x_S flips the prediction to negative.
  /// "Had S not taken these values, the outcome would not have occurred."
  Result<double> NecessityScore(const std::vector<double>& node_values,
                                const std::vector<size_t>& features,
                                int num_samples = 500) const;

  /// Sufficiency of S with values from x: the probability over
  /// negatively-classified individuals x' that counterfactually setting
  /// x'_S <- x_S makes the prediction positive.
  /// "Setting S to these values produces the outcome."
  Result<double> SufficiencyScore(const std::vector<double>& node_values,
                                  const std::vector<size_t>& features,
                                  int num_samples = 500) const;

 private:
  /// Abduction: per-node additive noise implied by a full assignment.
  std::vector<double> RecoverNoise(const std::vector<double>& node_values) const;
  /// Deterministic propagation with explicit noise and interventions.
  std::vector<double> Propagate(const std::vector<double>& noise,
                                const std::vector<size_t>& do_nodes,
                                const std::vector<double>& do_values) const;
  double PredictNodes(const std::vector<double>& node_values) const;

  const Model& model_;
  const Scm& scm_;
  std::vector<size_t> feature_nodes_;
  mutable Rng rng_;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_NECESSITY_SUFFICIENCY_H_
