#ifndef XAIDB_FEATURE_PROTOTYPES_H_
#define XAIDB_FEATURE_PROTOTYPES_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace xai {

/// Example-based explanations (tutorial Section 2's taxonomy: "some
/// return data points to make the model interpretable"): MMD-critic
/// style prototypes and criticisms (Kim, Khanna & Koyejo 2016).
/// *Prototypes* are data points whose empirical distribution matches the
/// dataset's (greedy maximum-mean-discrepancy minimization under an RBF
/// kernel); *criticisms* are the points the prototypes explain worst
/// (largest |MMD witness function|), surfacing the regions a
/// prototype-based mental model misses.
struct PrototypeReport {
  std::vector<size_t> prototypes;   // Row indices, in selection order.
  std::vector<size_t> criticisms;   // Row indices, in selection order.
  /// Final squared MMD between prototype set and data (lower = better).
  double mmd2 = 0.0;
};

struct PrototypeOptions {
  size_t num_prototypes = 5;
  size_t num_criticisms = 3;
  /// RBF kernel bandwidth; <= 0 selects the median pairwise distance
  /// heuristic.
  double bandwidth = -1.0;
  /// Cap on rows considered (kernel matrix is O(n^2)).
  size_t max_rows = 400;
};

Result<PrototypeReport> SelectPrototypes(const Dataset& ds,
                                         const PrototypeOptions& opts = PrototypeOptions());

}  // namespace xai

#endif  // XAIDB_FEATURE_PROTOTYPES_H_
