#ifndef XAIDB_FEATURE_CXPLAIN_H_
#define XAIDB_FEATURE_CXPLAIN_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"
#include "model/tree.h"

namespace xai {

struct CxplainOptions {
  /// Trees per per-feature importance regressor.
  TreeConfig tree = {.max_depth = 4, .min_samples_leaf = 10,
                     .max_features = 0};
  /// Rows of the reference data used to build importance targets.
  size_t max_train_rows = 500;
  /// Softmax temperature over the per-feature loss deltas.
  double temperature = 1.0;
};

/// CXPlain-style causal-objective surrogate (Schwab & Karlen 2019),
/// tutorial Section 2.1.3: instead of fitting a surrogate to the model's
/// *outputs* (vanilla surrogate explainability), fit it to a *causal
/// objective* — the per-feature "Granger-causal" importance defined as the
/// increase in the black box's deviation when feature j is masked
/// (mean-imputed). The surrogate (here: one regression tree per feature)
/// then produces explanations in a single forward pass, amortizing the
/// d+1 model evaluations per instance the direct computation needs.
class CxplainExplainer : public AttributionExplainer {
 public:
  /// Trains the importance surrogate against `model` on `reference` rows.
  static Result<CxplainExplainer> Fit(const Model& model,
                                      const Dataset& reference,
                                      const CxplainOptions& opts = CxplainOptions());

  /// Normalized importance scores from the surrogate (sum to 1).
  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// The training target the surrogate learns: softmax over per-feature
  /// masked-prediction deltas. Exposed so callers (and tests) can compare
  /// surrogate output against the direct computation.
  std::vector<double> DirectImportance(const std::vector<double>& instance) const;

 private:
  CxplainExplainer(const Model& model, Schema schema,
                   std::vector<double> column_means, double temperature)
      : model_(model), schema_(std::move(schema)),
        column_means_(std::move(column_means)), temperature_(temperature) {}

  const Model& model_;
  Schema schema_;
  std::vector<double> column_means_;
  double temperature_;
  std::vector<Tree> per_feature_trees_;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_CXPLAIN_H_
