#include "feature/mc_shapley.h"

#include "common/rng.h"
#include "core/game.h"
#include "feature/shapley.h"
#include "obs/obs.h"

namespace xai {

namespace {

/// The permutation set is instance-independent: every solo Explain draws
/// exactly this from Rng(opts.seed), which is what makes batched reuse
/// bit-identical.
std::vector<std::vector<size_t>> DrawPermutations(size_t d,
                                                  const McShapleyOptions& o) {
  Rng rng(o.seed);
  const size_t count =
      o.num_permutations > 0 ? static_cast<size_t>(o.num_permutations) : 0;
  std::vector<std::vector<size_t>> perms(count);
  for (auto& p : perms) p = rng.Permutation(d);
  return perms;
}

}  // namespace

McShapleyExplainer::McShapleyExplainer(const Model& model,
                                       const Dataset& background,
                                       McShapleyOptions opts)
    : model_(model),
      background_(background),
      opts_(opts),
      engine_(model, background.x(), opts.max_background,
              opts.cache ? opts.cache : GlobalEvalCache()) {}

Result<FeatureAttribution> McShapleyExplainer::ExplainRow(
    const std::vector<std::vector<size_t>>& perms,
    const std::vector<double>& instance) {
  if (instance.size() != background_.d())
    return Status::InvalidArgument("McShapley: instance arity != background");
  // The permutation sweep's prefix coalitions all route through the
  // engine: repeated prefixes (the empty and full coalitions in every
  // chunk, shared prefixes across permutations) collapse to one model
  // evaluation when a cache is attached.
  const CoalitionEvaluator::BoundGame game = engine_.Bind(instance);
  FeatureAttribution out;
  out.values = PermutationShapleyWithPerms(game, perms);
  for (size_t j = 0; j < instance.size(); ++j)
    out.feature_names.push_back(background_.schema().feature(j).name);
  out.base_value = game.BaseValue();
  out.prediction = model_.Predict(instance);
  return out;
}

Result<FeatureAttribution> McShapleyExplainer::Explain(
    const std::vector<double>& instance) {
  XAI_OBS_HIST_TIMER("feature.mc_shapley.explain_us");
  XAI_OBS_SPAN("mc_shapley");
  return ExplainRow(DrawPermutations(instance.size(), opts_), instance);
}

Result<std::vector<FeatureAttribution>> McShapleyExplainer::ExplainBatch(
    const Matrix& instances) {
  XAI_OBS_HIST_TIMER("feature.mc_shapley.explain_batch_us");
  XAI_OBS_SPAN("mc_shapley_batch");
  XAI_OBS_COUNT_N("feature.mc_shapley.batch_rows", instances.rows());
  XAI_OBS_TRACE_INSTANT("mc_shapley.batch_rows", instances.rows());
  if (instances.rows() == 0) return std::vector<FeatureAttribution>{};
  const std::vector<std::vector<size_t>> perms =
      DrawPermutations(instances.cols(), opts_);
  std::vector<FeatureAttribution> out;
  out.reserve(instances.rows());
  for (size_t i = 0; i < instances.rows(); ++i) {
    XAI_ASSIGN_OR_RETURN(FeatureAttribution attr,
                         ExplainRow(perms, instances.Row(i)));
    out.push_back(std::move(attr));
  }
  return out;
}

}  // namespace xai
