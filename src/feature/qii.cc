#include "feature/qii.h"

#include "core/game.h"
#include "feature/shapley.h"

namespace xai {
namespace {

/// Game with v(S) = E[f(x_S, X_~S resampled independently per column)].
/// Unlike MarginalFeatureGame (whole background rows), QII resamples each
/// missing feature independently, matching the paper's randomized
/// intervention semantics.
class QiiGame : public CoalitionGame {
 public:
  QiiGame(const Model& model, const Matrix& background,
          std::vector<double> instance, int num_samples, uint64_t seed)
      : model_(model), background_(background),
        instance_(std::move(instance)), num_samples_(num_samples),
        seed_(seed) {}

  size_t num_players() const override { return instance_.size(); }

  double Value(const std::vector<bool>& in_coalition) const override {
    const size_t d = instance_.size();
    uint64_t h = seed_;
    for (size_t j = 0; j < d; ++j)
      h = h * 1099511628211ULL + (in_coalition[j] ? 2 : 1);
    Rng rng(h);
    std::vector<double> x(d);
    double total = 0.0;
    for (int s = 0; s < num_samples_; ++s) {
      for (size_t j = 0; j < d; ++j) {
        if (in_coalition[j]) {
          x[j] = instance_[j];
        } else {
          const size_t r = static_cast<size_t>(rng.NextInt(background_.rows()));
          x[j] = background_(r, j);
        }
      }
      total += model_.Predict(x);
    }
    return total / static_cast<double>(num_samples_);
  }

 private:
  const Model& model_;
  const Matrix& background_;
  std::vector<double> instance_;
  int num_samples_;
  uint64_t seed_;
};

}  // namespace

QiiExplainer::QiiExplainer(const Model& model, const Dataset& background,
                           QiiOptions opts)
    : model_(model), background_(background), opts_(opts) {}

std::vector<double> QiiExplainer::UnaryInfluence(
    const std::vector<double>& instance) {
  const size_t d = instance.size();
  Rng rng(opts_.seed);
  const double fx = model_.Predict(instance);
  std::vector<double> out(d, 0.0);
  std::vector<double> x = instance;
  for (size_t j = 0; j < d; ++j) {
    double avg = 0.0;
    for (int s = 0; s < opts_.num_samples; ++s) {
      const size_t r =
          static_cast<size_t>(rng.NextInt(background_.x().rows()));
      x[j] = background_.x()(r, j);
      avg += model_.Predict(x);
    }
    x[j] = instance[j];
    out[j] = fx - avg / static_cast<double>(opts_.num_samples);
  }
  return out;
}

Result<FeatureAttribution> QiiExplainer::Explain(
    const std::vector<double>& instance) {
  if (instance.size() != background_.d())
    return Status::InvalidArgument("Qii: arity mismatch");
  QiiGame game(model_, background_.x(), instance, opts_.num_samples,
               opts_.seed);
  Rng rng(opts_.seed + 1);
  FeatureAttribution out;
  out.values = PermutationShapley(game, opts_.num_permutations, &rng);
  for (size_t j = 0; j < instance.size(); ++j)
    out.feature_names.push_back(background_.schema().feature(j).name);
  out.base_value = game.Value(std::vector<bool>(instance.size(), false));
  out.prediction = model_.Predict(instance);
  return out;
}

}  // namespace xai
