#include "feature/kernel_shap.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "math/combinatorics.h"
#include "math/linalg.h"
#include "obs/obs.h"

namespace xai {

namespace {
/// Coalitions per batched evaluation chunk. Fixed (thread-count
/// independent) boundaries + disjoint output slices keep the sweep
/// bit-identical for any XAIDB_THREADS.
constexpr size_t kCoalitionChunk = 64;
}  // namespace

double ShapleyKernelWeight(int d, int s) {
  if (s <= 0 || s >= d) return 0.0;  // Infinite weights handled as constraints.
  return static_cast<double>(d - 1) /
         (BinomialCoefficient(d, s) * static_cast<double>(s) *
          static_cast<double>(d - s));
}

Result<std::vector<double>> SolveKernelShap(
    const std::vector<std::vector<uint8_t>>& masks,
    const std::vector<double>& values, const std::vector<double>& weights,
    double base, double full, double lambda) {
  if (masks.empty()) return Status::InvalidArgument("KernelShap: no samples");
  const size_t d = masks[0].size();
  const double delta = full - base;
  if (d == 1) return std::vector<double>{delta};

  // Eliminate phi_{d-1} via the efficiency constraint.
  const size_t m = masks.size();
  Matrix a(m, d - 1);
  std::vector<double> y(m);
  for (size_t r = 0; r < m; ++r) {
    const double zd = masks[r][d - 1] ? 1.0 : 0.0;
    for (size_t j = 0; j + 1 < d; ++j)
      a(r, j) = (masks[r][j] ? 1.0 : 0.0) - zd;
    y[r] = values[r] - base - zd * delta;
  }
  XAI_ASSIGN_OR_RETURN(std::vector<double> head,
                       RidgeRegression(a, y, lambda, &weights));
  std::vector<double> phi(d);
  double sum_head = 0.0;
  for (size_t j = 0; j + 1 < d; ++j) {
    phi[j] = head[j];
    sum_head += head[j];
  }
  phi[d - 1] = delta - sum_head;
  return phi;
}

KernelShapExplainer::KernelShapExplainer(const Model& model,
                                         const Dataset& background,
                                         KernelShapOptions opts)
    : model_(model),
      background_(background),
      opts_(opts),
      engine_(model, background.x(), opts.max_background,
              opts.cache ? opts.cache : GlobalEvalCache()) {}

KernelShapExplainer::CoalitionDesign KernelShapExplainer::BuildDesign(
    int d) const {
  XAI_OBS_SPAN("sample");
  CoalitionDesign design;
  auto eval_mask = [&](std::vector<uint8_t> mask, double w) {
    XAI_OBS_COUNT("feature.kernel_shap.coalitions");
    design.masks.push_back(std::move(mask));
    design.weights.push_back(w);
  };

  if (d <= opts_.exact_up_to) {
    // Enumerate every proper non-empty coalition with its exact kernel
    // weight: the regression then recovers exact marginal-game Shapley
    // values.
    for (uint32_t m = 1; m + 1 < (1u << d); ++m) {
      std::vector<uint8_t> mask(d);
      for (int j = 0; j < d; ++j) mask[j] = (m >> j) & 1u;
      eval_mask(std::move(mask), ShapleyKernelWeight(d, PopCount(m)));
    }
  } else {
    Rng rng(opts_.seed);
    // Sample sizes proportional to total kernel mass per size, paired
    // (z, complement) for variance reduction.
    std::vector<double> size_mass(d, 0.0);
    for (int s = 1; s < d; ++s)
      size_mass[s] = ShapleyKernelWeight(d, s) * BinomialCoefficient(d, s);
    for (int k = 0; k < opts_.num_samples / 2; ++k) {
      const int s = static_cast<int>(rng.Categorical(size_mass));
      std::vector<size_t> chosen =
          rng.SampleWithoutReplacement(static_cast<size_t>(d),
                                       static_cast<size_t>(std::max(1, s)));
      std::vector<uint8_t> mask(d, 0);
      for (size_t j : chosen) mask[j] = 1;
      std::vector<uint8_t> comp(d);
      for (int j = 0; j < d; ++j) comp[j] = 1 - mask[j];
      eval_mask(std::move(mask), 1.0);
      eval_mask(std::move(comp), 1.0);
    }
  }
  return design;
}

Result<FeatureAttribution> KernelShapExplainer::ExplainRow(
    const CoalitionDesign& design, const std::vector<double>& instance) {
  const int d = static_cast<int>(instance.size());
  // All coalition evaluations below route through the engine: dedup
  // within each chunk's sweep, memoized across instances when a cache is
  // attached — and bit-identical to the direct game either way.
  const CoalitionEvaluator::BoundGame game = engine_.Bind(instance);
  std::vector<bool> coalition(d, false);
  const double base = game.Value(coalition);
  std::fill(coalition.begin(), coalition.end(), true);
  const double full = game.Value(coalition);

  // d == 1 has no proper coalitions: efficiency fixes phi directly.
  if (d == 1) {
    FeatureAttribution out;
    out.feature_names.push_back(background_.schema().feature(0).name);
    out.values = {full - base};
    out.base_value = base;
    out.prediction = model_.Predict(instance);
    return out;
  }

  const std::vector<std::vector<uint8_t>>& masks = design.masks;
  std::vector<double> values(masks.size());
  {
    XAI_OBS_SPAN("eval");
    XAI_OBS_GAUGE_SET("parallel.threads", GlobalThreadCount());
    XAI_OBS_TRACE_COUNTER("kernel_shap.coalitions", masks.size());
    const size_t num_chunks =
        (masks.size() + kCoalitionChunk - 1) / kCoalitionChunk;
    GlobalPool().ParallelFor(0, num_chunks, 1, [&](size_t c) {
      const size_t lo = c * kCoalitionChunk;
      const size_t hi = std::min(masks.size(), lo + kCoalitionChunk);
      std::vector<std::vector<bool>> coalitions(hi - lo,
                                                std::vector<bool>(d, false));
      for (size_t r = lo; r < hi; ++r)
        for (int j = 0; j < d; ++j) coalitions[r - lo][j] = masks[r][j] != 0;
      const std::vector<double> vals = game.ValueBatch(coalitions);
      std::copy(vals.begin(), vals.end(),
                values.begin() + static_cast<long>(lo));
    });
  }

  std::vector<double> phi;
  {
    XAI_OBS_SPAN("solve");
    XAI_ASSIGN_OR_RETURN(
        phi, SolveKernelShap(masks, values, design.weights, base, full,
                             opts_.lambda));
  }

  FeatureAttribution out;
  for (size_t j = 0; j < instance.size(); ++j)
    out.feature_names.push_back(background_.schema().feature(j).name);
  out.values = std::move(phi);
  out.base_value = base;
  out.prediction = model_.Predict(instance);
  return out;
}

Result<FeatureAttribution> KernelShapExplainer::Explain(
    const std::vector<double>& instance) {
  XAI_OBS_HIST_TIMER("feature.kernel_shap.explain_us");
  XAI_OBS_SPAN("kernel_shap");
  const CoalitionDesign design =
      BuildDesign(static_cast<int>(instance.size()));
  return ExplainRow(design, instance);
}

Result<std::vector<FeatureAttribution>> KernelShapExplainer::ExplainBatch(
    const Matrix& instances) {
  XAI_OBS_HIST_TIMER("feature.kernel_shap.explain_batch_us");
  XAI_OBS_SPAN("kernel_shap_batch");
  XAI_OBS_COUNT_N("feature.kernel_shap.batch_rows", instances.rows());
  XAI_OBS_TRACE_INSTANT("kernel_shap.batch_rows", instances.rows());
  if (instances.rows() == 0) return std::vector<FeatureAttribution>{};
  // One design for the whole sweep: the masks and weights depend only on
  // (d, opts), so every row would rebuild exactly this from Rng(seed).
  const CoalitionDesign design =
      BuildDesign(static_cast<int>(instances.cols()));
  std::vector<FeatureAttribution> out;
  out.reserve(instances.rows());
  for (size_t i = 0; i < instances.rows(); ++i) {
    XAI_ASSIGN_OR_RETURN(FeatureAttribution attr,
                         ExplainRow(design, instances.Row(i)));
    out.push_back(std::move(attr));
  }
  return out;
}

}  // namespace xai
