#ifndef XAIDB_FEATURE_SURROGATE_H_
#define XAIDB_FEATURE_SURROGATE_H_

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "model/decision_tree.h"
#include "model/linear_regression.h"
#include "model/model.h"

namespace xai {

/// Global surrogate models (tutorial Section 2.1.1): fit an inherently
/// interpretable model to the *black box's predictions* and read the
/// surrogate as the explanation. Fidelity quantifies how much of the black
/// box the surrogate actually captures.
struct GlobalSurrogate {
  /// R^2 of the surrogate against the black-box outputs on held-out rows
  /// (how faithful the explanation is).
  double fidelity_r2 = 0.0;
};

/// Distills the model into a single decision tree over `reference` rows.
struct TreeSurrogate : GlobalSurrogate {
  DecisionTree tree;
};
Result<TreeSurrogate> FitTreeSurrogate(const Model& model,
                                       const Dataset& reference,
                                       const TreeConfig& config = {});

/// Distills the model into a global linear approximation.
struct LinearSurrogate : GlobalSurrogate {
  LinearRegression linear;
};
Result<LinearSurrogate> FitLinearSurrogate(const Model& model,
                                           const Dataset& reference);

}  // namespace xai

#endif  // XAIDB_FEATURE_SURROGATE_H_
