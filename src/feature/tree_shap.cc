#include "feature/tree_shap.h"

#include <cmath>

#include "math/combinatorics.h"
#include "obs/obs.h"

namespace xai {
namespace {

/// One element of the unique-feature path maintained by the algorithm.
struct PathElement {
  int feature;  // -1 for the root placeholder.
  double zero;  // Fraction of paths flowing through when feature absent.
  double one;   // 1 if the instance's value goes this way, else 0.
  double w;     // Permutation weight accumulated so far.
};

/// Grows the path by one split, updating permutation weights.
void Extend(std::vector<PathElement>* m, double pz, double po, int pi) {
  const int l = static_cast<int>(m->size());
  m->push_back({pi, pz, po, l == 0 ? 1.0 : 0.0});
  auto& p = *m;
  for (int i = l - 1; i >= 0; --i) {
    p[i + 1].w += po * p[i].w * static_cast<double>(i + 1) /
                  static_cast<double>(l + 1);
    p[i].w = pz * p[i].w * static_cast<double>(l - i) /
             static_cast<double>(l + 1);
  }
}

/// Total permutation weight if element `idx` were removed (without
/// mutating the path).
double UnwoundSum(const std::vector<PathElement>& m, size_t idx) {
  const int l = static_cast<int>(m.size()) - 1;
  const double one = m[idx].one;
  const double zero = m[idx].zero;
  double next = m[static_cast<size_t>(l)].w;
  double total = 0.0;
  for (int i = l - 1; i >= 0; --i) {
    if (one != 0.0) {
      const double tmp = next * static_cast<double>(l + 1) /
                         (static_cast<double>(i + 1) * one);
      total += tmp;
      next = m[static_cast<size_t>(i)].w -
             tmp * zero * static_cast<double>(l - i) /
                 static_cast<double>(l + 1);
    } else {
      total += m[static_cast<size_t>(i)].w / zero *
               static_cast<double>(l + 1) / static_cast<double>(l - i);
    }
  }
  return total;
}

/// Removes element `idx` from the path, restoring weights.
void Unwind(std::vector<PathElement>* m, size_t idx) {
  auto& p = *m;
  const int l = static_cast<int>(p.size()) - 1;
  const double one = p[idx].one;
  const double zero = p[idx].zero;
  double next = p[static_cast<size_t>(l)].w;
  for (int i = l - 1; i >= 0; --i) {
    if (one != 0.0) {
      const double tmp = p[static_cast<size_t>(i)].w;
      p[static_cast<size_t>(i)].w = next * static_cast<double>(l + 1) /
                                    (static_cast<double>(i + 1) * one);
      next = tmp - p[static_cast<size_t>(i)].w * zero *
                       static_cast<double>(l - i) /
                       static_cast<double>(l + 1);
    } else {
      p[static_cast<size_t>(i)].w = p[static_cast<size_t>(i)].w *
                                    static_cast<double>(l + 1) /
                                    (zero * static_cast<double>(l - i));
    }
  }
  for (size_t i = idx; i < static_cast<size_t>(l); ++i) {
    p[i].feature = p[i + 1].feature;
    p[i].zero = p[i + 1].zero;
    p[i].one = p[i + 1].one;
  }
  p.pop_back();
}

void Recurse(const Tree& tree, const std::vector<double>& x,
             std::vector<double>* phi, int node,
             std::vector<PathElement> path,  // By value: one copy per call.
             double pz, double po, int pi) {
  Extend(&path, pz, po, pi);
  const TreeNode& nd = tree.nodes[static_cast<size_t>(node)];
  if (nd.is_leaf()) {
    for (size_t i = 1; i < path.size(); ++i) {
      const double w = UnwoundSum(path, i);
      (*phi)[static_cast<size_t>(path[i].feature)] +=
          w * (path[i].one - path[i].zero) * nd.value;
    }
    return;
  }
  const bool go_left = x[static_cast<size_t>(nd.feature)] <= nd.threshold;
  const int hot = go_left ? nd.left : nd.right;
  const int cold = go_left ? nd.right : nd.left;
  const double hot_z =
      tree.nodes[static_cast<size_t>(hot)].cover / nd.cover;
  const double cold_z =
      tree.nodes[static_cast<size_t>(cold)].cover / nd.cover;
  double iz = 1.0;
  double io = 1.0;
  size_t k = 1;
  while (k < path.size() && path[k].feature != nd.feature) ++k;
  if (k < path.size()) {
    iz = path[k].zero;
    io = path[k].one;
    Unwind(&path, k);
  }
  Recurse(tree, x, phi, hot, path, iz * hot_z, io, nd.feature);
  Recurse(tree, x, phi, cold, path, iz * cold_z, 0.0, nd.feature);
}

/// The same recursion over the compiled SoA arrays: node reads become
/// indexed loads, the path-weight arithmetic is untouched, so every phi it
/// produces is the same double as the node-based Recurse above.
void FlatRecurse(const FlatEnsemble& ens, const double* x,
                 std::vector<double>* phi, int32_t node,
                 std::vector<PathElement> path,  // By value, as above.
                 double pz, double po, int pi) {
  Extend(&path, pz, po, pi);
  if (ens.is_leaf(node)) {
    const double leaf_value = ens.value(node);
    for (size_t i = 1; i < path.size(); ++i) {
      const double w = UnwoundSum(path, i);
      (*phi)[static_cast<size_t>(path[i].feature)] +=
          w * (path[i].one - path[i].zero) * leaf_value;
    }
    return;
  }
  const int feature = ens.feature(node);
  const bool go_left =
      x[static_cast<size_t>(feature)] <= ens.threshold(node);
  const int32_t hot = go_left ? ens.left(node) : ens.right(node);
  const int32_t cold = go_left ? ens.right(node) : ens.left(node);
  const double node_cover = ens.cover(node);
  const double hot_z = ens.cover(hot) / node_cover;
  const double cold_z = ens.cover(cold) / node_cover;
  double iz = 1.0;
  double io = 1.0;
  size_t k = 1;
  while (k < path.size() && path[k].feature != feature) ++k;
  if (k < path.size()) {
    iz = path[k].zero;
    io = path[k].one;
    Unwind(&path, k);
  }
  FlatRecurse(ens, x, phi, hot, path, iz * hot_z, io, feature);
  FlatRecurse(ens, x, phi, cold, path, iz * cold_z, 0.0, feature);
}

}  // namespace

void TreeShapValues(const Tree& tree, const std::vector<double>& x,
                    std::vector<double>* phi) {
  XAI_OBS_COUNT("feature.tree_shap.path_walks");
  Recurse(tree, x, phi, 0, {}, 1.0, 1.0, -1);
}

void FlatTreeShapValues(const FlatEnsemble& ensemble, size_t t,
                        const double* x, std::vector<double>* phi) {
  XAI_OBS_COUNT("feature.tree_shap.path_walks");
  FlatRecurse(ensemble, x, phi, ensemble.root(t), {}, 1.0, 1.0, -1);
}

std::vector<double> EnsembleTreeShap(const std::vector<Tree>& trees,
                                     double scale, size_t num_features,
                                     const std::vector<double>& x) {
  std::vector<double> phi(num_features, 0.0);
  std::vector<double> tree_phi(num_features, 0.0);
  for (const Tree& t : trees) {
    std::fill(tree_phi.begin(), tree_phi.end(), 0.0);
    TreeShapValues(t, x, &tree_phi);
    for (size_t j = 0; j < num_features; ++j) phi[j] += scale * tree_phi[j];
  }
  return phi;
}

TreePathGame::TreePathGame(const std::vector<Tree>& trees, double scale,
                           size_t num_features, std::vector<double> instance)
    : trees_(trees), scale_(scale), instance_(std::move(instance)) {
  (void)num_features;
}

double TreePathGame::NodeExpectation(const Tree& tree, int node,
                                     const std::vector<bool>& s) const {
  const TreeNode& nd = tree.nodes[static_cast<size_t>(node)];
  if (nd.is_leaf()) return nd.value;
  if (s[static_cast<size_t>(nd.feature)]) {
    const int next =
        instance_[static_cast<size_t>(nd.feature)] <= nd.threshold
            ? nd.left
            : nd.right;
    return NodeExpectation(tree, next, s);
  }
  const double cl = tree.nodes[static_cast<size_t>(nd.left)].cover;
  const double cr = tree.nodes[static_cast<size_t>(nd.right)].cover;
  return (cl * NodeExpectation(tree, nd.left, s) +
          cr * NodeExpectation(tree, nd.right, s)) /
         (cl + cr);
}

double TreePathGame::Value(const std::vector<bool>& in_coalition) const {
  double total = 0.0;
  for (const Tree& t : trees_)
    total += scale_ * NodeExpectation(t, 0, in_coalition);
  return total;
}

TreeShapExplainer::TreeShapExplainer(const GradientBoostedTrees& gbdt,
                                     const Schema& schema)
    : flat_(&gbdt.flat()), scale_(gbdt.learning_rate()),
      num_features_(gbdt.num_features()), schema_(schema) {
  base_ = gbdt.base_score();
  for (size_t t = 0; t < flat_->num_trees(); ++t)
    base_ += gbdt.learning_rate() * flat_->expected_value(t);
}

TreeShapExplainer::TreeShapExplainer(const DecisionTree& tree,
                                     const Schema& schema)
    : flat_(&tree.flat()), scale_(1.0), num_features_(tree.num_features()),
      schema_(schema) {
  base_ = flat_->expected_value(0);
}

TreeShapExplainer::TreeShapExplainer(const RandomForest& forest,
                                     const Schema& schema)
    : flat_(&forest.flat()),
      scale_(1.0 / static_cast<double>(forest.trees().size())),
      num_features_(forest.num_features()), schema_(schema) {
  base_ = 0.0;
  for (size_t t = 0; t < flat_->num_trees(); ++t)
    base_ += scale_ * flat_->expected_value(t);
}

Result<FeatureAttribution> TreeShapExplainer::Explain(
    const std::vector<double>& instance) {
  XAI_OBS_HIST_TIMER("feature.tree_shap.explain_us");
  XAI_OBS_SPAN("tree_shap");
  if (instance.size() != num_features_)
    return Status::InvalidArgument("TreeShap: instance arity mismatch");
  FeatureAttribution out;
  out.values.assign(num_features_, 0.0);
  std::vector<double> tree_phi(num_features_, 0.0);
  double margin = base_;
  for (size_t t = 0; t < flat_->num_trees(); ++t) {
    std::fill(tree_phi.begin(), tree_phi.end(), 0.0);
    FlatTreeShapValues(*flat_, t, instance.data(), &tree_phi);
    for (size_t j = 0; j < num_features_; ++j)
      out.values[j] += scale_ * tree_phi[j];
    margin += scale_ * (flat_->PredictTree(t, instance.data()) -
                        flat_->expected_value(t));
  }
  for (size_t j = 0; j < num_features_; ++j)
    out.feature_names.push_back(schema_.feature(j).name);
  out.base_value = base_;
  out.prediction = margin;
  return out;
}

Result<std::vector<FeatureAttribution>> TreeShapExplainer::ExplainBatch(
    const Matrix& instances) {
  XAI_OBS_HIST_TIMER("feature.tree_shap.explain_batch_us");
  XAI_OBS_SPAN("tree_shap_batch");
  XAI_OBS_COUNT_N("feature.tree_shap.batch_rows", instances.rows());
  XAI_OBS_TRACE_INSTANT("tree_shap.batch_rows", instances.rows());
  const size_t n = instances.rows();
  if (n == 0) return std::vector<FeatureAttribution>{};
  if (instances.cols() != num_features_)
    return Status::InvalidArgument("TreeShap: instance arity mismatch");

  std::vector<FeatureAttribution> out(n);
  std::vector<double> margins(n, base_);
  for (FeatureAttribution& attr : out) attr.values.assign(num_features_, 0.0);

  // Tree-outer / row-inner: one tree's flat arrays serve the whole row
  // block before the next tree is touched. Per row the accumulation order
  // over trees is unchanged, so values match the per-row loop bit-for-bit.
  // The per-tree expected value is a precomputed array read, and rows are
  // walked straight out of the Matrix buffer (no per-row copy).
  std::vector<double> tree_phi(num_features_, 0.0);
  for (size_t t = 0; t < flat_->num_trees(); ++t) {
    const double expected = flat_->expected_value(t);
    for (size_t i = 0; i < n; ++i) {
      const double* r = instances.RowPtr(i);
      std::fill(tree_phi.begin(), tree_phi.end(), 0.0);
      FlatTreeShapValues(*flat_, t, r, &tree_phi);
      std::vector<double>& phi = out[i].values;
      for (size_t j = 0; j < num_features_; ++j)
        phi[j] += scale_ * tree_phi[j];
      margins[i] += scale_ * (flat_->PredictTree(t, r) - expected);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < num_features_; ++j)
      out[i].feature_names.push_back(schema_.feature(j).name);
    out[i].base_value = base_;
    out[i].prediction = margins[i];
  }
  return out;
}

namespace {

/// DFS state for interventional TreeSHAP: which unique path features were
/// resolved toward the instance (X) or the reference (B).
struct InterventionalWalker {
  const Tree& tree;
  const std::vector<double>& x;
  const std::vector<double>& ref;
  std::vector<double>* phi;
  // assignment[f]: 0 = unseen, 1 = instance side, 2 = reference side.
  std::vector<uint8_t> assignment;
  std::vector<int> x_features;
  std::vector<int> b_features;

  void Walk(int node) {
    const TreeNode& nd = tree.nodes[static_cast<size_t>(node)];
    if (nd.is_leaf()) {
      const double nx = static_cast<double>(x_features.size());
      const double nb = static_cast<double>(b_features.size());
      if (nx + nb == 0.0) return;  // Same leaf for x and ref: no credit.
      // (|X|-1)! |B|! / (|X|+|B|)! and the mirrored term, computed via
      // the binomial form to stay in range.
      if (!x_features.empty()) {
        const double w_pos =
            1.0 / (nx * BinomialCoefficient(static_cast<int>(nx + nb),
                                            static_cast<int>(nb)));
        for (int f : x_features)
          (*phi)[static_cast<size_t>(f)] += w_pos * nd.value;
      }
      if (!b_features.empty()) {
        const double w_neg =
            1.0 / (nb * BinomialCoefficient(static_cast<int>(nx + nb),
                                            static_cast<int>(nx)));
        for (int f : b_features)
          (*phi)[static_cast<size_t>(f)] -= w_neg * nd.value;
      }
      return;
    }
    const size_t f = static_cast<size_t>(nd.feature);
    const int x_child = x[f] <= nd.threshold ? nd.left : nd.right;
    const int b_child = ref[f] <= nd.threshold ? nd.left : nd.right;
    if (x_child == b_child) {
      Walk(x_child);  // Feature neutral at this node.
      return;
    }
    switch (assignment[f]) {
      case 1:
        Walk(x_child);
        return;
      case 2:
        Walk(b_child);
        return;
      default:
        break;
    }
    // Unseen: branch both ways, assigning the feature each side.
    assignment[f] = 1;
    x_features.push_back(nd.feature);
    Walk(x_child);
    x_features.pop_back();
    assignment[f] = 2;
    b_features.push_back(nd.feature);
    Walk(b_child);
    b_features.pop_back();
    assignment[f] = 0;
  }
};

}  // namespace

void InterventionalTreeShap(const Tree& tree, const std::vector<double>& x,
                            const std::vector<double>& reference,
                            std::vector<double>* phi) {
  XAI_OBS_COUNT("feature.tree_shap.interventional_walks");
  InterventionalWalker walker{tree, x, reference, phi,
                              std::vector<uint8_t>(x.size(), 0),
                              {},
                              {}};
  walker.Walk(0);
}

std::vector<double> InterventionalEnsembleShap(
    const std::vector<Tree>& trees, double scale, size_t num_features,
    const std::vector<double>& x, const Matrix& background,
    size_t max_background) {
  std::vector<double> phi(num_features, 0.0);
  const size_t m = std::min(background.rows(), max_background);
  const size_t stride = std::max<size_t>(1, background.rows() / m);
  std::vector<double> ref(num_features);
  std::vector<double> phi_one(num_features);
  size_t used = 0;
  for (size_t b = 0; b < m; ++b) {
    const size_t src = std::min(b * stride, background.rows() - 1);
    ref.assign(background.RowPtr(src),
               background.RowPtr(src) + background.cols());
    std::fill(phi_one.begin(), phi_one.end(), 0.0);
    for (const Tree& t : trees) InterventionalTreeShap(t, x, ref, &phi_one);
    for (size_t j = 0; j < num_features; ++j) phi[j] += scale * phi_one[j];
    ++used;
  }
  for (double& v : phi) v /= static_cast<double>(used);
  return phi;
}

std::vector<double> GlobalMeanAbsShap(TreeShapExplainer* explainer,
                                      const Dataset& ds, size_t max_rows) {
  const size_t n = std::min(ds.n(), max_rows);
  std::vector<double> importance(ds.d(), 0.0);
  // One amortized sweep instead of the deprecated per-row Explain loop.
  Matrix rows(n, ds.d());
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));
  auto attrs = explainer->ExplainBatch(rows);
  if (!attrs.ok()) return importance;
  for (const FeatureAttribution& attr : *attrs)
    for (size_t j = 0; j < ds.d(); ++j)
      importance[j] += std::fabs(attr.values[j]);
  for (double& v : importance) v /= static_cast<double>(n);
  return importance;
}

}  // namespace xai
