#ifndef XAIDB_FEATURE_EXPLAINER_FACTORY_H_
#define XAIDB_FEATURE_EXPLAINER_FACTORY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/mc_shapley.h"
#include "model/model.h"

namespace xai {

/// The attribution families the factory can build. One registry shared by
/// the CLI, the benchmarks and the serving layer so the string → explainer
/// mapping lives in exactly one place.
enum class ExplainerKind {
  kTreeShap,
  kKernelShap,
  kLime,
  kMcShapley,
};

/// "treeshap" | "kernelshap" | "lime" | "mcshapley" (the CLI's mode
/// names). InvalidArgument on anything else.
Result<ExplainerKind> ParseExplainerKind(const std::string& name);

/// Inverse of ParseExplainerKind.
const char* ExplainerKindName(ExplainerKind kind);

/// Per-family options, carried together so call sites can forward one
/// config object regardless of kind. Only the active family's options are
/// read by MakeExplainer.
struct ExplainerConfig {
  KernelShapOptions kernel_shap;
  LimeOptions lime;
  McShapleyOptions mc_shapley;
  /// When set, MakeExplainer installs this coalition-value cache into the
  /// built explainer (overriding any per-family cache above). Excluded
  /// from Fingerprint on purpose: caching never changes output bits, so a
  /// cached and an uncached explainer are interchangeable for coalescing.
  std::shared_ptr<CoalitionValueCache> cache;

  /// Stable hash of (kind + the option fields that family reads). Two
  /// configs with equal fingerprints build explainers that produce
  /// bit-identical attributions, which is what lets the serving layer use
  /// it as a coalescing key.
  uint64_t Fingerprint(ExplainerKind kind) const;
};

/// Builds an explainer of `kind` over `model` + `background`. TreeSHAP
/// requires a tree model (GradientBoostedTrees, DecisionTree or
/// RandomForest) and returns InvalidArgument for anything else; the
/// model-agnostic families accept any Model. The returned explainer
/// borrows `model` and `background` — both must outlive it.
Result<std::unique_ptr<AttributionExplainer>> MakeExplainer(
    ExplainerKind kind, const Model& model, const Dataset& background,
    const ExplainerConfig& config = {});

}  // namespace xai

#endif  // XAIDB_FEATURE_EXPLAINER_FACTORY_H_
