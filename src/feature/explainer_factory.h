#ifndef XAIDB_FEATURE_EXPLAINER_FACTORY_H_
#define XAIDB_FEATURE_EXPLAINER_FACTORY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "feature/kernel_shap.h"
#include "feature/lime.h"
#include "feature/mc_shapley.h"
#include "model/model.h"
#include "model/registry.h"

namespace xai {

/// The attribution families the factory can build. One registry shared by
/// the CLI, the benchmarks and the serving layer so the string → explainer
/// mapping lives in exactly one place.
enum class ExplainerKind {
  kTreeShap,
  kKernelShap,
  kLime,
  kMcShapley,
};

/// "treeshap" | "kernelshap" | "lime" | "mcshapley" (the CLI's mode
/// names). InvalidArgument on anything else.
Result<ExplainerKind> ParseExplainerKind(const std::string& name);

/// Inverse of ParseExplainerKind.
const char* ExplainerKindName(ExplainerKind kind);

/// Per-family options, carried together so call sites can forward one
/// config object regardless of kind. Only the active family's options are
/// read by MakeExplainer.
struct ExplainerConfig {
  KernelShapOptions kernel_shap;
  LimeOptions lime;
  McShapleyOptions mc_shapley;
  /// When set, MakeExplainer installs this coalition-value cache into the
  /// built explainer (overriding any per-family cache above). Excluded
  /// from Fingerprint on purpose: caching never changes output bits, so a
  /// cached and an uncached explainer are interchangeable for coalescing.
  std::shared_ptr<CoalitionValueCache> cache;

  /// Identity of the model the explainer runs against, normally
  /// ModelHandle::fingerprint(). Hashed into Fingerprint so configs bound
  /// to different model versions never collide. Zero means "model-
  /// agnostic": the serving layer uses a zeroed copy as the *family* key
  /// (which explainer + options, any version) for caches and history that
  /// deliberately survive a hot-swap.
  uint64_t model_fingerprint = 0;

  /// Stable hash of (kind + model_fingerprint + the option fields that
  /// family reads).
  ///
  /// Coalescing-key contract: two requests may share a coalescing batch —
  /// and therefore a cached explanation — only if their Fingerprints are
  /// equal, which requires (a) the same explainer kind, (b) bit-equal
  /// values for every option that kind reads, and (c) the same
  /// model_fingerprint, i.e. the same model *version*. Equal fingerprints
  /// must imply bit-identical attributions for the same instance; any new
  /// field that can change output bits must be hashed here. During a
  /// hot-swap this is what isolates versions: pre-swap and post-swap
  /// requests differ in (c), so they never coalesce even mid-flip.
  uint64_t Fingerprint(ExplainerKind kind) const;
};

/// Builds an explainer of `kind` over the model behind `handle` +
/// `background`. TreeSHAP requires a tree model (GradientBoostedTrees,
/// DecisionTree or RandomForest) and returns InvalidArgument for anything
/// else; the model-agnostic families accept any Model. The returned
/// explainer borrows the model — callers must hold `handle` (or another
/// handle to the same version) and keep `background` alive for the
/// explainer's lifetime. Wrap a plain in-memory model with
/// ModelHandle::Borrow.
Result<std::unique_ptr<AttributionExplainer>> MakeExplainer(
    ExplainerKind kind, const ModelHandle& handle, const Dataset& background,
    const ExplainerConfig& config = {});

}  // namespace xai

#endif  // XAIDB_FEATURE_EXPLAINER_FACTORY_H_
