#ifndef XAIDB_FEATURE_KERNEL_SHAP_H_
#define XAIDB_FEATURE_KERNEL_SHAP_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "core/game.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

struct KernelShapOptions {
  /// Coalition samples (ignored when exact enumeration is feasible).
  int num_samples = 2048;
  /// Enumerate all coalitions when d <= this (gives the exact Shapley
  /// values of the marginal game).
  int exact_up_to = 13;
  /// Background rows used by the marginal value function.
  size_t max_background = 50;
  /// Ridge stabilizer for the weighted regression.
  double lambda = 1e-9;
  uint64_t seed = 1234;
};

/// KernelSHAP (Lundberg & Lee 2017): recovers Shapley values of the
/// marginal feature game as the solution of a weighted linear regression
/// with the Shapley kernel
///   k(z) = (d-1) / (C(d,|z|) |z| (d-|z|)),
/// subject to the efficiency constraint sum(phi) = f(x) - E[f]. The
/// model-agnostic workhorse of tutorial Section 2.1.2.
class KernelShapExplainer : public AttributionExplainer {
 public:
  KernelShapExplainer(const Model& model, const Dataset& background,
                      KernelShapOptions opts = {});

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

 private:
  const Model& model_;
  const Dataset& background_;
  KernelShapOptions opts_;
};

/// Shapley kernel weight for coalition size s of d players.
double ShapleyKernelWeight(int d, int s);

/// Solves the constrained Shapley-kernel weighted regression given
/// evaluated coalitions. Exposed for testing and for the adversarial
/// module. `masks` are coalition indicators, `values` the game values,
/// `base` = v(empty), `full` = v(all).
Result<std::vector<double>> SolveKernelShap(
    const std::vector<std::vector<uint8_t>>& masks,
    const std::vector<double>& values, const std::vector<double>& weights,
    double base, double full, double lambda);

}  // namespace xai

#endif  // XAIDB_FEATURE_KERNEL_SHAP_H_
