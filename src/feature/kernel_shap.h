#ifndef XAIDB_FEATURE_KERNEL_SHAP_H_
#define XAIDB_FEATURE_KERNEL_SHAP_H_

#include <vector>

#include "common/result.h"
#include "core/eval_engine.h"
#include "core/explainer.h"
#include "core/game.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

struct KernelShapOptions {
  /// Coalition samples (ignored when exact enumeration is feasible).
  int num_samples = 2048;
  /// Enumerate all coalitions when d <= this (gives the exact Shapley
  /// values of the marginal game).
  int exact_up_to = 13;
  /// Background rows used by the marginal value function.
  size_t max_background = 50;
  /// Ridge stabilizer for the weighted regression.
  double lambda = 1e-9;
  uint64_t seed = 1234;
  /// Coalition-value memo cache shared with other explainers over the
  /// same (model, background). Null falls back to GlobalEvalCache()
  /// (off unless XAIDB_CACHE / --cache-size turned it on). Caching never
  /// changes output bits — only which evaluations reach the model.
  std::shared_ptr<CoalitionValueCache> cache;
};

/// KernelSHAP (Lundberg & Lee 2017): recovers Shapley values of the
/// marginal feature game as the solution of a weighted linear regression
/// with the Shapley kernel
///   k(z) = (d-1) / (C(d,|z|) |z| (d-|z|)),
/// subject to the efficiency constraint sum(phi) = f(x) - E[f]. The
/// model-agnostic workhorse of tutorial Section 2.1.2.
class KernelShapExplainer : public AttributionExplainer {
 public:
  KernelShapExplainer(const Model& model, const Dataset& background,
                      KernelShapOptions opts = {});

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Amortized multi-instance sweep: the coalition design (enumerated or
  /// sampled masks plus kernel weights) depends only on (d, opts), so it
  /// is built once and reused for every row — the "one coalition-design
  /// reused across rows" sharing. Row i is bit-identical to Explain(row i),
  /// which rebuilds the same design from the same seed.
  Result<std::vector<FeatureAttribution>> ExplainBatch(
      const Matrix& instances) override;

 private:
  /// The instance-independent half of KernelSHAP: which coalitions to
  /// evaluate and their regression weights.
  struct CoalitionDesign {
    std::vector<std::vector<uint8_t>> masks;
    std::vector<double> weights;
  };
  CoalitionDesign BuildDesign(int d) const;
  Result<FeatureAttribution> ExplainRow(const CoalitionDesign& design,
                                        const std::vector<double>& instance);

  const Model& model_;
  const Dataset& background_;
  KernelShapOptions opts_;
  /// Shared coalition-evaluation engine: one background subsample for the
  /// explainer's lifetime, and the memo cache the per-instance games
  /// route through.
  CoalitionEvaluator engine_;
};

/// Shapley kernel weight for coalition size s of d players.
double ShapleyKernelWeight(int d, int s);

/// Solves the constrained Shapley-kernel weighted regression given
/// evaluated coalitions. Exposed for testing and for the adversarial
/// module. `masks` are coalition indicators, `values` the game values,
/// `base` = v(empty), `full` = v(all).
Result<std::vector<double>> SolveKernelShap(
    const std::vector<std::vector<uint8_t>>& masks,
    const std::vector<double>& values, const std::vector<double>& weights,
    double base, double full, double lambda);

}  // namespace xai

#endif  // XAIDB_FEATURE_KERNEL_SHAP_H_
