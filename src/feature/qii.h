#ifndef XAIDB_FEATURE_QII_H_
#define XAIDB_FEATURE_QII_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

struct QiiOptions {
  /// Monte-Carlo resampling draws per evaluation.
  int num_samples = 200;
  /// Permutations for the Shapley aggregation of set influence.
  int num_permutations = 30;
  uint64_t seed = 77;
};

/// Quantitative Input Influence (Datta, Sen & Zick 2016), tutorial Section
/// 2.1.2. Unary QII of feature i on an instance:
///   iota(i) = E[f(x)] - E[f(x with X_i resampled from the data marginal)]
/// Set QII aggregates marginal influence across feature sets with the
/// Shapley value (implemented by permutation sampling over the
/// resample-based game).
class QiiExplainer : public AttributionExplainer {
 public:
  QiiExplainer(const Model& model, const Dataset& background,
               QiiOptions opts = {});

  /// Shapley-aggregated set QII.
  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Unary QII per feature (cheaper; no interaction accounting).
  std::vector<double> UnaryInfluence(const std::vector<double>& instance);

 private:
  const Model& model_;
  const Dataset& background_;
  QiiOptions opts_;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_QII_H_
