#include "feature/integrated_gradients.h"

#include <cmath>

#include "data/transforms.h"

namespace xai {

IntegratedGradientsExplainer::IntegratedGradientsExplainer(
    const Model& model, const Dataset& reference,
    std::vector<double> baseline, IntegratedGradientsOptions opts)
    : model_(model), schema_(reference.schema()),
      baseline_(std::move(baseline)), opts_(opts) {
  const ColumnStats stats = ComputeColumnStats(reference);
  if (baseline_.empty()) baseline_ = stats.mean;
  scale_.resize(reference.d());
  for (size_t j = 0; j < reference.d(); ++j)
    scale_[j] = std::max(stats.std[j], 1e-9);
}

std::vector<double> IntegratedGradientsExplainer::NumericGradient(
    const std::vector<double>& at) const {
  const size_t d = at.size();
  std::vector<double> grad(d);
  std::vector<double> probe = at;
  for (size_t j = 0; j < d; ++j) {
    const double h = opts_.fd_epsilon * scale_[j];
    probe[j] = at[j] + h;
    const double up = model_.Predict(probe);
    probe[j] = at[j] - h;
    const double down = model_.Predict(probe);
    probe[j] = at[j];
    grad[j] = (up - down) / (2.0 * h);
  }
  return grad;
}

std::vector<double> IntegratedGradientsExplainer::Saliency(
    const std::vector<double>& instance) const {
  return NumericGradient(instance);
}

Result<FeatureAttribution> IntegratedGradientsExplainer::Explain(
    const std::vector<double>& instance) {
  const size_t d = instance.size();
  if (d != baseline_.size())
    return Status::InvalidArgument("IntegratedGradients: arity mismatch");

  FeatureAttribution out;
  out.values.assign(d, 0.0);
  std::vector<double> point(d);
  for (int s = 0; s < opts_.steps; ++s) {
    // Midpoint rule along the straight-line path.
    const double alpha =
        (static_cast<double>(s) + 0.5) / static_cast<double>(opts_.steps);
    for (size_t j = 0; j < d; ++j)
      point[j] = baseline_[j] + alpha * (instance[j] - baseline_[j]);
    const std::vector<double> grad = NumericGradient(point);
    for (size_t j = 0; j < d; ++j)
      out.values[j] += grad[j] / static_cast<double>(opts_.steps);
  }
  for (size_t j = 0; j < d; ++j)
    out.values[j] *= instance[j] - baseline_[j];

  for (size_t j = 0; j < d; ++j)
    out.feature_names.push_back(schema_.feature(j).name);
  out.base_value = model_.Predict(baseline_);
  out.prediction = model_.Predict(instance);
  return out;
}

}  // namespace xai
