#include "feature/global_explanations.h"

#include <algorithm>
#include <cmath>

#include "math/stats.h"
#include "model/metrics.h"

namespace xai {

std::vector<double> PermutationImportance(
    const Model& model, const Dataset& ds,
    const PermutationImportanceOptions& opts) {
  Rng rng(opts.seed);
  const double base = EvaluateAccuracy(model, ds);
  std::vector<double> importance(ds.d(), 0.0);
  for (size_t j = 0; j < ds.d(); ++j) {
    double drop = 0.0;
    for (int r = 0; r < opts.repetitions; ++r) {
      Matrix x = ds.x();
      // Shuffle column j.
      std::vector<size_t> perm = rng.Permutation(ds.n());
      for (size_t i = 0; i < ds.n(); ++i) x(i, j) = ds.x()(perm[i], j);
      Dataset shuffled(ds.schema(), std::move(x), ds.y());
      drop += base - EvaluateAccuracy(model, shuffled);
    }
    importance[j] = drop / static_cast<double>(opts.repetitions);
  }
  return importance;
}

Result<PartialDependence> ComputePartialDependence(const Model& model,
                                                   const Dataset& ds,
                                                   size_t feature,
                                                   int grid_points,
                                                   size_t max_rows) {
  if (feature >= ds.d())
    return Status::OutOfRange("PartialDependence: bad feature");
  PartialDependence pd;
  const FeatureSpec& spec = ds.schema().feature(feature);
  if (spec.is_numeric()) {
    std::vector<double> col = ds.x().Col(feature);
    const double lo = Quantile(col, 0.02);
    const double hi = Quantile(col, 0.98);
    for (int g = 0; g < grid_points; ++g) {
      pd.grid.push_back(lo + (hi - lo) * static_cast<double>(g) /
                                 static_cast<double>(grid_points - 1));
    }
  } else {
    for (size_t c = 0; c < spec.cardinality(); ++c)
      pd.grid.push_back(static_cast<double>(c));
  }
  const size_t n = std::min(ds.n(), max_rows);
  for (double v : pd.grid) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> x = ds.row(i);
      x[feature] = v;
      total += model.Predict(x);
    }
    pd.average_prediction.push_back(total / static_cast<double>(n));
  }
  return pd;
}

Result<IceCurves> ComputeIceCurves(const Model& model, const Dataset& ds,
                                   size_t feature, int grid_points,
                                   size_t max_rows) {
  XAI_ASSIGN_OR_RETURN(
      PartialDependence pd,
      ComputePartialDependence(model, ds, feature, grid_points, 1));
  IceCurves ice;
  ice.grid = pd.grid;
  const size_t n = std::min(ds.n(), max_rows);
  ice.curves.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x = ds.row(i);
    for (double v : ice.grid) {
      x[feature] = v;
      ice.curves[i].push_back(model.Predict(x));
    }
  }
  return ice;
}

Result<ShapSummary> SummarizeAttributions(AttributionExplainer* explainer,
                                          const Dataset& ds,
                                          size_t max_rows) {
  const size_t n = std::min(ds.n(), max_rows);
  if (n == 0) return Status::InvalidArgument("SummarizeAttributions: empty");
  const size_t d = ds.d();
  // One amortized ExplainBatch sweep over the summary rows.
  Matrix rows(n, d);
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));
  XAI_ASSIGN_OR_RETURN(std::vector<FeatureAttribution> attrs,
                       explainer->ExplainBatch(rows));
  Matrix phi(n, d);
  for (size_t i = 0; i < n; ++i) phi.SetRow(i, attrs[i].values);
  ShapSummary summary;
  summary.mean_abs_attribution.resize(d);
  summary.direction.resize(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> phij = phi.Col(j);
    double mean_abs = 0.0;
    for (double v : phij) mean_abs += std::fabs(v);
    summary.mean_abs_attribution[j] = mean_abs / static_cast<double>(n);
    std::vector<double> xj(n);
    for (size_t i = 0; i < n; ++i) xj[i] = ds.x()(i, j);
    summary.direction[j] = PearsonCorrelation(xj, phij);
  }
  return summary;
}

Result<std::vector<size_t>> SubmodularPick(AttributionExplainer* explainer,
                                           const Dataset& ds, size_t budget,
                                           size_t max_rows) {
  const size_t n = std::min(ds.n(), max_rows);
  if (n == 0) return Status::InvalidArgument("SubmodularPick: empty");
  const size_t d = ds.d();
  Matrix rows(n, d);
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));
  XAI_ASSIGN_OR_RETURN(std::vector<FeatureAttribution> attrs,
                       explainer->ExplainBatch(rows));
  Matrix w(n, d);  // |phi| per instance.
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) w(i, j) = std::fabs(attrs[i].values[j]);
  // Global feature importance I_j = sqrt(sum_i |w_ij|), per the paper.
  std::vector<double> gi(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += w(i, j);
    gi[j] = std::sqrt(s);
  }
  // Greedy: maximize sum over covered features of I_j, where a feature is
  // covered if any picked instance uses it (|w_ij| above a small floor).
  std::vector<bool> picked(n, false);
  std::vector<bool> covered(d, false);
  std::vector<size_t> order;
  budget = std::min(budget, n);
  for (size_t b = 0; b < budget; ++b) {
    double best_gain = -1.0;
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (picked[i]) continue;
      double gain = 0.0;
      for (size_t j = 0; j < d; ++j)
        if (!covered[j] && w(i, j) > 1e-9) gain += gi[j];
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n) break;
    picked[best] = true;
    for (size_t j = 0; j < d; ++j)
      if (w(best, j) > 1e-9) covered[j] = true;
    order.push_back(best);
  }
  return order;
}

}  // namespace xai
