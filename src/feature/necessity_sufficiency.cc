#include "feature/necessity_sufficiency.h"

#include <algorithm>

namespace xai {

NecessitySufficiency::NecessitySufficiency(const Model& model, const Scm& scm,
                                           std::vector<size_t> feature_nodes,
                                           uint64_t seed)
    : model_(model), scm_(scm), feature_nodes_(std::move(feature_nodes)),
      rng_(seed) {}

std::vector<double> NecessitySufficiency::RecoverNoise(
    const std::vector<double>& node_values) const {
  const size_t n = scm_.num_nodes();
  std::vector<double> noise(n, 0.0);
  for (size_t v = 0; v < n; ++v) {
    const auto& parents = scm_.dag().parents(v);
    std::vector<double> pv(parents.size());
    for (size_t k = 0; k < parents.size(); ++k)
      pv[k] = node_values[parents[k]];
    noise[v] = node_values[v] - scm_.EvaluateEquation(v, pv);
  }
  return noise;
}

std::vector<double> NecessitySufficiency::Propagate(
    const std::vector<double>& noise, const std::vector<size_t>& do_nodes,
    const std::vector<double>& do_values) const {
  const size_t n = scm_.num_nodes();
  std::vector<double> x(n, 0.0);
  std::vector<bool> clamped(n, false);
  for (size_t k = 0; k < do_nodes.size(); ++k) {
    x[do_nodes[k]] = do_values[k];
    clamped[do_nodes[k]] = true;
  }
  for (size_t v : scm_.dag().TopologicalOrder()) {
    if (clamped[v]) continue;
    const auto& parents = scm_.dag().parents(v);
    std::vector<double> pv(parents.size());
    for (size_t k = 0; k < parents.size(); ++k) pv[k] = x[parents[k]];
    x[v] = scm_.EvaluateEquation(v, pv) + noise[v];
  }
  return x;
}

double NecessitySufficiency::PredictNodes(
    const std::vector<double>& node_values) const {
  std::vector<double> features(feature_nodes_.size());
  for (size_t j = 0; j < feature_nodes_.size(); ++j)
    features[j] = node_values[feature_nodes_[j]];
  return model_.Predict(features);
}

std::vector<double> NecessitySufficiency::Counterfactual(
    const std::vector<double>& node_values,
    const std::vector<size_t>& features,
    const std::vector<double>& values) const {
  std::vector<double> noise = RecoverNoise(node_values);
  std::vector<size_t> do_nodes(features.size());
  for (size_t k = 0; k < features.size(); ++k)
    do_nodes[k] = feature_nodes_[features[k]];
  std::vector<double> cf = Propagate(noise, do_nodes, values);
  std::vector<double> out(feature_nodes_.size());
  for (size_t j = 0; j < feature_nodes_.size(); ++j)
    out[j] = cf[feature_nodes_[j]];
  return out;
}

Result<double> NecessitySufficiency::NecessityScore(
    const std::vector<double>& node_values,
    const std::vector<size_t>& features, int num_samples) const {
  if (node_values.size() != scm_.num_nodes())
    return Status::InvalidArgument("NecessityScore: need full node values");
  if (PredictNodes(node_values) < 0.5)
    return Status::FailedPrecondition(
        "NecessityScore: instance must be positively classified");
  std::vector<double> noise = RecoverNoise(node_values);
  std::vector<size_t> do_nodes(features.size());
  for (size_t k = 0; k < features.size(); ++k)
    do_nodes[k] = feature_nodes_[features[k]];

  int flipped = 0;
  for (int s = 0; s < num_samples; ++s) {
    // Alternative values for S drawn from the observational distribution.
    std::vector<double> alt = scm_.Sample(&rng_);
    std::vector<double> do_values(do_nodes.size());
    for (size_t k = 0; k < do_nodes.size(); ++k)
      do_values[k] = alt[do_nodes[k]];
    std::vector<double> cf = Propagate(noise, do_nodes, do_values);
    if (PredictNodes(cf) < 0.5) ++flipped;
  }
  return static_cast<double>(flipped) / static_cast<double>(num_samples);
}

Result<double> NecessitySufficiency::SufficiencyScore(
    const std::vector<double>& node_values,
    const std::vector<size_t>& features, int num_samples) const {
  if (node_values.size() != scm_.num_nodes())
    return Status::InvalidArgument("SufficiencyScore: need full node values");
  std::vector<size_t> do_nodes(features.size());
  std::vector<double> do_values(features.size());
  for (size_t k = 0; k < features.size(); ++k) {
    do_nodes[k] = feature_nodes_[features[k]];
    do_values[k] = node_values[do_nodes[k]];
  }

  int flipped = 0;
  int negatives = 0;
  int guard = 0;
  while (negatives < num_samples && guard < 50 * num_samples) {
    ++guard;
    std::vector<double> other = scm_.Sample(&rng_);
    if (PredictNodes(other) >= 0.5) continue;  // Want negative individuals.
    ++negatives;
    std::vector<double> other_noise = RecoverNoise(other);
    std::vector<double> cf = Propagate(other_noise, do_nodes, do_values);
    if (PredictNodes(cf) >= 0.5) ++flipped;
  }
  if (negatives == 0)
    return Status::FailedPrecondition(
        "SufficiencyScore: no negatively-classified samples found");
  return static_cast<double>(flipped) / static_cast<double>(negatives);
}

}  // namespace xai
