#include "feature/explainer_factory.h"

#include "feature/tree_shap.h"
#include "model/decision_tree.h"
#include "model/gbdt.h"

namespace xai {

namespace {

/// FNV-1a over the raw bytes of each option field. Stable within a build,
/// which is all the coalescing key needs (it never leaves the process).
uint64_t HashBytes(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
uint64_t HashValue(uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return HashBytes(h, &v, sizeof(v));
}

}  // namespace

Result<ExplainerKind> ParseExplainerKind(const std::string& name) {
  if (name == "treeshap") return ExplainerKind::kTreeShap;
  if (name == "kernelshap") return ExplainerKind::kKernelShap;
  if (name == "lime") return ExplainerKind::kLime;
  if (name == "mcshapley") return ExplainerKind::kMcShapley;
  return Status::InvalidArgument("unknown explainer kind: " + name);
}

const char* ExplainerKindName(ExplainerKind kind) {
  switch (kind) {
    case ExplainerKind::kTreeShap: return "treeshap";
    case ExplainerKind::kKernelShap: return "kernelshap";
    case ExplainerKind::kLime: return "lime";
    case ExplainerKind::kMcShapley: return "mcshapley";
  }
  return "unknown";
}

uint64_t ExplainerConfig::Fingerprint(ExplainerKind kind) const {
  uint64_t h = 14695981039346656037ULL;
  h = HashValue(h, static_cast<int>(kind));
  h = HashValue(h, model_fingerprint);
  switch (kind) {
    case ExplainerKind::kTreeShap:
      break;  // TreeSHAP is exact and option-free.
    case ExplainerKind::kKernelShap:
      h = HashValue(h, kernel_shap.num_samples);
      h = HashValue(h, kernel_shap.exact_up_to);
      h = HashValue(h, kernel_shap.max_background);
      h = HashValue(h, kernel_shap.lambda);
      h = HashValue(h, kernel_shap.seed);
      break;
    case ExplainerKind::kLime:
      h = HashValue(h, lime.num_samples);
      h = HashValue(h, lime.kernel_width);
      h = HashValue(h, lime.lambda);
      h = HashValue(h, lime.num_features);
      h = HashValue(h, lime.seed);
      break;
    case ExplainerKind::kMcShapley:
      h = HashValue(h, mc_shapley.num_permutations);
      h = HashValue(h, mc_shapley.max_background);
      h = HashValue(h, mc_shapley.seed);
      break;
  }
  return h;
}

Result<std::unique_ptr<AttributionExplainer>> MakeExplainer(
    ExplainerKind kind, const ModelHandle& handle, const Dataset& background,
    const ExplainerConfig& config) {
  if (!handle.valid())
    return Status::InvalidArgument("MakeExplainer: invalid model handle");
  const Model& model = handle.model();
  switch (kind) {
    case ExplainerKind::kTreeShap: {
      if (const auto* gbdt = dynamic_cast<const GradientBoostedTrees*>(&model))
        return std::unique_ptr<AttributionExplainer>(
            new TreeShapExplainer(*gbdt, background.schema()));
      if (const auto* tree = dynamic_cast<const DecisionTree*>(&model))
        return std::unique_ptr<AttributionExplainer>(
            new TreeShapExplainer(*tree, background.schema()));
      if (const auto* forest = dynamic_cast<const RandomForest*>(&model))
        return std::unique_ptr<AttributionExplainer>(
            new TreeShapExplainer(*forest, background.schema()));
      return Status::InvalidArgument(
          "treeshap requires a tree model (gbdt, decision tree or forest)");
    }
    case ExplainerKind::kKernelShap: {
      KernelShapOptions opts = config.kernel_shap;
      if (config.cache) opts.cache = config.cache;
      return std::unique_ptr<AttributionExplainer>(
          new KernelShapExplainer(model, background, opts));
    }
    case ExplainerKind::kLime:
      return std::unique_ptr<AttributionExplainer>(
          new LimeExplainer(model, background, config.lime));
    case ExplainerKind::kMcShapley: {
      McShapleyOptions opts = config.mc_shapley;
      if (config.cache) opts.cache = config.cache;
      return std::unique_ptr<AttributionExplainer>(
          new McShapleyExplainer(model, background, opts));
    }
  }
  return Status::InvalidArgument("unknown explainer kind");
}

}  // namespace xai
