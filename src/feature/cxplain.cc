#include "feature/cxplain.h"

#include <algorithm>
#include <cmath>

#include "data/transforms.h"

namespace xai {
namespace {

/// Softmax with temperature over non-negative deltas.
std::vector<double> Normalize(std::vector<double> deltas, double temperature) {
  double max_d = 0.0;
  for (double d : deltas) max_d = std::max(max_d, d);
  double total = 0.0;
  for (double& d : deltas) {
    d = std::exp((d - max_d) / std::max(temperature, 1e-9));
    total += d;
  }
  for (double& d : deltas) d /= total;
  return deltas;
}

}  // namespace

std::vector<double> CxplainExplainer::DirectImportance(
    const std::vector<double>& instance) const {
  const size_t d = instance.size();
  const double base = model_.Predict(instance);
  std::vector<double> deltas(d);
  std::vector<double> masked = instance;
  for (size_t j = 0; j < d; ++j) {
    masked[j] = column_means_[j];
    deltas[j] = std::fabs(base - model_.Predict(masked));
    masked[j] = instance[j];
  }
  return Normalize(std::move(deltas), temperature_);
}

Result<CxplainExplainer> CxplainExplainer::Fit(const Model& model,
                                               const Dataset& reference,
                                               const CxplainOptions& opts) {
  if (reference.n() == 0)
    return Status::InvalidArgument("Cxplain: empty reference data");
  const ColumnStats stats = ComputeColumnStats(reference);
  CxplainExplainer explainer(model, reference.schema(), stats.mean,
                             opts.temperature);

  // Importance targets on (a subsample of) the reference rows.
  const size_t n = std::min(reference.n(), opts.max_train_rows);
  const size_t d = reference.d();
  Matrix targets(n, d);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  Matrix x = reference.x().SelectRows(rows);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> imp = explainer.DirectImportance(x.Row(i));
    targets.SetRow(i, imp);
  }

  // One regression tree per feature: x -> importance_j.
  explainer.per_feature_trees_.reserve(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> tj = targets.Col(j);
    explainer.per_feature_trees_.push_back(
        FitRegressionTree(x, tj, opts.tree));
  }
  return explainer;
}

Result<FeatureAttribution> CxplainExplainer::Explain(
    const std::vector<double>& instance) {
  const size_t d = per_feature_trees_.size();
  if (instance.size() != d)
    return Status::InvalidArgument("Cxplain: arity mismatch");
  FeatureAttribution out;
  out.values.resize(d);
  double total = 0.0;
  for (size_t j = 0; j < d; ++j) {
    out.values[j] = std::max(0.0, per_feature_trees_[j].Predict(instance));
    total += out.values[j];
  }
  if (total > 1e-12) {
    for (double& v : out.values) v /= total;
  }
  for (size_t j = 0; j < d; ++j)
    out.feature_names.push_back(schema_.feature(j).name);
  out.prediction = model_.Predict(instance);
  out.base_value = 0.0;  // Importances are a distribution, not additive.
  return out;
}

}  // namespace xai
