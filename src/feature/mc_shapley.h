#ifndef XAIDB_FEATURE_MC_SHAPLEY_H_
#define XAIDB_FEATURE_MC_SHAPLEY_H_

#include <vector>

#include "common/result.h"
#include "core/eval_engine.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

struct McShapleyOptions {
  /// Sampled permutations; error ~ O(1/sqrt(num_permutations)).
  int num_permutations = 50;
  /// Background rows used by the marginal value function.
  size_t max_background = 50;
  uint64_t seed = 7;
  /// Coalition-value memo cache (see KernelShapOptions::cache). Null
  /// falls back to GlobalEvalCache(). A cache shared with KernelSHAP over
  /// the same (model, background, max_background) is hit by both — the
  /// marginal game's values are explainer-agnostic.
  std::shared_ptr<CoalitionValueCache> cache;
};

/// AttributionExplainer facade over permutation-sampling Monte-Carlo
/// Shapley on the marginal feature game — the model-agnostic estimator of
/// tutorial Section 2.1.2 that trades KernelSHAP's regression for direct
/// marginal-contribution sampling. Wrapping it in the common interface
/// lets the evaluation module, the explainer factory and the serving
/// layer treat it like the other attribution families.
class McShapleyExplainer : public AttributionExplainer {
 public:
  McShapleyExplainer(const Model& model, const Dataset& background,
                     McShapleyOptions opts = {});

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Amortized multi-instance sweep: the permutation set depends only on
  /// (d, seed), so it is drawn once and reused for every row. Row i is
  /// bit-identical to Explain(row i), which redraws the same permutations
  /// from Rng(seed).
  Result<std::vector<FeatureAttribution>> ExplainBatch(
      const Matrix& instances) override;

 private:
  Result<FeatureAttribution> ExplainRow(
      const std::vector<std::vector<size_t>>& perms,
      const std::vector<double>& instance);

  const Model& model_;
  const Dataset& background_;
  McShapleyOptions opts_;
  /// Shared coalition-evaluation engine (one background subsample + the
  /// memo cache the per-instance games route through).
  CoalitionEvaluator engine_;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_MC_SHAPLEY_H_
