#ifndef XAIDB_FEATURE_INTEGRATED_GRADIENTS_H_
#define XAIDB_FEATURE_INTEGRATED_GRADIENTS_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

struct IntegratedGradientsOptions {
  /// Riemann-midpoint steps along the straight-line path.
  int steps = 64;
  /// Central-difference step for the numeric gradient (per feature, in
  /// units of the feature's std; scaled internally).
  double fd_epsilon = 1e-4;
};

/// Integrated gradients (Sundararajan et al.) adapted to tabular black
/// boxes via numeric differentiation — the representative of the
/// gradient-based attribution family the tutorial surveys for unstructured
/// data (Section 2.4: "sensitivity map, saliency map, ... gradient-based
/// attribution methods"), made applicable to our tabular models:
///   IG_j = (x_j - b_j) * integral_0^1 dF/dx_j (b + a(x-b)) da.
/// Satisfies completeness for smooth models: sum_j IG_j = F(x) - F(b),
/// which the tests verify on logistic regression.
class IntegratedGradientsExplainer : public AttributionExplainer {
 public:
  /// `baseline` defaults to the column means of `reference` when empty.
  IntegratedGradientsExplainer(const Model& model, const Dataset& reference,
                               std::vector<double> baseline = {},
                               IntegratedGradientsOptions opts = {});

  Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) override;

  /// Plain (local) saliency: the numeric gradient at the instance itself.
  std::vector<double> Saliency(const std::vector<double>& instance) const;

 private:
  std::vector<double> NumericGradient(const std::vector<double>& at) const;

  const Model& model_;
  const Schema& schema_;
  std::vector<double> baseline_;
  std::vector<double> scale_;  // Per-feature fd scale (column std).
  IntegratedGradientsOptions opts_;
};

}  // namespace xai

#endif  // XAIDB_FEATURE_INTEGRATED_GRADIENTS_H_
