#ifndef XAIDB_CAUSAL_SCM_H_
#define XAIDB_CAUSAL_SCM_H_

#include <functional>
#include <vector>

#include "causal/dag.h"
#include "common/result.h"
#include "common/rng.h"
#include "math/matrix.h"

namespace xai {

/// An intervention do(node := value).
struct Intervention {
  size_t node;
  double value;
};

/// Structural causal model over a Dag. Each node has a structural equation
/// value = f(parent_values) + noise, with independent zero-mean Gaussian
/// noise. Supports observational sampling and interventional sampling under
/// do(.) — the machinery behind causal Shapley values, necessity/sufficiency
/// scores and Shapley-flow (tutorial Section 2.1.3).
class Scm {
 public:
  using Equation =
      std::function<double(const std::vector<double>& parent_values)>;

  explicit Scm(Dag dag);

  const Dag& dag() const { return dag_; }
  size_t num_nodes() const { return dag_.num_nodes(); }

  /// Linear equation: value = intercept + coeffs . parents + N(0, noise^2).
  /// `coeffs` must align with dag().parents(node) order.
  Status SetLinearEquation(size_t node, std::vector<double> coeffs,
                           double intercept, double noise_std);

  /// Arbitrary equation plus additive Gaussian noise.
  Status SetEquation(size_t node, Equation eq, double noise_std);

  /// One observational sample (all equations evaluated in topological
  /// order with fresh noise).
  std::vector<double> Sample(Rng* rng) const;

  /// One sample under the interventions: intervened nodes are clamped, and
  /// their structural equations (not their descendants') are severed.
  std::vector<double> SampleDo(const std::vector<Intervention>& dos,
                               Rng* rng) const;

  /// Monte-Carlo estimate of E[g(X)] under do(.).
  double ExpectationDo(const std::vector<Intervention>& dos,
                       const std::function<double(const std::vector<double>&)>& g,
                       int num_samples, Rng* rng) const;

  /// Draws `n` observational samples as rows.
  Matrix SampleMatrix(size_t n, Rng* rng) const;

  /// For a *fully linear* SCM: the implied mean and covariance
  /// (x = (I-B)^{-1}(c + e), cov = (I-B)^{-1} D (I-B)^{-T}).
  /// Fails if any equation is non-linear.
  Status AnalyticMeanCov(std::vector<double>* mean, Matrix* cov) const;

  /// Noise-free evaluation of node's structural equation at the given
  /// parent values (ordered as dag().parents(node)). The hook that
  /// abduction-based counterfactual reasoning (necessity/sufficiency)
  /// builds on.
  double EvaluateEquation(size_t node,
                          const std::vector<double>& parent_values) const;

  /// Noise standard deviation of a node's equation.
  double noise_std(size_t node) const { return eqs_[node].noise_std; }

  /// True if node equations are all set.
  bool IsComplete() const;

 private:
  struct NodeEq {
    bool set = false;
    bool linear = false;
    std::vector<double> coeffs;  // For linear equations.
    double intercept = 0.0;
    Equation fn;  // For non-linear equations.
    double noise_std = 1.0;
  };

  Dag dag_;
  std::vector<NodeEq> eqs_;
  std::vector<size_t> topo_;
};

}  // namespace xai

#endif  // XAIDB_CAUSAL_SCM_H_
