#include "causal/dag.h"

#include <algorithm>

namespace xai {

Result<size_t> Dag::AddNode(const std::string& name) {
  for (const std::string& n : names_)
    if (n == name) return Status::AlreadyExists("node exists: " + name);
  names_.push_back(name);
  parents_.emplace_back();
  children_.emplace_back();
  return names_.size() - 1;
}

Status Dag::AddEdge(size_t from, size_t to) {
  if (from >= num_nodes() || to >= num_nodes())
    return Status::OutOfRange("Dag::AddEdge: node index out of range");
  if (from == to) return Status::InvalidArgument("self edge");
  if (HasEdge(from, to)) return Status::AlreadyExists("edge exists");
  if (WouldCreateCycle(from, to))
    return Status::InvalidArgument("edge would create a cycle");
  parents_[to].push_back(from);
  children_[from].push_back(to);
  edges_.emplace_back(from, to);
  return Status::OK();
}

Result<size_t> Dag::NodeIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  return Status::NotFound("node not found: " + name);
}

bool Dag::HasEdge(size_t from, size_t to) const {
  const auto& ch = children_[from];
  return std::find(ch.begin(), ch.end(), to) != ch.end();
}

bool Dag::WouldCreateCycle(size_t from, size_t to) const {
  // Cycle iff `from` is reachable from `to`.
  return IsAncestor(to, from);
}

std::vector<size_t> Dag::TopologicalOrder() const {
  const size_t n = num_nodes();
  std::vector<size_t> indeg(n, 0);
  for (size_t i = 0; i < n; ++i) indeg[i] = parents_[i].size();
  std::vector<size_t> queue;
  for (size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) queue.push_back(i);
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const size_t u = queue[qi];
    order.push_back(u);
    for (size_t v : children_[u])
      if (--indeg[v] == 0) queue.push_back(v);
  }
  return order;
}

bool Dag::IsAncestor(size_t anc, size_t node) const {
  if (anc == node) return true;
  std::vector<size_t> stack = {anc};
  std::vector<bool> seen(num_nodes(), false);
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    for (size_t v : children_[u]) {
      if (v == node) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

std::vector<size_t> Dag::Ancestors(size_t node) const {
  std::vector<bool> seen(num_nodes(), false);
  std::vector<size_t> stack = {node};
  std::vector<size_t> out;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    for (size_t p : parents_[u]) {
      if (!seen[p]) {
        seen[p] = true;
        out.push_back(p);
        stack.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> Dag::Descendants(size_t node) const {
  std::vector<bool> seen(num_nodes(), false);
  std::vector<size_t> stack = {node};
  std::vector<size_t> out;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    for (size_t c : children_[u]) {
      if (!seen[c]) {
        seen[c] = true;
        out.push_back(c);
        stack.push_back(c);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xai
