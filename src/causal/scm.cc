#include "causal/scm.h"

#include <algorithm>

#include "math/linalg.h"

namespace xai {

Scm::Scm(Dag dag) : dag_(std::move(dag)) {
  eqs_.resize(dag_.num_nodes());
  topo_ = dag_.TopologicalOrder();
}

Status Scm::SetLinearEquation(size_t node, std::vector<double> coeffs,
                              double intercept, double noise_std) {
  if (node >= num_nodes()) return Status::OutOfRange("Scm: bad node");
  if (coeffs.size() != dag_.parents(node).size())
    return Status::InvalidArgument("Scm: coeffs size != #parents");
  NodeEq& e = eqs_[node];
  e.set = true;
  e.linear = true;
  e.coeffs = std::move(coeffs);
  e.intercept = intercept;
  e.noise_std = noise_std;
  e.fn = nullptr;
  return Status::OK();
}

Status Scm::SetEquation(size_t node, Equation eq, double noise_std) {
  if (node >= num_nodes()) return Status::OutOfRange("Scm: bad node");
  NodeEq& e = eqs_[node];
  e.set = true;
  e.linear = false;
  e.fn = std::move(eq);
  e.noise_std = noise_std;
  return Status::OK();
}

double Scm::EvaluateEquation(size_t node,
                             const std::vector<double>& parent_values) const {
  const NodeEq& e = eqs_[node];
  if (e.linear) {
    double v = e.intercept;
    for (size_t k = 0; k < e.coeffs.size(); ++k)
      v += e.coeffs[k] * parent_values[k];
    return v;
  }
  if (e.fn) return e.fn(parent_values);
  return 0.0;
}

bool Scm::IsComplete() const {
  return std::all_of(eqs_.begin(), eqs_.end(),
                     [](const NodeEq& e) { return e.set; });
}

std::vector<double> Scm::Sample(Rng* rng) const { return SampleDo({}, rng); }

std::vector<double> Scm::SampleDo(const std::vector<Intervention>& dos,
                                  Rng* rng) const {
  std::vector<double> x(num_nodes(), 0.0);
  std::vector<bool> clamped(num_nodes(), false);
  for (const Intervention& iv : dos) {
    x[iv.node] = iv.value;
    clamped[iv.node] = true;
  }
  std::vector<double> pv;
  for (size_t node : topo_) {
    if (clamped[node]) continue;
    const NodeEq& e = eqs_[node];
    const auto& parents = dag_.parents(node);
    double v = 0.0;
    if (e.linear) {
      v = e.intercept;
      for (size_t k = 0; k < parents.size(); ++k)
        v += e.coeffs[k] * x[parents[k]];
    } else if (e.fn) {
      pv.clear();
      for (size_t p : parents) pv.push_back(x[p]);
      v = e.fn(pv);
    }
    x[node] = v + (e.noise_std > 0.0 ? rng->Gaussian(0.0, e.noise_std) : 0.0);
  }
  return x;
}

double Scm::ExpectationDo(
    const std::vector<Intervention>& dos,
    const std::function<double(const std::vector<double>&)>& g,
    int num_samples, Rng* rng) const {
  double s = 0.0;
  for (int i = 0; i < num_samples; ++i) s += g(SampleDo(dos, rng));
  return s / static_cast<double>(num_samples);
}

Matrix Scm::SampleMatrix(size_t n, Rng* rng) const {
  Matrix out(n, num_nodes());
  for (size_t i = 0; i < n; ++i) out.SetRow(i, Sample(rng));
  return out;
}

Status Scm::AnalyticMeanCov(std::vector<double>* mean, Matrix* cov) const {
  const size_t n = num_nodes();
  for (const NodeEq& e : eqs_)
    if (!e.set || !e.linear)
      return Status::FailedPrecondition("AnalyticMeanCov: non-linear SCM");
  // x = B x + c + e  =>  x = (I - B)^{-1} (c + e).
  Matrix b(n, n);
  std::vector<double> c(n);
  Matrix d(n, n);  // Noise covariance (diagonal).
  for (size_t node = 0; node < n; ++node) {
    const auto& parents = dag_.parents(node);
    for (size_t k = 0; k < parents.size(); ++k)
      b(node, parents[k]) = eqs_[node].coeffs[k];
    c[node] = eqs_[node].intercept;
    d(node, node) = eqs_[node].noise_std * eqs_[node].noise_std;
  }
  // M = (I - B)^{-1} computed column by column via LU solves.
  Matrix imb = Matrix::Identity(n) - b;
  Matrix m(n, n);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> ej(n, 0.0);
    ej[j] = 1.0;
    XAI_ASSIGN_OR_RETURN(std::vector<double> col, SolveLu(imb, ej));
    for (size_t i = 0; i < n; ++i) m(i, j) = col[i];
  }
  *mean = m * c;
  *cov = m * d * m.Transpose();
  return Status::OK();
}

}  // namespace xai
