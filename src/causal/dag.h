#ifndef XAIDB_CAUSAL_DAG_H_
#define XAIDB_CAUSAL_DAG_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace xai {

/// Directed acyclic graph over named nodes. Substrate for the causal
/// explanation methods of tutorial Section 2.1.3: asymmetric Shapley values
/// restrict coalitions to topological orderings, causal Shapley values
/// intervene along the graph, and Shapley-flow attributes to edges.
class Dag {
 public:
  /// Adds a node; returns its index. Duplicate names are rejected.
  Result<size_t> AddNode(const std::string& name);
  /// Adds edge from -> to. Rejects edges that would create a cycle.
  Status AddEdge(size_t from, size_t to);

  size_t num_nodes() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  Result<size_t> NodeIndex(const std::string& name) const;

  const std::vector<size_t>& parents(size_t i) const { return parents_[i]; }
  const std::vector<size_t>& children(size_t i) const { return children_[i]; }
  bool HasEdge(size_t from, size_t to) const;

  /// All edges as (from, to) pairs in insertion order.
  const std::vector<std::pair<size_t, size_t>>& edges() const {
    return edges_;
  }

  /// Nodes in a topological order (parents before children).
  std::vector<size_t> TopologicalOrder() const;

  /// True if `anc` is an ancestor of `node` (or equal).
  bool IsAncestor(size_t anc, size_t node) const;

  /// All ancestors of `node` (excluding itself).
  std::vector<size_t> Ancestors(size_t node) const;
  /// All descendants of `node` (excluding itself).
  std::vector<size_t> Descendants(size_t node) const;

 private:
  bool WouldCreateCycle(size_t from, size_t to) const;

  std::vector<std::string> names_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<std::vector<size_t>> children_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

}  // namespace xai

#endif  // XAIDB_CAUSAL_DAG_H_
