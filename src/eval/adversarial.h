#ifndef XAIDB_EVAL_ADVERSARIAL_H_
#define XAIDB_EVAL_ADVERSARIAL_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/decision_tree.h"
#include "model/model.h"

namespace xai {

/// The scaffolding attack on post-hoc explainers (Slack, Hilgard, Jia,
/// Singh & Lakkaraju 2020), tutorial Section 2.1.1: LIME and KernelSHAP
/// query the model on *off-manifold* perturbations, so an adversary can
/// pair a discriminatory in-distribution model with an innocuous
/// off-distribution model, fooling the explainer into reporting the
/// innocuous behaviour while real decisions stay biased.
struct AdversarialScaffoldOptions {
  /// Perturbation rows generated to train the OOD detector.
  int num_perturbations = 3000;
  /// High-capacity forest: the detector must pick up the broken feature
  /// correlations that distinguish LIME/SHAP perturbations from data.
  RandomForestOptions detector = {
      .num_trees = 100,
      .tree = {.max_depth = 12, .min_samples_leaf = 2, .max_features = 0},
      .seed = 17};
  uint64_t seed = 666;
};

class AdversarialScaffold : public Model {
 public:
  using Options = AdversarialScaffoldOptions;

  /// `biased` is applied to in-distribution inputs, `innocuous` to
  /// detected perturbations. Both must share the reference schema.
  static Result<AdversarialScaffold> Create(const Dataset& reference,
                                            const Model& biased,
                                            const Model& innocuous,
                                            const Options& opts = Options());

  double Predict(const std::vector<double>& x) const override;
  size_t num_features() const override { return biased_->num_features(); }

  /// Detector accuracy on held-out real vs perturbed rows (diagnostic:
  /// the attack works iff this is high).
  double detector_accuracy() const { return detector_accuracy_; }

  /// Fraction of queries routed to the innocuous model so far would need
  /// state; instead expose the detector for inspection.
  const RandomForest& detector() const { return detector_; }

 private:
  AdversarialScaffold(const Model& biased, const Model& innocuous)
      : biased_(&biased), innocuous_(&innocuous) {}

  const Model* biased_;
  const Model* innocuous_;
  RandomForest detector_;
  double detector_accuracy_ = 0.0;
};

/// Attack success metric: the fraction of explained instances whose top
/// attributed feature is `sensitive_feature`. Compare on the raw biased
/// model (should be ~1) vs the scaffold (drops if the attack succeeds).
Result<double> TopFeatureIsSensitiveRate(AttributionExplainer* explainer,
                                         const Dataset& instances,
                                         size_t sensitive_feature,
                                         size_t max_rows = 30);

}  // namespace xai

#endif  // XAIDB_EVAL_ADVERSARIAL_H_
