#ifndef XAIDB_EVAL_STABILITY_H_
#define XAIDB_EVAL_STABILITY_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/explanation.h"

namespace xai {

/// LIME stability indices (Visani et al. 2020), tutorial Section 2.1.1:
/// repeated explanations of the *same* instance differ because of
/// perturbation sampling. VSI measures agreement of the selected feature
/// sets; CSI measures agreement of the coefficients themselves.
struct StabilityReport {
  /// Variables Stability Index: mean pairwise Jaccard similarity of the
  /// top-k feature sets across repetitions, in [0, 1].
  double vsi = 0.0;
  /// Coefficients Stability Index: mean pairwise agreement of coefficient
  /// signs on the union of selected features, in [0, 1].
  double csi = 0.0;
  /// Per-feature coefficient standard deviation across repetitions.
  std::vector<double> coefficient_std;
};

/// Runs `explain(seed)` `repetitions` times (the callback must build a
/// fresh explainer from the given seed) and computes the indices on the
/// top-k features.
Result<StabilityReport> MeasureStability(
    const std::function<Result<FeatureAttribution>(uint64_t seed)>& explain,
    int repetitions, size_t top_k);

}  // namespace xai

#endif  // XAIDB_EVAL_STABILITY_H_
