#include "eval/stability.h"

#include <cmath>
#include <set>

#include "math/stats.h"

namespace xai {

Result<StabilityReport> MeasureStability(
    const std::function<Result<FeatureAttribution>(uint64_t seed)>& explain,
    int repetitions, size_t top_k) {
  std::vector<FeatureAttribution> runs;
  runs.reserve(static_cast<size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    XAI_ASSIGN_OR_RETURN(FeatureAttribution attr,
                         explain(1000003ULL * static_cast<uint64_t>(r + 1)));
    runs.push_back(std::move(attr));
  }
  if (runs.size() < 2)
    return Status::InvalidArgument("MeasureStability: need >= 2 repetitions");
  const size_t d = runs[0].values.size();

  StabilityReport report;

  // VSI: pairwise Jaccard of top-k sets.
  std::vector<std::vector<size_t>> tops;
  for (const auto& run : runs) tops.push_back(run.TopFeatures(top_k));
  double vsi = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < runs.size(); ++a) {
    for (size_t b = a + 1; b < runs.size(); ++b) {
      vsi += Jaccard(tops[a], tops[b]);
      ++pairs;
    }
  }
  report.vsi = vsi / static_cast<double>(pairs);

  // CSI: sign agreement over the union of selected features.
  std::set<size_t> union_features;
  for (const auto& t : tops) union_features.insert(t.begin(), t.end());
  double csi = 0.0;
  pairs = 0;
  for (size_t a = 0; a < runs.size(); ++a) {
    for (size_t b = a + 1; b < runs.size(); ++b) {
      size_t agree = 0;
      for (size_t j : union_features) {
        const double va = runs[a].values[j];
        const double vb = runs[b].values[j];
        if ((va >= 0) == (vb >= 0)) ++agree;
      }
      csi += static_cast<double>(agree) /
             static_cast<double>(union_features.size());
      ++pairs;
    }
  }
  report.csi = csi / static_cast<double>(pairs);

  report.coefficient_std.resize(d);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> coefs;
    coefs.reserve(runs.size());
    for (const auto& run : runs) coefs.push_back(run.values[j]);
    report.coefficient_std[j] = StdDev(coefs);
  }
  return report;
}

}  // namespace xai
