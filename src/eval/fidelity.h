#ifndef XAIDB_EVAL_FIDELITY_H_
#define XAIDB_EVAL_FIDELITY_H_

#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Faithfulness metrics for feature attributions (tutorial Section 3,
/// "User study and evaluation": user studies cannot be simulated, so the
/// measurable surrogates the literature itself uses are implemented).

/// Deletion-style faithfulness: remove (mean-impute) the top-k features by
/// attribution and measure how much the prediction moves. Faithful
/// explanations produce large drops for small k. Returns the mean absolute
/// prediction change over the dataset rows.
Result<double> DeletionFaithfulness(const Model& model,
                                    AttributionExplainer* explainer,
                                    const Dataset& ds, size_t k,
                                    size_t max_rows = 50);

/// Correlation-based faithfulness (Bhatt et al. style): Pearson
/// correlation between attribution values and the actual single-feature
/// imputation deltas, averaged over rows.
Result<double> AttributionCorrelation(const Model& model,
                                      AttributionExplainer* explainer,
                                      const Dataset& ds,
                                      size_t max_rows = 50);

}  // namespace xai

#endif  // XAIDB_EVAL_FIDELITY_H_
