#include "eval/adversarial.h"

#include "core/perturb.h"

namespace xai {

Result<AdversarialScaffold> AdversarialScaffold::Create(
    const Dataset& reference, const Model& biased, const Model& innocuous,
    const Options& opts) {
  if (biased.num_features() != reference.d() ||
      innocuous.num_features() != reference.d())
    return Status::InvalidArgument("AdversarialScaffold: arity mismatch");

  // Training data for the OOD detector: real rows (label 0) vs LIME-style
  // perturbations of random real rows (label 1).
  Rng rng(opts.seed);
  const size_t n_real = reference.n();
  const int n_fake = opts.num_perturbations;
  Matrix x(n_real + static_cast<size_t>(n_fake), reference.d());
  std::vector<double> y(n_real + static_cast<size_t>(n_fake));
  for (size_t i = 0; i < n_real; ++i) {
    x.SetRow(i, reference.row(i));
    y[i] = 0.0;
  }
  for (int f = 0; f < n_fake; ++f) {
    const size_t base = static_cast<size_t>(rng.NextInt(n_real));
    TabularPerturber perturber(reference, reference.row(base));
    TabularPerturber::Sample s = perturber.Draw(&rng);
    x.SetRow(n_real + static_cast<size_t>(f), s.x);
    y[n_real + static_cast<size_t>(f)] = 1.0;
  }
  Dataset detector_data(reference.schema(), std::move(x), std::move(y));
  Rng split_rng(opts.seed + 1);
  auto [train, test] = detector_data.Split(0.8, &split_rng);

  AdversarialScaffold scaffold(biased, innocuous);
  RandomForestOptions fo = opts.detector;
  XAI_ASSIGN_OR_RETURN(scaffold.detector_, RandomForest::Fit(train, fo));
  size_t correct = 0;
  for (size_t i = 0; i < test.n(); ++i)
    if ((scaffold.detector_.Predict(test.row(i)) >= 0.5) ==
        (test.y()[i] >= 0.5))
      ++correct;
  scaffold.detector_accuracy_ =
      test.n() ? static_cast<double>(correct) / static_cast<double>(test.n())
               : 0.0;
  return scaffold;
}

double AdversarialScaffold::Predict(const std::vector<double>& x) const {
  const bool off_manifold = detector_.Predict(x) >= 0.5;
  return off_manifold ? innocuous_->Predict(x) : biased_->Predict(x);
}

Result<double> TopFeatureIsSensitiveRate(AttributionExplainer* explainer,
                                         const Dataset& instances,
                                         size_t sensitive_feature,
                                         size_t max_rows) {
  const size_t n = std::min(instances.n(), max_rows);
  if (n == 0) return Status::InvalidArgument("no instances");
  // Batched sweep: the attack evaluation explains every probe instance
  // with one amortized ExplainBatch call instead of n Explain calls.
  Matrix rows(n, instances.d());
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, instances.row(i));
  XAI_ASSIGN_OR_RETURN(std::vector<FeatureAttribution> attrs,
                       explainer->ExplainBatch(rows));
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<size_t> top = attrs[i].TopFeatures(1);
    if (!top.empty() && top[0] == sensitive_feature) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace xai
