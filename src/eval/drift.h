#ifndef XAIDB_EVAL_DRIFT_H_
#define XAIDB_EVAL_DRIFT_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/explanation.h"
#include "obs/monitor.h"

namespace xai {

/// Options for the attribution-drift watchdog. Thresholds apply to the
/// attribution-mass *distribution* — per-feature mean |phi| normalized to
/// sum 1 — so they are scale-free: a model update that doubles every
/// attribution uniformly is not drift, a shift of mass between features
/// is.
struct DriftWatchdogOptions {
  /// Responses accumulated into the pinned reference window before
  /// judging starts (the "known-good" attribution profile).
  size_t reference_window = 128;
  /// Sliding current window compared against the reference.
  size_t window = 128;
  /// Responses in the current window required before judging — avoids
  /// verdicts from a handful of samples right after pinning.
  size_t min_window = 32;
  /// L1 distance between the two normalized mass distributions (range
  /// [0, 2]) at which drift alerts. 2x this rates "page", else "warn".
  double l1_threshold = 0.25;
  /// Population-stability-index alert threshold (0.1–0.25 is the usual
  /// "investigate" band in monitoring practice). Either metric over its
  /// threshold raises the alert.
  double psi_threshold = 0.25;
  /// Recompute shift every N observations (1 = every response). The
  /// gauges and alert state update on recompute ticks.
  size_t check_every = 8;
  /// Retained alert records.
  size_t alert_capacity = 64;
};

/// What the watchdog currently believes, for reporting and benches.
struct DriftReport {
  uint64_t observed = 0;  ///< Attributions seen (all time).
  bool reference_pinned = false;
  bool alerting = false;
  double l1 = 0.0;
  double psi = 0.0;
  std::vector<double> reference_mass;  ///< Normalized mean-|phi| profile.
  std::vector<double> current_mass;
};

/// Sliding-window drift detector over explanation attributions — the
/// monitoring consumer from the source paper's "ML pipelines and
/// monitoring" opportunity: explanations are signals to watch over time,
/// not one-shot artifacts. It maintains the same per-feature mean-|phi|
/// summary as feature/GlobalMeanAbsShap, incrementally over the responses
/// flowing out of ExplanationService: the first `reference_window`
/// responses pin a reference profile, and every `check_every` responses
/// the current sliding window's profile is compared against it by
/// normalized L1 distance and PSI. Crossing either threshold raises an
/// obs::Alert (edge-triggered), increments `drift.alerts`, and emits a
/// flight-recorder instant; `drift.l1`, `drift.psi` and
/// `drift.window_count` gauges export continuously for the sampler.
///
/// Thread-safe; Observe is called from the service dispatcher thread
/// while readers poll from anywhere. Constant attribution streams and
/// all-zero attributions never alert (no false positive, no division by
/// zero).
class AttributionDriftWatchdog {
 public:
  explicit AttributionDriftWatchdog(DriftWatchdogOptions opts = {});

  /// Feeds one served attribution. Arity is latched from the first
  /// observation; mismatched sizes are counted (`drift.skipped`) and
  /// ignored. Hook into the service with:
  ///   opts.response_observer = [&wd](const ExplanationRequest&,
  ///                                  const ExplanationResponse& r) {
  ///     wd.Observe(r.attribution);
  ///   };
  void Observe(const FeatureAttribution& attr);

  /// Re-pins the reference to the current sliding window (deliberate
  /// "new normal" after a model swap). No-op until min_window responses.
  void PinReferenceNow();

  DriftReport Report() const;
  std::vector<obs::Alert> alerts() const;
  uint64_t alert_count() const;

 private:
  /// Normalized mass profile of (sums / count); empty when the window is
  /// empty or carries zero attribution mass.
  static std::vector<double> MassProfile(const std::vector<double>& sums);
  void CheckLocked(uint64_t unix_ms);

  const DriftWatchdogOptions opts_;

  mutable std::mutex mu_;
  size_t arity_ = 0;
  uint64_t observed_ = 0;

  // Reference accumulation, then pinned profile.
  std::vector<double> ref_sums_;
  uint64_t ref_count_ = 0;
  std::vector<double> ref_mass_;  ///< Non-empty once pinned.

  // Sliding current window: per-feature |phi| rows plus running sums.
  std::deque<std::vector<double>> window_;
  std::vector<double> win_sums_;

  double l1_ = 0.0;
  double psi_ = 0.0;
  bool alerting_ = false;
  std::deque<obs::Alert> alerts_;
  uint64_t alert_count_ = 0;
};

}  // namespace xai

#endif  // XAIDB_EVAL_DRIFT_H_
