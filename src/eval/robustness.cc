#include "eval/robustness.h"

#include "math/stats.h"

namespace xai {

Result<RobustnessReport> MeasureRetrainingRobustness(
    const std::function<Result<std::vector<FeatureAttribution>>(uint64_t seed)>&
        explain_instances,
    int resamples, size_t top_k) {
  std::vector<std::vector<FeatureAttribution>> runs;
  for (int r = 0; r < resamples; ++r) {
    XAI_ASSIGN_OR_RETURN(
        std::vector<FeatureAttribution> attrs,
        explain_instances(7919ULL * static_cast<uint64_t>(r + 1)));
    runs.push_back(std::move(attrs));
  }
  if (runs.size() < 2 || runs[0].empty())
    return Status::InvalidArgument("Robustness: need >= 2 resamples");
  const size_t n_inst = runs[0].size();

  RobustnessReport report;
  double overlap = 0.0;
  double corr = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < runs.size(); ++a) {
    for (size_t b = a + 1; b < runs.size(); ++b) {
      for (size_t i = 0; i < n_inst; ++i) {
        overlap += Jaccard(runs[a][i].TopFeatures(top_k),
                           runs[b][i].TopFeatures(top_k));
        corr += PearsonCorrelation(runs[a][i].values, runs[b][i].values);
        ++pairs;
      }
    }
  }
  report.topk_overlap = overlap / static_cast<double>(pairs);
  report.value_correlation = corr / static_cast<double>(pairs);
  return report;
}

}  // namespace xai
