#ifndef XAIDB_EVAL_ROBUSTNESS_H_
#define XAIDB_EVAL_ROBUSTNESS_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/explainer.h"
#include "data/dataset.h"

namespace xai {

/// Explanation robustness under small changes of the data distribution
/// (tutorial Section 3, GeCo discussion): retrain on a bootstrap resample
/// and measure how much the explanations move. `make_explainer(seed)`
/// must train a model on a seed-dependent resample and return an explainer
/// bound to it.
struct RobustnessReport {
  /// Mean top-k Jaccard overlap of attributions across resamples.
  double topk_overlap = 0.0;
  /// Mean Pearson correlation of full attribution vectors.
  double value_correlation = 0.0;
};

Result<RobustnessReport> MeasureRetrainingRobustness(
    const std::function<Result<std::vector<FeatureAttribution>>(uint64_t seed)>&
        explain_instances,
    int resamples, size_t top_k);

}  // namespace xai

#endif  // XAIDB_EVAL_ROBUSTNESS_H_
