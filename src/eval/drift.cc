#include "eval/drift.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace xai {

AttributionDriftWatchdog::AttributionDriftWatchdog(DriftWatchdogOptions opts)
    : opts_(opts) {}

std::vector<double> AttributionDriftWatchdog::MassProfile(
    const std::vector<double>& sums) {
  double total = 0.0;
  for (double s : sums) total += s;
  if (!(total > 0.0)) return {};  // zero (or NaN) mass: profile undefined
  std::vector<double> out(sums.size());
  for (size_t i = 0; i < sums.size(); ++i) out[i] = sums[i] / total;
  return out;
}

void AttributionDriftWatchdog::Observe(const FeatureAttribution& attr) {
  std::lock_guard<std::mutex> lock(mu_);
  if (arity_ == 0) {
    if (attr.values.empty()) return;
    arity_ = attr.values.size();
    ref_sums_.assign(arity_, 0.0);
    win_sums_.assign(arity_, 0.0);
  }
  if (attr.values.size() != arity_) {
    XAI_OBS_COUNT("drift.skipped");
    return;
  }
  ++observed_;

  std::vector<double> row(arity_);
  for (size_t i = 0; i < arity_; ++i) row[i] = std::fabs(attr.values[i]);

  if (ref_mass_.empty() && ref_count_ < opts_.reference_window) {
    // Still building the reference: reference responses also seed the
    // sliding window so judging can start right at the pin.
    for (size_t i = 0; i < arity_; ++i) ref_sums_[i] += row[i];
    ++ref_count_;
    if (ref_count_ >= opts_.reference_window) {
      ref_mass_ = MassProfile(ref_sums_);
      XAI_OBS_GAUGE_SET("drift.reference_pinned", 1.0);
    }
  }

  for (size_t i = 0; i < arity_; ++i) win_sums_[i] += row[i];
  window_.push_back(std::move(row));
  while (window_.size() > opts_.window) {
    for (size_t i = 0; i < arity_; ++i) win_sums_[i] -= window_.front()[i];
    window_.pop_front();
  }

  if (observed_ % std::max<size_t>(1, opts_.check_every) == 0)
    CheckLocked(obs::UnixNowMs());
}

void AttributionDriftWatchdog::CheckLocked(uint64_t unix_ms) {
  XAI_OBS_GAUGE_SET("drift.window_count", window_.size());
  if (ref_mass_.empty() || window_.size() < opts_.min_window) return;

  const std::vector<double> cur = MassProfile(win_sums_);
  if (cur.empty()) {
    // Current window carries no attribution mass: nothing to compare
    // (and nothing to divide by). Not drift — leave the state alone.
    return;
  }

  double l1 = 0.0;
  double psi = 0.0;
  constexpr double kEps = 1e-9;  // PSI floor for empty-mass features
  for (size_t i = 0; i < arity_; ++i) {
    const double r = std::max(ref_mass_[i], kEps);
    const double c = std::max(cur[i], kEps);
    l1 += std::fabs(cur[i] - ref_mass_[i]);
    psi += (c - r) * std::log(c / r);
  }
  l1_ = l1;
  psi_ = psi;
  XAI_OBS_GAUGE_SET("drift.l1", l1);
  XAI_OBS_GAUGE_SET("drift.psi", psi);

  const bool over = l1 >= opts_.l1_threshold || psi >= opts_.psi_threshold;
  if (over && !alerting_) {
    obs::Alert a;
    a.objective = "attribution_drift";
    a.severity = l1 >= 2.0 * opts_.l1_threshold ? "page" : "warn";
    a.window = "sliding";
    a.burn_rate = l1;
    a.unix_ms = unix_ms;
    alerts_.push_back(a);
    ++alert_count_;
    while (alerts_.size() > opts_.alert_capacity) alerts_.pop_front();
    XAI_OBS_COUNT("drift.alerts");
    obs::TraceInstant("drift.alert", l1);
  }
  alerting_ = over;
  XAI_OBS_GAUGE_SET("drift.alerting", over ? 1.0 : 0.0);
}

void AttributionDriftWatchdog::PinReferenceNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.size() < std::max<size_t>(1, opts_.min_window)) return;
  ref_mass_ = MassProfile(win_sums_);
  ref_count_ = window_.size();
  alerting_ = false;
  XAI_OBS_GAUGE_SET("drift.reference_pinned", 1.0);
}

DriftReport AttributionDriftWatchdog::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftReport r;
  r.observed = observed_;
  r.reference_pinned = !ref_mass_.empty();
  r.alerting = alerting_;
  r.l1 = l1_;
  r.psi = psi_;
  r.reference_mass = ref_mass_;
  r.current_mass = MassProfile(win_sums_);
  return r;
}

std::vector<obs::Alert> AttributionDriftWatchdog::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {alerts_.begin(), alerts_.end()};
}

uint64_t AttributionDriftWatchdog::alert_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_count_;
}

}  // namespace xai
