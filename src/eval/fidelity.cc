#include "eval/fidelity.h"

#include <algorithm>
#include <cmath>

#include "data/transforms.h"
#include "math/stats.h"

namespace xai {

Result<double> DeletionFaithfulness(const Model& model,
                                    AttributionExplainer* explainer,
                                    const Dataset& ds, size_t k,
                                    size_t max_rows) {
  const ColumnStats stats = ComputeColumnStats(ds);
  const size_t n = std::min(ds.n(), max_rows);
  // One batched sweep instead of n Explain calls: the explainer amortizes
  // its instance-independent work (coalition designs, column stats, tree
  // traversal order) across the whole evaluation set.
  Matrix rows(n, ds.d());
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));
  XAI_ASSIGN_OR_RETURN(std::vector<FeatureAttribution> attrs,
                       explainer->ExplainBatch(rows));
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x = ds.row(i);
    const double before = model.Predict(x);
    for (size_t j : attrs[i].TopFeatures(k)) x[j] = stats.mean[j];
    total += std::fabs(before - model.Predict(x));
  }
  return total / static_cast<double>(n);
}

Result<double> AttributionCorrelation(const Model& model,
                                      AttributionExplainer* explainer,
                                      const Dataset& ds, size_t max_rows) {
  const ColumnStats stats = ComputeColumnStats(ds);
  const size_t n = std::min(ds.n(), max_rows);
  Matrix rows(n, ds.d());
  for (size_t i = 0; i < n; ++i) rows.SetRow(i, ds.row(i));
  XAI_ASSIGN_OR_RETURN(std::vector<FeatureAttribution> attrs,
                       explainer->ExplainBatch(rows));
  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> x = ds.row(i);
    const FeatureAttribution& attr = attrs[i];
    const double before = model.Predict(x);
    std::vector<double> deltas(ds.d());
    std::vector<double> magnitudes(ds.d());
    for (size_t j = 0; j < ds.d(); ++j) {
      std::vector<double> xm = x;
      xm[j] = stats.mean[j];
      deltas[j] = std::fabs(before - model.Predict(xm));
      magnitudes[j] = std::fabs(attr.values[j]);
    }
    total += PearsonCorrelation(magnitudes, deltas);
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace xai
