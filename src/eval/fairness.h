#ifndef XAIDB_EVAL_FAIRNESS_H_
#define XAIDB_EVAL_FAIRNESS_H_

#include <vector>

#include "causal/scm.h"
#include "common/result.h"
#include "data/dataset.h"
#include "model/model.h"

namespace xai {

/// Fairness auditing — tutorial Section 1's motivation (3): XAI should
/// "facilitate the identification of sources of harms such as bias and
/// discrimination". These metrics quantify the harm a feature-attribution
/// audit (bench E14) then localizes.

/// Groupwise decision rates and the standard associational metrics for a
/// binary sensitive feature (codes 0/1).
struct GroupFairnessReport {
  double positive_rate_group0 = 0.0;
  double positive_rate_group1 = 0.0;
  /// Demographic parity difference: rate(g1) - rate(g0).
  double demographic_parity_gap = 0.0;
  /// Equalized-odds gaps: TPR and FPR differences between the groups.
  double tpr_gap = 0.0;
  double fpr_gap = 0.0;
};
Result<GroupFairnessReport> AuditGroupFairness(const Model& model,
                                               const Dataset& ds,
                                               size_t sensitive_feature);

/// *Interventional* (causal) fairness in the sense of Salimi et al. 2019:
/// the difference E[f(X) | do(S=1)] - E[f(X) | do(S=0)] under the SCM —
/// what actually changes if the sensitive attribute is intervened on,
/// rather than conditioned on (which is confounded by correlates).
/// `feature_nodes[j]` maps model feature j to its SCM node; `sensitive`
/// is a model-feature index.
Result<double> InterventionalFairnessGap(
    const Model& model, const Scm& scm,
    const std::vector<size_t>& feature_nodes, size_t sensitive,
    int num_samples = 4000, uint64_t seed = 90210);

}  // namespace xai

#endif  // XAIDB_EVAL_FAIRNESS_H_
