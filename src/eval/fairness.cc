#include "eval/fairness.h"

#include <cmath>

namespace xai {

Result<GroupFairnessReport> AuditGroupFairness(const Model& model,
                                               const Dataset& ds,
                                               size_t sensitive_feature) {
  if (sensitive_feature >= ds.d())
    return Status::OutOfRange("AuditGroupFairness: bad feature");
  GroupFairnessReport report;
  // Confusion counts per group.
  double pos[2] = {0, 0};
  double n[2] = {0, 0};
  double tp[2] = {0, 0};
  double fp[2] = {0, 0};
  double p_lab[2] = {0, 0};
  double n_lab[2] = {0, 0};
  for (size_t i = 0; i < ds.n(); ++i) {
    const int g = ds.x()(i, sensitive_feature) >= 0.5 ? 1 : 0;
    const bool pred = model.Predict(ds.row(i)) >= 0.5;
    const bool truth = ds.y()[i] >= 0.5;
    n[g] += 1.0;
    if (pred) pos[g] += 1.0;
    if (truth) {
      p_lab[g] += 1.0;
      if (pred) tp[g] += 1.0;
    } else {
      n_lab[g] += 1.0;
      if (pred) fp[g] += 1.0;
    }
  }
  if (n[0] == 0.0 || n[1] == 0.0)
    return Status::InvalidArgument(
        "AuditGroupFairness: a group is empty (is the feature binary?)");
  report.positive_rate_group0 = pos[0] / n[0];
  report.positive_rate_group1 = pos[1] / n[1];
  report.demographic_parity_gap =
      report.positive_rate_group1 - report.positive_rate_group0;
  const double tpr0 = p_lab[0] > 0 ? tp[0] / p_lab[0] : 0.0;
  const double tpr1 = p_lab[1] > 0 ? tp[1] / p_lab[1] : 0.0;
  const double fpr0 = n_lab[0] > 0 ? fp[0] / n_lab[0] : 0.0;
  const double fpr1 = n_lab[1] > 0 ? fp[1] / n_lab[1] : 0.0;
  report.tpr_gap = tpr1 - tpr0;
  report.fpr_gap = fpr1 - fpr0;
  return report;
}

Result<double> InterventionalFairnessGap(
    const Model& model, const Scm& scm,
    const std::vector<size_t>& feature_nodes, size_t sensitive,
    int num_samples, uint64_t seed) {
  if (sensitive >= feature_nodes.size())
    return Status::OutOfRange("InterventionalFairnessGap: bad feature");
  auto decision_rate = [&](double value, uint64_t s) {
    Rng rng(s);
    double total = 0.0;
    std::vector<double> x(feature_nodes.size());
    for (int i = 0; i < num_samples; ++i) {
      std::vector<double> sample =
          scm.SampleDo({{feature_nodes[sensitive], value}}, &rng);
      for (size_t j = 0; j < feature_nodes.size(); ++j)
        x[j] = sample[feature_nodes[j]];
      total += model.Predict(x) >= 0.5 ? 1.0 : 0.0;
    }
    return total / static_cast<double>(num_samples);
  };
  // Common random numbers across the two arms.
  return decision_rate(1.0, seed) - decision_rate(0.0, seed);
}

}  // namespace xai
