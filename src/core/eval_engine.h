#ifndef XAIDB_CORE_EVAL_ENGINE_H_
#define XAIDB_CORE_EVAL_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/game.h"
#include "math/matrix.h"
#include "model/model.h"

namespace xai {

/// Point-in-time view of one cache's counters. Monotonic except `entries`.
struct EvalCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Identity of one memoized coalition value: two independent 64-bit
/// digests of (context fingerprint, instance, coalition mask). Keys are
/// compared on all 128 bits, so a lookup returns a wrong value only on a
/// full 128-bit collision — negligible against the float-exact workloads
/// the cache serves. The full mask is deliberately not stored: query-
/// Shapley games have one player per tuple and masks would dominate the
/// cache's memory.
struct EvalCacheKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const EvalCacheKey& o) const {
    return hi == o.hi && lo == o.lo;
  }
};

struct EvalCacheKeyHash {
  size_t operator()(const EvalCacheKey& k) const {
    // The digests are already well mixed; fold them.
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Derives the cache key for one coalition under a context fingerprint
/// (model + background + instance identity). Pure function of its inputs.
EvalCacheKey MakeEvalCacheKey(uint64_t context_fingerprint,
                              const std::vector<bool>& in_coalition);

/// FNV-1a over raw bytes — the fingerprint building block shared by the
/// engine and its callers (instance hashing, background hashing).
uint64_t EvalFingerprintBytes(uint64_t h, const void* data, size_t len);

/// Bounded, sharded memo cache for coalition values, shared across
/// explainer instances and across explanation requests. Thread-safe:
/// shards are mutex-striped so concurrent ParallelFor chunks contend on
/// 1/num_shards of the keyspace. Eviction is per-shard CLOCK (a one-bit
/// LRU approximation): every hit sets the entry's reference bit; an
/// insert into a full shard sweeps the clock hand, clearing reference
/// bits until it finds a cold entry to evict.
///
/// Determinism: cached values are pure functions of their key (the
/// ValueBatch contract makes batched and scalar evaluation bit-identical),
/// so Insert never overwrites an existing entry — concurrent fills of the
/// same key are idempotent and results cannot depend on which chunk's
/// probe or fill wins.
class CoalitionValueCache {
 public:
  /// `capacity` = max resident values across all shards (0 behaves as 1;
  /// use a null cache pointer to disable caching). `num_shards` is
  /// clamped so every shard holds at least one entry.
  explicit CoalitionValueCache(size_t capacity, size_t num_shards = 8);

  CoalitionValueCache(const CoalitionValueCache&) = delete;
  CoalitionValueCache& operator=(const CoalitionValueCache&) = delete;

  /// True and *value filled on a hit (also marks the entry recently used).
  bool Lookup(const EvalCacheKey& key, double* value);

  /// Memoizes `value` under `key`; first write wins (see class comment).
  /// Evicts a cold entry when the shard is full.
  void Insert(const EvalCacheKey& key, double value);

  EvalCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    EvalCacheKey key;
    double value = 0.0;
    bool referenced = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;  // size() grows up to its fixed capacity
    size_t slot_capacity = 0;
    size_t hand = 0;  // CLOCK hand over slots
    std::unordered_map<EvalCacheKey, size_t, EvalCacheKeyHash> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const EvalCacheKey& key);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A CoalitionGame view that fronts an inner game with a memo cache.
/// Value/ValueBatch answer from the cache when possible; batch calls
/// additionally deduplicate identical masks *within* the sweep so the
/// inner game evaluates each distinct coalition at most once. Because
/// every game's ValueBatch is bit-identical to per-coalition Value, the
/// wrapped game is bit-identical to the inner game whether the cache is
/// warm, cold, or absent (null cache = pure passthrough, no dedup).
///
/// `context_fingerprint` must identify everything the inner game's value
/// depends on besides the mask (model, background, instance, seeds); two
/// games may share a fingerprint only if they are bit-identical functions.
class CachedGame : public CoalitionGame {
 public:
  CachedGame(const CoalitionGame& inner, uint64_t context_fingerprint,
             std::shared_ptr<CoalitionValueCache> cache)
      : inner_(&inner), fp_(context_fingerprint), cache_(std::move(cache)) {}

  size_t num_players() const override { return inner_->num_players(); }
  double Value(const std::vector<bool>& in_coalition) const override;
  std::vector<double> ValueBatch(
      const std::vector<std::vector<bool>>& coalitions) const override;

 private:
  const CoalitionGame* inner_;
  uint64_t fp_;
  std::shared_ptr<CoalitionValueCache> cache_;
};

/// The shared coalition-evaluation engine behind the marginal-game
/// explainers (KernelSHAP, MC-Shapley). Owns the plumbing each of them
/// used to duplicate per instance: the deterministic background
/// subsample (computed once per engine, not once per row), the context
/// fingerprint, and the memo cache. Bind() produces an instance-scoped
/// game whose coalition evaluations route through the cache — keyed by
/// (engine fingerprint, instance hash, mask), so values memoize *across*
/// instances and across ExplainBatch sweeps for repeated rows.
///
/// The fingerprint covers the model's address, the subsampled background
/// bytes and the subsample cap; callers sharing one cache across models
/// must keep those models alive for the cache's lifetime (address reuse
/// after free is the one way distinct contexts could alias).
class CoalitionEvaluator {
 public:
  CoalitionEvaluator(const Model& model, const Matrix& background,
                     size_t max_background,
                     std::shared_ptr<CoalitionValueCache> cache);

  /// A marginal feature game bound to one instance, routed through the
  /// engine's cache (passthrough when the engine has none). Borrows the
  /// engine's background — valid while the engine lives.
  class BoundGame : public CoalitionGame {
   public:
    size_t num_players() const override { return game_->num_players(); }
    double Value(const std::vector<bool>& in_coalition) const override;
    std::vector<double> ValueBatch(
        const std::vector<std::vector<bool>>& coalitions) const override;
    /// v(empty) — routed through the cache like any other coalition.
    double BaseValue() const;

   private:
    friend class CoalitionEvaluator;
    BoundGame(std::unique_ptr<MarginalFeatureGame> game, uint64_t fp,
              std::shared_ptr<CoalitionValueCache> cache)
        : game_(std::move(game)), fp_(fp), cache_(std::move(cache)) {}

    std::unique_ptr<MarginalFeatureGame> game_;
    uint64_t fp_;  // engine fingerprint mixed with the instance hash
    std::shared_ptr<CoalitionValueCache> cache_;
  };

  BoundGame Bind(std::vector<double> instance) const;

  const std::shared_ptr<CoalitionValueCache>& cache() const { return cache_; }
  const Matrix& background() const { return background_; }
  uint64_t fingerprint() const { return context_fp_; }

 private:
  const Model& model_;
  Matrix background_;  // subsampled once, shared by every bound game
  uint64_t context_fp_;
  std::shared_ptr<CoalitionValueCache> cache_;
};

/// The process-wide default cache capacity, in entries. Resolution order:
/// SetGlobalEvalCacheCapacity() (CLI --cache-size, tests) > XAIDB_CACHE
/// env var > 0 (caching off).
size_t GlobalEvalCacheCapacity();

/// Overrides the global capacity (0 disables; pass kGlobalEvalCacheUnset
/// to restore the env default). Takes effect on the next GlobalEvalCache()
/// call, which drops the old cache's contents if the capacity changed.
inline constexpr size_t kGlobalEvalCacheUnset = static_cast<size_t>(-1);
void SetGlobalEvalCacheCapacity(size_t capacity);

/// Lazily constructed process-wide cache of GlobalEvalCacheCapacity()
/// entries; null when the capacity is 0. Explainers without an explicit
/// per-options cache fall back to this, which is how the XAIDB_CACHE env
/// knob reaches every explainer with no per-call-site plumbing.
std::shared_ptr<CoalitionValueCache> GlobalEvalCache();

}  // namespace xai

#endif  // XAIDB_CORE_EVAL_ENGINE_H_
