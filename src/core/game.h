#ifndef XAIDB_CORE_GAME_H_
#define XAIDB_CORE_GAME_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "math/gaussian.h"
#include "math/matrix.h"
#include "model/model.h"

namespace xai {

/// A cooperative game: players and a value for every coalition. Shapley
/// computation (exact enumeration, permutation sampling) is implemented
/// once against this interface and reused for feature attribution (players
/// = features), data valuation (players = training points) and query
/// answering (players = tuples) — the unifying view the tutorial draws
/// between Sections 2.1.2, 2.3.1 and 3.
class CoalitionGame {
 public:
  virtual ~CoalitionGame() = default;

  virtual size_t num_players() const = 0;
  /// Value of the coalition S = { i : in_coalition[i] }.
  virtual double Value(const std::vector<bool>& in_coalition) const = 0;

  /// Values of many coalitions at once — the batched contract every
  /// perturbation explainer drives: callers materialize their whole
  /// coalition set and games turn it into as few model evaluations as
  /// possible (the feature games below make a single PredictBatch call).
  /// Overrides must be value-equivalent to calling Value per coalition,
  /// bit-for-bit (the parallel determinism tests rely on it).
  virtual std::vector<double> ValueBatch(
      const std::vector<std::vector<bool>>& coalitions) const {
    std::vector<double> out(coalitions.size());
    for (size_t i = 0; i < coalitions.size(); ++i) out[i] = Value(coalitions[i]);
    return out;
  }
};

/// Wraps a callable as a game (tests, query-Shapley).
class LambdaGame : public CoalitionGame {
 public:
  using Fn = std::function<double(const std::vector<bool>&)>;
  LambdaGame(size_t n, Fn fn) : n_(n), fn_(std::move(fn)) {}
  size_t num_players() const override { return n_; }
  double Value(const std::vector<bool>& s) const override { return fn_(s); }

 private:
  size_t n_;
  Fn fn_;
};

/// The *marginal* (a.k.a. interventional / baseline) feature game behind
/// KernelSHAP and exact SHAP:
///   v(S) = (1/m) sum_b f(x_S combined with background row b on ~S).
/// Features outside the coalition are imputed from background rows,
/// breaking their correlation with coalition members.
class MarginalFeatureGame : public CoalitionGame {
 public:
  /// `background` rows are the reference distribution (typically a sample
  /// of the training set). `max_background` caps the rows used.
  MarginalFeatureGame(const Model& model, const Matrix& background,
                      std::vector<double> instance,
                      size_t max_background = 100);

  /// Borrows an already-subsampled background instead of copying one per
  /// instance — the constructor CoalitionEvaluator uses so every bound
  /// game shares the engine's single subsample. `background` must outlive
  /// the game and must be exactly what SubsampleBackground would produce
  /// for the draws to match the copying constructor bit-for-bit.
  struct Presubsampled {};
  MarginalFeatureGame(const Model& model, Presubsampled,
                      const Matrix* background, std::vector<double> instance);

  /// The deterministic stride subsample both constructors agree on: at
  /// most `max_background` rows, keeping the game a pure function of
  /// (background, max_background).
  static Matrix SubsampleBackground(const Matrix& background,
                                    size_t max_background);

  size_t num_players() const override { return instance_.size(); }
  double Value(const std::vector<bool>& in_coalition) const override;
  /// Materializes all imputed rows (one per coalition x background row)
  /// into a single Matrix and makes one PredictBatch call.
  std::vector<double> ValueBatch(
      const std::vector<std::vector<bool>>& coalitions) const override;

  /// v(empty) — the base value.
  double BaseValue() const;

 private:
  const Matrix& bg() const {
    return external_background_ != nullptr ? *external_background_
                                           : owned_background_;
  }

  const Model& model_;
  Matrix owned_background_;                      // subsampled copy, or empty
  const Matrix* external_background_ = nullptr;  // borrowed (Presubsampled)
  std::vector<double> instance_;
};

/// The *conditional* feature game: v(S) = E[f(X) | X_S = x_S] under a
/// Gaussian fit of the background data (exact conditioning, Monte-Carlo
/// over the conditional for f). Captures what correlated features carry
/// about each other — the contrast with the marginal game that experiment
/// E12 measures.
class ConditionalGaussianGame : public CoalitionGame {
 public:
  static Result<ConditionalGaussianGame> Create(const Model& model,
                                                const Matrix& background,
                                                std::vector<double> instance,
                                                int samples_per_eval = 64,
                                                uint64_t seed = 101);

  size_t num_players() const override { return instance_.size(); }
  double Value(const std::vector<bool>& in_coalition) const override;
  /// Draws every coalition's conditional Monte-Carlo rows (each from its
  /// own per-coalition counter-derived stream, exactly as Value does) into
  /// one Matrix and makes a single PredictBatch call.
  std::vector<double> ValueBatch(
      const std::vector<std::vector<bool>>& coalitions) const override;

 private:
  ConditionalGaussianGame(const Model& model, MultivariateGaussian dist,
                          std::vector<double> instance, int samples,
                          uint64_t seed)
      : model_(model), dist_(std::move(dist)),
        instance_(std::move(instance)), samples_(samples), seed_(seed) {}

  /// Appends this coalition's Monte-Carlo evaluation rows (drawn from its
  /// counter-derived per-coalition stream); returns how many were added.
  /// Value and ValueBatch both reduce over exactly these rows.
  size_t AppendSampleRows(const std::vector<bool>& in_coalition,
                          Matrix* rows) const;

  const Model& model_;
  MultivariateGaussian dist_;
  std::vector<double> instance_;
  int samples_;
  uint64_t seed_;
};

}  // namespace xai

#endif  // XAIDB_CORE_GAME_H_
