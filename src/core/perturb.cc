#include "core/perturb.h"

#include <cmath>

#include "obs/obs.h"

namespace xai {

TabularPerturber::TabularPerturber(const Dataset& reference,
                                   std::vector<double> instance)
    : schema_(reference.schema()),
      stats_(ComputeColumnStats(reference)),
      instance_(std::move(instance)) {}

TabularPerturber::TabularPerturber(const Schema& schema, ColumnStats stats,
                                   std::vector<double> instance)
    : schema_(schema),
      stats_(std::move(stats)),
      instance_(std::move(instance)) {}

TabularPerturber::Sample TabularPerturber::Draw(Rng* rng) const {
  return DrawConditional(std::vector<bool>(instance_.size(), false), rng);
}

TabularPerturber::Sample TabularPerturber::DrawConditional(
    const std::vector<bool>& fixed, Rng* rng) const {
  XAI_OBS_COUNT("core.perturb.samples");
  const size_t d = instance_.size();
  Sample s;
  s.x.resize(d);
  s.z.resize(d);
  for (size_t j = 0; j < d; ++j) {
    if (fixed[j]) {
      s.x[j] = instance_[j];
      s.z[j] = 1;
      continue;
    }
    if (schema_.feature(j).is_numeric()) {
      s.x[j] = rng->Gaussian(instance_[j], stats_.std[j]);
      // "Same as instance" when within half a std — the binarization LIME
      // uses for its interpretable representation of numeric features.
      s.z[j] = std::fabs(s.x[j] - instance_[j]) <= 0.5 * stats_.std[j] ? 1 : 0;
    } else {
      const size_t code = rng->Categorical(stats_.frequencies[j]);
      s.x[j] = static_cast<double>(code);
      s.z[j] = std::lround(instance_[j]) == static_cast<long>(code) ? 1 : 0;
    }
  }
  return s;
}

TabularPerturber::BatchSample TabularPerturber::DrawBatch(size_t n,
                                                          Rng* rng) const {
  const size_t d = instance_.size();
  BatchSample out;
  out.x = Matrix(n, d);
  out.z.resize(n);
  const std::vector<bool> none(d, false);
  for (size_t i = 0; i < n; ++i) {
    Sample s = DrawConditional(none, rng);
    std::copy(s.x.begin(), s.x.end(), out.x.RowPtr(i));
    out.z[i] = std::move(s.z);
  }
  return out;
}

}  // namespace xai
