#ifndef XAIDB_CORE_EXPLAINER_H_
#define XAIDB_CORE_EXPLAINER_H_

#include <vector>

#include "common/result.h"
#include "core/explanation.h"

namespace xai {

/// Common interface of local feature-attribution explainers (LIME,
/// KernelSHAP, TreeSHAP, QII, causal Shapley, ...). The model and
/// background data are bound at construction; Explain is called per
/// instance. Having one interface lets the evaluation module (fidelity,
/// stability, adversarial robustness) treat explainers uniformly — the
/// comparison methodology the tutorial calls for.
class AttributionExplainer {
 public:
  virtual ~AttributionExplainer() = default;

  virtual Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) = 0;
};

}  // namespace xai

#endif  // XAIDB_CORE_EXPLAINER_H_
