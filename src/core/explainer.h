#ifndef XAIDB_CORE_EXPLAINER_H_
#define XAIDB_CORE_EXPLAINER_H_

#include <cassert>
#include <vector>

#include "common/result.h"
#include "core/explanation.h"
#include "math/matrix.h"

namespace xai {

/// Common interface of local feature-attribution explainers (LIME,
/// KernelSHAP, TreeSHAP, QII, causal Shapley, ...). The model and
/// background data are bound at construction. Having one interface lets
/// the evaluation module (fidelity, stability, adversarial robustness)
/// treat explainers uniformly — the comparison methodology the tutorial
/// calls for.
///
/// ExplainBatch is the preferred entry point: explanation requests arrive
/// as a workload, and amortizing per-request setup (coalition designs,
/// perturbation statistics, per-tree state) across instances is exactly
/// the shared-computation opportunity the tutorial's Section 3 frames as
/// data-management territory. Calling Explain in a loop over many
/// instances is deprecated — it repeats that setup per row and the
/// serving layer (src/serve/) cannot coalesce it.
///
/// Determinism contract: ExplainBatch(instances)[i] is bit-identical to
/// Explain(instances.Row(i)). Overrides may only hoist computation whose
/// value does not depend on the instance (sampled coalition designs,
/// background column statistics, pre-drawn permutations); anything
/// instance-dependent must be re-derived per row exactly as Explain does.
/// The serving layer's guarantee — a coalesced request returns the same
/// bits as a solo request — reduces to this contract.
class AttributionExplainer {
 public:
  virtual ~AttributionExplainer() = default;

  virtual Result<FeatureAttribution> Explain(
      const std::vector<double>& instance) = 0;

  /// Explains every row of `instances` (one row per instance, arity =
  /// feature count). The default is the unamortized per-row loop;
  /// KernelSHAP, TreeSHAP, LIME and MC-Shapley override it with sweeps
  /// that share instance-independent setup across rows.
  virtual Result<std::vector<FeatureAttribution>> ExplainBatch(
      const Matrix& instances) {
    std::vector<FeatureAttribution> out;
    out.reserve(instances.rows());
    for (size_t i = 0; i < instances.rows(); ++i) {
      XAI_ASSIGN_OR_RETURN(FeatureAttribution attr, Explain(instances.Row(i)));
      out.push_back(std::move(attr));
    }
    assert(out.size() == instances.rows());
    return out;
  }
};

}  // namespace xai

#endif  // XAIDB_CORE_EXPLAINER_H_
