#include "core/explanation.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "math/stats.h"

namespace xai {

std::vector<size_t> FeatureAttribution::TopFeatures(size_t k) const {
  return TopKByMagnitude(values, k);
}

double FeatureAttribution::Reconstruction() const {
  double s = base_value;
  for (double v : values) s += v;
  return s;
}

std::string FeatureAttribution::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "prediction=" << prediction << " base=" << base_value << "\n";
  for (size_t i : TopFeatures(values.size())) {
    os << "  " << (i < feature_names.size() ? feature_names[i]
                                            : "f" + std::to_string(i))
       << ": " << values[i] << "\n";
  }
  return os.str();
}

bool RulePredicate::Matches(const std::vector<double>& x) const {
  const double v = x[feature];
  if (is_categorical) return std::lround(v) == std::lround(category);
  return v >= lower && v <= upper;
}

std::string RulePredicate::ToString(const Schema& schema) const {
  const FeatureSpec& spec = schema.feature(feature);
  std::ostringstream os;
  os.precision(4);
  if (is_categorical) {
    const auto code = static_cast<size_t>(std::lround(category));
    os << spec.name << " = "
       << (code < spec.cardinality() ? spec.categories[code] : "?");
    return os.str();
  }
  const bool has_lo = lower > -std::numeric_limits<double>::infinity();
  const bool has_hi = upper < std::numeric_limits<double>::infinity();
  if (has_lo && has_hi) {
    os << lower << " <= " << spec.name << " <= " << upper;
  } else if (has_lo) {
    os << spec.name << " >= " << lower;
  } else {
    os << spec.name << " <= " << upper;
  }
  return os.str();
}

bool RuleExplanation::Matches(const std::vector<double>& x) const {
  for (const RulePredicate& p : predicates)
    if (!p.Matches(x)) return false;
  return true;
}

std::string RuleExplanation::ToString(const Schema& schema) const {
  std::ostringstream os;
  os.precision(3);
  os << "IF ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i) os << " AND ";
    os << predicates[i].ToString(schema);
  }
  os << " THEN predict " << outcome << "  (precision=" << precision
     << ", coverage=" << coverage << ")";
  return os.str();
}

std::string CounterfactualSet::ToString(
    const Schema& schema, const std::vector<double>& original) const {
  std::ostringstream os;
  os.precision(4);
  os << counterfactuals.size() << " counterfactual(s), diversity="
     << diversity << "\n";
  for (size_t c = 0; c < counterfactuals.size(); ++c) {
    const Counterfactual& cf = counterfactuals[c];
    os << "  #" << c << " (pred=" << cf.prediction
       << ", changed=" << cf.num_changed << ", dist=" << cf.distance
       << "):";
    for (size_t j = 0; j < cf.instance.size(); ++j) {
      if (std::fabs(cf.instance[j] - original[j]) > 1e-9) {
        os << " " << schema.FormatValue(j, original[j]) << " -> "
           << schema.FormatValue(j, cf.instance[j]) << ";";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xai
