#ifndef XAIDB_CORE_PERTURB_H_
#define XAIDB_CORE_PERTURB_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "math/matrix.h"

namespace xai {

/// Tabular perturbation sampler shared by LIME and Anchors. Produces
/// neighbors of an instance by resampling feature values from the training
/// distribution: numeric features draw N(instance_j, column_std_j);
/// categorical features draw from the empirical category frequencies.
/// Returns both the raw perturbed row and its binary "interpretable
/// representation" z (z_j = 1 iff feature j kept a value close to the
/// instance's) — the unreliable sampling step the tutorial flags as LIME's
/// key vulnerability (Section 2.1.1), which E3/E4 quantify.
class TabularPerturber {
 public:
  TabularPerturber(const Dataset& reference, std::vector<double> instance);

  /// Constructs from precomputed column statistics, so batched callers
  /// (LimeExplainer::ExplainBatch, the serving layer) compute
  /// ComputeColumnStats once per sweep instead of once per instance. The
  /// stats must be those of the reference dataset — draws are then
  /// bit-identical to the Dataset constructor's.
  TabularPerturber(const Schema& schema, ColumnStats stats,
                   std::vector<double> instance);

  struct Sample {
    std::vector<double> x;
    std::vector<uint8_t> z;  // 1 = feature agrees with the instance.
  };

  /// One unconstrained perturbation.
  Sample Draw(Rng* rng) const;

  /// One perturbation with the features in `fixed` clamped to the
  /// instance's values (the conditional sampler Anchors needs).
  Sample DrawConditional(const std::vector<bool>& fixed, Rng* rng) const;

  /// A whole perturbation neighborhood in one shot: `x` holds n raw rows,
  /// `z[i]` the matching binary representations. Draws come off `rng` in
  /// exactly the order of n sequential Draw calls, so batch and scalar
  /// sampling are interchangeable at a fixed seed. This is the matrix the
  /// batched LIME/Anchors paths feed straight into Model::PredictBatch.
  struct BatchSample {
    Matrix x;
    std::vector<std::vector<uint8_t>> z;
  };
  BatchSample DrawBatch(size_t n, Rng* rng) const;

  size_t num_features() const { return instance_.size(); }
  const std::vector<double>& instance() const { return instance_; }
  const ColumnStats& stats() const { return stats_; }
  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
  ColumnStats stats_;
  std::vector<double> instance_;
};

}  // namespace xai

#endif  // XAIDB_CORE_PERTURB_H_
