#include "core/eval_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/obs.h"

namespace xai {

namespace {

/// splitmix64 finalizer — decorrelates the FNV digests before they are
/// folded together or used for shard selection.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Publishes the cache hit-rate gauge from one stats view. Cheap enough
/// to call per batch; no-op when metrics are off.
void PublishHitRate(const CoalitionValueCache& cache) {
  if (!obs::Enabled()) return;
  XAI_OBS_GAUGE_SET("evalengine.hit_rate", cache.stats().HitRate());
}

}  // namespace

uint64_t EvalFingerprintBytes(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

EvalCacheKey MakeEvalCacheKey(uint64_t context_fingerprint,
                              const std::vector<bool>& in_coalition) {
  // Two FNV-style digests with independent multipliers; the context
  // fingerprint seeds both so distinct contexts never share keys.
  uint64_t h1 = 14695981039346656037ULL ^ context_fingerprint;
  uint64_t h2 = 0x9E3779B97F4A7C15ULL + context_fingerprint;
  for (bool bit : in_coalition) {
    h1 = (h1 ^ (bit ? 2u : 1u)) * 1099511628211ULL;
    h2 = (h2 ^ (bit ? 0x2Du : 0x5Bu)) * 0x100000001B3ULL;
  }
  h1 = EvalFingerprintBytes(h1, &context_fingerprint,
                            sizeof(context_fingerprint));
  const uint64_t n = in_coalition.size();
  h2 = EvalFingerprintBytes(h2, &n, sizeof(n));
  return EvalCacheKey{Mix64(h1), Mix64(h2)};
}

CoalitionValueCache::CoalitionValueCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(1, capacity)) {
  // Every shard must hold at least one entry, so a capacity-1 cache
  // degenerates to a single shard and global occupancy == capacity_.
  const size_t shards = std::max<size_t>(1, std::min(num_shards, capacity_));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slot_capacity = capacity_ / shards + (i < capacity_ % shards ? 1 : 0);
    shard->slots.reserve(shard->slot_capacity);
    shards_.push_back(std::move(shard));
  }
}

CoalitionValueCache::Shard& CoalitionValueCache::ShardFor(
    const EvalCacheKey& key) {
  return *shards_[Mix64(key.hi ^ key.lo) % shards_.size()];
}

bool CoalitionValueCache::Lookup(const EvalCacheKey& key, double* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    XAI_OBS_COUNT("evalengine.misses");
    return false;
  }
  Slot& slot = shard.slots[it->second];
  slot.referenced = true;
  *value = slot.value;
  ++shard.hits;
  XAI_OBS_COUNT("evalengine.hits");
  return true;
}

void CoalitionValueCache::Insert(const EvalCacheKey& key, double value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // First write wins: values are pure in the key, so the resident entry
    // already holds these bits. Refreshing the reference bit is the only
    // effect a duplicate fill may have.
    shard.slots[it->second].referenced = true;
    return;
  }
  size_t slot_idx;
  if (shard.slots.size() < shard.slot_capacity) {
    slot_idx = shard.slots.size();
    shard.slots.emplace_back();
  } else {
    // CLOCK sweep: clear reference bits until a cold entry comes around.
    for (;;) {
      Slot& candidate = shard.slots[shard.hand];
      if (!candidate.referenced) break;
      candidate.referenced = false;
      shard.hand = (shard.hand + 1) % shard.slots.size();
    }
    slot_idx = shard.hand;
    shard.hand = (shard.hand + 1) % shard.slots.size();
    shard.index.erase(shard.slots[slot_idx].key);
    ++shard.evictions;
    XAI_OBS_COUNT("evalengine.evictions");
  }
  Slot& slot = shard.slots[slot_idx];
  slot.key = key;
  slot.value = value;
  slot.referenced = true;
  shard.index[key] = slot_idx;
}

EvalCacheStats CoalitionValueCache::stats() const {
  EvalCacheStats out;
  out.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->index.size();
  }
  return out;
}

namespace {

double CachedValueImpl(const CoalitionGame& inner, uint64_t fp,
                       CoalitionValueCache* cache,
                       const std::vector<bool>& in_coalition) {
  if (cache == nullptr) return inner.Value(in_coalition);
  const EvalCacheKey key = MakeEvalCacheKey(fp, in_coalition);
  double value = 0.0;
  if (cache->Lookup(key, &value)) return value;
  value = inner.Value(in_coalition);
  cache->Insert(key, value);
  return value;
}

std::vector<double> CachedValueBatchImpl(
    const CoalitionGame& inner, uint64_t fp, CoalitionValueCache* cache,
    const std::vector<std::vector<bool>>& coalitions) {
  if (cache == nullptr) return inner.ValueBatch(coalitions);
  const size_t n = coalitions.size();
  if (n == 0) return {};

  // Within-sweep dedup: identical masks share one slot, in first-
  // occurrence order (the order the inner ValueBatch sees, so results are
  // bit-identical to the undeduplicated sweep).
  std::unordered_map<EvalCacheKey, size_t, EvalCacheKeyHash> first;
  first.reserve(n);
  std::vector<size_t> slot_of(n);
  std::vector<size_t> rep;  // unique slot -> index of its first mask
  std::vector<EvalCacheKey> keys;
  for (size_t i = 0; i < n; ++i) {
    const EvalCacheKey key = MakeEvalCacheKey(fp, coalitions[i]);
    auto [it, inserted] = first.try_emplace(key, rep.size());
    if (inserted) {
      rep.push_back(i);
      keys.push_back(key);
    }
    slot_of[i] = it->second;
  }

  // Probe the cache once per unique mask; batch-evaluate the misses
  // through the inner game in one ValueBatch call.
  const size_t unique = rep.size();
  std::vector<double> unique_val(unique, 0.0);
  std::vector<size_t> miss_slots;
  std::vector<std::vector<bool>> miss_masks;
  for (size_t u = 0; u < unique; ++u) {
    if (!cache->Lookup(keys[u], &unique_val[u])) {
      miss_slots.push_back(u);
      miss_masks.push_back(coalitions[rep[u]]);
    }
  }
  if (!miss_masks.empty()) {
    const std::vector<double> vals = inner.ValueBatch(miss_masks);
    for (size_t k = 0; k < miss_slots.size(); ++k) {
      unique_val[miss_slots[k]] = vals[k];
      cache->Insert(keys[miss_slots[k]], vals[k]);
    }
  }
  XAI_OBS_TRACE_INSTANT("evalengine.batch_hits",
                        static_cast<double>(unique - miss_slots.size()));
  XAI_OBS_TRACE_INSTANT("evalengine.batch_misses",
                        static_cast<double>(miss_slots.size()));
  PublishHitRate(*cache);

  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = unique_val[slot_of[i]];
  return out;
}

}  // namespace

double CachedGame::Value(const std::vector<bool>& in_coalition) const {
  return CachedValueImpl(*inner_, fp_, cache_.get(), in_coalition);
}

std::vector<double> CachedGame::ValueBatch(
    const std::vector<std::vector<bool>>& coalitions) const {
  return CachedValueBatchImpl(*inner_, fp_, cache_.get(), coalitions);
}

CoalitionEvaluator::CoalitionEvaluator(
    const Model& model, const Matrix& background, size_t max_background,
    std::shared_ptr<CoalitionValueCache> cache)
    : model_(model),
      background_(
          MarginalFeatureGame::SubsampleBackground(background, max_background)),
      cache_(std::move(cache)) {
  // Context fingerprint: model identity (its address — callers sharing a
  // cache keep their models alive, see the class comment), the subsampled
  // background's exact bytes, and its shape.
  uint64_t h = 14695981039346656037ULL;
  const Model* model_ptr = &model_;
  h = EvalFingerprintBytes(h, &model_ptr, sizeof(model_ptr));
  const size_t dims[2] = {background_.rows(), background_.cols()};
  h = EvalFingerprintBytes(h, dims, sizeof(dims));
  if (background_.rows() > 0)
    h = EvalFingerprintBytes(h, background_.RowPtr(0),
                             background_.rows() * background_.cols() *
                                 sizeof(double));
  context_fp_ = Mix64(h);
}

CoalitionEvaluator::BoundGame CoalitionEvaluator::Bind(
    std::vector<double> instance) const {
  uint64_t fp = context_fp_;
  if (!instance.empty())
    fp = EvalFingerprintBytes(fp, instance.data(),
                              instance.size() * sizeof(double));
  const size_t d = instance.size();
  fp = Mix64(EvalFingerprintBytes(fp, &d, sizeof(d)));
  auto game = std::make_unique<MarginalFeatureGame>(
      model_, MarginalFeatureGame::Presubsampled{}, &background_,
      std::move(instance));
  return BoundGame(std::move(game), fp, cache_);
}

double CoalitionEvaluator::BoundGame::Value(
    const std::vector<bool>& in_coalition) const {
  return CachedValueImpl(*game_, fp_, cache_.get(), in_coalition);
}

std::vector<double> CoalitionEvaluator::BoundGame::ValueBatch(
    const std::vector<std::vector<bool>>& coalitions) const {
  return CachedValueBatchImpl(*game_, fp_, cache_.get(), coalitions);
}

double CoalitionEvaluator::BoundGame::BaseValue() const {
  return Value(std::vector<bool>(game_->num_players(), false));
}

namespace {

std::atomic<size_t> g_cache_capacity_override{kGlobalEvalCacheUnset};

size_t EnvCacheCapacity() {
  const char* env = std::getenv("XAIDB_CACHE");
  if (env != nullptr && *env != '\0') {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 0;  // caching off by default
}

std::mutex g_cache_mu;
std::shared_ptr<CoalitionValueCache> g_cache;  // null while capacity == 0
size_t g_cache_size = 0;

}  // namespace

size_t GlobalEvalCacheCapacity() {
  const size_t override_n =
      g_cache_capacity_override.load(std::memory_order_relaxed);
  return override_n != kGlobalEvalCacheUnset ? override_n : EnvCacheCapacity();
}

void SetGlobalEvalCacheCapacity(size_t capacity) {
  g_cache_capacity_override.store(capacity, std::memory_order_relaxed);
}

std::shared_ptr<CoalitionValueCache> GlobalEvalCache() {
  const size_t want = GlobalEvalCacheCapacity();
  std::lock_guard<std::mutex> lock(g_cache_mu);
  if (g_cache_size != want || (want > 0 && !g_cache)) {
    g_cache = want > 0 ? std::make_shared<CoalitionValueCache>(want) : nullptr;
    g_cache_size = want;
  }
  return g_cache;
}

}  // namespace xai
