#ifndef XAIDB_CORE_EXPLANATION_H_
#define XAIDB_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "data/schema.h"

namespace xai {

/// A local feature-attribution explanation: one real-valued importance per
/// feature for a single prediction (tutorial Section 2.1). For
/// Shapley-based explainers the efficiency property holds:
/// sum(values) ≈ prediction - base_value.
struct FeatureAttribution {
  std::vector<std::string> feature_names;
  std::vector<double> values;
  /// Expected model output over the background ("average prediction").
  double base_value = 0.0;
  /// Model output on the explained instance.
  double prediction = 0.0;

  size_t size() const { return values.size(); }
  /// Indices of the k most important features by |value|.
  std::vector<size_t> TopFeatures(size_t k) const;
  /// sum(values) + base_value — what an additive explanation reconstructs.
  double Reconstruction() const;
  std::string ToString() const;
};

/// A single predicate of a rule: feature `feature` falls in
/// [lower, upper] for numeric features, or equals `category` for
/// categorical ones.
struct RulePredicate {
  size_t feature = 0;
  bool is_categorical = false;
  double lower = 0.0;   // Numeric: inclusive lower bound (-inf allowed).
  double upper = 0.0;   // Numeric: inclusive upper bound (+inf allowed).
  double category = 0;  // Categorical code.

  bool Matches(const std::vector<double>& x) const;
  std::string ToString(const Schema& schema) const;
};

/// An IF-THEN rule explanation (Anchors, interpretable decision sets,
/// tutorial Section 2.2): when every predicate holds, the model predicts
/// `outcome` with estimated `precision`; `coverage` is the fraction of the
/// data distribution the rule applies to.
struct RuleExplanation {
  std::vector<RulePredicate> predicates;
  double outcome = 1.0;
  double precision = 0.0;
  double coverage = 0.0;

  bool Matches(const std::vector<double>& x) const;
  std::string ToString(const Schema& schema) const;
};

/// A counterfactual example (tutorial Section 2.1.4): a minimally-changed
/// instance with the opposite model outcome, plus diagnostics.
struct Counterfactual {
  std::vector<double> instance;
  double prediction = 0.0;
  /// Number of features changed vs the original (sparsity; lower better).
  size_t num_changed = 0;
  /// L1 distance in normalized feature space (proximity; lower better).
  double distance = 0.0;
  /// True if the model output actually crossed the decision boundary.
  bool valid = false;
};

/// A set of counterfactuals with set-level diagnostics (DiCE's diversity).
struct CounterfactualSet {
  std::vector<Counterfactual> counterfactuals;
  /// Mean pairwise L1 distance among returned counterfactuals.
  double diversity = 0.0;

  std::string ToString(const Schema& schema,
                       const std::vector<double>& original) const;
};

}  // namespace xai

#endif  // XAIDB_CORE_EXPLANATION_H_
