#include "core/game.h"

#include <algorithm>

#include "obs/obs.h"

namespace xai {

namespace {

/// Writes the m imputed rows for one coalition into dst (row-major,
/// m x d): coalition features from the instance, the rest from each
/// background row.
void FillImputedRows(const Matrix& background,
                     const std::vector<double>& instance,
                     const std::vector<bool>& in_coalition, double* dst) {
  const size_t d = instance.size();
  const size_t m = background.rows();
  for (size_t b = 0; b < m; ++b) {
    const double* bg = background.RowPtr(b);
    double* x = dst + b * d;
    for (size_t j = 0; j < d; ++j)
      x[j] = in_coalition[j] ? instance[j] : bg[j];
  }
}

}  // namespace

Matrix MarginalFeatureGame::SubsampleBackground(const Matrix& background,
                                                size_t max_background) {
  const size_t m = std::min(background.rows(), max_background);
  if (m == 0) return Matrix(0, background.cols());
  Matrix out(m, background.cols());
  // Deterministic stride subsample keeps the game a pure function.
  const size_t stride = std::max<size_t>(1, background.rows() / m);
  for (size_t i = 0; i < m; ++i) {
    const size_t src = std::min(i * stride, background.rows() - 1);
    std::copy(background.RowPtr(src), background.RowPtr(src) + background.cols(),
              out.RowPtr(i));
  }
  return out;
}

MarginalFeatureGame::MarginalFeatureGame(const Model& model,
                                         const Matrix& background,
                                         std::vector<double> instance,
                                         size_t max_background)
    : model_(model),
      owned_background_(SubsampleBackground(background, max_background)),
      instance_(std::move(instance)) {}

MarginalFeatureGame::MarginalFeatureGame(const Model& model, Presubsampled,
                                         const Matrix* background,
                                         std::vector<double> instance)
    : model_(model),
      external_background_(background),
      instance_(std::move(instance)) {}

double MarginalFeatureGame::Value(
    const std::vector<bool>& in_coalition) const {
  const size_t d = instance_.size();
  const size_t m = bg().rows();
  XAI_OBS_COUNT("core.game.coalition_evals");
  XAI_OBS_COUNT_N("core.game.model_evals", m);
  Matrix rows(m, d);
  FillImputedRows(bg(), instance_, in_coalition, rows.RowPtr(0));
  const std::vector<double> preds = model_.PredictBatch(rows);
  double total = 0.0;
  for (double p : preds) total += p;
  return total / static_cast<double>(m);
}

std::vector<double> MarginalFeatureGame::ValueBatch(
    const std::vector<std::vector<bool>>& coalitions) const {
  const size_t d = instance_.size();
  const size_t m = bg().rows();
  const size_t batch = coalitions.size();
  if (batch == 0) return {};
  XAI_OBS_COUNT_N("core.game.coalition_evals", batch);
  XAI_OBS_COUNT_N("core.game.model_evals", batch * m);
  XAI_OBS_OBSERVE("core.game.batch_rows", batch * m);
  XAI_OBS_TRACE_COUNTER("game.model_evals", batch * m);

  Matrix rows(batch * m, d);
  for (size_t c = 0; c < batch; ++c)
    FillImputedRows(bg(), instance_, coalitions[c], rows.RowPtr(c * m));
  const std::vector<double> preds = model_.PredictBatch(rows);

  std::vector<double> out(batch);
  for (size_t c = 0; c < batch; ++c) {
    double total = 0.0;
    for (size_t b = 0; b < m; ++b) total += preds[c * m + b];
    out[c] = total / static_cast<double>(m);
  }
  return out;
}

double MarginalFeatureGame::BaseValue() const {
  return Value(std::vector<bool>(instance_.size(), false));
}

Result<ConditionalGaussianGame> ConditionalGaussianGame::Create(
    const Model& model, const Matrix& background,
    std::vector<double> instance, int samples_per_eval, uint64_t seed) {
  XAI_ASSIGN_OR_RETURN(MultivariateGaussian dist,
                       MultivariateGaussian::Fit(background));
  return ConditionalGaussianGame(model, std::move(dist), std::move(instance),
                                 samples_per_eval, seed);
}

size_t ConditionalGaussianGame::AppendSampleRows(
    const std::vector<bool>& in_coalition, Matrix* rows) const {
  const size_t d = instance_.size();
  std::vector<size_t> given;
  for (size_t j = 0; j < d; ++j)
    if (in_coalition[j]) given.push_back(j);

  // Derive a deterministic per-coalition stream so the game stays a pure
  // function of the coalition (required for consistent Shapley sums) and
  // batched draws match per-coalition draws exactly.
  uint64_t mask_hash = seed_;
  for (size_t j = 0; j < d; ++j)
    mask_hash = mask_hash * 1099511628211ULL + (in_coalition[j] ? 2 : 1);
  Rng rng(mask_hash);

  if (given.size() == d) {
    rows->AppendRow(instance_);
    return 1;
  }

  if (given.empty()) {
    for (int s = 0; s < samples_; ++s) rows->AppendRow(dist_.Sample(&rng));
    return static_cast<size_t>(samples_);
  }

  std::vector<double> given_vals;
  for (size_t j : given) given_vals.push_back(instance_[j]);
  auto cond = dist_.Condition(given, given_vals);
  if (!cond.ok()) {
    // Degenerate conditioning: fall back to clamping given features only.
    for (int s = 0; s < samples_; ++s) {
      std::vector<double> smp = dist_.Sample(&rng);
      for (size_t j : given) smp[j] = instance_[j];
      rows->AppendRow(smp);
    }
    return static_cast<size_t>(samples_);
  }
  std::vector<size_t> rest;
  for (size_t j = 0; j < d; ++j)
    if (!in_coalition[j]) rest.push_back(j);
  std::vector<double> x(d);
  for (int s = 0; s < samples_; ++s) {
    std::vector<double> smp = cond->Sample(&rng);
    for (size_t j : given) x[j] = instance_[j];
    for (size_t k = 0; k < rest.size(); ++k) x[rest[k]] = smp[k];
    rows->AppendRow(x);
  }
  return static_cast<size_t>(samples_);
}

double ConditionalGaussianGame::Value(
    const std::vector<bool>& in_coalition) const {
  XAI_OBS_COUNT("core.game.coalition_evals");
  Matrix rows(0, instance_.size());
  const size_t n = AppendSampleRows(in_coalition, &rows);
  XAI_OBS_COUNT_N("core.game.model_evals", n);
  const std::vector<double> preds = model_.PredictBatch(rows);
  double total = 0.0;
  for (double p : preds) total += p;
  return total / static_cast<double>(n);
}

std::vector<double> ConditionalGaussianGame::ValueBatch(
    const std::vector<std::vector<bool>>& coalitions) const {
  const size_t batch = coalitions.size();
  if (batch == 0) return {};
  XAI_OBS_COUNT_N("core.game.coalition_evals", batch);
  Matrix rows(0, instance_.size());
  std::vector<size_t> counts(batch);
  for (size_t c = 0; c < batch; ++c)
    counts[c] = AppendSampleRows(coalitions[c], &rows);
  XAI_OBS_COUNT_N("core.game.model_evals", rows.rows());
  XAI_OBS_OBSERVE("core.game.batch_rows", rows.rows());
  const std::vector<double> preds = model_.PredictBatch(rows);

  std::vector<double> out(batch);
  size_t off = 0;
  for (size_t c = 0; c < batch; ++c) {
    double total = 0.0;
    for (size_t k = 0; k < counts[c]; ++k) total += preds[off + k];
    out[c] = total / static_cast<double>(counts[c]);
    off += counts[c];
  }
  return out;
}

}  // namespace xai
