#include "core/game.h"

#include <algorithm>

#include "obs/obs.h"

namespace xai {

MarginalFeatureGame::MarginalFeatureGame(const Model& model,
                                         const Matrix& background,
                                         std::vector<double> instance,
                                         size_t max_background)
    : model_(model), instance_(std::move(instance)) {
  const size_t m = std::min(background.rows(), max_background);
  background_ = Matrix(m, background.cols());
  // Deterministic stride subsample keeps the game a pure function.
  const size_t stride = std::max<size_t>(1, background.rows() / m);
  for (size_t i = 0; i < m; ++i) {
    const size_t src = std::min(i * stride, background.rows() - 1);
    std::copy(background.RowPtr(src), background.RowPtr(src) + background.cols(),
              background_.RowPtr(i));
  }
}

double MarginalFeatureGame::Value(
    const std::vector<bool>& in_coalition) const {
  const size_t d = instance_.size();
  const size_t m = background_.rows();
  XAI_OBS_COUNT("core.game.coalition_evals");
  XAI_OBS_COUNT_N("core.game.model_evals", m);
  double total = 0.0;
  std::vector<double> x(d);
  for (size_t b = 0; b < m; ++b) {
    const double* bg = background_.RowPtr(b);
    for (size_t j = 0; j < d; ++j)
      x[j] = in_coalition[j] ? instance_[j] : bg[j];
    total += model_.Predict(x);
  }
  return total / static_cast<double>(m);
}

double MarginalFeatureGame::BaseValue() const {
  return Value(std::vector<bool>(instance_.size(), false));
}

Result<ConditionalGaussianGame> ConditionalGaussianGame::Create(
    const Model& model, const Matrix& background,
    std::vector<double> instance, int samples_per_eval, uint64_t seed) {
  XAI_ASSIGN_OR_RETURN(MultivariateGaussian dist,
                       MultivariateGaussian::Fit(background));
  return ConditionalGaussianGame(model, std::move(dist), std::move(instance),
                                 samples_per_eval, seed);
}

double ConditionalGaussianGame::Value(
    const std::vector<bool>& in_coalition) const {
  XAI_OBS_COUNT("core.game.coalition_evals");
  const size_t d = instance_.size();
  std::vector<size_t> given;
  for (size_t j = 0; j < d; ++j)
    if (in_coalition[j]) given.push_back(j);

  // Derive a deterministic per-coalition stream so Value is a pure
  // function of the coalition (required for consistent Shapley sums).
  uint64_t mask_hash = seed_;
  for (size_t j = 0; j < d; ++j)
    mask_hash = mask_hash * 1099511628211ULL + (in_coalition[j] ? 2 : 1);
  Rng rng(mask_hash);

  if (given.size() == d) {
    XAI_OBS_COUNT("core.game.model_evals");
    return model_.Predict(instance_);
  }

  XAI_OBS_COUNT_N("core.game.model_evals", samples_);
  std::vector<double> x(d);
  double total = 0.0;
  if (given.empty()) {
    for (int s = 0; s < samples_; ++s) {
      total += model_.Predict(dist_.Sample(&rng));
    }
    return total / samples_;
  }

  std::vector<double> given_vals;
  for (size_t j : given) given_vals.push_back(instance_[j]);
  auto cond = dist_.Condition(given, given_vals);
  if (!cond.ok()) {
    // Degenerate conditioning: fall back to clamping given features only.
    for (int s = 0; s < samples_; ++s) {
      std::vector<double> smp = dist_.Sample(&rng);
      for (size_t j : given) smp[j] = instance_[j];
      total += model_.Predict(smp);
    }
    return total / samples_;
  }
  std::vector<size_t> rest;
  for (size_t j = 0; j < d; ++j)
    if (!in_coalition[j]) rest.push_back(j);
  for (int s = 0; s < samples_; ++s) {
    std::vector<double> smp = cond->Sample(&rng);
    for (size_t j : given) x[j] = instance_[j];
    for (size_t k = 0; k < rest.size(); ++k) x[rest[k]] = smp[k];
    total += model_.Predict(x);
  }
  return total / samples_;
}

}  // namespace xai
