#include "rule/itemset.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

namespace xai {

std::vector<Transaction> ToTransactions(const Dataset& ds,
                                        const Discretizer& disc) {
  std::vector<Transaction> out(ds.n());
  for (size_t i = 0; i < ds.n(); ++i) {
    Transaction t;
    t.reserve(ds.d());
    for (size_t j = 0; j < ds.d(); ++j) {
      t.push_back(MakeItem(static_cast<uint32_t>(j),
                           static_cast<uint32_t>(
                               disc.Bin(j, ds.x()(i, j)))));
    }
    std::sort(t.begin(), t.end());
    out[i] = std::move(t);
  }
  return out;
}

namespace {

bool ContainsAll(const Transaction& t, const std::vector<Item>& items) {
  return std::includes(t.begin(), t.end(), items.begin(), items.end());
}

size_t CountSupport(const std::vector<Transaction>& transactions,
                    const std::vector<Item>& items) {
  size_t s = 0;
  for (const Transaction& t : transactions)
    if (ContainsAll(t, items)) ++s;
  return s;
}

}  // namespace

std::vector<FrequentItemset> AprioriMine(
    const std::vector<Transaction>& transactions, size_t min_support,
    size_t max_length) {
  std::vector<FrequentItemset> result;

  // L1.
  std::map<Item, size_t> counts;
  for (const Transaction& t : transactions)
    for (Item it : t) ++counts[it];
  std::vector<std::vector<Item>> level;
  for (const auto& [item, cnt] : counts) {
    if (cnt >= min_support) {
      level.push_back({item});
      result.push_back({{item}, cnt});
    }
  }

  size_t k = 1;
  while (!level.empty() && k < max_length) {
    ++k;
    // Candidate generation: join itemsets sharing the first k-2 items.
    std::vector<std::vector<Item>> candidates;
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const auto& ia = level[a];
        const auto& ib = level[b];
        if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) continue;
        std::vector<Item> cand = ia;
        cand.push_back(ib.back());
        if (cand[cand.size() - 2] > cand.back())
          std::swap(cand[cand.size() - 2], cand.back());
        // Prune: every (k-1)-subset must be frequent.
        bool ok = true;
        for (size_t drop = 0; drop + 2 < cand.size() && ok; ++drop) {
          std::vector<Item> sub = cand;
          sub.erase(sub.begin() + static_cast<long>(drop));
          ok = std::binary_search(level.begin(), level.end(), sub);
        }
        if (ok) candidates.push_back(std::move(cand));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    std::vector<std::vector<Item>> next;
    for (const auto& cand : candidates) {
      const size_t s = CountSupport(transactions, cand);
      if (s >= min_support) {
        next.push_back(cand);
        result.push_back({cand, s});
      }
    }
    level = std::move(next);
  }
  return result;
}

namespace {

/// FP-tree node.
struct FpNode {
  Item item = 0;
  size_t count = 0;
  FpNode* parent = nullptr;
  std::map<Item, std::unique_ptr<FpNode>> children;
};

struct FpTree {
  FpNode root;
  std::unordered_map<Item, std::vector<FpNode*>> header;

  void Insert(const std::vector<Item>& items, size_t count) {
    FpNode* cur = &root;
    for (Item it : items) {
      auto& child = cur->children[it];
      if (!child) {
        child = std::make_unique<FpNode>();
        child->item = it;
        child->parent = cur;
        header[it].push_back(child.get());
      }
      child->count += count;
      cur = child.get();
    }
  }
};

void FpGrowth(const FpTree& tree, const std::vector<Item>& suffix,
              size_t min_support, size_t max_length,
              std::vector<FrequentItemset>* out) {
  // Items in this (conditional) tree with their total counts.
  std::vector<std::pair<Item, size_t>> items;
  for (const auto& [item, nodes] : tree.header) {
    size_t total = 0;
    for (const FpNode* n : nodes) total += n->count;
    if (total >= min_support) items.emplace_back(item, total);
  }
  std::sort(items.begin(), items.end());
  for (const auto& [item, total] : items) {
    std::vector<Item> itemset = suffix;
    itemset.push_back(item);
    std::sort(itemset.begin(), itemset.end());
    out->push_back({itemset, total});
    if (itemset.size() >= max_length) continue;
    // Conditional pattern base for `item`.
    FpTree cond;
    for (const FpNode* leaf : tree.header.at(item)) {
      std::vector<Item> path;
      for (const FpNode* n = leaf->parent; n && n->parent; n = n->parent)
        path.push_back(n->item);
      std::reverse(path.begin(), path.end());
      if (!path.empty()) cond.Insert(path, leaf->count);
    }
    FpGrowth(cond, itemset, min_support, max_length, out);
  }
}

}  // namespace

std::vector<FrequentItemset> FpGrowthMine(
    const std::vector<Transaction>& transactions, size_t min_support,
    size_t max_length) {
  // Count single items and keep frequent ones, ordered by count desc.
  std::map<Item, size_t> counts;
  for (const Transaction& t : transactions)
    for (Item it : t) ++counts[it];
  std::vector<std::pair<Item, size_t>> freq;
  for (const auto& [item, c] : counts)
    if (c >= min_support) freq.emplace_back(item, c);
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::unordered_map<Item, size_t> rank;
  for (size_t i = 0; i < freq.size(); ++i) rank[freq[i].first] = i;

  FpTree tree;
  for (const Transaction& t : transactions) {
    std::vector<Item> filtered;
    for (Item it : t)
      if (rank.count(it)) filtered.push_back(it);
    std::sort(filtered.begin(), filtered.end(),
              [&](Item a, Item b) { return rank[a] < rank[b]; });
    if (!filtered.empty()) tree.Insert(filtered, 1);
  }
  std::vector<FrequentItemset> out;
  FpGrowth(tree, {}, min_support, max_length, &out);
  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  return out;
}

std::vector<AssociationRule> MineAssociationRules(
    const std::vector<Transaction>& transactions, size_t min_support,
    double min_confidence, size_t max_length) {
  std::vector<FrequentItemset> itemsets =
      AprioriMine(transactions, min_support, max_length);
  // Index supports.
  std::map<std::vector<Item>, size_t> support;
  for (const FrequentItemset& fi : itemsets) support[fi.items] = fi.support;

  const double n = static_cast<double>(transactions.size());
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : itemsets) {
    if (fi.items.size() < 2) continue;
    for (size_t c = 0; c < fi.items.size(); ++c) {
      std::vector<Item> ante = fi.items;
      const Item cons = ante[c];
      ante.erase(ante.begin() + static_cast<long>(c));
      auto it = support.find(ante);
      if (it == support.end()) continue;
      const double conf = static_cast<double>(fi.support) /
                          static_cast<double>(it->second);
      if (conf < min_confidence) continue;
      auto cons_it = support.find(std::vector<Item>{cons});
      const double p_cons =
          cons_it != support.end()
              ? static_cast<double>(cons_it->second) / n
              : 0.0;
      AssociationRule rule;
      rule.antecedent = std::move(ante);
      rule.consequent = cons;
      rule.support = static_cast<double>(fi.support) / n;
      rule.confidence = conf;
      rule.lift = p_cons > 0 ? conf / p_cons : 0.0;
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

}  // namespace xai
