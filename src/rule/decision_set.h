#ifndef XAIDB_RULE_DECISION_SET_H_
#define XAIDB_RULE_DECISION_SET_H_

#include <vector>

#include "common/result.h"
#include "core/explanation.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "model/model.h"

namespace xai {

struct DecisionSetOptions {
  /// Minimum support (fraction of rows) of mined candidate rules.
  double min_support = 0.05;
  /// Minimum precision of a candidate rule on its own cover.
  double min_precision = 0.7;
  /// Maximum predicates per rule.
  int max_rule_length = 3;
  /// Maximum rules selected.
  int max_rules = 8;
  /// Penalty per predicate (interpretability term of the objective).
  double length_penalty = 0.2;
  /// Penalty per overlapping covered row (encourages disjoint rules).
  double overlap_penalty = 0.1;
  /// Quantile bins for numeric features.
  int bins = 4;
};

/// An interpretable decision set (Lakkaraju, Bach & Leskovec 2016),
/// tutorial Section 2.2: an unordered set of independent IF-THEN rules
/// plus a default class. Prediction = majority over matching rules (the
/// default class when none match).
class DecisionSet {
 public:
  const std::vector<RuleExplanation>& rules() const { return rules_; }
  double default_class() const { return default_class_; }

  double Predict(const std::vector<double>& x) const;
  /// Fraction of rows where the decision set matches the labels.
  double Accuracy(const Dataset& ds) const;
  /// Fraction of rows covered by at least one rule.
  double Coverage(const Dataset& ds) const;

  std::string ToString(const Schema& schema) const;

 private:
  friend Result<DecisionSet> FitDecisionSet(const Dataset&, const Model*,
                                            const DecisionSetOptions&);
  std::vector<RuleExplanation> rules_;
  double default_class_ = 0.0;
};

/// Learns a decision set that explains `model`'s predictions over `ds`
/// (model != nullptr: rules target model labels — a global rule-based
/// surrogate) or the raw labels (model == nullptr: an interpretable
/// classifier in its own right). Candidate rules come from frequent
/// itemset mining over discretized features (the data-management
/// connection of Section 2.2.1); selection is greedy on a
/// coverage/precision/interpretability objective.
Result<DecisionSet> FitDecisionSet(const Dataset& ds, const Model* model,
                                   const DecisionSetOptions& opts = DecisionSetOptions());

}  // namespace xai

#endif  // XAIDB_RULE_DECISION_SET_H_
