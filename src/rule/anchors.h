#ifndef XAIDB_RULE_ANCHORS_H_
#define XAIDB_RULE_ANCHORS_H_

#include <vector>

#include "common/result.h"
#include "core/explanation.h"
#include "data/dataset.h"
#include "data/transforms.h"
#include "model/model.h"

namespace xai {

struct AnchorsOptions {
  /// Target precision tau: P(model agrees with the anchored prediction |
  /// rule holds) must exceed this.
  double precision_threshold = 0.95;
  /// Bandit confidence parameter.
  double delta = 0.05;
  /// Beam width.
  int beam_width = 4;
  /// Maximum rule length (the tutorial: rules beyond ~5 clauses are
  /// incomprehensible).
  int max_anchor_size = 5;
  /// Perturbation samples per bandit pull batch.
  int batch_size = 64;
  /// Maximum total samples per candidate (budget cap).
  int max_samples_per_candidate = 2048;
  /// Quantile bins used to discretize numeric features into predicates.
  int bins = 4;
  uint64_t seed = 7777;
};

/// Anchors (Ribeiro, Singh & Guestrin 2018), tutorial Section 2.2:
/// searches for a short conjunctive rule over discretized features that
/// "anchors" the prediction — whenever the rule holds, the model almost
/// always (precision >= tau) predicts the same class as on the explained
/// instance. Candidate rules are grown by beam search; precision is
/// estimated adaptively with a KL-LUCB best-arm bandit over
/// perturbation-and-requery samples.
class AnchorsExplainer {
 public:
  AnchorsExplainer(const Model& model, const Dataset& reference,
                   AnchorsOptions opts = {});

  /// Finds an anchor rule for the given instance. The returned rule's
  /// predicates are the instance's bins; precision/coverage are estimates.
  Result<RuleExplanation> Explain(const std::vector<double>& instance);

 private:
  const Model& model_;
  const Dataset& reference_;
  AnchorsOptions opts_;
  Discretizer disc_;
  /// Observed values per (feature, bin), for conditional sampling.
  std::vector<std::vector<std::vector<double>>> bin_values_;
};

/// Bernoulli KL divergence and KL confidence bounds (used by the bandit;
/// exposed for tests).
double BernoulliKl(double p, double q);
double KlUpperBound(double p_hat, double beta_over_n);
double KlLowerBound(double p_hat, double beta_over_n);

}  // namespace xai

#endif  // XAIDB_RULE_ANCHORS_H_
