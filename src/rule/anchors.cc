#include "rule/anchors.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"

namespace xai {

double BernoulliKl(double p, double q) {
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  q = std::clamp(q, 1e-12, 1.0 - 1e-12);
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

double KlUpperBound(double p_hat, double beta_over_n) {
  double lo = p_hat;
  double hi = 1.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (BernoulliKl(p_hat, mid) > beta_over_n) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double KlLowerBound(double p_hat, double beta_over_n) {
  double lo = 0.0;
  double hi = p_hat;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (BernoulliKl(p_hat, mid) > beta_over_n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

/// A candidate anchor: the set of features fixed to the instance's bins,
/// with running precision statistics.
struct Candidate {
  std::vector<size_t> features;  // Sorted.
  size_t n = 0;                  // Samples drawn.
  size_t hits = 0;               // Samples where model agreed.

  double precision() const {
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

}  // namespace

AnchorsExplainer::AnchorsExplainer(const Model& model,
                                   const Dataset& reference,
                                   AnchorsOptions opts)
    : model_(model), reference_(reference), opts_(opts),
      disc_(Discretizer::Fit(reference, opts.bins)) {
  // Precompute per (feature, bin) observed values for conditional draws.
  const size_t d = reference.d();
  bin_values_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    bin_values_[j].resize(static_cast<size_t>(disc_.NumBins(j)));
    for (size_t i = 0; i < reference.n(); ++i) {
      const double v = reference.x()(i, j);
      const int b = disc_.Bin(j, v);
      bin_values_[j][static_cast<size_t>(b)].push_back(v);
    }
  }
}

Result<RuleExplanation> AnchorsExplainer::Explain(
    const std::vector<double>& instance) {
  const size_t d = reference_.d();
  if (instance.size() != d)
    return Status::InvalidArgument("Anchors: instance arity mismatch");
  Rng rng(opts_.seed);
  const double target = PredictLabel(model_, instance);

  // Instance bins.
  std::vector<int> inst_bin(d);
  for (size_t j = 0; j < d; ++j) inst_bin[j] = disc_.Bin(j, instance[j]);

  // Draws one perturbation consistent with the candidate's fixed features
  // and returns whether the model agrees with the anchored prediction.
  auto sample_hit = [&](const Candidate& cand) {
    const size_t row = static_cast<size_t>(rng.NextInt(reference_.n()));
    std::vector<double> x = reference_.row(row);
    for (size_t j : cand.features) {
      const auto& vals = bin_values_[j][static_cast<size_t>(inst_bin[j])];
      x[j] = vals.empty() ? instance[j] : vals[rng.NextInt(vals.size())];
    }
    return PredictLabel(model_, x) == target;
  };
  auto draw_batch = [&](Candidate* cand, int k) {
    for (int i = 0; i < k; ++i)
      if (sample_hit(*cand)) ++cand->hits;
    cand->n += static_cast<size_t>(k);
  };

  // Coverage over the reference data: fraction of rows in all fixed bins.
  auto coverage_of = [&](const Candidate& cand) {
    size_t cnt = 0;
    for (size_t i = 0; i < reference_.n(); ++i) {
      bool match = true;
      for (size_t j : cand.features) {
        if (disc_.Bin(j, reference_.x()(i, j)) != inst_bin[j]) {
          match = false;
          break;
        }
      }
      if (match) ++cnt;
    }
    return static_cast<double>(cnt) / static_cast<double>(reference_.n());
  };

  const double beta = std::log(1.0 / opts_.delta) +
                      std::log(static_cast<double>(d) + 1.0);

  std::vector<Candidate> beam = {Candidate{}};  // Empty anchor.
  Candidate best_found;
  double best_found_coverage = -1.0;
  bool have_anchor = false;

  for (int size = 1; size <= opts_.max_anchor_size; ++size) {
    // Extend every beam candidate by every unused feature.
    std::vector<Candidate> cands;
    std::set<std::vector<size_t>> seen;
    for (const Candidate& b : beam) {
      for (size_t j = 0; j < d; ++j) {
        if (std::find(b.features.begin(), b.features.end(), j) !=
            b.features.end())
          continue;
        Candidate c;
        c.features = b.features;
        c.features.push_back(j);
        std::sort(c.features.begin(), c.features.end());
        if (seen.insert(c.features).second) cands.push_back(std::move(c));
      }
    }
    if (cands.empty()) break;

    // KL-LUCB-style refinement: initial batch for everyone, then keep
    // sampling the most promising until budget or separation.
    for (Candidate& c : cands) draw_batch(&c, opts_.batch_size);
    for (int round = 0; round < 16; ++round) {
      // Most promising candidate by upper bound.
      size_t best = 0;
      double best_ucb = -1.0;
      for (size_t i = 0; i < cands.size(); ++i) {
        const double ucb = KlUpperBound(
            cands[i].precision(), beta / static_cast<double>(cands[i].n));
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best = i;
        }
      }
      Candidate& c = cands[best];
      if (static_cast<int>(c.n) >= opts_.max_samples_per_candidate) break;
      const double lcb =
          KlLowerBound(c.precision(), beta / static_cast<double>(c.n));
      if (lcb >= opts_.precision_threshold ||
          best_ucb < opts_.precision_threshold)
        break;  // Resolved: anchor certified or hopeless.
      draw_batch(&c, opts_.batch_size);
    }

    // Check for certified anchors; among them keep the best coverage.
    for (const Candidate& c : cands) {
      const double lcb =
          KlLowerBound(c.precision(), beta / static_cast<double>(c.n));
      if (lcb >= opts_.precision_threshold) {
        const double cov = coverage_of(c);
        if (cov > best_found_coverage) {
          best_found = c;
          best_found_coverage = cov;
          have_anchor = true;
        }
      }
    }
    if (have_anchor) break;

    // Keep top beam_width by precision point estimate for the next level.
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.precision() > b.precision();
              });
    if (cands.size() > static_cast<size_t>(opts_.beam_width))
      cands.resize(static_cast<size_t>(opts_.beam_width));
    beam = std::move(cands);
  }

  if (!have_anchor) {
    // Fall back to the best beam candidate (precision below threshold);
    // callers can inspect `precision` to see the anchor is soft.
    if (beam.empty())
      return Status::NotFound("Anchors: no candidate rules generated");
    best_found = beam.front();
    best_found_coverage = coverage_of(best_found);
  }

  RuleExplanation rule;
  rule.outcome = target;
  rule.precision = best_found.precision();
  rule.coverage = best_found_coverage;
  for (size_t j : best_found.features) {
    RulePredicate pred;
    pred.feature = j;
    if (reference_.schema().feature(j).is_numeric()) {
      auto [lo, hi] = disc_.BinRange(j, inst_bin[j]);
      pred.is_categorical = false;
      pred.lower = lo;
      pred.upper = hi;
    } else {
      pred.is_categorical = true;
      pred.category = instance[j];
    }
    rule.predicates.push_back(pred);
  }
  return rule;
}

}  // namespace xai
