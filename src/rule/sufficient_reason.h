#ifndef XAIDB_RULE_SUFFICIENT_REASON_H_
#define XAIDB_RULE_SUFFICIENT_REASON_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "model/tree.h"

namespace xai {

/// Logic-based, *provably correct* explanations (tutorial Section 2.2.2;
/// Shih, Choi & Darwiche 2018; Darwiche & Hirth 2020): a **sufficient
/// reason** (prime implicant explanation) for a decision-tree prediction
/// is a subset-minimal set of the instance's feature values that, fixed
/// alone, forces the same decision for *every* completion of the remaining
/// features — a sufficiency *guarantee*, unlike the probabilistic scores
/// of feature-attribution methods.
///
/// For a single tree the check "do all completions consistent with x_S
/// reach the same decision?" is computed exactly by traversing the tree
/// and following both branches of any split on a free feature.

struct SufficientReason {
  /// Features whose (instance) values form the prime implicant.
  std::vector<size_t> features;
  /// The decision being entailed (thresholded at 0.5).
  bool decision = false;
};

/// True iff fixing x's values on `features` entails the tree's decision on
/// x for all completions (completions range over all real values; a split
/// on a free feature explores both sides).
bool IsSufficientForTree(const Tree& tree, const std::vector<double>& x,
                         const std::vector<size_t>& features,
                         double threshold = 0.5);

struct SufficientReasonOptions {
  /// Deletion order heuristic: try to drop features with the smallest
  /// |global importance| first, producing smaller reasons in practice.
  /// Empty = natural order.
  std::vector<double> importance_hint;
  double threshold = 0.5;
};

/// One subset-minimal sufficient reason via greedy deletion: start from
/// all features and drop any whose removal keeps sufficiency. The result
/// is guaranteed minimal (no proper subset is sufficient) though not
/// guaranteed to be the globally *smallest* reason (that problem is
/// NP-hard for ensembles; for a single tree the greedy result is a prime
/// implicant).
Result<SufficientReason> MinimalSufficientReason(
    const Tree& tree, const std::vector<double>& x,
    const SufficientReasonOptions& opts = SufficientReasonOptions());

/// All sufficient reasons of size <= max_size via bounded search
/// (exponential in max_size; intended for small d / presentation).
std::vector<SufficientReason> EnumerateSufficientReasons(
    const Tree& tree, const std::vector<double>& x, size_t max_size,
    double threshold = 0.5);

}  // namespace xai

#endif  // XAIDB_RULE_SUFFICIENT_REASON_H_
