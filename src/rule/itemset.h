#ifndef XAIDB_RULE_ITEMSET_H_
#define XAIDB_RULE_ITEMSET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "data/dataset.h"
#include "data/transforms.h"

namespace xai {

/// An item: one discretized feature condition "feature j falls in bin b".
/// Encoded compactly for fast set operations.
using Item = uint32_t;
inline Item MakeItem(uint32_t feature, uint32_t bin) {
  return (feature << 8) | (bin & 0xFF);
}
inline uint32_t ItemFeature(Item it) { return it >> 8; }
inline uint32_t ItemBin(Item it) { return it & 0xFF; }

/// A transaction database: one sorted item list per row.
using Transaction = std::vector<Item>;

/// Discretizes a dataset's rows into transactions (one item per feature).
std::vector<Transaction> ToTransactions(const Dataset& ds,
                                        const Discretizer& disc);

/// A mined frequent itemset with its absolute support count.
struct FrequentItemset {
  std::vector<Item> items;  // Sorted.
  size_t support = 0;
};

/// Apriori (Agrawal & Srikant 1994) — the classic level-wise candidate
/// generation algorithm, tutorial Section 2.2.1's archetype of rule mining
/// in data management.
std::vector<FrequentItemset> AprioriMine(
    const std::vector<Transaction>& transactions, size_t min_support,
    size_t max_length = 4);

/// FP-Growth (Han, Pei & Yin 2000) — pattern growth over an FP-tree,
/// avoiding candidate generation. Produces the same itemsets as Apriori
/// (the property tests assert this).
std::vector<FrequentItemset> FpGrowthMine(
    const std::vector<Transaction>& transactions, size_t min_support,
    size_t max_length = 4);

/// An association rule antecedent -> consequent with standard measures.
struct AssociationRule {
  std::vector<Item> antecedent;
  Item consequent;
  double support = 0.0;     // P(antecedent ∧ consequent).
  double confidence = 0.0;  // P(consequent | antecedent).
  double lift = 0.0;        // confidence / P(consequent).
};

/// Derives rules from frequent itemsets (single-item consequents).
std::vector<AssociationRule> MineAssociationRules(
    const std::vector<Transaction>& transactions, size_t min_support,
    double min_confidence, size_t max_length = 4);

}  // namespace xai

#endif  // XAIDB_RULE_ITEMSET_H_
