#include "rule/decision_set.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "rule/itemset.h"

namespace xai {

double DecisionSet::Predict(const std::vector<double>& x) const {
  double votes_pos = 0.0;
  double votes_neg = 0.0;
  for (const RuleExplanation& r : rules_) {
    if (!r.Matches(x)) continue;
    if (r.outcome >= 0.5) {
      votes_pos += r.precision;
    } else {
      votes_neg += r.precision;
    }
  }
  if (votes_pos == 0.0 && votes_neg == 0.0) return default_class_;
  return votes_pos >= votes_neg ? 1.0 : 0.0;
}

double DecisionSet::Accuracy(const Dataset& ds) const {
  size_t correct = 0;
  for (size_t i = 0; i < ds.n(); ++i)
    if ((Predict(ds.row(i)) >= 0.5) == (ds.y()[i] >= 0.5)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(ds.n());
}

double DecisionSet::Coverage(const Dataset& ds) const {
  size_t covered = 0;
  for (size_t i = 0; i < ds.n(); ++i) {
    for (const RuleExplanation& r : rules_) {
      if (r.Matches(ds.row(i))) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(ds.n());
}

std::string DecisionSet::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const RuleExplanation& r : rules_) os << r.ToString(schema) << "\n";
  os << "ELSE predict " << default_class_ << "\n";
  return os.str();
}

Result<DecisionSet> FitDecisionSet(const Dataset& ds, const Model* model,
                                   const DecisionSetOptions& opts) {
  if (ds.n() == 0) return Status::InvalidArgument("DecisionSet: empty data");
  const size_t n = ds.n();

  // Target labels: model predictions (surrogate mode) or ground truth.
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i)
    target[i] = model ? (model->Predict(ds.row(i)) >= 0.5 ? 1.0 : 0.0)
                      : (ds.y()[i] >= 0.5 ? 1.0 : 0.0);

  Discretizer disc = Discretizer::Fit(ds, opts.bins);
  std::vector<Transaction> tx = ToTransactions(ds, disc);
  const auto min_support_count = static_cast<size_t>(
      opts.min_support * static_cast<double>(n));
  std::vector<FrequentItemset> itemsets =
      AprioriMine(tx, std::max<size_t>(min_support_count, 2),
                  static_cast<size_t>(opts.max_rule_length));

  // Candidate rules with per-rule cover and class stats.
  struct CandRule {
    RuleExplanation rule;
    std::vector<size_t> cover;  // Row indices matched.
  };
  std::vector<CandRule> candidates;
  for (const FrequentItemset& fi : itemsets) {
    RuleExplanation rule;
    for (Item it : fi.items) {
      RulePredicate pred;
      pred.feature = ItemFeature(it);
      const int bin = static_cast<int>(ItemBin(it));
      if (ds.schema().feature(pred.feature).is_numeric()) {
        auto [lo, hi] = disc.BinRange(pred.feature, bin);
        pred.is_categorical = false;
        pred.lower = lo;
        pred.upper = hi;
      } else {
        pred.is_categorical = true;
        pred.category = static_cast<double>(bin);
      }
      rule.predicates.push_back(pred);
    }
    CandRule cand;
    size_t pos = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rule.Matches(ds.row(i))) {
        cand.cover.push_back(i);
        if (target[i] >= 0.5) ++pos;
      }
    }
    if (cand.cover.empty()) continue;
    const double frac_pos =
        static_cast<double>(pos) / static_cast<double>(cand.cover.size());
    rule.outcome = frac_pos >= 0.5 ? 1.0 : 0.0;
    rule.precision = rule.outcome >= 0.5 ? frac_pos : 1.0 - frac_pos;
    rule.coverage =
        static_cast<double>(cand.cover.size()) / static_cast<double>(n);
    if (rule.precision < opts.min_precision) continue;
    cand.rule = std::move(rule);
    candidates.push_back(std::move(cand));
  }

  // Greedy selection on the smooth objective: marginal gain in correctly
  // covered rows, minus length and overlap penalties.
  DecisionSet out;
  size_t n_pos = 0;
  for (double t : target) n_pos += t >= 0.5 ? 1 : 0;
  out.default_class_ = n_pos * 2 >= n ? 1.0 : 0.0;

  std::vector<bool> covered(n, false);
  std::vector<bool> used(candidates.size(), false);
  for (int pick = 0; pick < opts.max_rules; ++pick) {
    double best_gain = 1e-9;
    int best = -1;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) continue;
      const CandRule& cand = candidates[c];
      double gain = 0.0;
      for (size_t i : cand.cover) {
        const bool correct =
            (cand.rule.outcome >= 0.5) == (target[i] >= 0.5);
        const bool default_correct =
            (out.default_class_ >= 0.5) == (target[i] >= 0.5);
        if (covered[i]) {
          gain -= opts.overlap_penalty;
        } else if (correct && !default_correct) {
          gain += 1.0;
        } else if (!correct && default_correct) {
          gain -= 1.0;
        }
      }
      gain -= opts.length_penalty *
              static_cast<double>(cand.rule.predicates.size());
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;
    used[static_cast<size_t>(best)] = true;
    const CandRule& chosen = candidates[static_cast<size_t>(best)];
    for (size_t i : chosen.cover) covered[i] = true;
    out.rules_.push_back(chosen.rule);
  }
  return out;
}

}  // namespace xai
