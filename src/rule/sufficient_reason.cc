#include "rule/sufficient_reason.h"

#include <algorithm>
#include <numeric>

#include "math/combinatorics.h"

namespace xai {
namespace {

/// DFS over all leaves reachable when free features may take any value.
/// Returns false as soon as a leaf with the opposite decision is found.
bool AllReachableLeavesAgree(const Tree& tree, int node,
                             const std::vector<double>& x,
                             const std::vector<bool>& fixed, bool decision,
                             double threshold) {
  const TreeNode& nd = tree.nodes[static_cast<size_t>(node)];
  if (nd.is_leaf()) return (nd.value >= threshold) == decision;
  if (fixed[static_cast<size_t>(nd.feature)]) {
    const int next = x[static_cast<size_t>(nd.feature)] <= nd.threshold
                         ? nd.left
                         : nd.right;
    return AllReachableLeavesAgree(tree, next, x, fixed, decision,
                                   threshold);
  }
  return AllReachableLeavesAgree(tree, nd.left, x, fixed, decision,
                                 threshold) &&
         AllReachableLeavesAgree(tree, nd.right, x, fixed, decision,
                                 threshold);
}

}  // namespace

bool IsSufficientForTree(const Tree& tree, const std::vector<double>& x,
                         const std::vector<size_t>& features,
                         double threshold) {
  const bool decision = tree.Predict(x) >= threshold;
  std::vector<bool> fixed(x.size(), false);
  for (size_t f : features) fixed[f] = true;
  return AllReachableLeavesAgree(tree, 0, x, fixed, decision, threshold);
}

Result<SufficientReason> MinimalSufficientReason(
    const Tree& tree, const std::vector<double>& x,
    const SufficientReasonOptions& opts) {
  const size_t d = x.size();
  if (!opts.importance_hint.empty() && opts.importance_hint.size() != d)
    return Status::InvalidArgument(
        "MinimalSufficientReason: importance hint size mismatch");
  const bool decision = tree.Predict(x) >= opts.threshold;

  std::vector<bool> fixed(d, true);
  // Deletion order: least important first (they are cheapest to free).
  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  if (!opts.importance_hint.empty()) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::abs(opts.importance_hint[a]) <
             std::abs(opts.importance_hint[b]);
    });
  }
  for (size_t j : order) {
    fixed[j] = false;
    if (!AllReachableLeavesAgree(tree, 0, x, fixed, decision,
                                 opts.threshold)) {
      fixed[j] = true;  // Needed: keep it.
    }
  }
  SufficientReason reason;
  reason.decision = decision;
  for (size_t j = 0; j < d; ++j)
    if (fixed[j]) reason.features.push_back(j);
  return reason;
}

std::vector<SufficientReason> EnumerateSufficientReasons(
    const Tree& tree, const std::vector<double>& x, size_t max_size,
    double threshold) {
  const size_t d = x.size();
  std::vector<SufficientReason> out;
  if (d > 25) return out;  // Guard against blow-up.
  const bool decision = tree.Predict(x) >= threshold;

  // Enumerate subsets in increasing size so minimality filtering only has
  // to check previously found (smaller) reasons.
  std::vector<uint32_t> found_masks;
  for (size_t size = 0; size <= std::min(max_size, d); ++size) {
    for (uint32_t mask = 0; mask < (1u << d); ++mask) {
      if (static_cast<size_t>(PopCount(mask)) != size) continue;
      // Skip supersets of known reasons (not prime).
      bool dominated = false;
      for (uint32_t m : found_masks) {
        if ((mask & m) == m) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::vector<size_t> features;
      for (size_t j = 0; j < d; ++j)
        if (mask & (1u << j)) features.push_back(j);
      if (IsSufficientForTree(tree, x, features, threshold)) {
        found_masks.push_back(mask);
        SufficientReason r;
        r.decision = decision;
        r.features = std::move(features);
        out.push_back(std::move(r));
      }
    }
  }
  return out;
}

}  // namespace xai
