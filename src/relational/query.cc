#include "relational/query.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace xai {

Result<RowPredicate> ColumnPredicate(const Relation& r,
                                     const std::string& col,
                                     const std::string& op, double constant) {
  XAI_ASSIGN_OR_RETURN(size_t idx, r.ColumnIndex(col));
  if (op == "<")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] < constant;
    });
  if (op == "<=")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] <= constant;
    });
  if (op == ">")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] > constant;
    });
  if (op == ">=")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] >= constant;
    });
  if (op == "==")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] == constant;
    });
  if (op == "!=")
    return RowPredicate([idx, constant](const std::vector<double>& row) {
      return row[idx] != constant;
    });
  return Status::InvalidArgument("unknown operator: " + op);
}

Relation Select(const Relation& r, const RowPredicate& pred) {
  Relation out("select(" + r.name() + ")", r.columns());
  for (size_t i = 0; i < r.num_rows(); ++i) {
    if (!pred(r.row(i))) continue;
    (void)out.InsertDerived(r.row(i), r.provenance(i));
  }
  return out;
}

Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& cols) {
  std::vector<size_t> idx;
  for (const std::string& c : cols) {
    XAI_ASSIGN_OR_RETURN(size_t j, r.ColumnIndex(c));
    idx.push_back(j);
  }
  Relation out("project(" + r.name() + ")", cols);
  std::map<std::vector<double>, WhyProvenance> grouped;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    std::vector<double> key(idx.size());
    for (size_t k = 0; k < idx.size(); ++k) key[k] = r.row(i)[idx[k]];
    WhyProvenance& p = grouped[key];
    const WhyProvenance& rp = r.provenance(i);
    p.insert(p.end(), rp.begin(), rp.end());
  }
  for (auto& [key, prov] : grouped)
    XAI_RETURN_NOT_OK(out.InsertDerived(key, std::move(prov)));
  return out;
}

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  // Shared columns.
  std::vector<std::pair<size_t, size_t>> shared;
  std::vector<size_t> b_extra;
  for (size_t j = 0; j < b.num_columns(); ++j) {
    bool found = false;
    for (size_t i = 0; i < a.num_columns(); ++i) {
      if (a.columns()[i] == b.columns()[j]) {
        shared.emplace_back(i, j);
        found = true;
        break;
      }
    }
    if (!found) b_extra.push_back(j);
  }
  if (shared.empty())
    return Status::InvalidArgument("NaturalJoin: no shared columns");

  std::vector<std::string> out_cols = a.columns();
  for (size_t j : b_extra) out_cols.push_back(b.columns()[j]);
  Relation out("join(" + a.name() + "," + b.name() + ")",
               std::move(out_cols));

  // Hash b rows by join key.
  std::map<std::vector<double>, std::vector<size_t>> index;
  for (size_t i = 0; i < b.num_rows(); ++i) {
    std::vector<double> key(shared.size());
    for (size_t k = 0; k < shared.size(); ++k)
      key[k] = b.row(i)[shared[k].second];
    index[key].push_back(i);
  }
  for (size_t i = 0; i < a.num_rows(); ++i) {
    std::vector<double> key(shared.size());
    for (size_t k = 0; k < shared.size(); ++k)
      key[k] = a.row(i)[shared[k].first];
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t bi : it->second) {
      std::vector<double> row = a.row(i);
      for (size_t j : b_extra) row.push_back(b.row(bi)[j]);
      WhyProvenance prov;
      for (const Witness& wa : a.provenance(i))
        for (const Witness& wb : b.provenance(bi))
          prov.push_back(MergeWitnesses(wa, wb));
      XAI_RETURN_NOT_OK(out.InsertDerived(row, std::move(prov)));
    }
  }
  return out;
}

Result<AggregateResult> Aggregate(const Relation& r, AggKind kind,
                                  const std::string& col) {
  size_t idx = 0;
  if (kind != AggKind::kCount) {
    XAI_ASSIGN_OR_RETURN(idx, r.ColumnIndex(col));
  }
  AggregateResult res;
  std::set<TupleId> lineage;
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < r.num_rows(); ++i) {
    const double v = kind == AggKind::kCount ? 1.0 : r.value(i, idx);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    const Witness lin = r.Lineage(i);
    lineage.insert(lin.begin(), lin.end());
  }
  const double n = static_cast<double>(r.num_rows());
  switch (kind) {
    case AggKind::kCount:
      res.value = n;
      break;
    case AggKind::kSum:
      res.value = sum;
      break;
    case AggKind::kAvg:
      res.value = n > 0 ? sum / n : 0.0;
      break;
    case AggKind::kMin:
      res.value = r.num_rows() ? mn : 0.0;
      break;
    case AggKind::kMax:
      res.value = r.num_rows() ? mx : 0.0;
      break;
  }
  res.lineage.assign(lineage.begin(), lineage.end());
  return res;
}

Result<Relation> GroupAggregate(const Relation& r,
                                const std::vector<std::string>& keys,
                                AggKind kind, const std::string& col) {
  std::vector<size_t> key_idx;
  for (const std::string& k : keys) {
    XAI_ASSIGN_OR_RETURN(size_t j, r.ColumnIndex(k));
    key_idx.push_back(j);
  }
  size_t agg_idx = 0;
  if (kind != AggKind::kCount) {
    XAI_ASSIGN_OR_RETURN(agg_idx, r.ColumnIndex(col));
  }
  std::vector<std::string> out_cols = keys;
  out_cols.push_back("agg");
  Relation out("groupby(" + r.name() + ")", std::move(out_cols));

  std::map<std::vector<double>, std::vector<size_t>> groups;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    std::vector<double> key(key_idx.size());
    for (size_t k = 0; k < key_idx.size(); ++k) key[k] = r.row(i)[key_idx[k]];
    groups[key].push_back(i);
  }
  for (const auto& [key, members] : groups) {
    double sum = 0.0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    WhyProvenance prov;
    for (size_t i : members) {
      const double v = kind == AggKind::kCount ? 1.0 : r.value(i, agg_idx);
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      const WhyProvenance& rp = r.provenance(i);
      prov.insert(prov.end(), rp.begin(), rp.end());
    }
    const double n = static_cast<double>(members.size());
    double value = 0.0;
    switch (kind) {
      case AggKind::kCount: value = n; break;
      case AggKind::kSum: value = sum; break;
      case AggKind::kAvg: value = sum / n; break;
      case AggKind::kMin: value = mn; break;
      case AggKind::kMax: value = mx; break;
    }
    std::vector<double> row = key;
    row.push_back(value);
    XAI_RETURN_NOT_OK(out.InsertDerived(row, std::move(prov)));
  }
  return out;
}

}  // namespace xai
