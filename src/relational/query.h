#ifndef XAIDB_RELATIONAL_QUERY_H_
#define XAIDB_RELATIONAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/relation.h"

namespace xai {

/// Row predicate with named-column access resolved at build time.
using RowPredicate = std::function<bool(const std::vector<double>&)>;

/// Builds a predicate `col <op> constant`; ops: "<", "<=", ">", ">=",
/// "==", "!=".
Result<RowPredicate> ColumnPredicate(const Relation& r,
                                     const std::string& col,
                                     const std::string& op, double constant);

/// sigma_pred(r): provenance passes through.
Relation Select(const Relation& r, const RowPredicate& pred);

/// pi_cols(r) with duplicate elimination; duplicate rows' witnesses union.
Result<Relation> Project(const Relation& r,
                         const std::vector<std::string>& cols);

/// Natural equi-join on all shared column names (at least one required).
/// Witness sets combine pairwise (cross product of derivations).
Result<Relation> NaturalJoin(const Relation& a, const Relation& b);

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// Scalar aggregate over a column. `lineage` (optional out) receives the
/// base tuples contributing to the result.
struct AggregateResult {
  double value = 0.0;
  /// Base tuples whose presence affects the answer.
  Witness lineage;
};
Result<AggregateResult> Aggregate(const Relation& r, AggKind kind,
                                  const std::string& col);

/// GROUP BY keys with one aggregate; output columns = keys + "agg".
/// Each group row's provenance is the set of witnesses of its members.
Result<Relation> GroupAggregate(const Relation& r,
                                const std::vector<std::string>& keys,
                                AggKind kind, const std::string& col);

}  // namespace xai

#endif  // XAIDB_RELATIONAL_QUERY_H_
