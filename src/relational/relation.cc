#include "relational/relation.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace xai {

TupleId Relation::next_tid_ = 1;

Result<size_t> Relation::ColumnIndex(const std::string& col) const {
  for (size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == col) return i;
  return Status::NotFound("column not found: " + col);
}

Result<TupleId> Relation::Insert(const std::vector<double>& values) {
  if (values.size() != columns_.size())
    return Status::InvalidArgument("Insert: arity mismatch");
  const TupleId tid = next_tid_++;
  rows_.push_back(values);
  prov_.push_back({{tid}});
  tids_.push_back(tid);
  return tid;
}

Status Relation::InsertDerived(const std::vector<double>& values,
                               WhyProvenance prov) {
  if (values.size() != columns_.size())
    return Status::InvalidArgument("InsertDerived: arity mismatch");
  rows_.push_back(values);
  prov_.push_back(NormalizeProvenance(std::move(prov)));
  tids_.push_back(0);
  return Status::OK();
}

Witness Relation::Lineage(size_t i) const {
  std::set<TupleId> all;
  for (const Witness& w : prov_[i]) all.insert(w.begin(), w.end());
  return Witness(all.begin(), all.end());
}

Relation Relation::FilterByTupleId(const std::vector<bool>& keep,
                                   TupleId id_offset) const {
  Relation out(name_, columns_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    const TupleId tid = tids_[i];
    const size_t slot = static_cast<size_t>(tid - id_offset);
    if (tid != 0 && slot < keep.size() && !keep[slot]) continue;
    out.rows_.push_back(rows_[i]);
    out.prov_.push_back(prov_[i]);
    out.tids_.push_back(tid);
  }
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << name_ << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << columns_[i];
  }
  os << ") [" << rows_.size() << " rows]\n";
  for (size_t i = 0; i < std::min(rows_.size(), max_rows); ++i) {
    os << "  ";
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      if (j) os << " | ";
      os << rows_[i][j];
    }
    os << "\n";
  }
  return os.str();
}

WhyProvenance NormalizeProvenance(WhyProvenance prov) {
  for (Witness& w : prov) {
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());
  }
  std::sort(prov.begin(), prov.end());
  prov.erase(std::unique(prov.begin(), prov.end()), prov.end());
  // Drop witnesses that strictly include another witness.
  WhyProvenance minimal;
  for (const Witness& w : prov) {
    bool dominated = false;
    for (const Witness& other : prov) {
      if (&w == &other || other.size() >= w.size()) continue;
      if (std::includes(w.begin(), w.end(), other.begin(), other.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(w);
  }
  return minimal;
}

Witness MergeWitnesses(const Witness& a, const Witness& b) {
  Witness out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace xai
