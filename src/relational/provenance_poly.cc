#include "relational/provenance_poly.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xai {

ProvenancePolynomial ProvenancePolynomial::Zero() {
  return ProvenancePolynomial();
}

ProvenancePolynomial ProvenancePolynomial::One() {
  ProvenancePolynomial p;
  p.terms_[{}] = 1;
  return p;
}

ProvenancePolynomial ProvenancePolynomial::Var(TupleId t) {
  ProvenancePolynomial p;
  p.terms_[{{t, 1}}] = 1;
  return p;
}

ProvenancePolynomial ProvenancePolynomial::operator+(
    const ProvenancePolynomial& o) const {
  ProvenancePolynomial out = *this;
  for (const auto& [mono, coeff] : o.terms_) {
    auto [it, inserted] = out.terms_.emplace(mono, coeff);
    if (!inserted) {
      it->second += coeff;
      if (it->second == 0) out.terms_.erase(it);
    }
  }
  return out;
}

ProvenancePolynomial ProvenancePolynomial::operator*(
    const ProvenancePolynomial& o) const {
  ProvenancePolynomial out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : o.terms_) {
      Monomial prod = ma;
      for (const auto& [var, exp] : mb) prod[var] += exp;
      out.terms_[prod] += ca * cb;
    }
  }
  return out;
}

long long ProvenancePolynomial::EvaluateCounting(
    const std::map<TupleId, long long>& assignment) const {
  long long total = 0;
  for (const auto& [mono, coeff] : terms_) {
    long long prod = coeff;
    for (const auto& [var, exp] : mono) {
      auto it = assignment.find(var);
      const long long v = it == assignment.end() ? 0 : it->second;
      for (int e = 0; e < exp; ++e) prod *= v;
    }
    total += prod;
  }
  return total;
}

bool ProvenancePolynomial::EvaluateBoolean(
    const std::set<TupleId>& present) const {
  for (const auto& [mono, coeff] : terms_) {
    if (coeff == 0) continue;
    bool alive = true;
    for (const auto& [var, exp] : mono) {
      (void)exp;
      if (!present.count(var)) {
        alive = false;
        break;
      }
    }
    if (alive) return true;
  }
  return false;
}

double ProvenancePolynomial::EvaluateTropical(
    const std::map<TupleId, double>& costs, double missing_cost) const {
  double best = 1e18;
  for (const auto& [mono, coeff] : terms_) {
    if (coeff == 0) continue;
    double c = 0.0;
    for (const auto& [var, exp] : mono) {
      auto it = costs.find(var);
      const double unit = it == costs.end() ? missing_cost : it->second;
      c += unit * static_cast<double>(exp);
    }
    best = std::min(best, c);
  }
  return best;
}

ProvenancePolynomial ProvenancePolynomial::FromWhyProvenance(
    const WhyProvenance& prov) {
  ProvenancePolynomial out = Zero();
  for (const Witness& w : prov) {
    ProvenancePolynomial m = One();
    for (TupleId t : w) m = m * Var(t);
    out = out + m;
  }
  return out;
}

WhyProvenance ProvenancePolynomial::ToWhyProvenance() const {
  WhyProvenance prov;
  for (const auto& [mono, coeff] : terms_) {
    if (coeff == 0) continue;
    Witness w;
    for (const auto& [var, exp] : mono) {
      (void)exp;
      w.push_back(var);
    }
    prov.push_back(std::move(w));
  }
  return NormalizeProvenance(std::move(prov));
}

std::string ProvenancePolynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [mono, coeff] : terms_) {
    if (!first) os << " + ";
    first = false;
    bool printed = false;
    if (coeff != 1 || mono.empty()) {
      os << coeff;
      printed = true;
    }
    for (const auto& [var, exp] : mono) {
      if (printed) os << "*";
      os << "t" << var;
      if (exp > 1) os << "^" << exp;
      printed = true;
    }
  }
  return os.str();
}

}  // namespace xai
