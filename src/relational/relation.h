#ifndef XAIDB_RELATIONAL_RELATION_H_
#define XAIDB_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace xai {

/// Globally unique id of a base tuple (assigned when rows are inserted into
/// a base relation). Provenance is expressed in terms of these ids.
using TupleId = uint64_t;

/// A witness (one derivation of an output tuple): the set of base-tuple ids
/// jointly sufficient to produce it. Stored sorted.
using Witness = std::vector<TupleId>;

/// Why-provenance: the set of witnesses of an output tuple.
using WhyProvenance = std::vector<Witness>;

/// In-memory relation with named double-valued columns. Every row carries
/// why-provenance over base tuples, maintained through the operators in
/// query.h — the substrate for Section 3's provenance-based explanations
/// and Shapley values of tuples in query answering.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }

  Result<size_t> ColumnIndex(const std::string& col) const;

  /// Inserts a base tuple with a fresh singleton provenance {{tid}}.
  /// Returns the assigned TupleId.
  Result<TupleId> Insert(const std::vector<double>& values);

  /// Inserts a derived tuple with explicit provenance (used by operators).
  Status InsertDerived(const std::vector<double>& values, WhyProvenance prov);

  const std::vector<double>& row(size_t i) const { return rows_[i]; }
  double value(size_t i, size_t col) const { return rows_[i][col]; }
  const WhyProvenance& provenance(size_t i) const { return prov_[i]; }
  TupleId tuple_id(size_t i) const { return tids_[i]; }

  /// All base tuple ids appearing in any witness of row i (its lineage).
  Witness Lineage(size_t i) const;

  /// Relation restricted to base tuples whose id passes `keep` — the
  /// sub-database operator that tuple-Shapley evaluation intervenes with.
  /// Only meaningful on base relations (provenance = singleton witnesses).
  Relation FilterByTupleId(const std::vector<bool>& keep,
                           TupleId id_offset = 0) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  friend class Database;

  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
  std::vector<WhyProvenance> prov_;
  std::vector<TupleId> tids_;  // 0 for derived tuples.
  static TupleId next_tid_;
};

/// Normalizes a why-provenance: sorts witnesses, deduplicates, and removes
/// non-minimal witnesses (supersets of another witness).
WhyProvenance NormalizeProvenance(WhyProvenance prov);

/// Witness union (for joins): w1 ∪ w2, sorted, deduplicated.
Witness MergeWitnesses(const Witness& a, const Witness& b);

}  // namespace xai

#endif  // XAIDB_RELATIONAL_RELATION_H_
