#ifndef XAIDB_RELATIONAL_PROVENANCE_POLY_H_
#define XAIDB_RELATIONAL_PROVENANCE_POLY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace xai {

/// Provenance polynomials (Green, Karvounarakis & Tannen's N[X] semiring —
/// the "what form?" answer of the provenance survey the tutorial cites in
/// Section 3): each base tuple is a variable, join multiplies, union/
/// projection adds. Specializing the semiring answers different questions
/// about the same query result:
///   * counting (N):   how many derivations are there?
///   * Boolean:        does the answer survive these deletions?
///   * tropical (min-plus): what is the cheapest derivation?
/// The engine's WhyProvenance is the polynomial's support (each witness a
/// monomial with exponents/coefficients dropped); ToPolynomial lifts it
/// back with unit multiplicities.
class ProvenancePolynomial {
 public:
  /// Monomial = product of variables with exponents; the polynomial maps
  /// monomials to natural coefficients.
  using Monomial = std::map<TupleId, int>;

  static ProvenancePolynomial Zero();
  static ProvenancePolynomial One();
  static ProvenancePolynomial Var(TupleId t);

  ProvenancePolynomial operator+(const ProvenancePolynomial& o) const;
  ProvenancePolynomial operator*(const ProvenancePolynomial& o) const;
  bool operator==(const ProvenancePolynomial& o) const {
    return terms_ == o.terms_;
  }

  bool is_zero() const { return terms_.empty(); }
  size_t num_terms() const { return terms_.size(); }
  const std::map<Monomial, long long>& terms() const { return terms_; }

  /// Counting semiring: substitute each variable's multiplicity.
  long long EvaluateCounting(
      const std::map<TupleId, long long>& assignment) const;
  /// Boolean semiring: true iff some monomial's variables all survive.
  bool EvaluateBoolean(const std::set<TupleId>& present) const;
  /// Tropical (min, +): cheapest derivation cost; missing variables cost
  /// `missing_cost`. Returns +inf (as represented) for the zero poly.
  double EvaluateTropical(const std::map<TupleId, double>& costs,
                          double missing_cost = 1e18) const;

  /// Lifts why-provenance (set of witnesses) to a polynomial with unit
  /// coefficients/exponents.
  static ProvenancePolynomial FromWhyProvenance(const WhyProvenance& prov);
  /// Drops coefficients/exponents back to the support.
  WhyProvenance ToWhyProvenance() const;

  std::string ToString() const;

 private:
  std::map<Monomial, long long> terms_;
};

}  // namespace xai

#endif  // XAIDB_RELATIONAL_PROVENANCE_POLY_H_
