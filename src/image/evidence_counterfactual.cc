#include "image/evidence_counterfactual.h"

#include <algorithm>
#include <cmath>

namespace xai {
namespace {

/// Tile geometry helper: pixel indices of tile `t` in a grid segmented
/// into tile_size x tile_size squares (ragged edges included).
std::vector<size_t> TilePixels(const GridImage& img, size_t tile,
                               size_t tile_size) {
  const size_t tiles_per_row = (img.width + tile_size - 1) / tile_size;
  const size_t tr = tile / tiles_per_row;
  const size_t tc = tile % tiles_per_row;
  std::vector<size_t> pixels;
  for (size_t r = tr * tile_size;
       r < std::min(img.height, (tr + 1) * tile_size); ++r) {
    for (size_t c = tc * tile_size;
         c < std::min(img.width, (tc + 1) * tile_size); ++c) {
      pixels.push_back(r * img.width + c);
    }
  }
  return pixels;
}

}  // namespace

Result<EvidenceRegion> FindEvidenceCounterfactual(
    const Model& model, const GridImage& image,
    const EvidenceCounterfactualOptions& opts) {
  if (image.pixels.size() != model.num_features())
    return Status::InvalidArgument(
        "EvidenceCounterfactual: image size != model features");
  if (opts.tile_size == 0)
    return Status::InvalidArgument("EvidenceCounterfactual: tile_size 0");
  const size_t tiles_per_row =
      (image.width + opts.tile_size - 1) / opts.tile_size;
  const size_t tiles_per_col =
      (image.height + opts.tile_size - 1) / opts.tile_size;
  const size_t num_tiles = tiles_per_row * tiles_per_col;

  EvidenceRegion region;
  region.original_prediction = model.Predict(image.pixels);
  const bool positive = region.original_prediction >= 0.5;

  std::vector<double> current = image.pixels;
  std::vector<bool> erased(num_tiles, false);
  auto erase_tile = [&](std::vector<double>* px, size_t tile) {
    for (size_t p : TilePixels(image, tile, opts.tile_size))
      (*px)[p] = opts.background_value;
  };
  auto is_flipped = [&](double pred) {
    return positive ? pred < 0.5 : pred >= 0.5;
  };

  // Greedy best-first erasure.
  double current_pred = region.original_prediction;
  while (region.tiles.size() < std::min(opts.max_tiles, num_tiles)) {
    double best_pred = current_pred;
    size_t best_tile = num_tiles;
    for (size_t t = 0; t < num_tiles; ++t) {
      if (erased[t]) continue;
      std::vector<double> probe = current;
      erase_tile(&probe, t);
      const double pred = model.Predict(probe);
      const bool better =
          positive ? pred < best_pred : pred > best_pred;
      if (better) {
        best_pred = pred;
        best_tile = t;
      }
    }
    if (best_tile == num_tiles) break;  // No tile moves us further.
    erased[best_tile] = true;
    erase_tile(&current, best_tile);
    region.tiles.push_back(best_tile);
    current_pred = best_pred;
    if (is_flipped(current_pred)) break;
  }

  if (is_flipped(current_pred)) {
    // Pruning pass: drop tiles whose restoration keeps the flip.
    for (size_t k = 0; k < region.tiles.size();) {
      const size_t tile = region.tiles[k];
      std::vector<double> probe = current;
      for (size_t p : TilePixels(image, tile, opts.tile_size))
        probe[p] = image.pixels[p];
      if (is_flipped(model.Predict(probe))) {
        current = std::move(probe);
        erased[tile] = false;
        region.tiles.erase(region.tiles.begin() + static_cast<long>(k));
      } else {
        ++k;
      }
    }
    current_pred = model.Predict(current);
  }

  region.counterfactual_prediction = current_pred;
  region.flipped = is_flipped(current_pred);
  region.pixel_mask.assign(image.pixels.size(), 0);
  for (size_t t : region.tiles)
    for (size_t p : TilePixels(image, t, opts.tile_size))
      region.pixel_mask[p] = 1;
  return region;
}

}  // namespace xai
