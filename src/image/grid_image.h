#ifndef XAIDB_IMAGE_GRID_IMAGE_H_
#define XAIDB_IMAGE_GRID_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace xai {

/// Tiny grayscale images as pixel grids — the minimal substrate for the
/// image-explanation methods of tutorial Section 2.4 (saliency / pixel
/// attribution maps, counterfactual region explanations). Pixels map to
/// tabular features, so every tabular model and explainer in the library
/// applies directly (as the saliency literature does with flattened
/// inputs).
struct GridImage {
  size_t width = 0;
  size_t height = 0;
  std::vector<double> pixels;  // Row-major, intensity in [0, 1].

  double at(size_t row, size_t col) const {
    return pixels[row * width + col];
  }
  double& at(size_t row, size_t col) { return pixels[row * width + col]; }

  /// ASCII rendering (' ', '.', 'o', '#') for terminal output; values are
  /// clamped to [0, 1].
  std::string ToAscii() const;
};

/// Renders per-pixel scores (any sign) as ASCII: '+'/'-' intensity buckets.
std::string RenderSignedMap(const std::vector<double>& values, size_t width,
                            size_t height);

struct ShapeImageOptions {
  uint64_t seed = 99;
  size_t width = 8;
  size_t height = 8;
  /// Additive pixel noise std.
  double noise = 0.15;
};

/// Synthetic shape-detection corpus: label 1 images contain a vertical
/// bar at a random column; label 0 images are background noise only. The
/// signal pixels are known, so tests can check that saliency maps and
/// counterfactual regions land exactly on the bar — and erasure-based
/// evidence counterfactuals can flip the decision by removing it.
struct ShapeImageCorpus {
  std::vector<GridImage> images;
  std::vector<double> labels;
  /// For each image: the bar's column, or SIZE_MAX for blank images.
  std::vector<size_t> bar_position;
};
ShapeImageCorpus MakeShapeImages(size_t n, const ShapeImageOptions& opts = ShapeImageOptions());

/// Flattens the corpus into a tabular dataset (features "px_r_c").
Dataset ToPixelDataset(const ShapeImageCorpus& corpus);

}  // namespace xai

#endif  // XAIDB_IMAGE_GRID_IMAGE_H_
