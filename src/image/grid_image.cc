#include "image/grid_image.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace xai {

std::string GridImage::ToAscii() const {
  std::string out;
  out.reserve((width + 1) * height);
  for (size_t r = 0; r < height; ++r) {
    for (size_t c = 0; c < width; ++c) {
      const double v = std::clamp(at(r, c), 0.0, 1.0);
      out += v < 0.25 ? ' ' : v < 0.5 ? '.' : v < 0.75 ? 'o' : '#';
    }
    out += '\n';
  }
  return out;
}

std::string RenderSignedMap(const std::vector<double>& values, size_t width,
                            size_t height) {
  double max_abs = 1e-12;
  for (double v : values) max_abs = std::max(max_abs, std::fabs(v));
  std::string out;
  out.reserve((width + 1) * height);
  for (size_t r = 0; r < height; ++r) {
    for (size_t c = 0; c < width; ++c) {
      const double v = values[r * width + c] / max_abs;
      char ch = '.';
      if (v > 0.66) {
        ch = '#';
      } else if (v > 0.25) {
        ch = '+';
      } else if (v < -0.66) {
        ch = '=';
      } else if (v < -0.25) {
        ch = '-';
      }
      out += ch;
    }
    out += '\n';
  }
  return out;
}

ShapeImageCorpus MakeShapeImages(size_t n, const ShapeImageOptions& opts) {
  Rng rng(opts.seed);
  ShapeImageCorpus corpus;
  corpus.images.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GridImage img;
    img.width = opts.width;
    img.height = opts.height;
    img.pixels.assign(opts.width * opts.height, 0.0);
    const bool has_bar = rng.Bernoulli(0.5);
    size_t pos = static_cast<size_t>(-1);
    if (has_bar) {
      const double intensity = rng.Uniform(0.7, 1.0);
      pos = static_cast<size_t>(rng.NextInt(opts.width));
      for (size_t r = 0; r < opts.height; ++r) img.at(r, pos) = intensity;
    }
    for (double& p : img.pixels)
      p = std::clamp(p + rng.Gaussian(0.0, opts.noise), 0.0, 1.0);
    corpus.images.push_back(std::move(img));
    corpus.labels.push_back(has_bar ? 1.0 : 0.0);
    corpus.bar_position.push_back(pos);
  }
  return corpus;
}

Dataset ToPixelDataset(const ShapeImageCorpus& corpus) {
  const size_t w = corpus.images.empty() ? 0 : corpus.images[0].width;
  const size_t h = corpus.images.empty() ? 0 : corpus.images[0].height;
  std::vector<FeatureSpec> specs;
  specs.reserve(w * h);
  for (size_t r = 0; r < h; ++r)
    for (size_t c = 0; c < w; ++c)
      specs.push_back(FeatureSpec::Numeric(
          "px_" + std::to_string(r) + "_" + std::to_string(c)));
  Matrix x(corpus.images.size(), w * h);
  for (size_t i = 0; i < corpus.images.size(); ++i)
    x.SetRow(i, corpus.images[i].pixels);
  return Dataset(Schema(std::move(specs)), std::move(x), corpus.labels);
}

}  // namespace xai
