#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace xai::obs {
namespace {

/// Minimal JSON string escaping; metric names are library-chosen but the
/// exporter must never emit invalid JSON regardless.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string MetricsToJson() {
  const MetricsSnapshot snap = MetricsRegistry::Global().TakeSnapshot();
  const auto spans = SpanSnapshot();

  std::string out = "{\n";
  // Self-describing stamp: schema_version names the JSON shape, and the
  // wall-clock stamp makes two scraped snapshots orderable/diffable
  // without relying on file mtimes.
  Appendf(&out, "  \"schema_version\": %d,\n", kMetricsSchemaVersion);
  Appendf(&out, "  \"snapshot_unix_ms\": %" PRIu64 ",\n", UnixNowMs());
  Appendf(&out, "  \"enabled\": %s,\n", Enabled() ? "true" : "false");

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    Appendf(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            EscapeJson(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    Appendf(&out, "%s\n    \"%s\": %.9g", first ? "" : ",",
            EscapeJson(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    Appendf(&out,
            "%s\n    \"%s\": {\"count\": %" PRIu64
            ", \"sum\": %.9g, \"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g}",
            first ? "" : ",", EscapeJson(name).c_str(), h.count, h.sum, h.p50,
            h.p90, h.p99);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [path, e] : spans) {
    Appendf(&out,
            "%s\n    \"%s\": {\"count\": %" PRIu64
            ", \"total_ms\": %.6f, \"mean_ms\": %.6f, \"max_ms\": %.6f, "
            "\"depth\": %d}",
            first ? "" : ",", EscapeJson(path).c_str(), e.count, e.total_ms,
            e.mean_ms, e.max_ms, e.depth);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  Appendf(&out,
          "  \"trace\": {\"enabled\": %s, \"events\": %" PRIu64
          ", \"dropped\": %" PRIu64 "}\n",
          TraceEnabled() ? "true" : "false", TraceEventCount(),
          TraceDroppedCount());

  out += "}\n";
  return out;
}

std::string MetricsToTable() {
  const MetricsSnapshot snap = MetricsRegistry::Global().TakeSnapshot();
  const auto spans = SpanSnapshot();

  std::string out;
  out += "== xaidb metrics ==\n";
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters)
      Appendf(&out, "  %-44s %16" PRIu64 "\n", name.c_str(), value);
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snap.gauges)
      Appendf(&out, "  %-44s %16.6g\n", name.c_str(), value);
  }
  if (!snap.histograms.empty()) {
    out += "histograms (us):\n";
    Appendf(&out, "  %-44s %10s %12s %10s %10s %10s\n", "name", "count",
            "sum", "p50", "p90", "p99");
    for (const auto& [name, h] : snap.histograms)
      Appendf(&out, "  %-44s %10" PRIu64 " %12.0f %10.1f %10.1f %10.1f\n",
              name.c_str(), h.count, h.sum, h.p50, h.p90, h.p99);
  }
  if (!spans.empty()) {
    out += "spans:\n";
    Appendf(&out, "  %-44s %10s %12s %10s %10s\n", "path", "count",
            "total_ms", "mean_ms", "max_ms");
    for (const auto& [path, e] : spans) {
      // Indent children under their parents (paths sort lexicographically,
      // so "a" precedes "a/b").
      std::string label(static_cast<size_t>(e.depth) * 2, ' ');
      label += path;
      Appendf(&out, "  %-44s %10" PRIu64 " %12.3f %10.3f %10.3f\n",
              label.c_str(), e.count, e.total_ms, e.mean_ms, e.max_ms);
    }
  }
  if (TraceEnabled()) {
    // Overflow is silent truncation unless reported: a nonzero dropped
    // count means the per-thread rings wrapped and the exported trace is
    // missing its oldest events (raise XAIDB_TRACE_CAPACITY).
    Appendf(&out,
            "trace: %" PRIu64 " events recorded, %" PRIu64
            " dropped by ring overflow\n",
            TraceEventCount(), TraceDroppedCount());
  }
  return out;
}

Status WriteMetricsJson(const std::string& path) {
  if (path.empty())
    return Status::InvalidArgument("obs: empty metrics output path");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("obs: cannot open metrics output path: " + path);
  const std::string json = MetricsToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed)
    return Status::IOError("obs: short write to metrics output path: " + path);
  return Status::OK();
}

}  // namespace xai::obs
