#ifndef XAIDB_OBS_OBS_H_
#define XAIDB_OBS_OBS_H_

/// Umbrella header for the observability subsystem plus the macros the
/// instrumented hot paths use. Every macro is zero-cost-when-off: one
/// relaxed atomic load and a predictable branch, nothing else. The
/// registry lookup happens once per call site (function-local static),
/// and only on the first pass where metrics are enabled.

#include "obs/export.h"    // IWYU pragma: export
#include "obs/metrics.h"   // IWYU pragma: export
#include "obs/monitor.h"   // IWYU pragma: export
#include "obs/prom.h"      // IWYU pragma: export
#include "obs/span.h"      // IWYU pragma: export
#include "obs/stopwatch.h" // IWYU pragma: export
#include "obs/trace.h"     // IWYU pragma: export

#define XAI_OBS_CONCAT_INNER(x, y) x##y
#define XAI_OBS_CONCAT(x, y) XAI_OBS_CONCAT_INNER(x, y)

/// Adds `n` to the named counter (no-op when metrics are off).
#define XAI_OBS_COUNT_N(name, n)                                      \
  do {                                                                \
    if (::xai::obs::Enabled()) {                                      \
      static ::xai::obs::Counter* const _xai_obs_counter =            \
          ::xai::obs::MetricsRegistry::Global().GetCounter(name);     \
      _xai_obs_counter->Add(static_cast<uint64_t>(n));                \
    }                                                                 \
  } while (0)

/// Increments the named counter by one (no-op when metrics are off).
#define XAI_OBS_COUNT(name) XAI_OBS_COUNT_N(name, 1)

/// Sets the named gauge (no-op when metrics are off).
#define XAI_OBS_GAUGE_SET(name, v)                                    \
  do {                                                                \
    if (::xai::obs::Enabled()) {                                      \
      static ::xai::obs::Gauge* const _xai_obs_gauge =                \
          ::xai::obs::MetricsRegistry::Global().GetGauge(name);       \
      _xai_obs_gauge->Set(static_cast<double>(v));                    \
    }                                                                 \
  } while (0)

/// Records `v` into the named histogram (no-op when metrics are off).
#define XAI_OBS_OBSERVE(name, v)                                      \
  do {                                                                \
    if (::xai::obs::Enabled()) {                                      \
      static ::xai::obs::Histogram* const _xai_obs_hist =             \
          ::xai::obs::MetricsRegistry::Global().GetHistogram(name);   \
      _xai_obs_hist->Observe(static_cast<double>(v));                 \
    }                                                                 \
  } while (0)

/// Opens an RAII trace span for the rest of the enclosing scope. Spans
/// opened while another span is active on the same thread aggregate under
/// the nested path "outer/inner".
#define XAI_OBS_SPAN(name) \
  ::xai::obs::ScopedSpan XAI_OBS_CONCAT(_xai_obs_span_, __LINE__)(name)

/// Times the rest of the enclosing scope into the named histogram, in
/// microseconds.
#define XAI_OBS_HIST_TIMER(name)                         \
  ::xai::obs::ScopedHistogramTimer XAI_OBS_CONCAT(       \
      _xai_obs_hist_timer_, __LINE__)(name)

/// Flight-recorder paired begin/end event for the rest of the enclosing
/// scope; the span it opens becomes the parent of nested trace events
/// (including ParallelFor chunks launched inside). No-op when tracing is
/// off; note XAI_OBS_SPAN already emits this alongside its aggregates.
#define XAI_OBS_TRACE_SCOPE(name) \
  ::xai::obs::ScopedTraceEvent XAI_OBS_CONCAT(_xai_obs_trace_, __LINE__)(name)

/// Flight-recorder instant marker with a numeric payload (no-op when
/// tracing is off).
#define XAI_OBS_TRACE_INSTANT(name, v)                                \
  do {                                                                \
    if (::xai::obs::TraceEnabled())                                   \
      ::xai::obs::TraceInstant(name, static_cast<double>(v));         \
  } while (0)

/// Flight-recorder counter sample — renders as a value track in Perfetto
/// (no-op when tracing is off).
#define XAI_OBS_TRACE_COUNTER(name, v)                                \
  do {                                                                \
    if (::xai::obs::TraceEnabled())                                   \
      ::xai::obs::TraceCounter(name, static_cast<double>(v));         \
  } while (0)

#endif  // XAIDB_OBS_OBS_H_
