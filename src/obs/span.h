#ifndef XAIDB_OBS_SPAN_H_
#define XAIDB_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "obs/trace.h"

namespace xai::obs {

/// Aggregated statistics for one span path, as reported by SpanSnapshot.
/// Paths encode nesting: a span opened while "kernel_shap" is active on
/// the same thread aggregates under "kernel_shap/<name>".
struct SpanSnapshotEntry {
  uint64_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  int depth = 0;  // Number of '/' separators in the path.
};

/// Point-in-time copy of every span path's aggregate stats.
std::map<std::string, SpanSnapshotEntry> SpanSnapshot();

/// Zeroes span stats, keeping registrations (cached pointers stay valid).
void ResetSpans();

/// RAII wall-time tracing for a labeled region. On construction (when
/// metrics are on) the name is appended to a thread-local path stack; on
/// destruction the elapsed time is folded into lock-free aggregate stats
/// keyed by the full parent/child path.
///
/// Toggle rule (latched, both directions): the record/skip decision is
/// made once, at construction. A span that starts while metrics are off
/// records nothing even if metrics are enabled before it closes; a span
/// that starts while metrics are on records fully (and keeps the path
/// stack consistent) even if metrics are disabled before it closes. The
/// flight recorder applies the same rule: when tracing is on at
/// construction the span also emits a paired begin/end trace event and
/// carries the current TraceContext (see obs/trace.h).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  /// Emits the paired B/E flight-recorder event and scopes the trace
  /// context; latches the tracing decision itself, independently of the
  /// metrics decision below.
  ScopedTraceEvent trace_;
  bool active_;  // metrics decision, latched at construction
  size_t prev_len_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xai::obs

#endif  // XAIDB_OBS_SPAN_H_
