#ifndef XAIDB_OBS_SPAN_H_
#define XAIDB_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace xai::obs {

/// Aggregated statistics for one span path, as reported by SpanSnapshot.
/// Paths encode nesting: a span opened while "kernel_shap" is active on
/// the same thread aggregates under "kernel_shap/<name>".
struct SpanSnapshotEntry {
  uint64_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  int depth = 0;  // Number of '/' separators in the path.
};

/// Point-in-time copy of every span path's aggregate stats.
std::map<std::string, SpanSnapshotEntry> SpanSnapshot();

/// Zeroes span stats, keeping registrations (cached pointers stay valid).
void ResetSpans();

/// RAII wall-time tracing for a labeled region. On construction (when
/// metrics are on) the name is appended to a thread-local path stack; on
/// destruction the elapsed time is folded into lock-free aggregate stats
/// keyed by the full parent/child path. A span that starts while metrics
/// are off records nothing, even if metrics are enabled before it closes.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  size_t prev_len_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xai::obs

#endif  // XAIDB_OBS_SPAN_H_
