#ifndef XAIDB_OBS_METRICS_H_
#define XAIDB_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stopwatch.h"

namespace xai::obs {

namespace internal {
/// Process-wide on/off switch, seeded from the XAIDB_METRICS env var.
extern std::atomic<bool> g_enabled;
/// Stable per-thread shard index for sharded counters.
size_t ThreadShardIndex();
}  // namespace internal

/// True when instrumentation is recording. Every instrumentation site
/// checks this single relaxed atomic load first and does no other work
/// when it is off — the off state is one predictable branch per site.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips instrumentation at runtime (CLI flags, tests). The initial value
/// comes from the XAIDB_METRICS environment variable: unset, "0", "off",
/// or "false" mean disabled, anything else enables.
void SetEnabled(bool on);

/// Monotonically increasing event count. Increments land on one of a
/// small number of cache-line-padded per-thread shards with a relaxed
/// atomic add (lock-free, no cross-core contention on the hot path);
/// Value() merges the shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[internal::ThreadShardIndex()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value (e.g. pool sizes, budgets).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Fixed-bucket histogram with power-of-two bucket upper bounds
/// (1, 2, 4, ... plus a final overflow bucket). Observations are two
/// relaxed atomic adds; quantiles are estimated by linear interpolation
/// within the containing bucket, so estimates carry at most one bucket
/// (2x) of resolution error. Intended unit for latencies: microseconds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  // 2^38 us ~ 76 hours, then +inf.

  void Observe(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS add: sum is diagnostic, exactness under contention is
    // not required beyond not losing updates.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of bucket i (the last bucket reuses the previous bound;
  /// it is unbounded in reality).
  static double BucketBound(size_t i) {
    return static_cast<double>(1ULL << (i < kNumBuckets - 1 ? i
                                                            : kNumBuckets - 2));
  }

  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> out(kNumBuckets);
    for (size_t i = 0; i < kNumBuckets; ++i)
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
  }

  /// Quantile estimate for q in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  /// Quantile estimate over an explicit bucket-count vector (the same
  /// power-of-two bounds as this histogram's buckets). Linearly
  /// interpolates within the winning bucket — never reports the raw
  /// bucket upper bound unless the target rank sits exactly at it — so
  /// estimates carry at most one bucket of resolution error. Shared by
  /// Quantile() (live counts) and the monitoring sampler, which feeds it
  /// per-window deltas of two snapshots to get windowed percentiles.
  static double QuantileFromCounts(const std::vector<uint64_t>& counts,
                                   double q);

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  static size_t BucketIndex(double value) {
    if (!(value > 1.0)) return 0;  // NaN and <= 1 land in the first bucket.
    if (value >= 9e18) return kNumBuckets - 1;
    const auto v = static_cast<uint64_t>(std::ceil(value));
    const size_t idx = std::bit_width(v - 1);  // ceil(log2(v)) for v >= 2.
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of a histogram, pre-digested for exporters. The raw
/// bucket counts ride along so consumers that need windows (the sampler's
/// per-tick percentiles, SLO bad-event counting, the Prometheus
/// `_bucket{le=...}` series) can difference two snapshots instead of
/// re-reading the live histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<uint64_t> buckets;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide registry of named metrics. Registration (first use of a
/// name) takes a mutex; after that the returned pointer is stable for the
/// process lifetime and all updates are lock-free. Instrumentation sites
/// cache the pointer in a function-local static (see XAI_OBS_COUNT).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot TakeSnapshot() const;

  /// Zeroes every metric (and span stats) but keeps registrations, so
  /// cached pointers stay valid. Used by tests and the CLI between runs.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer that records its scope's wall time (microseconds) into a
/// named histogram on destruction. No-op when metrics are off at entry.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(const char* name)
      : hist_(Enabled() ? MetricsRegistry::Global().GetHistogram(name)
                        : nullptr) {}
  ~ScopedHistogramTimer() {
    if (hist_ != nullptr) hist_->Observe(watch_.ElapsedUs());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* hist_;
  Stopwatch watch_;
};

}  // namespace xai::obs

#endif  // XAIDB_OBS_METRICS_H_
