#include "obs/monitor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/obs.h"

namespace xai::obs {

namespace {

/// Per-window delta of two cumulative histogram snapshots; sizes are the
/// fixed bucket count, but guard anyway (a metric could in principle be
/// re-registered between ticks).
std::vector<uint64_t> BucketDelta(const std::vector<uint64_t>& now,
                                  const std::vector<uint64_t>& prev) {
  std::vector<uint64_t> d(now.size(), 0);
  for (size_t i = 0; i < now.size(); ++i) {
    const uint64_t p = i < prev.size() ? prev[i] : 0;
    d[i] = now[i] >= p ? now[i] - p : 0;
  }
  return d;
}

}  // namespace

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// MetricsSampler

MetricsSampler::MetricsSampler(MonitorOptions opts) : opts_(opts) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(run_mu_);
    while (!stop_requested_) {
      lock.unlock();
      TickNow();
      lock.lock();
      run_cv_.wait_for(lock, opts_.period, [this] { return stop_requested_; });
    }
  });
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::PushLocked(const std::string& name, uint64_t unix_ms,
                                double value) {
  auto it = rings_.find(name);
  if (it == rings_.end())
    it = rings_.emplace(name, SeriesRing(opts_.ring_capacity)).first;
  it->second.Push(SeriesPoint{unix_ms, value});
}

void MetricsSampler::TickNow() {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);

  const auto now_tp = std::chrono::steady_clock::now();
  SampleTick tick;
  tick.unix_ms = UnixNowMs();
  tick.dt_seconds =
      has_prev_ ? std::chrono::duration<double>(now_tp - prev_tp_).count()
                : 0.0;
  const MetricsSnapshot snap = MetricsRegistry::Global().TakeSnapshot();

  {
    std::lock_guard<std::mutex> lock(mu_);
    tick.index = ticks_++;

    // Gauges sample directly from the first tick on.
    for (const auto& [name, v] : snap.gauges) PushLocked(name, tick.unix_ms, v);

    // Counter rates and histogram windows need a previous snapshot and a
    // positive dt.
    if (has_prev_ && tick.dt_seconds > 0.0) {
      for (const auto& [name, v] : snap.counters) {
        const auto pit = prev_.counters.find(name);
        const uint64_t p = pit == prev_.counters.end() ? 0 : pit->second;
        const uint64_t d = v >= p ? v - p : 0;
        PushLocked(name + ".rate", tick.unix_ms,
                   static_cast<double>(d) / tick.dt_seconds);
      }
      for (const auto& [name, h] : snap.histograms) {
        const auto pit = prev_.histograms.find(name);
        std::vector<uint64_t> window =
            pit == prev_.histograms.end()
                ? h.buckets
                : BucketDelta(h.buckets, pit->second.buckets);
        uint64_t n = 0;
        for (uint64_t c : window) n += c;
        PushLocked(name + ".rate", tick.unix_ms,
                   static_cast<double>(n) / tick.dt_seconds);
        if (n > 0) {
          PushLocked(name + ".p50", tick.unix_ms,
                     Histogram::QuantileFromCounts(window, 0.5));
          PushLocked(name + ".p99", tick.unix_ms,
                     Histogram::QuantileFromCounts(window, 0.99));
        }
      }
    }
  }

  for (const TickObserver& fn : observers_) fn(snap, tick);

  prev_ = snap;
  prev_tp_ = now_tp;
  has_prev_ = true;
}

void MetricsSampler::AddTickObserver(TickObserver fn) {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  observers_.push_back(std::move(fn));
}

std::vector<SeriesPoint> MetricsSampler::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = rings_.find(name);
  return it == rings_.end() ? std::vector<SeriesPoint>{} : it->second.Points();
}

std::map<std::string, std::vector<SeriesPoint>> MetricsSampler::SeriesSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::vector<SeriesPoint>> out;
  for (const auto& [name, ring] : rings_) out[name] = ring.Points();
  return out;
}

uint64_t MetricsSampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

// ---------------------------------------------------------------------------
// SloTracker

SloTracker::SloTracker(std::vector<SloObjective> objectives,
                       SloTrackerOptions opts)
    : objectives_(std::move(objectives)), opts_(std::move(opts)) {
  state_.resize(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    state_[i].alerting.assign(opts_.windows.size(), false);
    state_[i].last_burn.assign(opts_.windows.size(), 0.0);
    // Burn-rate gauge names are per (objective, window), so the cached-
    // pointer macros don't fit; register once here and Set() on ticks.
    for (const SloWindow& w : opts_.windows)
      state_[i].burn_gauges.push_back(MetricsRegistry::Global().GetGauge(
          "slo." + objectives_[i].name + ".burn_" + w.label));
  }
}

uint64_t SloTracker::BadCountFromHistogram(const HistogramSnapshot& h,
                                           double threshold_us) {
  // An observation is "bad" when its whole bucket lies above the
  // threshold: bucket i covers (BucketBound(i-1), BucketBound(i)], so the
  // first bad bucket is the one whose lower bound is >= threshold. This
  // undercounts by at most the threshold-containing bucket — conservative
  // in the "don't page on resolution error" direction.
  uint64_t bad = 0;
  for (size_t i = 1; i < h.buckets.size(); ++i)
    if (Histogram::BucketBound(i - 1) >= threshold_us) bad += h.buckets[i];
  return bad;
}

void SloTracker::OnTick(const MetricsSnapshot& snap, const SampleTick& tick) {
  std::lock_guard<std::mutex> lock(mu_);
  steady_s_ += tick.dt_seconds;

  for (size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& obj = objectives_[i];
    PerObjective& st = state_[i];

    Reading r;
    r.steady_s = steady_s_;
    if (!obj.histogram.empty()) {
      const auto it = snap.histograms.find(obj.histogram);
      if (it != snap.histograms.end()) {
        r.total = it->second.count;
        r.bad = BadCountFromHistogram(it->second, obj.threshold_us);
      }
    } else {
      const auto bit = snap.counters.find(obj.bad_counter);
      const auto tit = snap.counters.find(obj.total_counter);
      r.bad = bit == snap.counters.end() ? 0 : bit->second;
      r.total = tit == snap.counters.end() ? 0 : tit->second;
    }
    st.history.push_back(r);

    // Trim history beyond the longest window (keep one extra reading so
    // the full window always has a "before" point).
    double max_span_s = 0.0;
    for (const SloWindow& w : opts_.windows)
      max_span_s = std::max(max_span_s,
                            std::chrono::duration<double>(w.span).count());
    while (st.history.size() > 2 &&
           steady_s_ - st.history[1].steady_s > max_span_s)
      st.history.pop_front();

    for (size_t wi = 0; wi < opts_.windows.size(); ++wi) {
      const SloWindow& w = opts_.windows[wi];
      const double span_s = std::chrono::duration<double>(w.span).count();
      // Oldest reading still inside the window start; the newest reading
      // older than the window start is the baseline when available.
      const Reading* base = &st.history.front();
      for (const Reading& h : st.history) {
        if (steady_s_ - h.steady_s >= span_s)
          base = &h;
        else
          break;
      }
      const uint64_t d_total = r.total >= base->total ? r.total - base->total
                                                      : 0;
      const uint64_t d_bad = r.bad >= base->bad ? r.bad - base->bad : 0;
      double burn = 0.0;
      if (d_total > 0 && obj.budget > 0.0) {
        const double frac =
            static_cast<double>(d_bad) / static_cast<double>(d_total);
        burn = frac / obj.budget;
      }
      st.last_burn[wi] = burn;
      if (Enabled()) st.burn_gauges[wi]->Set(burn);

      const bool over = burn >= w.alert_burn;
      if (over && !st.alerting[wi]) {
        Alert a;
        a.objective = obj.name;
        a.severity = w.severity;
        a.window = w.label;
        a.burn_rate = burn;
        a.unix_ms = tick.unix_ms;
        alerts_.push_back(a);
        ++alert_count_;
        while (alerts_.size() > opts_.alert_capacity) alerts_.pop_front();
        XAI_OBS_COUNT("slo.alerts");
        if (w.severity == "page")
          XAI_OBS_COUNT("slo.alerts.page");
        else
          XAI_OBS_COUNT("slo.alerts.warn");
        TraceInstant("slo.alert", burn);
      }
      st.alerting[wi] = over;
    }
  }
}

std::vector<Alert> SloTracker::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {alerts_.begin(), alerts_.end()};
}

uint64_t SloTracker::alert_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_count_;
}

double SloTracker::BurnRate(const std::string& objective,
                            const std::string& window) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].name != objective) continue;
    for (size_t wi = 0; wi < opts_.windows.size(); ++wi)
      if (opts_.windows[wi].label == window) return state_[i].last_burn[wi];
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Snapshot export

Status WriteSnapshotJson(const MetricsSampler& sampler,
                         const std::string& path, const SloTracker* tracker) {
  if (path.empty())
    return Status::InvalidArgument("obs: empty snapshot output path");

  std::string out = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"schema_version\": %d,\n  \"snapshot_unix_ms\": %" PRIu64
                ",\n  \"period_ms\": %lld,\n  \"ticks\": %" PRIu64 ",\n",
                kMetricsSchemaVersion, UnixNowMs(),
                static_cast<long long>(sampler.options().period.count()),
                sampler.ticks());
  out += buf;

  out += "  \"series\": {";
  bool first = true;
  for (const auto& [name, points] : sampler.SeriesSnapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 ", %.9g]",
                    i == 0 ? "" : ", ", points[i].unix_ms, points[i].value);
      out += buf;
    }
    out += "]";
  }
  out += first ? "}" : "\n  }";

  if (tracker != nullptr) {
    out += ",\n  \"alerts\": [";
    const std::vector<Alert> alerts = tracker->alerts();
    for (size_t i = 0; i < alerts.size(); ++i) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"objective\": \"%s\", \"severity\": \"%s\", "
                    "\"window\": \"%s\", \"burn_rate\": %.6g, "
                    "\"unix_ms\": %" PRIu64 "}",
                    i == 0 ? "" : ",", alerts[i].objective.c_str(),
                    alerts[i].severity.c_str(), alerts[i].window.c_str(),
                    alerts[i].burn_rate, alerts[i].unix_ms);
      out += buf;
    }
    out += alerts.empty() ? "]" : "\n  ]";
  }
  out += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("obs: cannot open snapshot output path: " + path);
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed)
    return Status::IOError("obs: short write to snapshot output path: " + path);
  return Status::OK();
}

}  // namespace xai::obs
