#ifndef XAIDB_OBS_TRACE_H_
#define XAIDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xai::obs {

// ---------------------------------------------------------------------------
// Flight recorder: event-level tracing alongside the aggregate metrics in
// metrics.h/span.h. Each thread owns a fixed-capacity lock-free ring of
// begin/end/instant/counter events (drop-oldest on overflow), so the last
// few thousand events per thread are always available for post-mortem —
// WriteTraceJson() merges and time-sorts them into Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing.
//
// Same off-discipline as the metrics: every emission site is one relaxed
// atomic load and a predictable branch when tracing is off (XAIDB_TRACE
// unset). Event names must be string literals (or otherwise outlive the
// process) — the recorder stores the pointer, never copies.

namespace internal {
/// Process-wide on/off switch, seeded from the XAIDB_TRACE env var.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True when the flight recorder is recording — one relaxed load, checked
/// first at every emission site.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Flips tracing at runtime. Initial value comes from XAIDB_TRACE:
/// unset, "0", "off", or "false" mean disabled, anything else enables.
void SetTraceEnabled(bool on);

/// Request sampling knob: NewTraceId() hands out a real (non-zero) id to
/// one in every `n` calls and 0 (untraced) to the rest. 0 or 1 = trace
/// every request (the default). Seeded from XAIDB_TRACE_SAMPLE.
void SetTraceSampleEveryN(uint64_t n);
uint64_t TraceSampleEveryN();

// ---------------------------------------------------------------------------
// Trace-context propagation. A TraceContext names the request a thread is
// currently working for (trace_id) and the innermost open span (span_id,
// the parent for events emitted now). The context is thread-local;
// ThreadPool::ParallelFor captures the caller's context and installs it in
// every worker chunk, and ExplanationService installs each request's
// context around its sweep — that is what links one request's events
// across threads.

struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = not attributed to any sampled request.
  uint64_t span_id = 0;   ///< Innermost open span; parent for new events.
  bool active() const { return trace_id != 0; }
};

/// New request id: unique, non-zero when tracing is on and the request is
/// sampled in; 0 otherwise (callers thread the 0 through untouched — an
/// untraced request costs nothing downstream).
uint64_t NewTraceId();

/// New span id, unique and non-zero for the process lifetime.
uint64_t NewSpanId();

TraceContext CurrentTraceContext();
void SetCurrentTraceContext(TraceContext ctx);

/// RAII: installs `ctx` as the current thread's context, restores the
/// previous one on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx)
      : prev_(CurrentTraceContext()) {
    SetCurrentTraceContext(ctx);
  }
  ~ScopedTraceContext() { SetCurrentTraceContext(prev_); }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

// ---------------------------------------------------------------------------
// Event emission. All no-ops (one relaxed load) when tracing is off.

/// Raw paired duration events on the calling thread ('B'/'E'), tagged
/// with the current context but NOT maintaining it — callers pair them
/// manually. Prefer ScopedTraceEvent, which allocates the span id,
/// scopes the context, and latches the on/off decision once.
void TraceBegin(const char* name);
void TraceEnd(const char* name);

/// Point-in-time marker ('i') with an optional numeric payload.
void TraceInstant(const char* name, double value = 0.0);

/// Sampled counter track ('C') — renders as a graph in Perfetto.
void TraceCounter(const char* name, double value);

/// Async request span ('b'/'e'): ties a logical operation (one service
/// request) together across threads by id, independent of thread nesting.
void TraceAsyncBegin(const char* name, uint64_t id);
void TraceAsyncEnd(const char* name, uint64_t id);

/// RAII paired B/E event that also maintains the context: the span id it
/// allocates becomes the current context's span_id for the scope, so
/// nested events (and ParallelFor chunks launched inside) parent onto it.
/// The on/off decision is latched at construction — the same rule as
/// ScopedSpan: started-while-off records nothing even if tracing is
/// enabled before the close; started-while-on records a paired B/E even
/// if tracing is disabled before the close.
class ScopedTraceEvent {
 public:
  explicit ScopedTraceEvent(const char* name);
  ~ScopedTraceEvent();
  ScopedTraceEvent(const ScopedTraceEvent&) = delete;
  ScopedTraceEvent& operator=(const ScopedTraceEvent&) = delete;

 private:
  const char* name_;
  bool active_;
  TraceContext prev_;
};

// ---------------------------------------------------------------------------
// Inspection & export.

/// One consistent copy of a recorded event (snapshot readers re-check the
/// slot's sequence number and skip slots caught mid-write).
struct TraceEventView {
  const char* name = nullptr;
  char phase = '?';  ///< 'B','E','i','C','b','e'
  uint32_t tid = 0;  ///< Recorder-assigned small integer, stable per thread.
  uint64_t ts_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  double value = 0.0;  ///< instant/counter payload; async id for 'b'/'e'.
};

/// Merged, time-sorted copy of every thread's surviving (non-overwritten)
/// events. Safe to call while writers are emitting.
std::vector<TraceEventView> TraceSnapshot();

/// Events recorded since the last ResetTrace (including later-overwritten
/// ones) and events lost to ring overflow (drop-oldest).
uint64_t TraceEventCount();
uint64_t TraceDroppedCount();

/// Clears every buffer. Must be called while no thread is emitting
/// (tests, between bench runs) — concurrent writers may lose or corrupt
/// individual events, never crash.
void ResetTrace();

/// Ring capacity (events per thread) for buffers created AFTER this call;
/// existing buffers keep their size. Seeded from XAIDB_TRACE_CAPACITY
/// (default 4096, minimum 8). Intended for tests.
void SetTraceBufferCapacity(size_t capacity);
size_t TraceBufferCapacity();

/// Serializes the merged buffers as Chrome trace-event JSON:
/// {"traceEvents":[{"name","ph","ts","pid","tid","args",...},...]}.
/// ts/dur are microseconds since process start. 'E' events whose 'B' was
/// overwritten by ring wraparound are dropped so the stream always
/// imports cleanly.
std::string TraceToJson();

/// Writes TraceToJson() to `path`; kInvalidArgument on an empty path,
/// kIOError when the file cannot be opened or fully written.
Status WriteTraceJson(const std::string& path);

}  // namespace xai::obs

#endif  // XAIDB_OBS_TRACE_H_
