#ifndef XAIDB_OBS_EXPORT_H_
#define XAIDB_OBS_EXPORT_H_

#include <string>

#include "common/status.h"

namespace xai::obs {

/// Serializes the full metrics state (counters, gauges, histograms with
/// quantile estimates, span aggregates) as a JSON object.
std::string MetricsToJson();

/// Renders the same state as a human-readable aligned table; empty
/// sections are omitted.
std::string MetricsToTable();

/// Writes MetricsToJson() to `path`. Fails with kIOError (never silently
/// drops metrics) when the path cannot be opened or fully written.
Status WriteMetricsJson(const std::string& path);

}  // namespace xai::obs

#endif  // XAIDB_OBS_EXPORT_H_
