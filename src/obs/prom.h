#ifndef XAIDB_OBS_PROM_H_
#define XAIDB_OBS_PROM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"

namespace xai::obs {

class MetricsSampler;

/// Build identity baked in at compile time (CMake injects XAIDB_VERSION /
/// XAIDB_GIT_SHA; "0.0.0-dev" / "unknown" outside a configured build).
const char* BuildVersion();
const char* BuildGitSha();

/// Seconds since this process loaded the obs library — what the
/// xaidb_uptime_seconds gauge in the exposition reports.
double UptimeSeconds();

/// Renders the current registry in Prometheus text exposition format
/// (0.0.4): counters as `xaidb_<name>_total`, gauges as `xaidb_<name>`,
/// histograms as full `_bucket{le=...}` / `_sum` / `_count` families with
/// the registry's power-of-two bounds. Metric names are sanitized (every
/// character outside [a-zA-Z0-9_:] becomes '_'). An empty registry renders
/// to an empty (but valid) exposition.
std::string MetricsToProm();

/// Minimal blocking HTTP endpoint for scraping: one accept loop on its own
/// thread, one request per connection, Connection: close. Routes:
///   /metrics (or /)  → MetricsToProm()            text/plain
///   /json            → MetricsToJson()            application/json
///   /series          → sampler time series JSON   application/json
///                      (404 when constructed without a sampler)
///   /healthz         → 200 + liveness JSON        application/json
///                      (uptime, queue depth, serving model version)
/// Deliberately not a real HTTP server — it exists so `curl` and a
/// Prometheus scrape_config can read a serving process, nothing more.
class MonitorServer {
 public:
  /// `sampler` may be null: /metrics and /json still serve.
  explicit MonitorServer(const MetricsSampler* sampler = nullptr);
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts
  /// the accept thread. kUnavailable when the socket cannot be created or
  /// bound.
  Status Start(int port);

  /// Closes the listener and joins the accept thread (idempotent; the
  /// destructor calls it).
  void Stop();

  /// Bound port, or -1 before a successful Start().
  int port() const { return port_.load(std::memory_order_relaxed); }

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  std::string Respond(const std::string& path) const;

  const MetricsSampler* sampler_;
  std::atomic<int> port_{-1};
  /// Atomic: Stop() closes and resets it while AcceptLoop reads it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> served_{0};
  std::thread thread_;
};

/// Blocking HTTP GET of `path` from 127.0.0.1:`port`; returns the response
/// body. Lets a headless run (CI, bench) scrape its own MonitorServer and
/// persist the exposition as an artifact without an external client.
Result<std::string> HttpGetLocal(int port, const std::string& path);

}  // namespace xai::obs

#endif  // XAIDB_OBS_PROM_H_
