#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace xai::obs {

namespace internal {
namespace {

bool EnvFlag(const char* var) {
  const char* e = std::getenv(var);
  if (e == nullptr) return false;
  const std::string v(e);
  return !(v.empty() || v == "0" || v == "off" || v == "OFF" || v == "false" ||
           v == "FALSE");
}

uint64_t EnvU64(const char* var, uint64_t def) {
  const char* e = std::getenv(var);
  if (e == nullptr || *e == '\0') return def;
  const long long v = std::strtoll(e, nullptr, 10);
  return v > 0 ? static_cast<uint64_t>(v) : def;
}

}  // namespace

std::atomic<bool> g_trace_enabled{EnvFlag("XAIDB_TRACE")};

}  // namespace internal

namespace {

std::atomic<uint64_t> g_sample_every{
    internal::EnvU64("XAIDB_TRACE_SAMPLE", 1)};
std::atomic<uint64_t> g_next_trace_id{0};
std::atomic<uint64_t> g_next_span_id{0};
std::atomic<uint64_t> g_capacity{
    std::max<uint64_t>(8, internal::EnvU64("XAIDB_TRACE_CAPACITY", 4096))};

/// Common epoch for every buffer: timestamps are nanoseconds since the
/// first use of the recorder, so merged buffers sort on one axis.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

/// One event slot. Every field is a relaxed atomic: the per-slot seqlock
/// (odd while the owning thread rewrites the slot, 2*(index+1) when
/// generation `index` is stable) gives snapshot readers a consistency
/// check, and all-atomic fields keep concurrent reader/writer access
/// data-race-free (TSan-clean) even when the check fails and the copy is
/// discarded. 64 bytes = one cache line.
struct alignas(64) Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> name{0};  // const char* literal, stored as bits
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_span{0};
  std::atomic<uint64_t> value_bits{0};  // double payload / async id
  std::atomic<uint64_t> meta{0};        // phase char
};

/// Single-producer ring: only the owning thread writes, any thread may
/// snapshot. head counts events ever emitted; slot index is head % cap,
/// so the ring keeps the newest `cap` events (drop-oldest).
class TraceBuffer {
 public:
  TraceBuffer(uint32_t tid, size_t capacity)
      : tid_(tid), cap_(capacity), slots_(capacity) {}

  void Emit(char phase, const char* name, uint64_t ts, TraceContext ctx,
            uint64_t span_id, uint64_t value_bits) {
    const uint64_t idx = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[idx % cap_];
    s.seq.store(2 * idx + 1, std::memory_order_release);  // odd: in flight
    s.name.store(reinterpret_cast<uintptr_t>(name), std::memory_order_relaxed);
    s.ts_ns.store(ts, std::memory_order_relaxed);
    s.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    s.span_id.store(span_id, std::memory_order_relaxed);
    s.parent_span.store(ctx.span_id, std::memory_order_relaxed);
    s.value_bits.store(value_bits, std::memory_order_relaxed);
    s.meta.store(static_cast<uint64_t>(phase), std::memory_order_relaxed);
    s.seq.store(2 * (idx + 1), std::memory_order_release);  // even: stable
    head_.store(idx + 1, std::memory_order_release);
  }

  /// Appends every consistent surviving event to `out`.
  void Snapshot(std::vector<TraceEventView>* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t lo = head > cap_ ? head - cap_ : 0;
    for (uint64_t idx = lo; idx < head; ++idx) {
      const Slot& s = slots_[idx % cap_];
      const uint64_t want = 2 * (idx + 1);
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      TraceEventView e;
      e.name = reinterpret_cast<const char*>(
          static_cast<uintptr_t>(s.name.load(std::memory_order_relaxed)));
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.trace_id = s.trace_id.load(std::memory_order_relaxed);
      e.span_id = s.span_id.load(std::memory_order_relaxed);
      e.parent_span = s.parent_span.load(std::memory_order_relaxed);
      e.value = std::bit_cast<double>(
          s.value_bits.load(std::memory_order_relaxed));
      e.phase =
          static_cast<char>(s.meta.load(std::memory_order_relaxed));
      e.tid = tid_;
      // Re-check: the slot may have been reused for a newer generation
      // while we copied; drop the (inconsistent) copy if so.
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      out->push_back(e);
    }
  }

  uint64_t emitted() const { return head_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    const uint64_t h = emitted();
    return h > cap_ ? h - cap_ : 0;
  }

  /// Quiescent-only: invalidates every slot, then rewinds.
  void Reset() {
    for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_release);
  }

 private:
  const uint32_t tid_;
  const size_t cap_;
  std::atomic<uint64_t> head_{0};
  std::vector<Slot> slots_;
};

std::mutex& BufferMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// Owns every buffer for the process lifetime (buffers of exited threads
/// stay readable — flight-recorder semantics). Bounded by peak thread
/// count, which the fixed-size pool keeps small.
std::vector<std::unique_ptr<TraceBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::unique_ptr<TraceBuffer>>();
  return *buffers;
}

TraceBuffer* ThisThreadBuffer() {
  thread_local TraceBuffer* buffer = [] {
    std::lock_guard<std::mutex> lock(BufferMutex());
    auto& all = Buffers();
    all.push_back(std::make_unique<TraceBuffer>(
        static_cast<uint32_t>(all.size() + 1),
        g_capacity.load(std::memory_order_relaxed)));
    return all.back().get();
  }();
  return buffer;
}

thread_local TraceContext t_context;

void Emit(char phase, const char* name, uint64_t span_id,
          uint64_t value_bits) {
  ThisThreadBuffer()->Emit(phase, name, NowNs(), t_context, span_id,
                           value_bits);
}

}  // namespace

void SetTraceEnabled(bool on) {
  if (on) TraceEpoch();  // pin the epoch before the first event
  internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void SetTraceSampleEveryN(uint64_t n) {
  g_sample_every.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

uint64_t TraceSampleEveryN() {
  return g_sample_every.load(std::memory_order_relaxed);
}

uint64_t NewTraceId() {
  if (!TraceEnabled()) return 0;
  const uint64_t n = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  const uint64_t every = g_sample_every.load(std::memory_order_relaxed);
  return (every <= 1 || n % every == 0) ? n + 1 : 0;
}

uint64_t NewSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceContext CurrentTraceContext() { return t_context; }

void SetCurrentTraceContext(TraceContext ctx) { t_context = ctx; }

void TraceBegin(const char* name) {
  if (!TraceEnabled()) return;
  Emit('B', name, NewSpanId(), 0);
}

void TraceEnd(const char* name) {
  if (!TraceEnabled()) return;
  Emit('E', name, t_context.span_id, 0);
}

void TraceInstant(const char* name, double value) {
  if (!TraceEnabled()) return;
  Emit('i', name, NewSpanId(), std::bit_cast<uint64_t>(value));
}

void TraceCounter(const char* name, double value) {
  if (!TraceEnabled()) return;
  Emit('C', name, 0, std::bit_cast<uint64_t>(value));
}

void TraceAsyncBegin(const char* name, uint64_t id) {
  if (!TraceEnabled()) return;
  Emit('b', name, 0, std::bit_cast<uint64_t>(static_cast<double>(id)));
}

void TraceAsyncEnd(const char* name, uint64_t id) {
  if (!TraceEnabled()) return;
  Emit('e', name, 0, std::bit_cast<uint64_t>(static_cast<double>(id)));
}

ScopedTraceEvent::ScopedTraceEvent(const char* name)
    : name_(name), active_(TraceEnabled()) {
  if (!active_) return;
  prev_ = t_context;
  const uint64_t span = NewSpanId();
  Emit('B', name_, span, 0);
  t_context.span_id = span;
}

ScopedTraceEvent::~ScopedTraceEvent() {
  if (!active_) return;
  // Latched: emit the matching 'E' even if tracing was disabled mid-scope
  // so the stream never carries an unclosed-begin from a toggle.
  ThisThreadBuffer()->Emit('E', name_, NowNs(), prev_, t_context.span_id, 0);
  t_context = prev_;
}

std::vector<TraceEventView> TraceSnapshot() {
  std::vector<TraceEventView> out;
  {
    std::lock_guard<std::mutex> lock(BufferMutex());
    for (const auto& b : Buffers()) b->Snapshot(&out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEventView& a, const TraceEventView& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  return out;
}

uint64_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(BufferMutex());
  uint64_t total = 0;
  for (const auto& b : Buffers()) total += b->emitted();
  return total;
}

uint64_t TraceDroppedCount() {
  std::lock_guard<std::mutex> lock(BufferMutex());
  uint64_t total = 0;
  for (const auto& b : Buffers()) total += b->dropped();
  return total;
}

void ResetTrace() {
  std::lock_guard<std::mutex> lock(BufferMutex());
  for (auto& b : Buffers()) b->Reset();
}

void SetTraceBufferCapacity(size_t capacity) {
  g_capacity.store(std::max<size_t>(8, capacity), std::memory_order_relaxed);
}

size_t TraceBufferCapacity() {
  return g_capacity.load(std::memory_order_relaxed);
}

namespace {

/// Minimal JSON string escaping (names are library literals, but the
/// exporter must emit valid JSON no matter what).
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

std::string TraceToJson() {
  const std::vector<TraceEventView> events = TraceSnapshot();

  // Ring wraparound can orphan an 'E' whose 'B' was overwritten; an
  // orphaned 'E' breaks Chrome-trace importers, so track per-thread B/E
  // depth in time order and drop any 'E' that would close nothing.
  std::unordered_map<uint32_t, int> depth;

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Appendf(&out, "\"dropped_events\":%llu},\n\"traceEvents\":[\n",
          static_cast<unsigned long long>(TraceDroppedCount()));
  Appendf(&out,
          " {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"xaidb\"}}");

  for (const TraceEventView& e : events) {
    if (e.phase == 'B') {
      ++depth[e.tid];
    } else if (e.phase == 'E') {
      if (depth[e.tid] <= 0) continue;  // orphaned by drop-oldest
      --depth[e.tid];
    }
    out += ",\n {\"name\":\"";
    AppendEscaped(&out, e.name);
    Appendf(&out, "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%u",
            e.phase, static_cast<double>(e.ts_ns) * 1e-3, e.tid);
    if (e.phase == 'b' || e.phase == 'e')
      Appendf(&out, ",\"cat\":\"request\",\"id\":\"0x%llx\"",
              static_cast<unsigned long long>(e.value));
    out += ",\"args\":{";
    if (e.phase == 'i' || e.phase == 'C')
      Appendf(&out, "\"value\":%.9g,", e.value);
    Appendf(&out, "\"trace_id\":%llu,\"span\":%llu,\"parent\":%llu}",
            static_cast<unsigned long long>(e.trace_id),
            static_cast<unsigned long long>(e.span_id),
            static_cast<unsigned long long>(e.parent_span));
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += "}";
  }

  // Close any still-open 'B' (a scope alive at export time) at the last
  // timestamp so importers see balanced durations.
  const uint64_t last_ts = events.empty() ? 0 : events.back().ts_ns;
  for (const auto& [tid, d] : depth)
    for (int i = 0; i < d; ++i)
      Appendf(&out,
              ",\n {\"name\":\"(open at export)\",\"ph\":\"E\",\"ts\":%.3f,"
              "\"pid\":1,\"tid\":%u,\"args\":{}}",
              static_cast<double>(last_ts) * 1e-3, tid);

  out += "\n]}\n";
  return out;
}

Status WriteTraceJson(const std::string& path) {
  if (path.empty())
    return Status::InvalidArgument("obs: empty trace output path");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status::IOError("obs: cannot open trace output path: " + path);
  const std::string json = TraceToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed)
    return Status::IOError("obs: short write to trace output path: " + path);
  return Status::OK();
}

}  // namespace xai::obs
