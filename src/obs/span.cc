#include "obs/span.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace xai::obs {
namespace {

/// Per-path aggregates. Entries are created under a mutex once per
/// (thread, path) thanks to a thread-local pointer cache, then updated
/// with relaxed atomics only — span exit is lock-free in steady state.
struct SpanStats {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> max_ns{0};
};

std::mutex& SpanMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<std::string, std::unique_ptr<SpanStats>>& SpanMap() {
  static auto* spans = new std::map<std::string, std::unique_ptr<SpanStats>>();
  return *spans;
}

/// Thread-local current span path, e.g. "kernel_shap/sample".
std::string& TlsPath() {
  thread_local std::string path;
  return path;
}

SpanStats* StatsFor(const std::string& path) {
  thread_local std::unordered_map<std::string, SpanStats*> cache;
  auto it = cache.find(path);
  if (it != cache.end()) return it->second;
  SpanStats* stats;
  {
    std::lock_guard<std::mutex> lock(SpanMutex());
    auto& slot = SpanMap()[path];
    if (!slot) slot = std::make_unique<SpanStats>();
    stats = slot.get();
  }
  cache.emplace(path, stats);
  return stats;
}

void RecordSpan(const std::string& path, uint64_t ns) {
  SpanStats* stats = StatsFor(path);
  stats->count.fetch_add(1, std::memory_order_relaxed);
  stats->total_ns.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = stats->max_ns.load(std::memory_order_relaxed);
  while (prev < ns && !stats->max_ns.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) : trace_(name), active_(Enabled()) {
  // Both the metrics and the flight-recorder decision latch at
  // construction (the trace_ member latches its own): toggling mid-span
  // neither starts a half-recorded span nor truncates one already
  // recording, and the path stack stays balanced in every interleaving.
  if (!active_) return;
  std::string& path = TlsPath();
  prev_len_ = path.size();
  if (!path.empty()) path += '/';
  path += name;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto now = std::chrono::steady_clock::now();
  const auto ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
          .count());
  std::string& path = TlsPath();
  RecordSpan(path, ns);
  path.resize(prev_len_);
}

std::map<std::string, SpanSnapshotEntry> SpanSnapshot() {
  std::map<std::string, SpanSnapshotEntry> out;
  std::lock_guard<std::mutex> lock(SpanMutex());
  for (const auto& [path, stats] : SpanMap()) {
    SpanSnapshotEntry e;
    e.count = stats->count.load(std::memory_order_relaxed);
    e.total_ms =
        static_cast<double>(stats->total_ns.load(std::memory_order_relaxed)) *
        1e-6;
    e.mean_ms = e.count > 0 ? e.total_ms / static_cast<double>(e.count) : 0.0;
    e.max_ms =
        static_cast<double>(stats->max_ns.load(std::memory_order_relaxed)) *
        1e-6;
    for (char c : path)
      if (c == '/') ++e.depth;
    out[path] = e;
  }
  return out;
}

void ResetSpans() {
  std::lock_guard<std::mutex> lock(SpanMutex());
  for (auto& [path, stats] : SpanMap()) {
    stats->count.store(0, std::memory_order_relaxed);
    stats->total_ns.store(0, std::memory_order_relaxed);
    stats->max_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace xai::obs
