#include "obs/metrics.h"

#include <cstdlib>

#include "obs/span.h"
#include "obs/trace.h"

namespace xai::obs {
namespace internal {
namespace {

bool EnvEnabled() {
  const char* e = std::getenv("XAIDB_METRICS");
  if (e == nullptr) return false;
  const std::string v(e);
  return !(v.empty() || v == "0" || v == "off" || v == "OFF" ||
           v == "false" || v == "FALSE");
}

}  // namespace

std::atomic<bool> g_enabled{EnvEnabled()};

size_t ThreadShardIndex() {
  // Round-robin shard assignment at first use per thread: spreads
  // concurrent writers across cache lines without hashing thread ids.
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % 16;
  return shard;
}

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  return QuantileFromCounts(BucketCounts(), q);
}

double Histogram::QuantileFromCounts(const std::vector<uint64_t>& counts,
                                     double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : BucketBound(i - 1);
      const double hi = BucketBound(i);
      const double frac =
          (target - cum) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return BucketBound(counts.size() - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.buckets = h->BucketCounts();
    // Quantiles come from the same bucket copy the snapshot carries, so
    // count/percentiles/buckets are mutually consistent even while
    // writers keep observing.
    hs.count = 0;
    for (uint64_t c : hs.buckets) hs.count += c;
    hs.sum = h->sum();
    hs.p50 = Histogram::QuantileFromCounts(hs.buckets, 0.5);
    hs.p90 = Histogram::QuantileFromCounts(hs.buckets, 0.9);
    hs.p99 = Histogram::QuantileFromCounts(hs.buckets, 0.99);
    snap.histograms[name] = hs;
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->Reset();
    for (auto& [name, g] : gauges_) g->Reset();
    for (auto& [name, h] : histograms_) h->Reset();
  }
  ResetSpans();
  // The flight recorder resets with the aggregates so "reset between
  // runs" means one thing across the whole obs subsystem.
  ResetTrace();
}

}  // namespace xai::obs
