#ifndef XAIDB_OBS_MONITOR_H_
#define XAIDB_OBS_MONITOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace xai::obs {

// ---------------------------------------------------------------------------
// Continuous monitoring on top of the point-in-time registry: a sampler
// thread turns the registry into fixed-capacity time series (counters as
// rates, gauges as values, histograms as per-window percentiles), and an
// SLO tracker evaluates multi-window burn rates over those same snapshots
// and fires typed alerts. The sampler is the single scrape point — the
// Prometheus endpoint (prom.h), the snapshot file export, and every alert
// consumer all read what it sampled, so one tick cadence bounds the whole
// monitoring overhead.

/// One sampled point of one time series.
struct SeriesPoint {
  uint64_t unix_ms = 0;  ///< Wall-clock sample time (unix epoch ms).
  double value = 0.0;
};

/// Fixed-capacity ring of points: pushing past capacity drops the oldest
/// point, so a series always holds the most recent window of samples.
class SeriesRing {
 public:
  explicit SeriesRing(size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  void Push(const SeriesPoint& p) {
    buf_[(head_ + size_) % buf_.size()] = p;
    if (size_ < buf_.size())
      ++size_;
    else
      head_ = (head_ + 1) % buf_.size();
  }

  /// Oldest → newest copy of the surviving points.
  std::vector<SeriesPoint> Points() const {
    std::vector<SeriesPoint> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i)
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }

 private:
  std::vector<SeriesPoint> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

struct MonitorOptions {
  /// Sampler period. Each tick is one registry snapshot plus O(series)
  /// ring pushes — cheap enough for sub-second periods.
  std::chrono::milliseconds period{1000};
  /// Points retained per series (ring capacity).
  size_t ring_capacity = 512;
};

/// Context handed to tick observers alongside the snapshot.
struct SampleTick {
  uint64_t unix_ms = 0;      ///< Wall-clock time of this tick.
  double dt_seconds = 0.0;   ///< Steady-clock time since the previous tick.
  uint64_t index = 0;        ///< 0-based tick number.
};

/// Background thread that snapshots the global MetricsRegistry every
/// `period` into per-metric SeriesRings:
///   counter  "c"  → series "c.rate"  (per-second delta)
///   gauge    "g"  → series "g"       (sampled value)
///   histogram "h" → series "h.p50" / "h.p99" (percentiles of the
///                   observations that landed in the tick window, linearly
///                   interpolated within the winning bucket) and "h.rate"
///                   (observations per second).
/// Derived series need a previous snapshot, so they start at the second
/// tick; gauges are recorded from the first.
///
/// TickNow() runs one tick synchronously — tests drive the sampler
/// deterministically with it, and the background thread calls the same
/// path. Observers (SLO tracker, drift consoles) run inside the tick,
/// serialized, after the rings are updated.
class MetricsSampler {
 public:
  using TickObserver =
      std::function<void(const MetricsSnapshot&, const SampleTick&)>;

  explicit MetricsSampler(MonitorOptions opts = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Spawns the sampling thread (idempotent).
  void Start();
  /// Stops and joins it (idempotent; the destructor calls this).
  void Stop();

  /// One synchronous tick: snapshot → rings → observers.
  void TickNow();

  /// Registers an observer invoked on every tick, after the rings are
  /// updated. Not safe to call concurrently with ticks — register before
  /// Start() (tests that drive TickNow() by hand may register any time
  /// between ticks).
  void AddTickObserver(TickObserver fn);

  /// Copy of one series, oldest → newest; empty when unknown.
  std::vector<SeriesPoint> Series(const std::string& name) const;
  /// Copy of every series.
  std::map<std::string, std::vector<SeriesPoint>> SeriesSnapshot() const;

  uint64_t ticks() const;
  const MonitorOptions& options() const { return opts_; }

 private:
  void PushLocked(const std::string& name, uint64_t unix_ms, double value);

  const MonitorOptions opts_;

  /// Serializes whole ticks (background thread vs. TickNow in tests).
  std::mutex tick_mu_;
  /// Guards rings_ and tick counter against concurrent readers.
  mutable std::mutex mu_;
  std::map<std::string, SeriesRing> rings_;
  uint64_t ticks_ = 0;

  // Tick-thread-only state (guarded by tick_mu_).
  MetricsSnapshot prev_;
  bool has_prev_ = false;
  std::chrono::steady_clock::time_point prev_tp_;
  std::vector<TickObserver> observers_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// SLO burn-rate alerting.

/// A typed alert record — fired by the SloTracker when a burn-rate
/// threshold trips and by the attribution-drift watchdog (eval/drift.h)
/// when explanation mass shifts. Alerts also surface as `slo.*` /
/// `drift.*` registry metrics and flight-recorder instants, so they are
/// visible in every existing exporter.
struct Alert {
  std::string objective;  ///< Objective (or watchdog) name.
  std::string severity;   ///< "page" (fast burn) or "warn" (slow burn).
  std::string window;     ///< Evaluation window label, e.g. "5s".
  double burn_rate = 0.0;
  uint64_t unix_ms = 0;
};

/// One service-level objective: a bound on the fraction of "bad" events.
/// Two shapes share the struct:
///   latency SLO:  `histogram` + `threshold_us` — an observation above the
///                 threshold is bad; the histogram count is the total.
///   ratio SLO:    `bad_counter` / `total_counter` — e.g. deadline misses
///                 over submissions, or (future) shed over offered.
/// `budget` is the allowed bad fraction (the error budget). Burn rate is
/// the observed bad fraction in a window divided by the budget: 1.0 means
/// spending exactly the budget, >1 means burning it faster.
struct SloObjective {
  std::string name;
  std::string histogram;
  double threshold_us = 0.0;
  std::string bad_counter;
  std::string total_counter;
  double budget = 0.01;
};

/// One evaluation window with its alert threshold (multi-window,
/// multi-burn-rate alerting: short window + high burn for pages, long
/// window + low burn for warnings).
struct SloWindow {
  std::string label;
  std::chrono::milliseconds span{5000};
  double alert_burn = 10.0;
  std::string severity = "page";
};

struct SloTrackerOptions {
  std::vector<SloWindow> windows = {
      {"5s", std::chrono::milliseconds(5000), 10.0, "page"},
      {"60s", std::chrono::milliseconds(60000), 2.0, "warn"},
  };
  /// Retained alert records (ring; oldest dropped).
  size_t alert_capacity = 256;
};

/// Evaluates declared objectives against sampler ticks. Keeps a short
/// history of cumulative (bad, total) readings per objective; each tick,
/// each window's burn rate is the bad fraction accumulated over that
/// window divided by the objective's budget. Alerts are edge-triggered:
/// one Alert per excursion above a window's alert_burn, not one per tick.
/// Zero traffic in a window is burn rate 0 — no division, no alert.
///
/// Exports, per objective o and window w: gauge "slo.<o>.burn_<w>",
/// counter "slo.alerts" and counter "slo.alerts.<severity>", plus a
/// flight-recorder instant "slo.alert" carrying the burn rate.
class SloTracker {
 public:
  explicit SloTracker(std::vector<SloObjective> objectives,
                      SloTrackerOptions opts = {});

  /// Evaluates one tick; hook this up via sampler.AddTickObserver(
  /// tracker.Observer()).
  void OnTick(const MetricsSnapshot& snap, const SampleTick& tick);
  MetricsSampler::TickObserver Observer() {
    return [this](const MetricsSnapshot& s, const SampleTick& t) {
      OnTick(s, t);
    };
  }

  /// Retained alerts, oldest → newest.
  std::vector<Alert> alerts() const;
  uint64_t alert_count() const;

  /// Last computed burn rate for (objective, window label); 0 if never
  /// evaluated.
  double BurnRate(const std::string& objective,
                  const std::string& window) const;

  const std::vector<SloObjective>& objectives() const { return objectives_; }

 private:
  struct Reading {
    double steady_s = 0.0;  ///< Tick steady-clock offset, seconds.
    uint64_t bad = 0;
    uint64_t total = 0;
  };
  struct PerObjective {
    std::deque<Reading> history;
    std::vector<bool> alerting;  ///< Per-window edge-trigger state.
    std::vector<Gauge*> burn_gauges;
    std::vector<double> last_burn;
  };

  static uint64_t BadCountFromHistogram(const HistogramSnapshot& h,
                                        double threshold_us);

  const std::vector<SloObjective> objectives_;
  const SloTrackerOptions opts_;

  mutable std::mutex mu_;
  std::vector<PerObjective> state_;
  std::deque<Alert> alerts_;
  uint64_t alert_count_ = 0;
  double steady_s_ = 0.0;  ///< Accumulated dt (monotonic tick clock).
};

// ---------------------------------------------------------------------------
// Snapshot export for headless runs.

/// Writes the sampler's full time-series state as JSON:
///   {"schema_version": .., "snapshot_unix_ms": .., "period_ms": ..,
///    "ticks": .., "series": {"name": [[unix_ms, value], ...], ...}}
/// plus, when `tracker` is non-null, an "alerts" array. The same
/// self-describing stamp (schema_version / snapshot_unix_ms) appears in
/// MetricsToJson(), so scraped and sampled snapshots diff cleanly.
Status WriteSnapshotJson(const MetricsSampler& sampler,
                         const std::string& path,
                         const SloTracker* tracker = nullptr);

/// Current wall-clock time in unix epoch milliseconds — the timestamp
/// every monitoring export stamps.
uint64_t UnixNowMs();

/// Exporter schema version stamped into MetricsToJson() and
/// WriteSnapshotJson(). Bump when the JSON shape changes.
inline constexpr int kMetricsSchemaVersion = 2;

}  // namespace xai::obs

#endif  // XAIDB_OBS_MONITOR_H_
