#ifndef XAIDB_OBS_AUDIT_H_
#define XAIDB_OBS_AUDIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xai::obs {

/// One (feature index, attribution value) pair of a logged explanation's
/// top-k. Values are full doubles so a replay can demand bit-identity.
struct AuditTopAttr {
  uint32_t index = 0;
  double value = 0.0;
};

/// Everything the audit ledger durably records about one served
/// explanation: enough provenance to answer "what did we serve, against
/// which model version, how long did it take" — and enough payload (the
/// full request row plus the top-k attribution values) to deterministically
/// re-execute the request later and diff the result against what was
/// actually served.
struct AuditRecord {
  /// Wall-clock serve time; AuditLog::Append stamps it when left 0.
  uint64_t unix_ms = 0;
  /// Flight-recorder id linking the record to its trace, 0 when off.
  uint64_t trace_id = 0;
  /// FNV-1a over the request row's raw bytes (cheap equality probe).
  uint64_t row_hash = 0;
  /// ModelHandle::fingerprint() of the version that served the request.
  uint64_t model_fingerprint = 0;
  /// The serving layer's full coalescing key (explainer-config fingerprint
  /// with the model fingerprint and arity mixed in): equal keys guarantee
  /// bit-identical attributions for equal rows.
  uint64_t config_fingerprint = 0;
  std::string model_name;  ///< Registry name ("gbdt"); truncated to 255.
  int32_t model_version = 0;
  uint8_t kind = 0;   ///< ExplainerKind as a byte.
  int32_t budget = 0; ///< Request budget override (0 = config default).
  float queue_ms = 0.0f;
  float sweep_ms = 0.0f;
  float total_ms = 0.0f;
  uint32_t batch_size = 0;  ///< Requests served by the same sweep.
  /// The full request row — what a replay re-executes.
  std::vector<double> instance;
  double base_value = 0.0;
  double prediction = 0.0;
  /// Top-k attribution values by |value| (ties broken by lower index).
  std::vector<AuditTopAttr> top_attr;
};

/// Selects the k largest-|value| attributions, deterministically (ties by
/// ascending index), in descending |value| order.
std::vector<AuditTopAttr> TopKAttributions(const std::vector<double>& values,
                                           size_t k);

/// Allocation-free variant for the serving hot path: writes the top-k into
/// *out (clear()ed first, capacity reused). Identical selection and order.
void TopKAttributionsInto(const std::vector<double>& values, size_t k,
                          std::vector<AuditTopAttr>* out);

/// IEEE CRC-32 (reflected, poly 0xEDB88320) over `n` bytes — the per-record
/// checksum the ledger frames carry. Exposed for tests.
uint32_t Crc32(const void* data, size_t n);

struct AuditLogOptions {
  /// Rotate to a new segment file once the current one reaches this size.
  size_t segment_bytes = 4u << 20;
  /// Bounded SPSC ring capacity between Append and the drain thread.
  /// Appends beyond it are dropped (and counted) — never blocked.
  size_t queue_capacity = 4096;
  /// fsync the current segment after this many bytes written since the
  /// last sync (0 = only on rotation, Flush and close).
  size_t fsync_every_bytes = 1u << 20;
  /// Attribution values logged per record (top-k by |value|).
  size_t top_k = 8;
  /// When true the drain thread starts idle and writes nothing until
  /// ResumeDrain() — lets tests fill (and overflow) the ring
  /// deterministically.
  bool start_paused = false;
};

/// Monotonic counters, readable at any time from any thread.
struct AuditLogStats {
  uint64_t appended = 0;   ///< Records accepted into the ring.
  uint64_t written = 0;    ///< Records durably framed into a segment.
  uint64_t dropped = 0;    ///< Appends rejected by a full ring.
  uint64_t bytes = 0;      ///< Segment bytes written (frames + headers).
  uint64_t fsyncs = 0;
  uint64_t segments = 0;   ///< Segment files this log has written into.
  uint64_t truncated_bytes = 0;  ///< Torn tail removed at open.
};

/// Crash-safe append-only ledger of served explanations.
///
/// On disk: a directory holding size-rotated segment files plus a MANIFEST
/// listing them in order. Every record is framed as
///   [magic u32][payload_len u32][crc32(payload) u32][payload]
/// so a reader can verify each record independently; a crash mid-write
/// leaves at most one torn frame at the tail of the last segment, which
/// Open() truncates away before appending resumes — records are either
/// durable and verifiable or gone, never silently corrupt.
///
/// Threading: Append is wait-free for its (single) producer — the service
/// dispatcher thread — pushing into a bounded SPSC ring; a drain thread
/// owns all file I/O (serialize, rotate, fsync). A full ring drops the
/// record and counts it rather than ever stalling the serving hot path.
///
/// Metrics (when obs is enabled): audit.records / audit.bytes /
/// audit.dropped / audit.fsyncs counters and the audit.lag_records gauge
/// (ring occupancy — how far durability trails serving).
class AuditLog {
 public:
  /// Opens `dir` for appending, creating it (and a fresh MANIFEST) if
  /// absent. An existing ledger is recovered first: the last segment is
  /// scanned and any torn tail truncated (stats().truncated_bytes).
  static Result<std::unique_ptr<AuditLog>> Open(const std::string& dir,
                                                AuditLogOptions opts = {});

  /// Drains, fsyncs and closes. Every record accepted before destruction
  /// is durable afterwards.
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Hands the record to the drain thread. Never blocks: a full ring drops
  /// the record and increments stats().dropped. Single producer at a time.
  /// Stamps rec.unix_ms with wall-clock now when left 0. Convenience
  /// wrapper over StageAppend/CommitAppend (this one moves buffers into
  /// the slot; the staged pair reuses them).
  void Append(AuditRecord rec);

  /// Zero-allocation append, for the serving hot path: returns the next
  /// ring slot with scalars zeroed and vectors clear()ed but their heap
  /// buffers kept — filling the slot by assignment reuses that capacity,
  /// so a warmed-up producer appends without touching the allocator (and
  /// without a single syscall: the drain thread polls, it is never
  /// notified from here). Returns nullptr (and counts the drop) when the
  /// ring is full. Must be paired with CommitAppend before the next
  /// Stage/Append call; single producer at a time.
  AuditRecord* StageAppend();

  /// Publishes the slot returned by the matching StageAppend (stamping
  /// unix_ms with wall-clock now when still 0).
  void CommitAppend();

  /// Blocks until everything appended so far is written and fsynced.
  void Flush();

  /// Starts draining when constructed with start_paused (tests only).
  void ResumeDrain();

  AuditLogStats stats() const;
  const std::string& dir() const { return dir_; }
  const AuditLogOptions& options() const { return opts_; }

 private:
  AuditLog(std::string dir, AuditLogOptions opts);

  Status Recover();          // parse manifest, truncate torn tail
  Status OpenSegment(uint64_t id, bool fresh);
  Status Rotate();
  void DoFsync();
  void WriteRecord(const AuditRecord& rec);
  void RunDrain();
  bool RingEmpty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::string dir_;
  AuditLogOptions opts_;

  // SPSC ring: producer writes slots_[head % cap] then publishes head+1;
  // the drain thread consumes from tail. Slot reuse is safe because the
  // producer never writes a slot whose index is within (tail, head].
  std::vector<AuditRecord> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};

  // Drain-thread coordination. The producer never takes mu_ on Append (it
  // only notifies, and a missed wakeup is repaired by the drain thread's
  // periodic wait_for timeout); Flush and shutdown do take it.
  mutable std::mutex mu_;
  std::condition_variable cv_drain_;
  std::condition_variable cv_flush_;
  uint64_t flush_requested_ = 0;
  uint64_t flush_done_ = 0;
  bool paused_ = false;
  bool stop_ = false;

  // File state, owned by the drain thread after construction.
  std::FILE* seg_file_ = nullptr;
  std::FILE* manifest_file_ = nullptr;
  uint64_t seg_id_ = 0;
  uint64_t seg_bytes_ = 0;
  uint64_t bytes_since_fsync_ = 0;
  std::vector<uint8_t> frame_buf_;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> segments_{0};
  std::atomic<uint64_t> truncated_bytes_{0};

  std::thread drain_;
};

/// Record filter for AuditReader — zero/empty/negative means "any".
struct AuditQuery {
  uint64_t min_unix_ms = 0;
  uint64_t max_unix_ms = UINT64_MAX;
  std::string model_name;        // empty = any
  int model_version = 0;         // 0 = any
  int kind = -1;                 // -1 = any (ExplainerKind byte)
  uint64_t trace_id = 0;         // 0 = any
  uint64_t model_fingerprint = 0;  // 0 = any

  bool Matches(const AuditRecord& r) const;
};

/// One manifest entry as seen by a reader.
struct AuditSegmentInfo {
  uint64_t id = 0;
  std::string file;  // relative to the ledger directory
};

/// What one scan over the ledger observed, beyond the matching records.
struct AuditScanStats {
  uint64_t records = 0;         ///< Valid records decoded.
  uint64_t matched = 0;         ///< Records passing the query.
  uint64_t corrupt_frames = 0;  ///< Bad frames in non-final segments.
  uint64_t corrupt_segments = 0;  ///< Segments abandoned mid-way.
  uint64_t torn_tail_bytes = 0; ///< Unverifiable bytes at the ledger tail.
  uint64_t bytes = 0;           ///< Total segment bytes visited.
};

/// Sequential reader over a ledger directory. Segments are streamed one
/// frame at a time through a fixed-size buffer (out-of-core: memory use is
/// bounded by the largest single record, not the ledger), in manifest
/// order, so iteration yields records oldest-first.
///
/// Corruption policy: a bad frame in the FINAL segment is a torn tail — the
/// normal result of a crash mid-append — and ends iteration quietly. A bad
/// frame in any earlier segment is real corruption (e.g. bit rot): the rest
/// of that segment is skipped (frames are not self-synchronizing), the
/// corruption is counted, and iteration continues with the next segment.
/// Readers may run concurrently with a live writer appending to the same
/// directory: a half-written tail frame simply looks torn on this pass.
class AuditReader {
 public:
  /// Opens the directory and parses its MANIFEST.
  static Result<AuditReader> Open(const std::string& dir);

  /// Streams every record matching `q` through `fn`, oldest first.
  /// Scan statistics (corruption, tail state) land in *scan when non-null.
  Status ForEach(const AuditQuery& q,
                 const std::function<void(const AuditRecord&)>& fn,
                 AuditScanStats* scan = nullptr) const;

  /// Convenience: materializes every matching record.
  Result<std::vector<AuditRecord>> ReadAll(const AuditQuery& q = {},
                                           AuditScanStats* scan = nullptr)
      const;

  const std::vector<AuditSegmentInfo>& segments() const { return segments_; }
  const std::string& dir() const { return dir_; }

 private:
  AuditReader(std::string dir, std::vector<AuditSegmentInfo> segments)
      : dir_(std::move(dir)), segments_(std::move(segments)) {}

  std::string dir_;
  std::vector<AuditSegmentInfo> segments_;
};

}  // namespace xai::obs

#endif  // XAIDB_OBS_AUDIT_H_
