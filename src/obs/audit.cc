#include "obs/audit.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/obs.h"

namespace xai::obs {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kManifestHeader[] = "xaidb_audit v1";
/// Every segment starts with these 8 bytes so a reader can reject foreign
/// files before trusting any frame in them.
constexpr char kSegHeader[8] = {'X', 'A', 'U', 'D', 'S', 'E', 'G', '1'};
/// Frame magic: "XADR" little-endian.
constexpr uint32_t kFrameMagic = 0x52444158u;
constexpr size_t kFrameHeaderBytes = 12;  // magic + payload_len + crc.
/// Sanity bound on a single payload — a frame claiming more is corrupt.
constexpr uint32_t kMaxPayload = 16u << 20;
/// stdio buffer per open segment: fewer write() syscalls on the drain
/// thread (a 4 KiB default buffer flushes every ~15 records). Frames
/// still buffered at a crash just shorten the torn tail.
constexpr size_t kSegBufBytes = 256u << 10;

std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06" PRIu64 ".log", id);
  return buf;
}

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// --- little-endian payload packing ---------------------------------------

void PutBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }
void PutU32(std::vector<uint8_t>* out, uint32_t v) { PutBytes(out, &v, 4); }
void PutU64(std::vector<uint8_t>* out, uint64_t v) { PutBytes(out, &v, 8); }
void PutI32(std::vector<uint8_t>* out, int32_t v) { PutBytes(out, &v, 4); }
void PutF32(std::vector<uint8_t>* out, float v) { PutBytes(out, &v, 4); }
void PutF64(std::vector<uint8_t>* out, double v) { PutBytes(out, &v, 8); }

/// Bounds-checked sequential reader over a decoded payload.
struct Cursor {
  const uint8_t* p;
  size_t n;
  size_t off = 0;

  bool Take(void* out, size_t k) {
    if (off + k > n) return false;
    std::memcpy(out, p + off, k);
    off += k;
    return true;
  }
  bool U8(uint8_t* v) { return Take(v, 1); }
  bool U32(uint32_t* v) { return Take(v, 4); }
  bool U64(uint64_t* v) { return Take(v, 8); }
  bool I32(int32_t* v) { return Take(v, 4); }
  bool F32(float* v) { return Take(v, 4); }
  bool F64(double* v) { return Take(v, 8); }
};

void EncodePayload(const AuditRecord& r, std::vector<uint8_t>* out) {
  PutU64(out, r.unix_ms);
  PutU64(out, r.trace_id);
  PutU64(out, r.row_hash);
  PutU64(out, r.model_fingerprint);
  PutU64(out, r.config_fingerprint);
  PutI32(out, r.model_version);
  PutI32(out, r.budget);
  PutU8(out, r.kind);
  const size_t name_len = std::min<size_t>(r.model_name.size(), 255);
  PutU8(out, static_cast<uint8_t>(name_len));
  PutBytes(out, r.model_name.data(), name_len);
  PutF32(out, r.queue_ms);
  PutF32(out, r.sweep_ms);
  PutF32(out, r.total_ms);
  PutU32(out, r.batch_size);
  PutU32(out, static_cast<uint32_t>(r.instance.size()));
  PutBytes(out, r.instance.data(), r.instance.size() * sizeof(double));
  PutF64(out, r.base_value);
  PutF64(out, r.prediction);
  PutU32(out, static_cast<uint32_t>(r.top_attr.size()));
  for (const AuditTopAttr& a : r.top_attr) {
    PutU32(out, a.index);
    PutF64(out, a.value);
  }
}

bool DecodePayload(const uint8_t* p, size_t n, AuditRecord* r) {
  Cursor c{p, n};
  uint8_t name_len = 0;
  uint32_t arity = 0, k = 0;
  if (!c.U64(&r->unix_ms) || !c.U64(&r->trace_id) || !c.U64(&r->row_hash) ||
      !c.U64(&r->model_fingerprint) || !c.U64(&r->config_fingerprint) ||
      !c.I32(&r->model_version) || !c.I32(&r->budget) || !c.U8(&r->kind) ||
      !c.U8(&name_len))
    return false;
  if (c.off + name_len > c.n) return false;
  r->model_name.assign(reinterpret_cast<const char*>(p + c.off), name_len);
  c.off += name_len;
  if (!c.F32(&r->queue_ms) || !c.F32(&r->sweep_ms) || !c.F32(&r->total_ms) ||
      !c.U32(&r->batch_size) || !c.U32(&arity))
    return false;
  if (c.off + static_cast<size_t>(arity) * sizeof(double) > c.n) return false;
  r->instance.resize(arity);
  c.Take(r->instance.data(), arity * sizeof(double));
  if (!c.F64(&r->base_value) || !c.F64(&r->prediction) || !c.U32(&k))
    return false;
  if (c.off + static_cast<size_t>(k) * 12 > c.n) return false;
  r->top_attr.resize(k);
  for (uint32_t i = 0; i < k; ++i) {
    if (!c.U32(&r->top_attr[i].index) || !c.F64(&r->top_attr[i].value))
      return false;
  }
  return c.off == c.n;  // trailing garbage is as suspect as a short read
}

// --- manifest ------------------------------------------------------------

Result<std::vector<AuditSegmentInfo>> ParseManifest(const std::string& dir) {
  const std::string path = (fs::path(dir) / kManifestFile).string();
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr)
    return Status::NotFound("audit: no MANIFEST in " + dir);
  std::vector<AuditSegmentInfo> out;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Strip the newline (a final line without one is fine too).
    line[std::strcspn(line, "\r\n")] = '\0';
    if (line[0] == '\0') continue;
    if (first) {
      first = false;
      if (std::strcmp(line, kManifestHeader) != 0) {
        std::fclose(f);
        return Status::IOError("audit: bad manifest header in " + path);
      }
      continue;
    }
    char name[256];
    unsigned long long id = 0;
    if (std::sscanf(line, "segment %llu %255s", &id, name) != 2) {
      std::fclose(f);
      return Status::IOError("audit: malformed manifest line: " +
                             std::string(line));
    }
    if (!out.empty() && id <= out.back().id) {
      std::fclose(f);
      return Status::IOError("audit: manifest segment ids not increasing");
    }
    out.push_back({id, name});
  }
  std::fclose(f);
  if (first)
    return Status::IOError("audit: empty manifest in " + path);
  return out;
}

/// Scans a segment file and reports how many prefix bytes hold verifiable
/// frames (header included) and how many records they frame. Everything
/// past valid_bytes is torn or corrupt.
struct SegmentScan {
  uint64_t valid_bytes = 0;
  uint64_t records = 0;
};

SegmentScan ScanSegment(const std::string& path) {
  SegmentScan out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char hdr[8];
  if (std::fread(hdr, 1, 8, f) != 8 ||
      std::memcmp(hdr, kSegHeader, 8) != 0) {
    std::fclose(f);
    return out;  // torn header: the whole file is rewritable
  }
  out.valid_bytes = 8;
  std::vector<uint8_t> buf;
  for (;;) {
    uint8_t fh[kFrameHeaderBytes];
    if (std::fread(fh, 1, sizeof(fh), f) != sizeof(fh)) break;
    uint32_t magic, len, crc;
    std::memcpy(&magic, fh, 4);
    std::memcpy(&len, fh + 4, 4);
    std::memcpy(&crc, fh + 8, 4);
    if (magic != kFrameMagic || len > kMaxPayload) break;
    buf.resize(len);
    if (std::fread(buf.data(), 1, len, f) != len) break;
    if (Crc32(buf.data(), len) != crc) break;
    out.valid_bytes += kFrameHeaderBytes + len;
    ++out.records;
  }
  std::fclose(f);
  return out;
}

}  // namespace

// --- public helpers ------------------------------------------------------

uint32_t Crc32(const void* data, size_t n) {
  // Slicing-by-8: eight derived tables let the hot loop fold 8 input
  // bytes per iteration — ~8x the classic byte-at-a-time loop, which
  // matters because the drain thread checksums every served explanation.
  // The 8-byte step loads two little-endian u32s (the codebase's record
  // serialization is LE-native already).
  struct Tables {
    std::array<std::array<uint32_t, 256>, 8> t;
  };
  static const Tables tables = [] {
    Tables tb{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      tb.t[0][i] = c;
    }
    for (size_t s = 1; s < 8; ++s)
      for (uint32_t i = 0; i < 256; ++i)
        tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xFF];
    return tb;
  }();
  const auto& t = tables.t;
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
          t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
          t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) crc = t[0][(crc ^ *p) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void TopKAttributionsInto(const std::vector<double>& values, size_t k,
                          std::vector<AuditTopAttr>* out) {
  out->clear();
  k = std::min(k, values.size());
  if (k == 0) return;
  // Partial insertion-select straight into *out: k is small (8 by
  // default), so shifting beats a heap or partial_sort — and unlike
  // partial_sort over an index array it needs no scratch allocation.
  // Strictly-greater keeps earlier (lower-index) entries ahead on |value|
  // ties, and drops later ones first when the list is full.
  for (uint32_t i = 0; i < values.size(); ++i) {
    const double a = std::abs(values[i]);
    size_t pos = out->size();
    while (pos > 0 && std::abs((*out)[pos - 1].value) < a) --pos;
    if (pos == out->size()) {
      if (out->size() < k) out->push_back({i, values[i]});
      continue;
    }
    if (out->size() < k) out->push_back({});
    for (size_t j = out->size() - 1; j > pos; --j) (*out)[j] = (*out)[j - 1];
    (*out)[pos] = {i, values[i]};
  }
}

std::vector<AuditTopAttr> TopKAttributions(const std::vector<double>& values,
                                           size_t k) {
  std::vector<AuditTopAttr> out;
  TopKAttributionsInto(values, k, &out);
  return out;
}

bool AuditQuery::Matches(const AuditRecord& r) const {
  if (r.unix_ms < min_unix_ms || r.unix_ms > max_unix_ms) return false;
  if (!model_name.empty() && r.model_name != model_name) return false;
  if (model_version != 0 && r.model_version != model_version) return false;
  if (kind >= 0 && static_cast<int>(r.kind) != kind) return false;
  if (trace_id != 0 && r.trace_id != trace_id) return false;
  if (model_fingerprint != 0 && r.model_fingerprint != model_fingerprint)
    return false;
  return true;
}

// --- AuditLog ------------------------------------------------------------

AuditLog::AuditLog(std::string dir, AuditLogOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.segment_bytes < 4096) opts_.segment_bytes = 4096;
  slots_.resize(opts_.queue_capacity);
  paused_ = opts_.start_paused;
}

Result<std::unique_ptr<AuditLog>> AuditLog::Open(const std::string& dir,
                                                 AuditLogOptions opts) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return Status::IOError("audit: cannot create " + dir + ": " +
                           ec.message());
  std::unique_ptr<AuditLog> log(new AuditLog(dir, opts));
  XAI_RETURN_NOT_OK(log->Recover());
  log->drain_ = std::thread([raw = log.get()] { raw->RunDrain(); });
  return log;
}

Status AuditLog::Recover() {
  const std::string manifest_path =
      (fs::path(dir_) / kManifestFile).string();
  std::vector<AuditSegmentInfo> segs;
  if (fs::exists(manifest_path)) {
    XAI_ASSIGN_OR_RETURN(segs, ParseManifest(dir_));
    manifest_file_ = std::fopen(manifest_path.c_str(), "ab");
  } else {
    manifest_file_ = std::fopen(manifest_path.c_str(), "wb");
    if (manifest_file_ != nullptr) {
      std::fprintf(manifest_file_, "%s\n", kManifestHeader);
      std::fflush(manifest_file_);
      ::fsync(fileno(manifest_file_));
    }
  }
  if (manifest_file_ == nullptr)
    return Status::IOError("audit: cannot open " + manifest_path);

  if (segs.empty()) return Rotate();

  // Resume the last segment: verify its frames and cut the torn tail so
  // the next append lands right after the last durable record.
  const AuditSegmentInfo& last = segs.back();
  const std::string path = (fs::path(dir_) / last.file).string();
  const SegmentScan scan = ScanSegment(path);
  std::error_code ec;
  const uint64_t size = fs::exists(path) ? fs::file_size(path, ec) : 0;
  if (size > scan.valid_bytes) {
    truncated_bytes_.store(size - scan.valid_bytes,
                           std::memory_order_relaxed);
    fs::resize_file(path, scan.valid_bytes, ec);
    if (ec)
      return Status::IOError("audit: cannot truncate torn tail of " + path +
                             ": " + ec.message());
  }
  segments_.store(segs.size(), std::memory_order_relaxed);
  if (scan.valid_bytes == 0) {
    // The header itself was torn (crash during segment creation) — the
    // file is empty after truncation; rewrite it in place.
    return OpenSegment(last.id, /*fresh=*/true);
  }
  seg_id_ = last.id;
  seg_file_ = std::fopen(path.c_str(), "ab");
  if (seg_file_ == nullptr)
    return Status::IOError("audit: cannot append to " + path);
  std::setvbuf(seg_file_, nullptr, _IOFBF, kSegBufBytes);
  seg_bytes_ = scan.valid_bytes;
  return Status::OK();
}

Status AuditLog::OpenSegment(uint64_t id, bool fresh) {
  const std::string path =
      (fs::path(dir_) / SegmentFileName(id)).string();
  seg_file_ = std::fopen(path.c_str(), "wb");
  if (seg_file_ == nullptr)
    return Status::IOError("audit: cannot create segment " + path);
  std::setvbuf(seg_file_, nullptr, _IOFBF, kSegBufBytes);
  std::fwrite(kSegHeader, 1, sizeof(kSegHeader), seg_file_);
  std::fflush(seg_file_);
  seg_id_ = id;
  seg_bytes_ = sizeof(kSegHeader);
  bytes_.fetch_add(sizeof(kSegHeader), std::memory_order_relaxed);
  XAI_OBS_COUNT_N("audit.bytes", sizeof(kSegHeader));
  if (fresh) return Status::OK();
  // New segment: record it in the manifest before any frame lands in it,
  // and make the manifest line durable first — a reader never learns about
  // a segment the directory does not hold.
  segments_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(manifest_file_, "segment %" PRIu64 " %s\n", id,
               SegmentFileName(id).c_str());
  std::fflush(manifest_file_);
  ::fsync(fileno(manifest_file_));
  return Status::OK();
}

Status AuditLog::Rotate() {
  if (seg_file_ != nullptr) {
    DoFsync();
    std::fclose(seg_file_);
    seg_file_ = nullptr;
  }
  return OpenSegment(seg_id_ + 1, /*fresh=*/false);
}

void AuditLog::DoFsync() {
  if (seg_file_ == nullptr) return;
  std::fflush(seg_file_);
  ::fsync(fileno(seg_file_));
  bytes_since_fsync_ = 0;
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  XAI_OBS_COUNT("audit.fsyncs");
}

void AuditLog::WriteRecord(const AuditRecord& rec) {
  frame_buf_.clear();
  frame_buf_.resize(kFrameHeaderBytes);  // header filled in below
  EncodePayload(rec, &frame_buf_);
  const uint32_t len =
      static_cast<uint32_t>(frame_buf_.size() - kFrameHeaderBytes);
  const uint32_t crc = Crc32(frame_buf_.data() + kFrameHeaderBytes, len);
  std::memcpy(frame_buf_.data(), &kFrameMagic, 4);
  std::memcpy(frame_buf_.data() + 4, &len, 4);
  std::memcpy(frame_buf_.data() + 8, &crc, 4);

  if (seg_bytes_ + frame_buf_.size() > opts_.segment_bytes &&
      seg_bytes_ > sizeof(kSegHeader)) {
    if (!Rotate().ok()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (seg_file_ == nullptr ||
      std::fwrite(frame_buf_.data(), 1, frame_buf_.size(), seg_file_) !=
          frame_buf_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    XAI_OBS_COUNT("audit.dropped");
    return;
  }
  seg_bytes_ += frame_buf_.size();
  bytes_since_fsync_ += frame_buf_.size();
  bytes_.fetch_add(frame_buf_.size(), std::memory_order_relaxed);
  written_.fetch_add(1, std::memory_order_relaxed);
  XAI_OBS_COUNT("audit.records");
  XAI_OBS_COUNT_N("audit.bytes", frame_buf_.size());
  if (opts_.fsync_every_bytes != 0 &&
      bytes_since_fsync_ >= opts_.fsync_every_bytes)
    DoFsync();
}

AuditRecord* AuditLog::StageAppend() {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - tail_.load(std::memory_order_acquire) >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    XAI_OBS_COUNT("audit.dropped");
    return nullptr;
  }
  AuditRecord& s = slots_[head % slots_.size()];
  // Reset scalars but only clear() the heap-backed fields: their buffers
  // survive, so assigning this serve's data into them allocates nothing
  // once every slot has been through one lap of the ring.
  s.unix_ms = 0;
  s.trace_id = 0;
  s.row_hash = 0;
  s.model_fingerprint = 0;
  s.config_fingerprint = 0;
  s.model_version = 0;
  s.kind = 0;
  s.budget = 0;
  s.queue_ms = 0.0f;
  s.sweep_ms = 0.0f;
  s.total_ms = 0.0f;
  s.batch_size = 0;
  s.base_value = 0.0;
  s.prediction = 0.0;
  s.model_name.clear();
  s.instance.clear();
  s.top_attr.clear();
  return &s;
}

void AuditLog::CommitAppend() {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  AuditRecord& s = slots_[head % slots_.size()];
  if (s.unix_ms == 0) s.unix_ms = NowUnixMs();
  // Publish and return — no wakeup. The drain thread polls on a short
  // timeout; a notify here would cost the serving thread a futex syscall
  // (and on small machines a context switch) per served explanation.
  // Durability latency is bounded by the poll period; Flush and shutdown
  // notify explicitly when someone is actually waiting.
  head_.store(head + 1, std::memory_order_release);
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void AuditLog::Append(AuditRecord rec) {
  AuditRecord* slot = StageAppend();
  if (slot == nullptr) return;
  if (rec.unix_ms == 0) rec.unix_ms = NowUnixMs();
  *slot = std::move(rec);
  CommitAppend();
}

void AuditLog::Flush() {
  std::unique_lock<std::mutex> lk(mu_);
  const uint64_t target = ++flush_requested_;
  cv_drain_.notify_one();
  cv_flush_.wait(lk, [&] { return flush_done_ >= target; });
}

void AuditLog::ResumeDrain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_drain_.notify_one();
}

void AuditLog::RunDrain() {
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_drain_.wait_for(lk, std::chrono::milliseconds(5), [&] {
        return stop_ ||
               (!paused_ && (!RingEmpty() || flush_requested_ > flush_done_));
      });
      if (paused_ && !stop_) continue;
      stopping = stop_;
    }
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    while (tail != head_.load(std::memory_order_acquire)) {
      // Serialize straight out of the slot, then release it. Not moving
      // the record out is what preserves the slot's heap buffers for the
      // producer's next lap (see StageAppend).
      WriteRecord(slots_[tail % slots_.size()]);
      tail_.store(tail + 1, std::memory_order_release);
      ++tail;
    }
    XAI_OBS_GAUGE_SET(
        "audit.lag_records",
        head_.load(std::memory_order_relaxed) - tail);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (flush_requested_ > flush_done_ && RingEmpty()) {
        DoFsync();
        flush_done_ = flush_requested_;
        cv_flush_.notify_all();
      }
      if (stopping && RingEmpty()) break;
    }
  }
  DoFsync();
}

AuditLogStats AuditLog::stats() const {
  AuditLogStats s;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.written = written_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.segments = segments_.load(std::memory_order_relaxed);
  s.truncated_bytes = truncated_bytes_.load(std::memory_order_relaxed);
  return s;
}

AuditLog::~AuditLog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    paused_ = false;  // drain even if never resumed
  }
  cv_drain_.notify_all();
  if (drain_.joinable()) drain_.join();
  if (seg_file_ != nullptr) std::fclose(seg_file_);
  if (manifest_file_ != nullptr) std::fclose(manifest_file_);
}

// --- AuditReader ---------------------------------------------------------

Result<AuditReader> AuditReader::Open(const std::string& dir) {
  XAI_ASSIGN_OR_RETURN(std::vector<AuditSegmentInfo> segs,
                       ParseManifest(dir));
  return AuditReader(dir, std::move(segs));
}

Status AuditReader::ForEach(const AuditQuery& q,
                            const std::function<void(const AuditRecord&)>& fn,
                            AuditScanStats* scan) const {
  AuditScanStats local;
  AuditScanStats& s = scan != nullptr ? *scan : local;
  s = AuditScanStats{};
  std::vector<uint8_t> buf;
  for (size_t si = 0; si < segments_.size(); ++si) {
    const bool is_last = si + 1 == segments_.size();
    const std::string path =
        (fs::path(dir_) / segments_[si].file).string();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      // A manifest entry whose file vanished: data loss on a non-final
      // segment, an unstarted segment (crash between manifest append and
      // file creation never happens — the file is created first — but a
      // deleted file can) otherwise.
      ++s.corrupt_segments;
      continue;
    }
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (!ec) s.bytes += size;
    uint64_t off = 0;
    char hdr[8];
    bool header_ok = std::fread(hdr, 1, 8, f) == 8 &&
                     std::memcmp(hdr, kSegHeader, 8) == 0;
    if (!header_ok) {
      if (is_last) {
        s.torn_tail_bytes += size;
      } else {
        ++s.corrupt_frames;
        ++s.corrupt_segments;
      }
      std::fclose(f);
      continue;
    }
    off = 8;
    bool segment_corrupt = false;
    for (;;) {
      uint8_t fh[kFrameHeaderBytes];
      const size_t got = std::fread(fh, 1, sizeof(fh), f);
      if (got == 0) break;  // clean end of segment
      uint32_t magic = 0, len = 0, crc = 0;
      bool ok = got == sizeof(fh);
      if (ok) {
        std::memcpy(&magic, fh, 4);
        std::memcpy(&len, fh + 4, 4);
        std::memcpy(&crc, fh + 8, 4);
        ok = magic == kFrameMagic && len <= kMaxPayload;
      }
      AuditRecord rec;
      if (ok) {
        buf.resize(len);
        ok = std::fread(buf.data(), 1, len, f) == len &&
             Crc32(buf.data(), len) == crc &&
             DecodePayload(buf.data(), len, &rec);
      }
      if (!ok) {
        // Frames are not self-synchronizing: nothing after a bad frame in
        // this segment can be trusted. In the final segment that is the
        // expected shape of a crash (or of racing a live writer) — a torn
        // tail, not corruption.
        if (is_last) {
          s.torn_tail_bytes += size - off;
        } else {
          ++s.corrupt_frames;
          segment_corrupt = true;
        }
        break;
      }
      off += kFrameHeaderBytes + len;
      ++s.records;
      if (q.Matches(rec)) {
        ++s.matched;
        fn(rec);
      }
    }
    if (segment_corrupt) ++s.corrupt_segments;
    std::fclose(f);
  }
  return Status::OK();
}

Result<std::vector<AuditRecord>> AuditReader::ReadAll(
    const AuditQuery& q, AuditScanStats* scan) const {
  std::vector<AuditRecord> out;
  XAI_RETURN_NOT_OK(
      ForEach(q, [&](const AuditRecord& r) { out.push_back(r); }, scan));
  return out;
}

}  // namespace xai::obs
