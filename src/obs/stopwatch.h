#ifndef XAIDB_OBS_STOPWATCH_H_
#define XAIDB_OBS_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace xai::obs {

/// Wall-clock stopwatch over std::chrono::steady_clock. The single timing
/// primitive shared by the library's instrumentation (spans, histogram
/// timers) and the bench harness, so every layer measures time the same way.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  uint64_t ElapsedNs() const {
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
  }
  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) * 1e-3; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) * 1e-6; }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xai::obs

#endif  // XAIDB_OBS_STOPWATCH_H_
