#include "obs/prom.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/monitor.h"

// CMake injects the real values as compile definitions on xai_obs; the
// fallbacks keep out-of-tree builds (and IDE parses) compiling.
#ifndef XAIDB_VERSION
#define XAIDB_VERSION "0.0.0-dev"
#endif
#ifndef XAIDB_GIT_SHA
#define XAIDB_GIT_SHA "unknown"
#endif

namespace xai::obs {
namespace {

/// Anchored when this translation unit's statics initialize — process
/// start for uptime purposes.
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted names map onto that with '_' for everything else.
std::string PromName(const std::string& name) {
  std::string out = "xaidb_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

const char* BuildVersion() { return XAIDB_VERSION; }
const char* BuildGitSha() { return XAIDB_GIT_SHA; }

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_start)
      .count();
}

std::string MetricsToProm() {
  const MetricsSnapshot snap = MetricsRegistry::Global().TakeSnapshot();
  std::string out;

  // Build identity and uptime lead the exposition so they are present
  // even when the registry is empty (metrics disabled).
  Appendf(&out, "# TYPE xaidb_build_info gauge\n");
  Appendf(&out, "xaidb_build_info{version=\"%s\",git_sha=\"%s\"} 1\n",
          BuildVersion(), BuildGitSha());
  Appendf(&out, "# TYPE xaidb_uptime_seconds gauge\n");
  Appendf(&out, "xaidb_uptime_seconds %.3f\n", UptimeSeconds());

  for (const auto& [name, value] : snap.counters) {
    const std::string pn = PromName(name);
    Appendf(&out, "# TYPE %s_total counter\n", pn.c_str());
    Appendf(&out, "%s_total %" PRIu64 "\n", pn.c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pn = PromName(name);
    Appendf(&out, "# TYPE %s gauge\n", pn.c_str());
    Appendf(&out, "%s %.9g\n", pn.c_str(), value);
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pn = PromName(name);
    Appendf(&out, "# TYPE %s histogram\n", pn.c_str());
    uint64_t cum = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      if (i + 1 < h.buckets.size()) {
        Appendf(&out, "%s_bucket{le=\"%.9g\"} %" PRIu64 "\n", pn.c_str(),
                Histogram::BucketBound(i), cum);
      } else {
        Appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", pn.c_str(),
                cum);
      }
    }
    Appendf(&out, "%s_sum %.9g\n", pn.c_str(), h.sum);
    Appendf(&out, "%s_count %" PRIu64 "\n", pn.c_str(), h.count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MonitorServer

MonitorServer::MonitorServer(const MetricsSampler* sampler)
    : sampler_(sampler) {}

MonitorServer::~MonitorServer() { Stop(); }

Status MonitorServer::Start(int port) {
  if (listen_fd_.load(std::memory_order_relaxed) >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Unavailable("monitor: socket() failed: " +
                               std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("monitor: bind(127.0.0.1:" +
                               std::to_string(port) + ") failed: " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("monitor: listen() failed: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);

  listen_fd_.store(fd, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MonitorServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    // shutdown() unblocks a pending accept(); close() releases the port.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

std::string MonitorServer::Respond(const std::string& path) const {
  std::string body;
  std::string content_type = "text/plain; version=0.0.4";
  int code = 200;
  if (path == "/" || path == "/metrics") {
    body = MetricsToProm();
  } else if (path == "/json") {
    body = MetricsToJson();
    content_type = "application/json";
  } else if (path == "/series" && sampler_ != nullptr) {
    // Reuse the snapshot writer's JSON by rendering to a string via a
    // temp-free path: rebuild inline (the shape is small and stable).
    body = "{\"series\": {";
    bool first = true;
    char buf[128];
    for (const auto& [name, points] : sampler_->SeriesSnapshot()) {
      body += first ? "\"" : ", \"";
      first = false;
      body += name + "\": [";
      for (size_t i = 0; i < points.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 ", %.9g]",
                      i == 0 ? "" : ", ", points[i].unix_ms,
                      points[i].value);
        body += buf;
      }
      body += "]";
    }
    body += "}}\n";
    content_type = "application/json";
  } else if (path == "/healthz") {
    // Liveness probe: 200 with the two gauges an orchestrator cares about
    // — saturation (queue depth) and identity (serving model version).
    // Both read 0 when the serving layer is absent or metrics are off.
    const MetricsSnapshot snap = MetricsRegistry::Global().TakeSnapshot();
    double queue_depth = 0.0, model_version = 0.0;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "serve.queue_depth") queue_depth = value;
      if (name == "serve.model_version") model_version = value;
    }
    Appendf(&body,
            "{\"status\": \"ok\", \"version\": \"%s\", "
            "\"uptime_seconds\": %.3f, \"queue_depth\": %d, "
            "\"serving_model_version\": %d}\n",
            BuildVersion(), UptimeSeconds(), static_cast<int>(queue_depth),
            static_cast<int>(model_version));
    content_type = "application/json";
  } else {
    body = "not found\n";
    code = 404;
  }
  std::string resp;
  Appendf(&resp,
          "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
          "Connection: close\r\n\r\n",
          code, code == 200 ? "OK" : "Not Found", content_type.c_str(),
          body.size());
  resp += body;
  return resp;
}

void MonitorServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_relaxed);
    if (lfd < 0) return;  // Stop() already closed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed or broken — nothing to serve on
    }
    // Read the request head (we only need the request line); a slow or
    // silent client cannot wedge the loop past this bounded read.
    char req[2048];
    const ssize_t n = ::recv(fd, req, sizeof(req) - 1, 0);
    std::string path = "/";
    if (n > 0) {
      req[n] = '\0';
      // "GET <path> HTTP/1.x"
      const char* sp1 = std::strchr(req, ' ');
      if (sp1 != nullptr) {
        const char* sp2 = std::strchr(sp1 + 1, ' ');
        if (sp2 != nullptr) path.assign(sp1 + 1, sp2);
      }
    }
    const std::string resp = Respond(path);
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t w = ::send(fd, resp.data() + off, resp.size() - off,
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    // Count before close(): a client sees EOF only after the response is
    // fully written AND counted, so requests_served() is deterministic.
    served_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

// ---------------------------------------------------------------------------
// Self-scrape client

Result<std::string> HttpGetLocal(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Unavailable("monitor: socket() failed: " +
                               std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("monitor: connect(127.0.0.1:" +
                               std::to_string(port) + ") failed: " + err);
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Connection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t w =
        ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (w <= 0) {
      ::close(fd);
      return Status::IOError("monitor: send() failed");
    }
    off += static_cast<size_t>(w);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos)
    return Status::IOError("monitor: malformed HTTP response");
  return raw.substr(hdr_end + 4);
}

}  // namespace xai::obs
