#include "text/vocab.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace xai {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Vocabulary Vocabulary::Build(const std::vector<std::string>& documents,
                             size_t min_count) {
  std::map<std::string, size_t> counts;
  for (const std::string& doc : documents)
    for (const std::string& tok : Tokenize(doc)) ++counts[tok];
  Vocabulary v;
  for (const auto& [word, count] : counts) {
    if (count < min_count) continue;
    v.ids_[word] = v.words_.size();
    v.words_.push_back(word);
  }
  return v;
}

int Vocabulary::WordId(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? -1 : static_cast<int>(it->second);
}

}  // namespace xai
